"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation
(Appendices D and E, plus the theorem suite and shape-level performance
profiles) and *asserts* the reproduced closed forms / outputs before timing
anything, so `pytest benchmarks/ --benchmark-only` doubles as a full
reproduction run.
"""

from __future__ import annotations

import pytest

from repro import compile_systolic
from repro.geometry import Point
from repro.systolic import all_paper_designs


def poly_inputs(n: int, seed: int = 0) -> dict:
    return {
        "a": {Point.of(i): (i * 7 + seed) % 13 - 6 for i in range(n + 1)},
        "b": {Point.of(j): (j * 5 + seed) % 11 - 5 for j in range(n + 1)},
        "c": 0,
    }


def matmul_inputs(n: int, seed: int = 0) -> dict:
    rng = range(n + 1)
    return {
        "a": {Point.of(i, k): (3 * i + k + seed) % 9 - 4 for i in rng for k in rng},
        "b": {Point.of(k, j): (k - 2 * j + seed) % 7 - 3 for k in rng for j in rng},
        "c": 0,
    }


def inputs_for(exp_id: str, n: int, seed: int = 0) -> dict:
    return poly_inputs(n, seed) if exp_id.startswith("D") else matmul_inputs(n, seed)


@pytest.fixture(scope="session")
def designs():
    """exp id -> (source program, array, compiled SystolicProgram)."""
    out = {}
    for exp_id, prog, array in all_paper_designs():
        out[exp_id] = (prog, array, compile_systolic(prog, array))
    return out
