"""Experiment X2 -- parallelism shape.

The paper's qualitative claim: the generated asynchronous programs realise
the parallelism of the synchronous systolic array.  Checked shapes:

* the simulator's critical path (virtual-time makespan) grows *linearly*
  in n while sequential work grows as n^2 (polyprod) / n^3 (matmul);
* speedup over sequential execution therefore grows with n;
* the observed makespan stays within a constant factor of the ideal
  synchronous makespan (max step - min step + 1).
"""

import pytest

from benchmarks.conftest import inputs_for
from repro import execute, run_sequential
from repro.analysis import format_table, parallelism_profile


@pytest.mark.parametrize("exp_id", ["D1", "E1", "E2"])
def test_bench_parallelism_shape(benchmark, designs, exp_id):
    prog, array, sp = designs[exp_id]
    sizes = (2, 4, 8) if exp_id.startswith("D") else (2, 3, 4)
    rows = []

    def profile_all():
        rows.clear()
        for size in sizes:
            inputs = inputs_for(exp_id, size)
            final, stats = execute(sp, {"n": size}, inputs)
            assert final == run_sequential(prog, {"n": size}, inputs)
            rows.append(parallelism_profile(sp, {"n": size}, stats))
        return rows

    profiles = benchmark.pedantic(profile_all, rounds=2, iterations=1)
    print()
    print(format_table([p.row() for p in profiles], title=f"{exp_id} parallelism"))

    speedups = [p.speedup for p in profiles]
    assert speedups == sorted(speedups), "speedup must grow with n"
    for p in profiles:
        # linear-in-n critical path: within a constant factor of the
        # synchronous makespan (the factor covers per-hop send+recv cost
        # and pipeline fill/drain)
        assert p.observed_makespan <= 8 * p.synchronous_makespan

    # superlinear work over linear time: the largest size must beat the
    # smallest by a clear margin
    assert speedups[-1] > 1.5 * speedups[0]
