"""Experiment X1 -- compile-time scaling.

The paper reports no compile times (1991 hardware); the reproduction
measures the cost of the symbolic derivation itself: parsing, validation,
face solving, guard pruning.  Shape expectations: compilation cost is
independent of the problem size (everything is symbolic) and grows with the
structural complexity of the design (simple < non-simple; r=2 < r=3).
"""

import pytest

from repro import compile_systolic, parse_program
from repro.systolic import all_paper_designs

_DESIGNS = {exp: (prog, arr) for exp, prog, arr in all_paper_designs()}


@pytest.mark.parametrize("exp_id", ["D1", "D2", "E1", "E2"])
def test_bench_compile(benchmark, exp_id):
    prog, arr = _DESIGNS[exp_id]
    sp = benchmark(compile_systolic, prog, arr)
    assert sp.streams


def test_bench_parse(benchmark):
    from repro.systolic.designs import MATMUL_SOURCE

    program = benchmark(parse_program, MATMUL_SOURCE)
    assert program.r == 3


def test_bench_compile_without_simplify(benchmark):
    """The guard-simplification pass dominates; measure the raw derivation."""
    prog, arr = _DESIGNS["E2"]
    sp = benchmark(compile_systolic, prog, arr, prune=False)
    assert not sp.simple


def test_bench_synthesis(benchmark):
    """Bounded-search step synthesis for the matmul program."""
    from repro.systolic import synthesize_step

    prog, _ = _DESIGNS["E1"]
    steps = benchmark(synthesize_step, prog, bound=1)
    assert steps


def test_compile_cost_independent_of_problem_size(designs):
    """Symbolic compilation never touches a concrete size: the same object
    serves every n (sanity assertion, not a timing)."""
    _prog, _arr, sp = designs["E2"]
    small = sp.process_space({"n": 1}).size
    large = sp.process_space({"n": 10}).size
    assert small < large  # same compiled object instantiates at any size
