"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Channel capacity** -- the paper treats a synchronous link as a size-1
  buffer (Section 7.6); the simulator can also run pure rendezvous
  (capacity 0) or deeper buffers.  Results must be identical; virtual-time
  makespan is unaffected (it tracks data dependences), while wall-clock
  simulation cost varies with the amount of parking/waking.
* **Guard simplification** -- compiling with and without the
  Fourier-Motzkin simplification pass: the pass costs compile time but
  shrinks the case analyses (the paper's by-hand "optimisation before
  translation").
* **Partitioning** -- folding the E1 array onto 1..64 workers: monotone
  makespan, identical results (the Section 8 "not enough processors"
  scenario).
"""

import pytest

from benchmarks.conftest import inputs_for, matmul_inputs
from repro import compile_systolic, execute, run_sequential
from repro.extensions import partitioned_execute
from repro.systolic import all_paper_designs

_DESIGNS = {exp: (prog, arr) for exp, prog, arr in all_paper_designs()}


class TestCapacityAblation:
    @pytest.mark.parametrize("capacity", [0, 1, 4])
    def test_bench_capacity(self, benchmark, designs, capacity):
        prog, array, sp = designs["D2"]
        size = 6
        inputs = inputs_for("D2", size)
        oracle = run_sequential(prog, {"n": size}, inputs)
        final, stats = benchmark(
            lambda: execute(sp, {"n": size}, inputs, channel_capacity=capacity)
        )
        assert final == oracle

    def test_capacity_does_not_change_makespan(self, designs):
        """Virtual time tracks dependences, not buffering."""
        prog, array, sp = designs["E2"]
        size = 3
        inputs = matmul_inputs(size)
        spans = set()
        for capacity in (0, 1, 2, 8):
            _, stats = execute(sp, {"n": size}, inputs, channel_capacity=capacity)
            spans.add(stats.makespan)
        assert len(spans) == 1


class TestSimplifyAblation:
    @pytest.mark.parametrize("prune", [True, False])
    def test_bench_simplify(self, benchmark, prune):
        prog, arr = _DESIGNS["E2"]
        sp = benchmark(compile_systolic, prog, arr, prune=prune)
        assert sp.streams

    def test_simplify_shrinks_case_analyses(self):
        prog, arr = _DESIGNS["E2"]
        raw = compile_systolic(prog, arr, prune=False)
        slim = compile_systolic(prog, arr, prune=True)

        def guard_atoms(pw):
            total = 0
            for case in pw.cases:
                total += len(case.guard.constraints)
            return total

        for name in ("a", "b", "c"):
            assert guard_atoms(slim.plan(name).first_s) <= guard_atoms(
                raw.plan(name).first_s
            )
        # and the simplified D1 collapses fully
        d_prog, d_arr = _DESIGNS["D1"]
        d1 = compile_systolic(d_prog, d_arr)
        from repro.symbolic import Piecewise

        assert not isinstance(d1.plan("a").first_s.collapse(), Piecewise)

    def test_semantics_unchanged_by_simplify(self, designs):
        """Pruned and unpruned programs produce identical executions."""
        prog, arr = _DESIGNS["D2"]
        size = 4
        inputs = inputs_for("D2", size)
        raw = compile_systolic(prog, arr, prune=False)
        slim = compile_systolic(prog, arr, prune=True)
        final_raw, _ = execute(raw, {"n": size}, inputs)
        final_slim, _ = execute(slim, {"n": size}, inputs)
        assert final_raw == final_slim


class TestPartitionAblation:
    @pytest.mark.parametrize("workers", [1, 4, 16])
    def test_bench_partitioned(self, benchmark, designs, workers):
        prog, array, sp = designs["E1"]
        size = 4
        inputs = matmul_inputs(size)
        oracle = run_sequential(prog, {"n": size}, inputs)
        final, stats = benchmark(
            lambda: partitioned_execute(sp, {"n": size}, inputs, workers=workers)
        )
        assert final == oracle

    def test_partition_curve_shape(self, designs):
        prog, array, sp = designs["E1"]
        size = 4
        inputs = matmul_inputs(size)
        spans = []
        for workers in (1, 2, 4, 8, 64):
            _, stats = partitioned_execute(sp, {"n": size}, inputs, workers=workers)
            spans.append(stats.makespan)
        assert spans == sorted(spans, reverse=True)
        # near-linear early scaling: doubling 1 -> 2 workers helps by > 25%
        assert spans[1] < 0.75 * spans[0]

    def test_block_vs_round_robin(self, designs):
        """Both assignments preserve results; their folded makespans may
        differ (locality), which is the point of the ablation."""
        prog, array, sp = designs["E1"]
        size = 3
        inputs = matmul_inputs(size)
        oracle = run_sequential(prog, {"n": size}, inputs)
        for assignment in ("block", "round_robin"):
            final, stats = partitioned_execute(
                sp, {"n": size}, inputs, workers=4, assignment=assignment
            )
            assert final == oracle
            assert stats.makespan > 0
