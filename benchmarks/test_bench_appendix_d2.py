"""Experiment D2 -- Appendix D.2: polynomial product, place.(i,j) = i + j.

The non-simple design: two-alternative case analyses for first/last/count,
a reversed i/o repeater {n 0 -1} for stream b, stationary c loaded from the
left, and per-clause soak/drain code.
"""

from fractions import Fraction

from benchmarks.conftest import poly_inputs
from repro import compile_systolic, execute, run_sequential
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import polynomial_product_program, polyprod_design_d2

n = Affine.var("n")
col = Affine.var("col")


def check_d2_artifacts(sp) -> None:
    assert sp.ps_min == AffineVec.of(0) and sp.ps_max == AffineVec.of(2 * n)
    assert sp.increment == Point.of(1, -1)
    assert not sp.simple

    first_values = [c.value for c in sp.first.cases]
    assert AffineVec.of(0, col) in first_values
    assert AffineVec.of(col - n, n) in first_values
    last_values = [c.value for c in sp.last.cases]
    assert AffineVec.of(col, 0) in last_values
    assert AffineVec.of(n, col - n) in last_values

    # flows (D.2.3): a = 1, b = 1/2, c stationary
    assert sp.plan("a").flow == Point.of(1)
    assert sp.plan("b").flow == Point.of(Fraction(1, 2))
    assert sp.plan("c").stationary

    # i/o increments (D.2.4): 1, -1, loading vector 1
    assert sp.plan("a").increment_s == Point.of(1)
    assert sp.plan("b").increment_s == Point.of(-1)
    assert sp.plan("c").increment_s == Point.of(1)

    # repeaters {0 n 1}, {n 0 -1}, {0 2n 1}
    assert sp.plan("b").first_s.collapse() == AffineVec.of(n)
    assert sp.plan("b").last_s.collapse() == AffineVec.of(0)
    assert sp.plan("c").last_s.collapse() == AffineVec.of(2 * n)

    # per-clause soak/drain (D.2.5) -- checked pointwise over the array
    size = 6
    for c in range(2 * size + 1):
        env = {"col": c, "n": size}
        assert sp.plan("a").soak.evaluate(env) == (0 if c <= size else c - size)
        assert sp.plan("a").drain.evaluate(env) == (size - c if c <= size else 0)
        assert sp.plan("b").soak.evaluate(env) == (size - c if c <= size else 0)
        assert sp.plan("b").drain.evaluate(env) == (0 if c <= size else c - size)
        assert sp.plan("c").drain.evaluate(env) == 2 * size - c  # loading
        assert sp.plan("c").soak.evaluate(env) == c  # recovery

    # count (D.2.2): col+1 below the diagonal, 2n-col+1 above
    assert sp.count.evaluate({"col": 2, "n": 6}) == 3
    assert sp.count.evaluate({"col": 9, "n": 6}) == 4
    assert sp.count.evaluate({"col": 6, "n": 6}) == 7


def test_bench_d2_compile(benchmark):
    program = polynomial_product_program()
    array = polyprod_design_d2()
    sp = benchmark(compile_systolic, program, array)
    check_d2_artifacts(sp)


def test_bench_d2_execute(benchmark, designs):
    prog, array, sp = designs["D2"]
    size = 8
    inputs = poly_inputs(size, seed=2)
    oracle = run_sequential(prog, {"n": size}, inputs)

    final, stats = benchmark(lambda: execute(sp, {"n": size}, inputs))
    assert final == oracle
    assert stats.process_count > 2 * size  # 2n+1 computation processes
