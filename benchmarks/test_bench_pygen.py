"""Experiment X5 -- the executable Python backend.

Benchmarks code generation and the generated program's threaded execution,
asserting oracle equality each round.  This quantifies the "easily
translated to any distributed target language" claim with a translation
that actually runs: threads + bounded queues vs the coroutine simulator.
"""

import pytest

from benchmarks.conftest import inputs_for
from repro import run_sequential
from repro.target.pygen import execute_python, render_python


@pytest.mark.parametrize("exp_id", ["D1", "E2"])
def test_bench_generate(benchmark, designs, exp_id):
    prog, array, sp = designs[exp_id]
    source = benchmark(render_python, sp)
    assert "def run(sizes, inputs):" in source
    compile(source, "<gen>", "exec")


def test_bench_threaded_execution(benchmark, designs):
    prog, array, sp = designs["D1"]
    size = 4
    inputs = inputs_for("D1", size)
    oracle = run_sequential(prog, {"n": size}, inputs)

    final = benchmark.pedantic(
        execute_python, args=(sp, {"n": size}, inputs), rounds=3, iterations=1
    )
    for var in oracle:
        assert final[var] == {tuple(k): v for k, v in oracle[var].items()}


def test_bench_threaded_vs_simulator(designs):
    """Both execution paths agree bit for bit."""
    from repro.runtime import execute

    prog, array, sp = designs["E1"]
    size = 3
    inputs = inputs_for("E1", size)
    sim_final, _ = execute(sp, {"n": size}, inputs)
    thr_final = execute_python(sp, {"n": size}, inputs)
    for var in sim_final:
        assert thr_final[var] == {tuple(k): v for k, v in sim_final[var].items()}
