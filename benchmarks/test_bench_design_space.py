"""Experiment X4 -- design-space exploration cost.

"Once step has been derived, many different place functions are possible"
(Section 3.2).  Benchmarks the exhaustive enumerate-compile-cost sweep the
library adds on top of the paper, and asserts the qualitative ranking the
paper's own two Appendix-E designs illustrate: the compact stationary-
accumulator grid is cheaper in cells than the all-moving hexagon.
"""

from repro.geometry import Matrix
from repro.systolic import explore_designs, matrix_product_program, polynomial_product_program


def test_bench_explore_polyprod(benchmark):
    prog = polynomial_product_program()
    costs = benchmark(explore_designs, prog, Matrix([[2, 1]]), {"n": 4}, bound=1)
    assert costs
    row_sets = {frozenset(c.place.rows) for c in costs}
    assert frozenset({(1, 0)}) in row_sets  # D.1
    assert frozenset({(1, 1)}) in row_sets  # D.2


def test_bench_explore_matmul(benchmark):
    prog = matrix_product_program()
    costs = benchmark.pedantic(
        explore_designs,
        args=(prog, Matrix([[1, 1, 1]]), {"n": 3}),
        kwargs={"bound": 1},
        rounds=2,
        iterations=1,
    )
    assert len(costs) > 50
    by_rows = {frozenset(c.place.rows): c for c in costs}
    e1 = by_rows[frozenset({(1, 0, 0), (0, 1, 0)})]
    e2 = by_rows[frozenset({(1, 0, -1), (0, 1, -1)})]
    assert e1.total_cells < e2.total_cells
