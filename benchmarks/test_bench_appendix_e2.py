"""Experiment E2 -- Appendix E.2: the Kung-Leiserson array,
place.(i,j,k) = (i-k, j-k).

The hardest design in the paper: three-alternative case analyses, a
hexagonal computation space strictly inside the square process space
(external corner buffers), two families of i/o processes for stream c with
corner deduplication, and nested per-clause soak/drain code.
"""

import pytest

from benchmarks.conftest import matmul_inputs
from repro import compile_systolic, execute, run_sequential
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import matmul_design_e2, matrix_product_program

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


def check_e2_artifacts(sp) -> None:
    # E.2.1: basis (-n,-n)..(n,n)
    assert sp.ps_min == AffineVec.of(-n, -n)
    assert sp.ps_max == AffineVec.of(n, n)
    # E.2.2: increment (1,1,1), three alternatives for first and last
    assert sp.increment == Point.of(1, 1, 1)
    assert not sp.simple
    first_values = [c.value for c in sp.first.cases]
    assert AffineVec.of(0, row - col, -col) in first_values
    assert AffineVec.of(col - row, 0, -row) in first_values
    assert AffineVec.of(col, row, 0) in first_values
    last_values = [c.value for c in sp.last.cases]
    assert AffineVec.of(n, row - col + n, n - col) in last_values
    assert AffineVec.of(col - row + n, n, n - row) in last_values
    assert AffineVec.of(col + n, row + n, n) in last_values

    # E.2.3: flows (0,1), (1,0), (-1,-1); everything moves
    assert sp.plan("a").flow == Point.of(0, 1)
    assert sp.plan("b").flow == Point.of(1, 0)
    assert sp.plan("c").flow == Point.of(-1, -1)
    assert not any(p.stationary for p in sp.streams)

    # E.2.4: all stream increments are (1,1); two faces per endpoint
    for name in ("a", "b", "c"):
        assert sp.plan(name).increment_s == Point.of(1, 1)
    size = 4
    assert sp.plan("a").first_s.evaluate({"col": -2, "row": 0, "n": size}) == Point.of(0, 2)
    assert sp.plan("a").first_s.evaluate({"col": 2, "row": 0, "n": size}) == Point.of(2, 0)
    assert sp.plan("a").last_s.evaluate({"col": -2, "row": 0, "n": size}) == Point.of(2, 4)
    assert sp.plan("b").first_s.evaluate({"col": 0, "row": 2, "n": size}) == Point.of(0, 2)
    assert sp.plan("c").first_s.evaluate({"col": 1, "row": 3, "n": size}) == Point.of(0, 2)
    # null pipe for c through the far corner
    assert sp.plan("c").first_s.evaluate({"col": 4, "row": -4, "n": size}) is None

    # E.2.6: corner buffers pass n+col+1 / n-col+1 of a, symmetric for b,
    # and nothing of c
    env = {"col": -1, "row": 3, "n": 3}
    assert not sp.in_computation_space(Point.of(-1, 3), {"n": 3})
    assert sp.plan("a").pass_amount.evaluate(env) == 3
    assert sp.plan("b").pass_amount.evaluate(env) == 1
    assert sp.plan("c").pass_amount.evaluate(env) is None


def check_e2_propagation(sp) -> None:
    """soak + count + drain == pipe length over the whole hexagon."""
    size = 3
    ps = sp.process_space({"n": size})
    for y in ps:
        binding = sp.bind(y, {"n": size})
        count = sp.count.evaluate(binding)
        if count is None:
            continue
        for plan in sp.streams:
            soak = plan.soak.evaluate(binding)
            drain = plan.drain.evaluate(binding)
            total = plan.pass_amount.evaluate(binding)
            assert soak + count + drain == total, (y, plan.name)


def test_bench_e2_compile(benchmark):
    program = matrix_product_program()
    array = matmul_design_e2()
    sp = benchmark(compile_systolic, program, array)
    check_e2_artifacts(sp)
    check_e2_propagation(sp)


def test_bench_e2_execute(benchmark, designs):
    prog, array, sp = designs["E2"]
    size = 4
    inputs = matmul_inputs(size, seed=7)
    oracle = run_sequential(prog, {"n": size}, inputs)

    final, stats = benchmark(lambda: execute(sp, {"n": size}, inputs))
    assert final == oracle
    side = 2 * size + 1
    hexagon = side * side - size * (size + 1)
    # hexagon computes; the rest of the square buffers (one process/stream)
    assert stats.process_count >= hexagon


@pytest.mark.parametrize("capacity", [0, 1])
def test_bench_e2_capacity(benchmark, designs, capacity):
    """Pure rendezvous vs size-1 links: same results, measurable timing."""
    prog, array, sp = designs["E2"]
    size = 3
    inputs = matmul_inputs(size, seed=5)
    oracle = run_sequential(prog, {"n": size}, inputs)
    final, _ = benchmark(
        lambda: execute(sp, {"n": size}, inputs, channel_capacity=capacity)
    )
    assert final == oracle
