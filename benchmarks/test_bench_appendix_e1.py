"""Experiment E1 -- Appendix E.1: matrix product, place.(i,j,k) = (i, j).

The simple 2-d design ("collapse the inner loop"): stationary c with
loading vector (1,0), moving a/b with no soaking or draining, and the
summary table of E.1.4 for the i/o repeaters.
"""

from benchmarks.conftest import matmul_inputs
from repro import compile_systolic, execute, run_sequential
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import matmul_design_e1, matrix_product_program

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


def check_e1_artifacts(sp) -> None:
    assert sp.ps_min == AffineVec.of(0, 0)
    assert sp.ps_max == AffineVec.of(n, n)
    assert sp.increment == Point.of(0, 0, 1)
    assert sp.simple
    assert sp.first.collapse() == AffineVec.of(col, row, 0)
    assert sp.last.collapse() == AffineVec.of(col, row, n)
    assert sp.count.collapse() == n + 1

    # flows (E.1.3)
    assert sp.plan("a").flow == Point.of(0, 1)
    assert sp.plan("b").flow == Point.of(1, 0)
    assert sp.plan("c").stationary

    # the E.1.4 summary table
    assert sp.plan("a").increment_s == Point.of(0, 1)
    assert sp.plan("b").increment_s == Point.of(1, 0)
    assert sp.plan("c").increment_s == Point.of(1, 0)
    assert sp.plan("a").first_s.collapse() == AffineVec.of(col, 0)
    assert sp.plan("a").last_s.collapse() == AffineVec.of(col, n)
    assert sp.plan("b").first_s.collapse() == AffineVec.of(0, row)
    assert sp.plan("b").last_s.collapse() == AffineVec.of(n, row)
    assert sp.plan("c").first_s.collapse() == AffineVec.of(0, row)
    assert sp.plan("c").last_s.collapse() == AffineVec.of(n, row)

    # E.1.5: no soaking or draining for the moving streams; c loads n-col
    # and recovers col
    assert sp.plan("a").soak.collapse() == Affine.constant(0)
    assert sp.plan("a").drain.collapse() == Affine.constant(0)
    assert sp.plan("b").soak.collapse() == Affine.constant(0)
    assert sp.plan("b").drain.collapse() == Affine.constant(0)
    assert sp.plan("c").drain.collapse() == n - col
    assert sp.plan("c").soak.collapse() == col

    # E.1.6: no buffers anywhere
    assert all(p.internal_buffers() == 0 for p in sp.streams)


def test_bench_e1_compile(benchmark):
    program = matrix_product_program()
    array = matmul_design_e1()
    sp = benchmark(compile_systolic, program, array)
    check_e1_artifacts(sp)


def test_bench_e1_execute(benchmark, designs):
    prog, array, sp = designs["E1"]
    size = 5
    inputs = matmul_inputs(size, seed=1)
    oracle = run_sequential(prog, {"n": size}, inputs)

    final, stats = benchmark(lambda: execute(sp, {"n": size}, inputs))
    assert final == oracle
    # (n+1)^2 computation processes, no buffers
    assert stats.process_count == (size + 1) ** 2 + 3 * 2 * (size + 1)
