"""Experiment B -- Appendix B: Theorems 1-11 as executable checks.

Benchmarks the exhaustive verification of every theorem statement over the
instantiated index/process spaces for each of the four designs.
"""

import pytest

from repro.verify import check_all_theorems


@pytest.mark.parametrize("exp_id", ["D1", "D2", "E1", "E2"])
def test_bench_theorems(benchmark, designs, exp_id):
    prog, array, _sp = designs[exp_id]
    verified = benchmark(check_all_theorems, prog, array, {"n": 3})
    assert verified == [1, 3, 4, 5, 6, 7, 8, 9, 10, 11]
