"""Experiment D1 -- Appendix D.1: polynomial product, place.(i,j) = i.

Reproduces every closed form the paper prints for the first design and the
final program's behaviour:

* PS basis 0..n; increment (0,1); first (col,0); last (col,n); count n+1;
* flows: a stationary, b = 1/2 (one latch per link), c = 1;
* i/o repeaters {0 n 1}, {0 n 1}, {0 2n 1};
* soak/drain: b 0/0, c col/(n-col); a loads n-col and recovers col;
* end-to-end execution equal to the sequential oracle.
"""

from fractions import Fraction

from benchmarks.conftest import poly_inputs
from repro import compile_systolic, execute, run_sequential
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import polynomial_product_program, polyprod_design_d1

n = Affine.var("n")
col = Affine.var("col")


def check_d1_artifacts(sp) -> None:
    assert sp.ps_min == AffineVec.of(0) and sp.ps_max == AffineVec.of(n)
    assert sp.increment == Point.of(0, 1)
    assert sp.simple
    assert sp.first.collapse() == AffineVec.of(col, 0)
    assert sp.last.collapse() == AffineVec.of(col, n)
    assert sp.count.collapse() == n + 1

    assert sp.plan("a").stationary
    assert sp.plan("b").flow == Point.of(Fraction(1, 2))
    assert sp.plan("b").internal_buffers() == 1
    assert sp.plan("c").flow == Point.of(1)

    assert sp.plan("a").first_s.collapse() == AffineVec.of(0)
    assert sp.plan("a").last_s.collapse() == AffineVec.of(n)
    assert sp.plan("c").last_s.collapse() == AffineVec.of(2 * n)

    # soak/drain closed forms (D.1.5)
    assert sp.plan("b").soak.collapse() == Affine.constant(0)
    assert sp.plan("b").drain.collapse() == Affine.constant(0)
    assert sp.plan("c").soak.collapse() == col
    assert sp.plan("c").drain.collapse() == n - col
    assert sp.plan("a").drain.collapse() == n - col  # loading passes
    assert sp.plan("a").soak.collapse() == col  # recovery passes


def test_bench_d1_compile(benchmark):
    """Time the full symbolic derivation; assert the paper's closed forms."""
    program = polynomial_product_program()
    array = polyprod_design_d1()
    sp = benchmark(compile_systolic, program, array)
    check_d1_artifacts(sp)


def test_bench_d1_execute(benchmark, designs):
    """Time an n=8 execution; assert oracle equality each round."""
    prog, array, sp = designs["D1"]
    size = 8
    inputs = poly_inputs(size)
    oracle = run_sequential(prog, {"n": size}, inputs)

    def run():
        final, stats = execute(sp, {"n": size}, inputs)
        return final, stats

    final, stats = benchmark(run)
    assert final == oracle
    # shape: a linear array of n+1 processes finishing in O(n) virtual time
    assert stats.makespan <= 14 * size
