"""Experiment X3 -- simulator throughput scaling.

Measures the substrate itself: how the deterministic scheduler scales with
network size, and that message counts match the analytic totals implied by
Eq. 10 (every pipe moves its whole element set through every link).
"""

import pytest

from benchmarks.conftest import inputs_for, matmul_inputs, poly_inputs
from repro import build_network, execute


@pytest.mark.parametrize("size", [4, 8, 16])
def test_bench_simulation_polyprod(benchmark, designs, size):
    prog, array, sp = designs["D1"]
    inputs = poly_inputs(size)
    final, stats = benchmark(lambda: execute(sp, {"n": size}, inputs))
    # message count is quadratic in n for the linear array:
    # each of the n+1 processes forwards O(n) elements of each stream
    assert stats.total_messages > (size + 1) ** 2


@pytest.mark.parametrize("size", [2, 4, 6])
def test_bench_simulation_matmul_e2(benchmark, designs, size):
    prog, array, sp = designs["E2"]
    inputs = matmul_inputs(size)
    final, stats = benchmark(lambda: execute(sp, {"n": size}, inputs))
    assert stats.total_messages > 0


def test_message_totals_match_eq10(designs):
    """Analytic cross-check: messages on each pipe's head link equal the
    Eq. 10 pass amount of that pipe."""
    prog, array, sp = designs["E2"]
    size = 3
    net = build_network(sp, {"n": size}, matmul_inputs(size))
    net.run()
    for chan in net.scheduler._channels:
        if "_chan[" in chan.name and "_in->" in chan.name:
            stream = chan.name.split("_chan[")[0]
            # head link: carried exactly the pipe total sent by the input
            plan = sp.plan(stream)
            # recover the pipe start point from the channel name suffix
            point_text = chan.name.split("->")[-1].rstrip("]")
            coords = tuple(int(c) for c in point_text.strip("()").split(","))
            from repro.geometry import Point

            binding = sp.bind(Point(coords), {"n": size})
            expected = plan.pass_amount.evaluate(binding)
            expected = 0 if expected is None else int(expected)
            assert chan.messages_carried == expected, chan.name


def test_bench_network_build_only(benchmark, designs):
    """Network construction cost, separated from execution."""
    prog, array, sp = designs["E2"]
    size = 4
    inputs = matmul_inputs(size)
    net = benchmark(lambda: build_network(sp, {"n": size}, inputs))
    assert net.node_counts["compute"] > 0
