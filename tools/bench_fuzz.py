#!/usr/bin/env python3
"""Benchmark the differential fuzzer's throughput and shrinker.

Writes ``BENCH_fuzz.json`` at the repository root: instances checked per
second for a clean campaign, the aggregate and mean per-check wall-clock
(which check dominates the budget), and a shrinker section timing the
minimization of a planted ``drain_plus_one`` bug (steps taken, loop count
of the reproducer).

Usage:
    PYTHONPATH=src python tools/bench_fuzz.py [--check] [-o OUT.json]
        [--seed N] [--iterations N]

``--check`` exits non-zero unless the clean campaign finds nothing AND its
warm throughput meets the ``--min-instances-per-s`` floor AND the planted
bug is caught and shrunk to a reproducer of at most 2 loops (the acceptance
bar for the harness + shrinker) AND every generator stratum (negative-step,
minmax-bound, multi-branch) actually generated instances and ran clean.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))

from repro.fuzz import (
    HarnessConfig,
    fuzz_run,
    generate_instance,
    run_instance,
    shrink_instance,
)

SHRINK_SEEDS = (0, 1, 2)

#: feature strata the weekly campaign (and --check) must each cover
STRATA = ("negative_step", "minmax_bound", "multi_branch")


def bench_campaign(seed: int, iterations: int) -> dict:
    """Time the campaign twice: once cold, once at steady state.

    The first run pays one-off per-process costs (symbolic derivation of
    each fresh design, interning tables, the pygen runner compile); a deep
    campaign amortizes those over hundreds of instances, so the *warm*
    second run is the headline ``instances_per_s`` -- it is what marginal
    throughput looks like mid-campaign.  The cold numbers are kept in the
    report (``cold_elapsed_s`` / ``cold_instances_per_s``) so cache
    regressions stay visible too.
    """
    cold = fuzz_run(seed=seed, iterations=iterations, shrink=False)
    summary = fuzz_run(seed=seed, iterations=iterations, shrink=False)
    per_check = {
        name: {
            "runs": summary.check_counts.get(name, 0),
            "total_s": round(seconds, 6),
            "mean_ms": round(
                1000.0 * seconds / max(1, summary.check_counts.get(name, 1)), 3
            ),
        }
        for name, seconds in sorted(summary.check_seconds.items())
    }
    return {
        "campaign": summary.row(),
        "instances_per_s": round(summary.generated / max(summary.elapsed_s, 1e-9), 2),
        "cold_elapsed_s": round(cold.elapsed_s, 6),
        "cold_instances_per_s": round(
            cold.generated / max(cold.elapsed_s, 1e-9), 2
        ),
        "phase_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(summary.phase_seconds.items())
        },
        "per_check": per_check,
        "clean": summary.ok and cold.ok,
    }


def bench_strata(seed: int, iterations: int) -> list[dict]:
    """One mini-campaign per feature stratum; proves each is reachable."""
    rows = []
    for offset, feature in enumerate(STRATA, start=1):
        summary = fuzz_run(
            seed=seed + 1000 * offset,
            iterations=iterations,
            shrink=False,
            feature=feature,
        )
        rows.append(
            {
                "feature": feature,
                "campaign": summary.row(),
                "generated": summary.generated,
                "tagged": summary.feature_counts.get(feature, 0),
                "clean": summary.ok,
            }
        )
    return rows


def bench_shrink(seed: int) -> dict | None:
    instance = generate_instance(seed)
    if instance is None:
        return None
    config = HarnessConfig(mutate="drain_plus_one")
    report = run_instance(instance, config)
    if report.ok:
        return {"seed": seed, "caught": False}
    t0 = time.perf_counter()
    shrunk, final_report = shrink_instance(instance, config)
    shrink_s = time.perf_counter() - t0
    return {
        "seed": seed,
        "caught": True,
        "failed_checks": sorted(report.failed_checks),
        "shrink_s": round(shrink_s, 6),
        "original_loops": instance.program.r,
        "shrunk_loops": shrunk.program.r,
        "shrunk_streams": len(shrunk.program.streams),
        "shrunk_source_lines": len(shrunk.program.to_source().splitlines()),
        "still_failing": sorted(final_report.failed_checks),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless clean campaign + planted bug "
                             "shrunk to <= 2 loops")
    parser.add_argument("--min-instances-per-s", type=float, default=30.0,
                        metavar="RATE",
                        help="with --check, fail if warm campaign throughput "
                             "drops below this floor (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("-o", "--output",
                        default=str(_ROOT / "BENCH_fuzz.json"))
    args = parser.parse_args(argv)

    campaign = bench_campaign(args.seed, args.iterations)
    print(f"campaign seed {args.seed}: "
          f"{campaign['campaign']['generated']} instances in "
          f"{campaign['campaign']['elapsed_s']}s warm "
          f"({campaign['instances_per_s']}/s; cold "
          f"{campaign['cold_elapsed_s']}s, "
          f"{campaign['cold_instances_per_s']}/s), "
          f"{'clean' if campaign['clean'] else 'FAILURES'}")
    phases = ", ".join(f"{name} {seconds:.3f}s"
                       for name, seconds in campaign["phase_seconds"].items())
    print(f"  phases: {phases}")
    for name, row in campaign["per_check"].items():
        print(f"  {name:<16} x{row['runs']:<4} {row['total_s']:8.3f}s total  "
              f"{row['mean_ms']:8.2f}ms mean")

    strata = bench_strata(args.seed, max(5, args.iterations // 4))
    for row in strata:
        print(f"stratum {row['feature']:<14} {row['tagged']}/{row['generated']} "
              f"tagged, {'clean' if row['clean'] else 'FAILURES'}")

    shrinks = [s for s in (bench_shrink(s) for s in SHRINK_SEEDS) if s]
    for row in shrinks:
        if row["caught"]:
            print(f"shrink seed {row['seed']}: drain_plus_one caught by "
                  f"{row['failed_checks']}, minimized "
                  f"{row['original_loops']} -> {row['shrunk_loops']} loops "
                  f"in {row['shrink_s']:.2f}s")
        else:
            print(f"shrink seed {row['seed']}: planted bug NOT caught")

    report = {
        "units": "seconds",
        "campaign": campaign,
        "strata": strata,
        "shrink_drain_plus_one": shrinks,
    }
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        if not campaign["clean"]:
            print("FAIL: clean campaign reported failures", file=sys.stderr)
            return 1
        if campaign["instances_per_s"] < args.min_instances_per_s:
            print(f"FAIL: warm throughput {campaign['instances_per_s']}/s "
                  f"below the {args.min_instances_per_s}/s floor",
                  file=sys.stderr)
            return 1
        thin = [s["feature"] for s in strata if not s["tagged"] or not s["clean"]]
        if thin:
            print(f"FAIL: strata empty or not clean: {thin}", file=sys.stderr)
            return 1
        bad = [s for s in shrinks
               if not s["caught"] or s["shrunk_loops"] > 2]
        if not shrinks or bad:
            print(f"FAIL: planted bug not caught/shrunk to <= 2 loops: {bad}",
                  file=sys.stderr)
            return 1
        print(f"check passed: clean campaign at "
              f"{campaign['instances_per_s']}/s "
              f"(floor {args.min_instances_per_s}/s); all strata covered; "
              "planted bug caught and shrunk to <= 2 loops")
    return 0


if __name__ == "__main__":
    sys.exit(main())
