#!/usr/bin/env python3
"""Benchmark the vectorized NumPy wavefront backend (npgen).

Writes ``BENCH_npgen.json`` at the repository root:

* ``oracle`` -- bit-equality of npgen against the sequential oracle for
  every paper design at small sizes (the correctness gate);
* ``vs_pygen`` -- warm npgen against warm pygen at growing sizes (the
  whole point of the backend: one array op per wavefront instead of one
  Python bytecode pass per channel operation);
* ``large`` -- npgen alone at sizes the scalar backends cannot reach
  (cold = schedule build + run, warm = run only);
* ``batch`` -- amortization of one cached schedule over B independent
  input sets in a single pass.

Usage:
    PYTHONPATH=src python tools/bench_npgen.py [--check] [-o OUT.json]

``--check`` exits non-zero unless every oracle comparison is bit-exact,
npgen beats warm pygen by >= 10x at n=64, and the n=256 warm run stays
under 5 seconds.  Exits 0 with a note (and writes a stub artifact) when
NumPy is not installed, so CI legs without the extra pass gracefully.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:  # for `benchmarks.conftest` from any cwd
    sys.path.insert(0, str(_ROOT))

from benchmarks.conftest import inputs_for
from repro import compile_systolic, run_sequential
from repro.systolic import all_paper_designs
from repro.target.npgen import HAVE_NUMPY, execute_numpy, execute_numpy_batch
from repro.target.pygen import execute_python

ORACLE_SIZES = (2, 4, 8)
VS_PYGEN_SIZES = (16, 32, 64)
LARGE_SIZES = (128, 256, 512)
BATCH_N = 64
BATCH_SIZES = (1, 8, 32)
REPEATS = 3

MIN_SPEEDUP_AT_64 = 10.0
MAX_LARGE_WARM_S = 5.0


def _best(fn, *args, repeats=REPEATS, **kwargs):
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless oracle-exact, >=10x vs pygen at "
                             "n=64, and n=256 under 5s")
    parser.add_argument("-o", "--output",
                        default=str(_ROOT / "BENCH_npgen.json"))
    args = parser.parse_args(argv)
    out = pathlib.Path(args.output)

    if not HAVE_NUMPY:
        out.write_text(json.dumps({"skipped": "numpy not installed"},
                                  indent=2) + "\n")
        print("npgen benchmark skipped: numpy not installed "
              "(install the extra: pip install repro[np])")
        return 0

    designs = {e: (p, a) for e, p, a in all_paper_designs()}

    # -- correctness gate: bit-equality vs the oracle ---------------------
    oracle_rows = []
    for exp_id, (prog, arr) in designs.items():
        sp = compile_systolic(prog, arr)
        for n in ORACLE_SIZES:
            env = {"n": n}
            inputs = inputs_for(exp_id, n)
            want = {v: {tuple(k): x for k, x in m.items()}
                    for v, m in run_sequential(prog, env, inputs).items()}
            got = execute_numpy(sp, env, inputs)
            oracle_rows.append({"design": exp_id, "n": n,
                                "oracle_match": got == want})
    ok = all(r["oracle_match"] for r in oracle_rows)
    print(f"oracle: {len(oracle_rows)} runs, "
          f"{'all bit-identical' if ok else 'MISMATCH'}")

    # -- vs pygen (both warm) --------------------------------------------
    vs_rows = []
    for exp_id in ("D1", "E2"):
        prog, arr = designs[exp_id]
        sp = compile_systolic(prog, arr)
        for n in VS_PYGEN_SIZES:
            env = {"n": n}
            inputs = inputs_for(exp_id, n)
            execute_python(sp, env, inputs)   # warm the module cache
            execute_numpy(sp, env, inputs)    # warm the schedule cache
            pygen_s, pygen_final = _best(execute_python, sp, env, inputs)
            npgen_s, npgen_final = _best(execute_numpy, sp, env, inputs)
            vs_rows.append({
                "design": exp_id, "n": n,
                "pygen_warm_s": round(pygen_s, 6),
                "npgen_warm_s": round(npgen_s, 6),
                "speedup": round(pygen_s / npgen_s, 2),
                "oracle_match": npgen_final == pygen_final,
            })
            print(f"{exp_id} n={n}: pygen {pygen_s:.4f}s  "
                  f"npgen {npgen_s:.4f}s  {pygen_s / npgen_s:7.1f}x  "
                  f"{'ok' if vs_rows[-1]['oracle_match'] else 'MISMATCH'}")

    # -- large sizes (npgen only) ----------------------------------------
    large_rows = []
    prog, arr = designs["D1"]
    sp = compile_systolic(prog, arr)
    for n in LARGE_SIZES:
        env = {"n": n}
        inputs = inputs_for("D1", n)
        cold_s, _ = _best(execute_numpy, sp, env, inputs, repeats=1,
                          use_cache=False)
        execute_numpy(sp, env, inputs)  # populate the schedule cache
        warm_s, _ = _best(execute_numpy, sp, env, inputs)
        large_rows.append({"design": "D1", "n": n,
                           "npgen_cold_s": round(cold_s, 6),
                           "npgen_warm_s": round(warm_s, 6)})
        print(f"D1 n={n}: cold {cold_s:.4f}s  warm {warm_s:.4f}s")

    # -- batch amortization ----------------------------------------------
    batch_rows = []
    env = {"n": BATCH_N}
    for b in BATCH_SIZES:
        batch = [inputs_for("D1", BATCH_N, seed=s) for s in range(b)]
        execute_numpy_batch(sp, env, batch)  # warm
        total_s, _ = _best(execute_numpy_batch, sp, env, batch)
        batch_rows.append({"design": "D1", "n": BATCH_N, "batch": b,
                           "total_s": round(total_s, 6),
                           "per_input_s": round(total_s / b, 6)})
        print(f"D1 n={BATCH_N} batch={b}: total {total_s:.4f}s  "
              f"per input {total_s / b:.6f}s")

    report = {
        "units": "seconds (best of %d)" % REPEATS,
        "oracle": oracle_rows,
        "vs_pygen": vs_rows,
        "large": large_rows,
        "batch": batch_rows,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if not ok or not all(r["oracle_match"] for r in vs_rows):
        print("FAIL: oracle mismatch", file=sys.stderr)
        return 1
    if args.check:
        gate = [r for r in vs_rows if r["n"] == 64]
        if not gate or max(r["speedup"] for r in gate) < MIN_SPEEDUP_AT_64:
            print(f"FAIL: npgen speedup vs pygen at n=64 below "
                  f"{MIN_SPEEDUP_AT_64}x: {gate}", file=sys.stderr)
            return 1
        big = [r for r in large_rows if r["n"] == 256]
        if not big or big[0]["npgen_warm_s"] > MAX_LARGE_WARM_S:
            print(f"FAIL: n=256 warm run over {MAX_LARGE_WARM_S}s: {big}",
                  file=sys.stderr)
            return 1
        print(f"check passed: >= {MIN_SPEEDUP_AT_64:.0f}x vs pygen at n=64, "
              f"n=256 under {MAX_LARGE_WARM_S:.0f}s, all runs bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
