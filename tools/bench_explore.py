#!/usr/bin/env python3
"""Benchmark design-space exploration: serial vs parallel vs batched sweep.

Writes ``BENCH_explore.json`` at the repository root:

* ``explore`` -- the design space (E.2's matmul space by default: step
  ``(1,1,1)``, place bound 1, 228 candidates) explored serially and with a
  worker pool at each requested job count: per-stage timings
  (synthesis / compile+cost / total), parallel speedup, and an
  order-stability verdict (the parallel ranked table must equal the serial
  one exactly).  Since the single-CPU fallback landed, the recorded
  ``effective_jobs`` shows whether the pool actually ran or the sweep fell
  back to the serial path (1-CPU containers).
* ``multi_size_sweep`` -- the same space costed at several sizes: one full
  exploration per size (recompiling every design each time, what a naive
  caller does) vs one batched sweep that compiles each design once and
  evaluates its closed forms at every size.  The batching speedup is
  algorithmic, so it shows up even on a single core.
* ``caches`` -- intern / compiled-form / memo hit counters from
  ``repro.profiling`` (the attribution data behind the cost-stage speedup).
* ``cpu_count`` -- recorded so parallel speedups can be interpreted: a
  1-CPU container cannot beat serial with process parallelism, a 4-core CI
  runner can.

Usage:
    PYTHONPATH=src python tools/bench_explore.py [--quick] [--check] [-o OUT]
    PYTHONPATH=src python tools/bench_explore.py --golden-only \\
        --golden benchmarks/golden_explore_e2_n4.json

``--quick`` switches to the small polynomial-product space (CI smoke).
``--check`` exits non-zero unless every parallel table matches the serial
one and the batched sweep beats per-size re-exploration.
``--golden PATH`` additionally compares the serial ranked table against the
committed golden table -- the correctness gate for all caching layers;
``--write-golden`` refreshes that file, and ``--golden-only`` runs just the
serial sweep + comparison (fast CI guard).
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = _ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import profiling
from repro.geometry.linalg import Matrix
from repro.parallel import sweep_designs
from repro.systolic.designs import (
    matrix_product_program,
    polynomial_product_program,
)


def _sweep(program, step, envs, jobs, force_pool=False):
    t0 = time.perf_counter()
    result = sweep_designs(
        program, step, envs, bound=1, jobs=jobs, force_pool=force_pool
    )
    return time.perf_counter() - t0, result


def _golden_payload(space, n, table):
    return {"space": space, "n": n, "table": [c.row() for c in table]}


def _check_golden(path: pathlib.Path, space, n, table) -> bool:
    golden = json.loads(path.read_text())
    current = _golden_payload(space, n, table)
    if golden == current:
        print(f"golden table ok: {len(current['table'])} designs match {path}")
        return True
    print(f"FAIL: ranked table differs from golden {path}", file=sys.stderr)
    for i, (want, got) in enumerate(zip(golden.get("table", []),
                                        current["table"])):
        if want != got:
            print(f"  first differing row {i}:\n    golden  {want}\n"
                  f"    current {got}", file=sys.stderr)
            break
    else:
        print(f"  row count: golden {len(golden.get('table', []))} vs "
              f"current {len(current['table'])}", file=sys.stderr)
    return False


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small polyprod space (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="fail on table mismatch or no batching win")
    parser.add_argument("--jobs", type=int, action="append", default=None,
                        help="job counts to measure (repeatable; default 2,4)")
    parser.add_argument("--golden", default=None,
                        help="golden ranked-table JSON to compare against")
    parser.add_argument("--write-golden", action="store_true",
                        help="(re)write the --golden file from this run")
    parser.add_argument("--golden-only", action="store_true",
                        help="serial sweep + golden comparison only")
    parser.add_argument("-o", "--output",
                        default=str(_ROOT / "BENCH_explore.json"))
    args = parser.parse_args(argv)

    if args.quick:
        program = polynomial_product_program()
        step = Matrix([[2, 1]])
        space = "polyprod: step (2,1), place bound 1"
        explore_n, sweep_ns = 5, (3, 5)
    else:
        program = matrix_product_program()
        step = Matrix([[1, 1, 1]])
        space = "E2: matmul step (1,1,1), place bound 1"
        explore_n, sweep_ns = 4, (3, 4)
    job_counts = args.jobs or [2, 4]
    golden_path = pathlib.Path(args.golden) if args.golden else None

    # -- serial vs parallel on one size -----------------------------------
    env = {"n": explore_n}
    serial_s, serial = _sweep(program, step, [env], jobs=1)
    serial_table = serial.costs_at(env)
    print(f"{space} at n={explore_n}: serial {serial_s:.2f}s "
          f"({serial.timings.candidates} candidates, "
          f"{serial.timings.compiled} compilable)")

    if golden_path is not None and args.write_golden:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(
            _golden_payload(space, explore_n, serial_table), indent=2) + "\n")
        print(f"wrote golden table {golden_path}")

    golden_ok = True
    if golden_path is not None and not args.write_golden:
        golden_ok = _check_golden(golden_path, space, explore_n, serial_table)

    if args.golden_only:
        return 0 if golden_ok else 1

    parallel_rows = []
    tables_match = True
    for jobs in job_counts:
        par_s, par = _sweep(program, step, [env], jobs=jobs)
        matches = par.costs_at(env) == serial_table
        tables_match &= matches
        effective = par.timings.jobs
        parallel_rows.append({
            "jobs": jobs,
            "effective_jobs": effective,
            "timings": par.timings.row(),
            "total_s": round(par_s, 6),
            "speedup_vs_serial": round(serial_s / par_s, 2),
            "table_matches_serial": matches,
        })
        note = "" if effective == jobs else f"  (fell back to {effective})"
        print(f"  jobs={jobs}: {par_s:.2f}s  "
              f"{serial_s / par_s:4.2f}x  "
              f"{'ok' if matches else 'TABLE MISMATCH'}{note}")

    # -- per-size re-exploration vs one batched multi-size sweep ----------
    sweep_envs = [{"n": n} for n in sweep_ns]
    naive_s = 0.0
    naive_tables = []
    for e in sweep_envs:
        dt, res = _sweep(program, step, [e], jobs=1)
        naive_s += dt
        naive_tables.append(res.costs_at(e))
    batched_s, batched = _sweep(program, step, sweep_envs, jobs=1)
    batched_match = all(
        batched.costs_at(e) == table
        for e, table in zip(sweep_envs, naive_tables)
    )
    sweep_speedup = naive_s / batched_s
    print(f"multi-size sweep n={list(sweep_ns)}: per-size {naive_s:.2f}s, "
          f"batched {batched_s:.2f}s  {sweep_speedup:4.2f}x  "
          f"{'ok' if batched_match else 'TABLE MISMATCH'}")

    report = {
        "units": "seconds",
        "cpu_count": os.cpu_count(),
        "space": space,
        "explore": {
            "n": explore_n,
            "candidates": serial.timings.candidates,
            "compilable": serial.timings.compiled,
            "designs_costed": len(serial_table),
            "serial": {
                "timings": serial.timings.row(),
                "total_s": round(serial_s, 6),
            },
            "parallel": parallel_rows,
        },
        "multi_size_sweep": {
            "sizes": list(sweep_ns),
            "per_size_serial_s": round(naive_s, 6),
            "batched_s": round(batched_s, 6),
            "speedup": round(sweep_speedup, 2),
            "tables_match": batched_match,
        },
        "caches": profiling.snapshot(),
    }
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        if not tables_match or not batched_match or not golden_ok:
            print("FAIL: parallel/batched/golden table mismatch",
                  file=sys.stderr)
            return 1
        if sweep_speedup <= 1.2:
            print(f"FAIL: batched sweep speedup {sweep_speedup:.2f}x <= 1.2x",
                  file=sys.stderr)
            return 1
        print("check passed: order-stable tables, batched sweep "
              f"{sweep_speedup:.2f}x over per-size re-exploration")
    return 0


if __name__ == "__main__":
    sys.exit(main())
