#!/usr/bin/env python3
"""Benchmark the compile service daemon end to end.

Boots a :class:`CompileService` in-process on an ephemeral loopback port
and measures it over real sockets with the stdlib JSON client.  Writes
``BENCH_service.json`` at the repository root:

- warm-hit throughput: sequential ``/compile`` requests answered from the
  design store (the steady-state cost of one request round-trip),
- concurrent throughput over K connections, with the daemon-side p50/p95
  latency histogram for the run,
- a coalescing proof: N concurrent identical compiles of a cleared design
  must cost exactly one derivation (store counters),
- bit-identity: ``/compile`` summaries and emitted paper text, ``/verify``
  verdicts and ``/execute`` result states for all four paper designs must
  equal the serial library path the CLI uses.

Usage:
    PYTHONPATH=src python tools/bench_service.py [--check] [-o OUT.json]
        [--requests N] [--clients N] [--min-hit-rps N]

``--check`` exits non-zero unless warm-hit throughput meets the
``--min-hit-rps`` floor (default 200/s), the coalescing proof holds, and
every bit-identity comparison matches.
"""
from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
for p in (str(_ROOT), str(_SRC)):
    if p not in sys.path:
        sys.path.insert(0, p)

from repro.core.scheme import compile_systolic
from repro.lang.parser import parse_program
from repro.service import CompileService, ServiceClient, ServiceConfig
from repro.service.daemon import state_to_json
from repro.systolic.designs import all_paper_designs
from repro.target.build import build_target_program
from repro.target.pretty import render_paper
from repro.verify.equivalence import _execute_backend, random_inputs

SIZES = {"D1": {"n": 4}, "D2": {"n": 4}, "E1": {"n": 3}, "E2": {"n": 3}}


def design_payload(array) -> dict:
    return {
        "step": [list(r) for r in array.step.rows],
        "place": [list(r) for r in array.place.rows],
        "loading": {
            name: [int(c) for c in vec]
            for name, vec in sorted(array.loading_vectors.items())
        },
        "name": array.name,
    }


async def bench_warm_hits(client, source, design, requests: int) -> dict:
    """Sequential compile requests answered from the design store."""
    status, first = await client.compile(source, design)
    assert status == 200, first
    # warm-up round-trips before timing
    for _ in range(10):
        await client.compile(source, design)
    started = time.perf_counter()
    for _ in range(requests):
        status, payload = await client.compile(source, design)
        assert status == 200
        assert payload["cached"] is True
    elapsed = time.perf_counter() - started
    return {
        "requests": requests,
        "elapsed_s": round(elapsed, 6),
        "requests_per_s": round(requests / elapsed, 1),
    }


async def bench_concurrent(service, source, design, clients: int, requests: int) -> dict:
    """Aggregate throughput over ``clients`` keep-alive connections."""
    pool = [ServiceClient("127.0.0.1", service.port) for _ in range(clients)]
    per_client = max(1, requests // clients)

    async def worker(client):
        for _ in range(per_client):
            status, _ = await client.compile(source, design)
            assert status == 200

    try:
        started = time.perf_counter()
        await asyncio.gather(*(worker(c) for c in pool))
        elapsed = time.perf_counter() - started
    finally:
        for client in pool:
            await client.close()
    total = per_client * clients
    latency = service.metrics.endpoints["compile"].latency
    return {
        "clients": clients,
        "requests": total,
        "elapsed_s": round(elapsed, 6),
        "requests_per_s": round(total / elapsed, 1),
        "daemon_p50_s": latency.quantile(0.50),
        "daemon_p95_s": latency.quantile(0.95),
    }


async def bench_coalescing(service, source, design, waiters: int) -> dict:
    """N concurrent identical compiles of a cleared design: one derivation."""
    service.store.clear()
    pool = [ServiceClient("127.0.0.1", service.port) for _ in range(waiters)]
    try:
        results = await asyncio.gather(
            *(c.compile(source, design) for c in pool)
        )
    finally:
        for client in pool:
            await client.close()
    snap = service.store.snapshot()
    return {
        "waiters": waiters,
        "statuses_ok": all(status == 200 for status, _ in results),
        "store_misses": snap["misses"],
        "store_coalesced": snap["coalesced"],
        "store_hits": snap["hits"],
        "one_derivation": snap["misses"] == 1
        and snap["hits"] + snap["coalesced"] == waiters - 1,
    }


async def bench_bit_identity(client) -> dict:
    """Service responses vs the serial library path the CLI drives."""
    designs = []
    for exp_id, program, array in all_paper_designs():
        env = SIZES[exp_id]
        source = program.to_source()
        design = design_payload(array)
        # the daemon parses the request source itself; mirror that exactly
        parsed = parse_program(source)
        sp = compile_systolic(parsed, array)
        summary = sp.summary()
        emitted = render_paper(build_target_program(sp))
        inputs = random_inputs(parsed, env, seed=0)
        final, _ = _execute_backend("sim", sp, env, inputs, 1, partition=None)
        expected_state = state_to_json(final)

        status, compiled = await client.compile(source, design, emit="paper")
        compile_ok = (
            status == 200
            and compiled["summary"] == summary
            and compiled["emitted"] == emitted
        )
        status, verified = await client.verify(
            source=source, design=design, sizes=env
        )
        verify_ok = status == 200 and verified["matched"] is True
        status, executed = await client.execute(
            source=source, design=design, sizes=env, backend="sim"
        )
        execute_ok = (
            status == 200
            and executed["matched"] is True
            and executed["results"] == [expected_state]
        )
        designs.append(
            {
                "design": exp_id,
                "compile_identical": compile_ok,
                "verify_matched": verify_ok,
                "execute_identical": execute_ok,
            }
        )
    return {
        "designs": designs,
        "all_identical": all(
            d["compile_identical"] and d["verify_matched"] and d["execute_identical"]
            for d in designs
        ),
    }


async def run_benchmarks(args) -> dict:
    service = CompileService(ServiceConfig())
    await service.start()
    client = ServiceClient("127.0.0.1", service.port)
    try:
        _, program, array = all_paper_designs()[0]
        source = program.to_source()
        design = design_payload(array)
        warm = await bench_warm_hits(client, source, design, args.requests)
        concurrent = await bench_concurrent(
            service, source, design, args.clients, args.requests
        )
        coalescing = await bench_coalescing(service, source, design, 16)
        identity = await bench_bit_identity(client)
        stats = service.metrics.snapshot()
    finally:
        await client.close()
        await service.stop()
    return {
        "bench": "service",
        "python": platform.python_version(),
        "warm_hit": warm,
        "concurrent": concurrent,
        "coalescing": coalescing,
        "bit_identity": identity,
        "daemon": {
            "connections": stats["connections"],
            "endpoints": {
                name: m["requests"] for name, m in stats["endpoints"].items()
            },
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true", help="gate and exit non-zero on regression")
    parser.add_argument("-o", "--output", default=str(_ROOT / "BENCH_service.json"))
    parser.add_argument("--requests", type=int, default=400, help="timed requests per throughput section")
    parser.add_argument("--clients", type=int, default=8, help="connections for the concurrent section")
    parser.add_argument("--min-hit-rps", type=float, default=200.0, help="warm-hit requests/s floor for --check")
    args = parser.parse_args(argv)

    report = asyncio.run(run_benchmarks(args))
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    print(
        f"warm-hit {report['warm_hit']['requests_per_s']}/s, "
        f"concurrent {report['concurrent']['requests_per_s']}/s "
        f"over {report['concurrent']['clients']} clients, "
        f"daemon p95 {report['concurrent']['daemon_p95_s']}s"
    )

    if not args.check:
        return 0
    failures = []
    if report["warm_hit"]["requests_per_s"] < args.min_hit_rps:
        failures.append(
            f"warm-hit throughput {report['warm_hit']['requests_per_s']}/s "
            f"below the {args.min_hit_rps}/s floor"
        )
    if not report["coalescing"]["one_derivation"]:
        failures.append(
            "concurrent identical requests did not coalesce to one "
            f"derivation: {report['coalescing']}"
        )
    if not report["bit_identity"]["all_identical"]:
        failures.append(
            f"service responses diverged from the library path: "
            f"{report['bit_identity']['designs']}"
        )
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("all checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
