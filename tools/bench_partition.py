#!/usr/bin/env python3
"""Benchmark + acceptance gate for symbolic partitioned execution.

Writes ``BENCH_partition.json`` at the repository root:

* per paper design and array shape: the folded simulator's makespan and
  wall-clock, and the banded npgen executor's wall-clock next to the
  unbounded vectorized run -- each checked bit-identical to the
  sequential oracle;
* the compile-once/specialize-many story: cold symbolic compilation
  versus warm specialization to new problem sizes, with the cross-design
  memo's per-table hit/miss counters as proof that no per-band formula
  is ever re-derived;
* a fuzz sweep: ``--instances`` generated programs (default 120) folded
  onto a fixed 2-band array through the partitioned simulator and, when
  NumPy is present, the banded npgen executor -- every element of every
  variable compared against the oracle.

Usage:
    PYTHONPATH=src python tools/bench_partition.py [--check]
        [--instances N] [--seed N] [-o OUT.json]

``--check`` exits non-zero unless every design/shape/backend is
bit-identical, the fuzz sweep ran at least 100 schedulable instances
with zero mismatches, and the memo counters prove symbolic reuse.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))

from repro import compile_systolic, run_sequential
from repro.core.memo import MEMO
from repro.extensions.partition import (
    PARTITION_CACHE,
    PARTITION_MEMO_TABLE,
    compile_partition,
    partitioned_execute,
    partitioned_schedule,
)
from repro.fuzz import generate_instance
from repro.systolic.designs import all_paper_designs
from repro.target.npgen import HAVE_NUMPY
from repro.verify import random_inputs


def _identical(oracle, final, *, tuple_keys: bool) -> bool:
    for var, expected in oracle.items():
        got = final.get(var, {})
        for element, value in expected.items():
            key = tuple(int(c) for c in element) if tuple_keys else element
            if got.get(key) != value:
                return False
    return True


def bench_designs(n: int) -> list[dict]:
    rows = []
    for exp_id, prog, array in all_paper_designs():
        sp = compile_systolic(prog, array)
        env = {"n": n}
        inputs = random_inputs(prog, env, seed=0)
        oracle = run_sequential(prog, env, inputs)
        shapes = [(2,), (3,)]
        if len(sp.coords) >= 2:
            shapes.append((2, 2))
        for shape in shapes:
            t0 = time.perf_counter()
            final, stats = partitioned_execute(sp, env, inputs, shape=shape)
            sim_s = time.perf_counter() - t0
            row = {
                "design": exp_id,
                "shape": "x".join(str(s) for s in shape),
                "n": n,
                "sim_s": round(sim_s, 6),
                "makespan": stats.makespan,
                "sim_identical": _identical(oracle, final, tuple_keys=False),
            }
            if HAVE_NUMPY:
                from repro.target.npgen import (
                    execute_numpy_banded,
                    execute_numpy_batch,
                )

                t0 = time.perf_counter()
                unbounded = execute_numpy_batch(sp, env, [inputs])
                np_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                banded = execute_numpy_banded(sp, env, [inputs], shape=shape)
                banded_s = time.perf_counter() - t0
                row.update(
                    npgen_s=round(np_s, 6),
                    npgen_banded_s=round(banded_s, 6),
                    npgen_identical=(
                        banded == unbounded
                        and _identical(oracle, banded[0], tuple_keys=True)
                    ),
                )
            rows.append(row)
    return rows


def bench_specialization(sizes=(3, 4, 5, 6)) -> dict:
    """Cold symbolic compile vs warm specialization, memo counters as proof."""
    exp_id, prog, array = all_paper_designs()[2]  # E1
    sp = compile_systolic(prog, array)
    shape = (4,)
    PARTITION_CACHE.clear()
    MEMO.tables.pop(PARTITION_MEMO_TABLE, None)
    h0, m0 = MEMO.table_counters(PARTITION_MEMO_TABLE)

    t0 = time.perf_counter()
    compile_partition(sp, shape)
    cold_s = time.perf_counter() - t0

    warm = []
    for n in sizes:
        t0 = time.perf_counter()
        partitioned_schedule(sp, {"n": n}, shape)
        warm.append(time.perf_counter() - t0)
    h1, m1 = MEMO.table_counters(PARTITION_MEMO_TABLE)
    return {
        "design": exp_id,
        "shape": "x".join(str(s) for s in shape),
        "cold_compile_s": round(cold_s, 6),
        "warm_specialize_s": [round(s, 6) for s in warm],
        "memo_hits": h1 - h0,
        "memo_misses": m1 - m0,
        "reused": (m1 - m0) == 1 and (h1 - h0) == len(sizes),
    }


def bench_fuzz(seed: int, instances: int) -> dict:
    """Fold ``instances`` fuzz programs onto 2 bands; count mismatches."""
    if HAVE_NUMPY:
        from repro.target.npgen import execute_numpy_banded
        from repro.util.errors import BackendUnsupportedError

    ran = skipped = mismatches = npgen_ran = 0
    failures: list[dict] = []
    t_start = time.perf_counter()
    s = 0
    while ran < instances:
        instance = generate_instance(seed * 1_000_003 + s)
        s += 1
        if instance is None:
            skipped += 1
            continue
        ran += 1
        prog, env = instance.program, instance.env
        sp = compile_systolic(prog, instance.array)
        inputs = random_inputs(prog, env, seed=seed)
        oracle = run_sequential(prog, env, inputs)
        final, _stats = partitioned_execute(sp, env, inputs, shape=(2,))
        if not _identical(oracle, final, tuple_keys=False):
            mismatches += 1
            failures.append({"seed": seed * 1_000_003 + s - 1, "engine": "sim"})
            continue
        if HAVE_NUMPY:
            try:
                got = execute_numpy_banded(sp, env, [inputs], shape=(2,))[0]
            except BackendUnsupportedError:
                continue  # outside the integer value domain: not a fold bug
            npgen_ran += 1
            if not _identical(oracle, got, tuple_keys=True):
                mismatches += 1
                failures.append(
                    {"seed": seed * 1_000_003 + s - 1, "engine": "npgen"}
                )
    elapsed = time.perf_counter() - t_start
    return {
        "instances": ran,
        "skipped_unschedulable": skipped,
        "npgen_banded_runs": npgen_ran,
        "mismatches": mismatches,
        "failures": failures,
        "elapsed_s": round(elapsed, 3),
        "instances_per_s": round(ran / max(elapsed, 1e-9), 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless every fold is bit-identical and "
                             "the memo proves symbolic reuse")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--instances", type=int, default=120,
                        help="fuzz instances to fold (>= 100 for --check)")
    parser.add_argument("-n", type=int, default=5, help="paper-design size")
    parser.add_argument("-o", "--output",
                        default=str(_ROOT / "BENCH_partition.json"))
    args = parser.parse_args(argv)

    designs = bench_designs(args.n)
    for row in designs:
        flags = "sim=" + ("OK" if row["sim_identical"] else "MISMATCH")
        if "npgen_identical" in row:
            flags += ", npgen=" + ("OK" if row["npgen_identical"] else "MISMATCH")
        print(f"{row['design']:<3} array {row['shape']:<4} n={row['n']}: "
              f"makespan {row['makespan']}, {row['sim_s']*1000:.1f}ms sim "
              f"({flags})")

    spec = bench_specialization()
    print(f"specialize {spec['design']} array {spec['shape']}: "
          f"cold {spec['cold_compile_s']*1000:.2f}ms, warm "
          f"{[round(s*1000, 2) for s in spec['warm_specialize_s']]}ms, "
          f"memo {spec['memo_hits']} hits / {spec['memo_misses']} miss")

    fuzz = bench_fuzz(args.seed, args.instances)
    print(f"fuzz fold: {fuzz['instances']} instances "
          f"({fuzz['npgen_banded_runs']} banded npgen) in "
          f"{fuzz['elapsed_s']}s ({fuzz['instances_per_s']}/s), "
          f"{fuzz['mismatches']} mismatches")

    report = {
        "units": "seconds",
        "designs": designs,
        "specialization": spec,
        "fuzz": fuzz,
        "have_numpy": HAVE_NUMPY,
    }
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        bad = [r for r in designs
               if not r["sim_identical"] or not r.get("npgen_identical", True)]
        if bad:
            print(f"FAIL: non-identical folds: {bad}", file=sys.stderr)
            return 1
        if not spec["reused"]:
            print(f"FAIL: symbolic compilation was re-derived: {spec}",
                  file=sys.stderr)
            return 1
        if fuzz["instances"] < 100:
            print(f"FAIL: only {fuzz['instances']} fuzz instances (< 100)",
                  file=sys.stderr)
            return 1
        if fuzz["mismatches"]:
            print(f"FAIL: fuzz mismatches: {fuzz['failures']}", file=sys.stderr)
            return 1
        print(f"check passed: {len(designs)} design folds bit-identical; "
              f"symbolic compile reused across {len(spec['warm_specialize_s'])} "
              f"sizes; {fuzz['instances']} fuzz instances clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
