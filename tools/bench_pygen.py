#!/usr/bin/env python3
"""Benchmark the compiled Python backend against the coroutine simulator.

Writes ``BENCH_pygen.json`` at the repository root: for every paper design
and size, the simulator's build+run time, the generated program's cold
(render + compile + run) and warm (run only) times, the speedup, and an
oracle-equality verdict.  When NumPy is installed each row also carries
``npgen_warm_s`` (the vectorized wavefront backend, schedule already
cached), so the comparison table reads simulator / pygen warm / npgen warm
side by side; the key is simply absent on NumPy-less installs, and all
pre-existing keys keep their meaning for downstream consumers.  A
``sim_scaling`` section records simulator build+run times over a size
sweep for tracking hot-path regressions.

Usage:
    PYTHONPATH=src python tools/bench_pygen.py [--check] [-o OUT.json]

``--check`` exits non-zero unless every size >= 4 shows the generated
program beating the simulator (the acceptance bar for the fast path).
"""
from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:  # for `benchmarks.conftest` from any cwd
    sys.path.insert(0, str(_ROOT))

from benchmarks.conftest import inputs_for
from repro import compile_systolic, run_sequential
from repro.runtime import execute
from repro.systolic import all_paper_designs
from repro.target import execute_python, render_python
from repro.target.npgen import HAVE_NUMPY, execute_numpy
from repro.target.pygen import MODULE_CACHE

SIZES = (2, 3, 4, 5, 6)
SCALING_SIZES = (2, 4, 6, 8)
REPEATS = 3


def _best(fn, *args, repeats=REPEATS):
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless pygen beats the simulator at n >= 4")
    parser.add_argument("-o", "--output",
                        default=str(pathlib.Path(__file__).resolve().parent.parent
                                    / "BENCH_pygen.json"))
    args = parser.parse_args(argv)

    rows = []
    for exp_id, prog, arr in all_paper_designs():
        sp = compile_systolic(prog, arr)
        for n in SIZES:
            env = {"n": n}
            inputs = inputs_for(exp_id, n)
            oracle = run_sequential(prog, env, inputs)
            want = {v: {tuple(k): x for k, x in m.items()}
                    for v, m in oracle.items()}

            sim_s, (sim_final, _stats) = _best(execute, sp, env, inputs)
            sim_ok = {v: {tuple(k): x for k, x in m.items()}
                      for v, m in sim_final.items()} == want

            MODULE_CACHE.discard(render_python(sp))  # force a cold run
            cold_s, cold_final = _best(execute_python, sp, env, inputs,
                                       repeats=1)
            warm_s, warm_final = _best(execute_python, sp, env, inputs)
            pygen_ok = cold_final == want and warm_final == want

            row = {
                "design": exp_id, "n": n,
                "simulator_s": round(sim_s, 6),
                "pygen_cold_s": round(cold_s, 6),
                "pygen_warm_s": round(warm_s, 6),
                "speedup_warm": round(sim_s / warm_s, 2),
                "oracle_match": bool(sim_ok and pygen_ok),
            }
            np_cell = "      n/a"
            if HAVE_NUMPY:
                execute_numpy(sp, env, inputs)  # warm the schedule cache
                npgen_s, npgen_final = _best(execute_numpy, sp, env, inputs)
                row["npgen_warm_s"] = round(npgen_s, 6)
                row["oracle_match"] = bool(
                    row["oracle_match"] and npgen_final == want
                )
                np_cell = f"{npgen_s:.4f}s"
            rows.append(row)
            print(f"{exp_id} n={n}: sim {sim_s:.4f}s  "
                  f"pygen {warm_s:.4f}s (cold {cold_s:.4f}s)  "
                  f"npgen {np_cell}  "
                  f"{sim_s / warm_s:5.1f}x  "
                  f"{'ok' if rows[-1]['oracle_match'] else 'MISMATCH'}")

    print("\nbackend comparison (warm, seconds):")
    header = f"{'design':>6} {'n':>3} {'simulator':>10} {'pygen':>10} {'npgen':>10}"
    print(header)
    for r in rows:
        npgen = f"{r['npgen_warm_s']:.6f}" if "npgen_warm_s" in r else "n/a"
        print(f"{r['design']:>6} {r['n']:>3} {r['simulator_s']:>10.6f} "
              f"{r['pygen_warm_s']:>10.6f} {npgen:>10}")

    scaling = []
    for exp_id in ("D1", "E2"):
        prog, arr = next((p, a) for e, p, a in all_paper_designs()
                         if e == exp_id)
        sp = compile_systolic(prog, arr)
        for n in SCALING_SIZES:
            sim_s, _ = _best(execute, sp, {"n": n}, inputs_for(exp_id, n))
            scaling.append({"design": exp_id, "n": n,
                            "simulator_s": round(sim_s, 6)})

    report = {
        "units": "seconds (best of %d)" % REPEATS,
        "comparison": rows,
        "sim_scaling": scaling,
    }
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if not all(r["oracle_match"] for r in rows):
        print("FAIL: oracle mismatch", file=sys.stderr)
        return 1
    if args.check:
        slow = [r for r in rows if r["n"] >= 4 and r["speedup_warm"] <= 1.0]
        if slow:
            print(f"FAIL: pygen not faster at {slow}", file=sys.stderr)
            return 1
        print("check passed: pygen beats the simulator at every n >= 4")
    return 0


if __name__ == "__main__":
    sys.exit(main())
