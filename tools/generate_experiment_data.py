"""Regenerate the EXPERIMENTS.md data tables (paper-vs-measured)."""
from repro import compile_systolic, execute, run_sequential
from repro.analysis import parallelism_profile, format_table
from repro.systolic import all_paper_designs
from repro.verify import random_inputs, check_all_theorems
from repro.extensions import partitioned_execute

rows = []
for exp, prog, arr in all_paper_designs():
    sp = compile_systolic(prog, arr)
    sizes = (2, 4, 8) if exp.startswith("D") else (2, 3, 4)
    for n in sizes:
        inputs = random_inputs(prog, {"n": n}, seed=1)
        final, stats = execute(sp, {"n": n}, inputs)
        ok = final == run_sequential(prog, {"n": n}, inputs)
        p = parallelism_profile(sp, {"n": n}, stats)
        rows.append({"exp": exp, **p.row(), "oracle": "OK" if ok else "FAIL"})
print(format_table(rows, title="## per-design execution profile"))
print()
t = []
for exp, prog, arr in all_paper_designs():
    nums = check_all_theorems(prog, arr, {"n": 3})
    t.append({"exp": exp, "theorems_verified": ",".join(map(str, nums))})
print(format_table(t, title="## theorems"))
print()
part = []
exp, prog, arr = all_paper_designs()[2]
sp = compile_systolic(prog, arr)
inputs = random_inputs(prog, {"n": 4}, seed=1)
for w in (1, 2, 4, 8, 16, 64):
    final, stats = partitioned_execute(sp, {"n": 4}, inputs, workers=w)
    part.append({"workers": w, "makespan": stats.makespan})
print(format_table(part, title="## E1 n=4 partitioned onto w workers (block)"))
