#!/usr/bin/env python3
"""Benchmark the scheduler's fast single-op engine against the generic one.

Runs the D.1 paper design at a fixed problem size through the coroutine
simulator under both scheduler engines (``REPRO_SCHED_FAST`` A/B): the
network plan is pre-built and each instantiation happens outside the timer,
so the measurement isolates ``Scheduler.run`` -- the loop the fast engine
specializes.  Writes ``BENCH_sched.json`` at the repository root.

The identity section re-runs one traced pair and requires bit-identical
final values, ``SchedulerStats``, and trace event streams, plus identical
deadlock report text on a hand-planted deadlock -- the same bar the fuzz
harness's sampled ``sched_ab`` check enforces campaign-wide.

Usage:
    PYTHONPATH=src python tools/bench_sched.py [--check] [-o OUT.json]
        [--size N] [--repeats N] [--min-speedup X]

``--check`` exits non-zero unless the A/B identity holds AND the fast
engine is at least ``--min-speedup`` (default 1.5) times the generic one.
"""
from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from contextlib import contextmanager

_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))
sys.path.insert(0, str(_ROOT / "src"))

from repro import compile_systolic
from repro.runtime.network import network_plan
from repro.runtime.trace import attach_tracer
from repro.systolic import all_paper_designs
from repro.util.errors import DeadlockError
from repro.verify import random_inputs


@contextmanager
def _engine(flag: str):
    prior = os.environ.get("REPRO_SCHED_FAST")
    os.environ["REPRO_SCHED_FAST"] = flag
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_SCHED_FAST", None)
        else:
            os.environ["REPRO_SCHED_FAST"] = prior


def _setup(n: int):
    exp_id, prog, array = all_paper_designs()[0]  # D1: polyprod, place=(i)
    sp = compile_systolic(prog, array)
    inputs = random_inputs(prog, {"n": n}, seed=0)
    plan = network_plan(sp, {"n": n})
    return exp_id, plan, inputs


def _time_runs(plan, inputs, flag: str, repeats: int) -> tuple[float, object]:
    """Best-of-N ``run()`` wall-clock under one engine (instantiate untimed)."""
    best = float("inf")
    stats = None
    for _ in range(repeats):
        with _engine(flag):
            network = plan.instantiate(inputs)
        t0 = time.perf_counter()
        stats = network.run()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return best, stats


def _traced(plan, inputs, flag: str):
    with _engine(flag):
        network = plan.instantiate(inputs)
    trace = attach_tracer(network)
    stats = network.run()
    return network.host.final, stats, trace.events


def _deadlock_report(flag: str) -> str:
    """Report text of a fixed two-process deadlock under one engine."""
    from repro.runtime import Channel, Par, Recv, Scheduler, Send

    with _engine(flag):
        sched = Scheduler()
        c1 = sched.add_channel(Channel("c1"))
        c2 = sched.add_channel(Channel("c2"))

        def starved():
            yield Recv(c1)

        def stuck():
            yield Par([Send(c2, 1), Recv(c1)])

        sched.spawn("starved", starved(), single_op=True)
        sched.spawn("stuck", stuck())
    try:
        sched.run()
    except DeadlockError as exc:
        return str(exc)
    return "NO DEADLOCK"


def check_identity(plan, inputs) -> dict:
    fast = _traced(plan, inputs, "1")
    generic = _traced(plan, inputs, "0")
    report_fast = _deadlock_report("1")
    report_generic = _deadlock_report("0")
    return {
        "values_identical": fast[0] == generic[0],
        "stats_identical": fast[1] == generic[1],
        "trace_identical": fast[2] == generic[2],
        "trace_events": len(fast[2]),
        "deadlock_report_identical": (
            report_fast == report_generic and report_fast != "NO DEADLOCK"
        ),
        "makespan": fast[1].makespan,
        "scheduler_rounds": fast[1].scheduler_rounds,
        "total_messages": fast[1].total_messages,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail unless A/B identity holds and the fast "
                             "engine meets the --min-speedup floor")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        metavar="X",
                        help="with --check, required fast/generic run() "
                             "speedup (default: %(default)s)")
    parser.add_argument("--size", type=int, default=48, metavar="N",
                        help="problem size for the D.1 run (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per engine; best is reported "
                             "(default: %(default)s)")
    parser.add_argument("-o", "--output",
                        default=str(_ROOT / "BENCH_sched.json"))
    args = parser.parse_args(argv)

    exp_id, plan, inputs = _setup(args.size)

    # warm both engines once (generator bodies, interning, attribute caches)
    _time_runs(plan, inputs, "1", 1)
    _time_runs(plan, inputs, "0", 1)

    fast_s, fast_stats = _time_runs(plan, inputs, "1", args.repeats)
    generic_s, generic_stats = _time_runs(plan, inputs, "0", args.repeats)
    speedup = generic_s / fast_s if fast_s > 0 else float("inf")

    identity = check_identity(plan, inputs)
    identity["timed_stats_identical"] = fast_stats == generic_stats

    print(f"{exp_id} n={args.size}: "
          f"{identity['scheduler_rounds']} resumes, "
          f"{identity['total_messages']} messages")
    print(f"  fast engine    {fast_s * 1000:8.2f} ms  (best of {args.repeats})")
    print(f"  generic engine {generic_s * 1000:8.2f} ms")
    print(f"  speedup        {speedup:8.2f} x")
    flat = all(v for k, v in identity.items() if k.endswith("identical"))
    print(f"  A/B identity   {'OK' if flat else 'BROKEN'}")

    report = {
        "units": "seconds",
        "design": exp_id,
        "n": args.size,
        "repeats": args.repeats,
        "fast_s": round(fast_s, 6),
        "generic_s": round(generic_s, 6),
        "speedup": round(speedup, 3),
        "identity": identity,
    }
    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if args.check:
        broken = [k for k, v in identity.items()
                  if k.endswith("identical") and not v]
        if broken:
            print(f"FAIL: A/B identity broken: {broken}", file=sys.stderr)
            return 1
        if speedup < args.min_speedup:
            print(f"FAIL: fast engine speedup {speedup:.2f}x below the "
                  f"{args.min_speedup}x floor", file=sys.stderr)
            return 1
        print(f"check passed: {speedup:.2f}x speedup "
              f"(floor {args.min_speedup}x) with full A/B identity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
