#!/usr/bin/env python3
"""Line coverage of ``repro`` over the tier-1 suite, stdlib-only.

CI measures coverage with ``pytest --cov=repro`` (see the tests job); this
tool exists so the same number can be reproduced locally without installing
anything: it installs a ``sys.settrace``/``threading.settrace`` line tracer
scoped to ``src/repro`` and runs pytest in-process.

The measurement is a close approximation of coverage.py's line mode:

- executable lines per file come from the compiled code objects'
  ``co_lines()`` tables (same source of truth coverage.py uses);
- lines run only in worker *processes* (the ``--jobs`` sweep paths) are
  not observed, so the reported number is a lower bound there;
- the tracer is scoped at function-call granularity, so the slowdown is
  ~2-4x rather than the 10x of whole-program tracing.

Usage:
    python tools/coverage_report.py [-o OUT.json] [pytest args...]

Defaults to the tier-1 selection (``-x -q``).  Exits with pytest's own
exit code, so a red suite fails the run even if coverage was collected.
"""
from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
from types import CodeType

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
_PKG = _SRC / "repro"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def executable_lines(path: pathlib.Path) -> set[int]:
    """All line numbers carrying code, from the compiled line tables."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for _start, _end, lineno in co.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in co.co_consts:
            if isinstance(const, CodeType):
                stack.append(const)
    return lines


class Tracer:
    """Per-file executed-line sets for frames under ``src/repro``."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.executed: dict[str, set[int]] = {}

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    def global_trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None  # never line-trace tests, stdlib, site-packages
        lines = self.executed.setdefault(filename, set())
        lines.add(frame.f_lineno)

        def local_trace(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace


def collect(pytest_args: list[str]) -> tuple[int, dict[str, set[int]]]:
    tracer = Tracer(str(_PKG))
    tracer.install()
    try:
        import pytest

        exit_code = pytest.main(pytest_args)
    finally:
        tracer.uninstall()
    return int(exit_code), tracer.executed


def report(executed: dict[str, set[int]]) -> dict:
    per_file = []
    for path in sorted(_PKG.rglob("*.py")):
        total = executable_lines(path)
        hit = executed.get(str(path), set()) & total
        per_file.append(
            {
                "file": str(path.relative_to(_SRC)),
                "lines": len(total),
                "covered": len(hit),
                "percent": round(100.0 * len(hit) / len(total), 1)
                if total
                else 100.0,
            }
        )
    packages: dict[str, list[int]] = {}
    for entry in per_file:
        parts = pathlib.Path(entry["file"]).parts
        package = "/".join(parts[:2]) if len(parts) > 2 else parts[0]
        bucket = packages.setdefault(package, [0, 0])
        bucket[0] += entry["lines"]
        bucket[1] += entry["covered"]
    total_lines = sum(e["lines"] for e in per_file)
    total_covered = sum(e["covered"] for e in per_file)
    return {
        "total_lines": total_lines,
        "covered_lines": total_covered,
        "percent": round(100.0 * total_covered / total_lines, 1),
        "packages": {
            name: {
                "lines": lines,
                "covered": covered,
                "percent": round(100.0 * covered / lines, 1) if lines else 100.0,
            }
            for name, (lines, covered) in sorted(packages.items())
        },
        "files": per_file,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None, help="write the full JSON report here")
    parser.add_argument("pytest_args", nargs="*", help="pytest selection (default: tier-1, '-x -q')")
    args = parser.parse_args(argv)
    pytest_args = args.pytest_args or ["-x", "-q"]

    exit_code, executed = collect(pytest_args)
    summary = report(executed)
    print()
    print(f"{'package':28} {'lines':>7} {'covered':>8} {'percent':>8}")
    for name, row in summary["packages"].items():
        print(f"{name:28} {row['lines']:>7} {row['covered']:>8} {row['percent']:>7.1f}%")
    print(f"{'TOTAL':28} {summary['total_lines']:>7} {summary['covered_lines']:>8} {summary['percent']:>7.1f}%")
    if args.output:
        out = pathlib.Path(args.output)
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
