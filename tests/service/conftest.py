"""In-process harness for the compile-service tests.

``service_run`` boots a real daemon on an ephemeral loopback port inside
``asyncio.run``, hands the scenario coroutine a connected client (or a
factory for many), and tears everything down -- no subprocesses, no port
collisions, deterministic counters.  Service state (design store, metrics,
rate limiter) is fresh per scenario; the *global* caches underneath
(``MEMO``, module/schedule caches) are process-wide by design, so tests
assert on counter deltas, never absolutes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import CompileService, ServiceConfig, ServiceClient
from repro.systolic.designs import all_paper_designs


def design_payload(array) -> dict:
    """The JSON design-spec document for a ``SystolicArray``."""
    return {
        "step": [list(r) for r in array.step.rows],
        "place": [list(r) for r in array.place.rows],
        "loading": {
            name: [int(c) for c in vec]
            for name, vec in sorted(array.loading_vectors.items())
        },
        "name": array.name,
    }


def paper_requests() -> list[tuple[str, str, dict]]:
    """``(exp_id, source_text, design_spec)`` for the four paper designs."""
    return [
        (exp_id, program.to_source(), design_payload(array))
        for exp_id, program, array in all_paper_designs()
    ]


@pytest.fixture()
def service_run():
    """Run ``scenario(client, service)`` against a fresh in-process daemon.

    Keyword arguments become :class:`ServiceConfig` fields.  With
    ``clients=N`` (N > 1) the scenario receives a list of N independent
    connections instead of a single client.
    """

    def runner(scenario, *, clients: int = 1, **config_kwargs):
        async def main():
            service = CompileService(ServiceConfig(**config_kwargs))
            await service.start()
            pool = [
                ServiceClient("127.0.0.1", service.port)
                for _ in range(clients)
            ]
            try:
                target = pool[0] if clients == 1 else pool
                return await scenario(target, service)
            finally:
                for client in pool:
                    await client.close()
                await service.stop()

        return asyncio.run(main())

    return runner
