"""Rate limiting (unit + end-to-end 429) and timeout-cancellation recovery."""

from __future__ import annotations

import asyncio
import time

import pytest

import repro.service.store as store_mod
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.util.errors import ReproError
from tests.service.conftest import paper_requests

REAL_COMPILE = store_mod.compile_systolic


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
        assert bucket.take(0.0) is True
        assert bucket.take(0.0) is True
        assert bucket.take(0.0) is False
        assert bucket.retry_after(0.0) == pytest.approx(1.0)
        # one second later exactly one token has accrued
        assert bucket.take(1.0) is True
        assert bucket.take(1.0) is False

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3, now=0.0)
        for _ in range(3):
            assert bucket.take(100.0) is True  # long idle: still only burst
        assert bucket.take(100.0) is False

    def test_retry_after_scales_with_rate(self):
        bucket = TokenBucket(rate=4.0, burst=1, now=0.0)
        assert bucket.take(0.0) is True
        assert bucket.retry_after(0.0) == pytest.approx(0.25)


class TestRateLimiter:
    def fake_clock(self, start: float = 0.0):
        state = {"now": start}

        def clock():
            return state["now"]

        return state, clock

    def test_disabled_always_allows(self):
        limiter = RateLimiter(rate=0.0)
        assert all(limiter.allow("t") for _ in range(100))
        assert limiter.snapshot()["enabled"] is False
        assert limiter.retry_after("t") == 0.0

    def test_per_tenant_isolation(self):
        state, clock = self.fake_clock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.allow("alice") is True
        assert limiter.allow("alice") is False
        assert limiter.allow("bob") is True  # separate bucket
        state["now"] = 1.0
        assert limiter.allow("alice") is True

    def test_lru_eviction_bounds_tenant_table(self):
        state, clock = self.fake_clock()
        limiter = RateLimiter(rate=1.0, burst=1, max_tenants=2, clock=clock)
        limiter.allow("a")
        limiter.allow("b")
        limiter.allow("c")  # evicts a
        snap = limiter.snapshot()
        assert snap["tenants"] == 2
        assert snap["evictions"] == 1
        # a's bucket is fresh again: full burst despite no elapsed time
        assert limiter.allow("a") is True

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            RateLimiter(rate=1.0, burst=0)
        with pytest.raises(ReproError):
            RateLimiter(max_tenants=0)


class TestServiceRateLimiting:
    def test_429_with_retry_hint_and_tenant_isolation(self, service_run):
        _, source, design = paper_requests()[0]

        async def scenario(client, service):
            statuses = []
            for _ in range(4):
                status, payload = await client.compile(source, design)
                statuses.append(status)
            assert statuses == [200, 200, 429, 429]
            assert payload["tenant"] == "default"
            assert payload["retry_after_s"] > 0
            assert "requests/s" in payload["error"]
            # another tenant has its own bucket
            from repro.service.client import ServiceClient

            other = ServiceClient("127.0.0.1", service.port, tenant="bob")
            try:
                status, _ = await other.compile(source, design)
                assert status == 200
            finally:
                await other.close()
            assert service.metrics.rate_limited == 2
            assert service.limiter.snapshot()["rejected"] == 2

        service_run(scenario, rate=0.001, burst=2)

    def test_healthz_and_stats_exempt_from_limiting(self, service_run):
        async def scenario(client, service):
            for _ in range(10):
                status, _ = await client.healthz()
                assert status == 200
                status, _ = await client.stats()
                assert status == 200
            assert service.metrics.rate_limited == 0

        service_run(scenario, rate=0.001, burst=1)


class TestTimeoutRecovery:
    def test_timeout_never_cancels_the_derivation(
        self, service_run, monkeypatch
    ):
        _, source, design = paper_requests()[3]

        def slow(program, array):
            time.sleep(0.3)
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", slow)

        async def scenario(client, service):
            status, payload = await client.compile(source, design)
            assert status == 504
            assert "retry to pick up the cached result" in payload["error"]
            assert payload["timeout_s"] == pytest.approx(0.05)
            assert service.metrics.timeouts == 1
            # the derivation is still running in the background; wait for
            # it to publish, then the very same request is a cache hit
            for _ in range(200):
                if service.store.inflight == 0:
                    break
                await asyncio.sleep(0.01)
            assert service.store.inflight == 0
            assert len(service.store) == 1
            status, payload = await client.compile(source, design)
            assert status == 200
            assert payload["cached"] is True
            snap = service.store.snapshot()
            assert snap["misses"] == 1  # compiled exactly once
            assert snap["hits"] == 1

        service_run(scenario, timeout_s=0.05)

    def test_coalesced_waiters_share_one_timeout_story(
        self, service_run, monkeypatch
    ):
        _, source, design = paper_requests()[3]

        def slow(program, array):
            time.sleep(0.3)
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", slow)

        async def scenario(clients, service):
            results = await asyncio.gather(
                *(c.compile(source, design) for c in clients)
            )
            assert [status for status, _ in results] == [504] * len(clients)
            snap = service.store.snapshot()
            assert snap["misses"] == 1
            assert snap["coalesced"] == len(clients) - 1
            for _ in range(200):
                if service.store.inflight == 0:
                    break
                await asyncio.sleep(0.01)
            status, payload = await clients[0].compile(source, design)
            assert status == 200
            assert payload["cached"] is True
            assert service.store.snapshot()["misses"] == 1

        service_run(scenario, clients=3, timeout_s=0.05)
