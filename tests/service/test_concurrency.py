"""Concurrency stress: coalescing, memo dedup, and bit-identity under load.

The proofs are counter-based and deterministic: a wrapped
``compile_systolic`` counts derivations directly, the store snapshot
proves request coalescing, and ``MEMO`` per-table deltas prove a repeat
derivation is served from cache rather than re-derived.  ``MEMO`` is
process-global, so every assertion is on deltas, never absolutes, and the
designs come from the fuzz generator so they are cold no matter which
tests ran earlier in the process.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.service.store as store_mod
from repro.core.memo import MEMO
from repro.core.scheme import compile_systolic
from repro.fuzz.generator import generate_instance
from repro.lang.parser import parse_program
from repro.verify.equivalence import _execute_backend, random_inputs

from repro.service.daemon import state_to_json
from tests.service.conftest import design_payload

REAL_COMPILE = store_mod.compile_systolic


def fresh_instances(count: int, start_seed: int = 9000):
    """``count`` distinct valid fuzz instances (deterministic in seed)."""
    out = []
    seed = start_seed
    while len(out) < count:
        instance = generate_instance(seed)
        seed += 1
        if instance is None:
            continue
        out.append(instance)
    return out


def memo_misses(snapshot_before, snapshot_after) -> int:
    total = 0
    for table, (_, misses) in snapshot_after.items():
        total += misses - snapshot_before.get(table, (0, 0))[1]
    return total


def memo_lookups(snapshot_before, snapshot_after) -> int:
    total = 0
    for table, (hits, misses) in snapshot_after.items():
        total += hits + misses - sum(snapshot_before.get(table, (0, 0)))
    return total


class TestCoalescing:
    def test_identical_requests_coalesce_to_one_derivation(
        self, service_run, monkeypatch
    ):
        instance = fresh_instances(1, start_seed=9100)[0]
        source = instance.program.to_source()
        design = design_payload(instance.array)
        calls = {"n": 0}

        def counting(program, array):
            calls["n"] += 1
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", counting)

        # one compile's worth of memo traffic, measured empirically (the
        # fuzz generator already warmed MEMO while validating the design,
        # and compile_systolic's lookup count is deterministic)
        snap_a = MEMO.counters_snapshot()
        REAL_COMPILE(instance.program, instance.array)
        snap_b = MEMO.counters_snapshot()
        single_compile_lookups = memo_lookups(snap_a, snap_b)
        assert single_compile_lookups > 0

        async def scenario(clients, service):
            before = MEMO.counters_snapshot()
            results = await asyncio.gather(
                *(c.compile(source, design) for c in clients)
            )
            after_first = MEMO.counters_snapshot()
            assert all(status == 200 for status, _ in results)
            # every response is bit-identical (modulo the 'cached' marker,
            # which flips once the entry lands in the store)
            payloads = [
                {k: v for k, v in payload.items() if k != "cached"}
                for _, payload in results
            ]
            assert all(p == payloads[0] for p in payloads)
            # exactly one derivation ran for 8 concurrent identical requests
            assert calls["n"] == 1
            snap = service.store.snapshot()
            assert snap["misses"] == 1
            assert snap["hits"] + snap["coalesced"] == len(clients) - 1
            # the whole batch cost exactly ONE compile's memo traffic --
            # coalesced, not 8 duplicated derivations
            assert memo_lookups(before, after_first) == single_compile_lookups
            assert memo_misses(before, after_first) == 0

            # drop the store entry and fire the same batch again: one more
            # compile_systolic call, same single-compile memo traffic, and
            # still zero misses -- everything re-served from the memo
            service.store.clear()
            before_second = MEMO.counters_snapshot()
            results2 = await asyncio.gather(
                *(c.compile(source, design) for c in clients)
            )
            after_second = MEMO.counters_snapshot()
            assert all(status == 200 for status, _ in results2)
            assert calls["n"] == 2
            assert memo_lookups(before_second, after_second) == single_compile_lookups
            assert memo_misses(before_second, after_second) == 0
            # and the payloads match the first batch bit for bit
            payloads2 = [
                {k: v for k, v in payload.items() if k != "cached"}
                for _, payload in results2
            ]
            assert payloads2 == payloads

        service_run(scenario, clients=8)

    def test_distinct_designs_each_compile_once(self, service_run, monkeypatch):
        instances = fresh_instances(4, start_seed=9200)
        requests = [
            (inst.program.to_source(), design_payload(inst.array))
            for inst in instances
        ]
        calls = {"n": 0}

        def counting(program, array):
            calls["n"] += 1
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", counting)

        async def scenario(clients, service):
            # two interleaved requests per design, all concurrent
            jobs = []
            for i, client in enumerate(clients):
                source, design = requests[i % len(requests)]
                jobs.append(client.compile(source, design))
            results = await asyncio.gather(*jobs)
            assert all(status == 200 for status, _ in results)
            assert calls["n"] == len(requests)
            assert len(service.store) == len(requests)
            assert service.store.snapshot()["misses"] == len(requests)
            # same-design responses are identical, distinct designs differ
            by_design = {}
            for i, (_, payload) in enumerate(results):
                by_design.setdefault(i % len(requests), []).append(
                    {k: v for k, v in payload.items() if k != "cached"}
                )
            for group in by_design.values():
                assert all(p == group[0] for p in group)
            fingerprints = {g[0]["fingerprint"] for g in by_design.values()}
            assert len(fingerprints) == len(requests)

        service_run(scenario, clients=8)


class TestBitIdentityUnderLoad:
    def test_concurrent_execute_matches_serial_library_path(self, service_run):
        instances = fresh_instances(3, start_seed=9300)
        expected = []
        for inst in instances:
            source = inst.program.to_source()
            program = parse_program(source)  # the daemon's parse of it
            sp = compile_systolic(program, inst.array)
            inputs = random_inputs(program, inst.env, seed=0)
            final, _ = _execute_backend(
                "sim", sp, inst.env, inputs, 1, partition=None
            )
            expected.append(state_to_json(final))

        async def scenario(clients, service):
            jobs = []
            for i, client in enumerate(clients):
                inst = instances[i % len(instances)]
                jobs.append(
                    client.execute(
                        source=inst.program.to_source(),
                        design=design_payload(inst.array),
                        sizes=inst.env,
                        backend="sim",
                    )
                )
            results = await asyncio.gather(*jobs)
            for i, (status, payload) in enumerate(results):
                assert status == 200, payload
                assert payload["matched"] is True
                assert payload["results"] == [expected[i % len(instances)]]

        service_run(scenario, clients=6)

    def test_interleaved_endpoints_stay_consistent(self, service_run):
        instance = fresh_instances(1, start_seed=9400)[0]
        source = instance.program.to_source()
        design = design_payload(instance.array)

        async def scenario(clients, service):
            a, b, c, d = clients
            results = await asyncio.gather(
                a.compile(source, design),
                b.verify(source=source, design=design, sizes=instance.env),
                c.execute(source=source, design=design, sizes=instance.env),
                d.healthz(),
            )
            (s1, compiled), (s2, verified), (s3, executed), (s4, health) = results
            assert (s1, s2, s3, s4) == (200, 200, 200, 200)
            assert verified["matched"] is True
            assert executed["matched"] is True
            assert (
                compiled["fingerprint"]
                == verified["fingerprint"]
                == executed["fingerprint"]
            )
            # three endpoints raced for one design: exactly one compile
            snap = service.store.snapshot()
            assert snap["misses"] == 1
            assert snap["hits"] + snap["coalesced"] == 2

        service_run(scenario, clients=4)
