"""Fault injection: the daemon survives pipeline failures un-poisoned.

Each test monkeypatches one pipeline stage to blow up, asserts the
structured 5xx body, then proves the daemon (a) keeps serving and (b) did
not cache the failure -- the same request succeeds once the fault clears.
"""

from __future__ import annotations

import pytest

import repro.service.store as store_mod
import repro.verify.equivalence as equivalence_mod
from tests.service.conftest import paper_requests

REAL_COMPILE = store_mod.compile_systolic
REAL_EXECUTE = equivalence_mod._execute_backend


class TestCompileFaults:
    def test_compile_fault_is_structured_500_and_not_cached(
        self, service_run, monkeypatch
    ):
        _, source, design = paper_requests()[0]
        fail = {"on": True}

        def flaky(program, array):
            if fail["on"]:
                raise RuntimeError("injected compile fault")
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", flaky)

        async def scenario(client, service):
            status, payload = await client.compile(source, design)
            assert status == 500
            assert payload["type"] == "RuntimeError"
            assert "injected compile fault" in payload["error"]
            # the daemon keeps serving
            status, health = await client.healthz()
            assert status == 200
            assert health["status"] == "ok"
            # the failure was counted and NOT cached
            assert service.store.failures == 1
            assert len(service.store) == 0
            assert service.store.inflight == 0
            # fault clears: the very same request now compiles from scratch
            fail["on"] = False
            status, payload = await client.compile(source, design)
            assert status == 200
            assert payload["cached"] is False
            assert service.store.snapshot()["misses"] == 2

        service_run(scenario)

    def test_concurrent_waiters_all_see_the_failure(
        self, service_run, monkeypatch
    ):
        import asyncio
        import time

        _, source, design = paper_requests()[1]
        fail = {"on": True}

        def flaky(program, array):
            if fail["on"]:
                # linger long enough for every concurrent request to join
                # the in-flight future before the failure lands
                time.sleep(0.1)
                raise RuntimeError("injected compile fault")
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", flaky)

        async def scenario(clients, service):
            results = await asyncio.gather(
                *(c.compile(source, design) for c in clients)
            )
            statuses = sorted(status for status, _ in results)
            assert statuses == [500] * len(clients)
            # one coalesced compile attempt, one recorded failure
            assert service.store.failures == 1
            snap = service.store.snapshot()
            assert snap["misses"] == 1
            assert snap["coalesced"] == len(clients) - 1
            fail["on"] = False
            status, payload = await clients[0].compile(source, design)
            assert status == 200

        service_run(scenario, clients=4)


class TestExecuteFaults:
    def test_execute_fault_is_structured_500_store_survives(
        self, service_run, monkeypatch
    ):
        _, source, design = paper_requests()[0]
        fail = {"on": True}

        def flaky(backend, sp, env, inputs, capacity, partition=None):
            if fail["on"]:
                raise RuntimeError("injected execute fault")
            return REAL_EXECUTE(
                backend, sp, env, inputs, capacity, partition=partition
            )

        monkeypatch.setattr(equivalence_mod, "_execute_backend", flaky)

        async def scenario(client, service):
            status, payload = await client.execute(
                source=source, design=design, sizes={"n": 3}
            )
            assert status == 500
            assert payload["type"] == "RuntimeError"
            assert "injected execute fault" in payload["error"]
            # compilation itself succeeded and stayed cached
            assert len(service.store) == 1
            assert service.store.failures == 0
            # the daemon keeps serving, and the cached design still executes
            fail["on"] = False
            status, payload = await client.execute(
                source=source, design=design, sizes={"n": 3}
            )
            assert status == 200
            assert payload["matched"] is True
            assert service.store.snapshot()["hits"] >= 1

        service_run(scenario)

    def test_library_error_maps_through_http_status(
        self, service_run, monkeypatch
    ):
        from repro.util.errors import DeadlockError

        _, source, design = paper_requests()[0]

        def deadlock(backend, sp, env, inputs, capacity, partition=None):
            raise DeadlockError("injected deadlock at step 3")

        monkeypatch.setattr(equivalence_mod, "_execute_backend", deadlock)

        async def scenario(client, service):
            status, payload = await client.execute(
                source=source, design=design, sizes={"n": 3}
            )
            assert status == 500
            assert payload["type"] == "DeadlockError"
            assert "injected deadlock" in payload["error"]
            endpoint = service.metrics.endpoints["execute"]
            assert endpoint.errors_5xx == 1

        service_run(scenario)


class TestFaultMetrics:
    def test_5xx_and_recovery_are_both_recorded(self, service_run, monkeypatch):
        _, source, design = paper_requests()[2]
        fail = {"on": True}

        def flaky(program, array):
            if fail["on"]:
                raise RuntimeError("boom")
            return REAL_COMPILE(program, array)

        monkeypatch.setattr(store_mod, "compile_systolic", flaky)

        async def scenario(client, service):
            await client.compile(source, design)
            fail["on"] = False
            await client.compile(source, design)
            endpoint = service.metrics.endpoints["compile"]
            assert endpoint.requests == 2
            assert endpoint.errors_5xx == 1
            assert endpoint.latency.total == 2
            stats_status, stats = await client.stats()
            assert stats_status == 200
            snap = stats["service"]["endpoints"]["compile"]
            assert snap["errors_5xx"] == 1

        service_run(scenario)
