"""Endpoint round-trips and HTTP error mapping for the compile service."""

from __future__ import annotations

import json

import pytest

from repro.core.scheme import compile_systolic
from repro.service.daemon import state_to_json
from repro.systolic.designs import all_paper_designs
from repro.verify.equivalence import random_inputs

from tests.service.conftest import paper_requests

SIZES = {"D1": {"n": 4}, "D2": {"n": 4}, "E1": {"n": 3}, "E2": {"n": 3}}


class TestPaperDesignRoundTrips:
    @pytest.mark.parametrize(
        "exp_id, source, design",
        paper_requests(),
        ids=[exp_id for exp_id, _, _ in paper_requests()],
    )
    def test_compile_summary_matches_library(
        self, service_run, exp_id, source, design
    ):
        _, program, array = next(
            t for t in all_paper_designs() if t[0] == exp_id
        )
        expected = compile_systolic(program, array).summary()

        async def scenario(client, service):
            status, payload = await client.compile(source, design)
            assert status == 200
            assert payload["summary"] == expected
            assert payload["cached"] is False
            # the fingerprint round-trips: a bare-fingerprint compile hits
            status, again = await client.compile(
                fingerprint=payload["fingerprint"]
            )
            assert status == 200
            assert again["summary"] == expected
            assert again["cached"] is True
            return payload["fingerprint"]

        fingerprint = service_run(scenario)
        assert len(fingerprint) == 64

    @pytest.mark.parametrize(
        "exp_id, source, design",
        paper_requests(),
        ids=[exp_id for exp_id, _, _ in paper_requests()],
    )
    def test_execute_bit_identical_to_library_path(
        self, service_run, exp_id, source, design
    ):
        from repro.verify.equivalence import _execute_backend

        _, program, array = next(
            t for t in all_paper_designs() if t[0] == exp_id
        )
        env = SIZES[exp_id]
        sp = compile_systolic(program, array)
        inputs = random_inputs(program, env, seed=0)
        final, _ = _execute_backend("sim", sp, env, inputs, 1, partition=None)
        expected = state_to_json(final)

        async def scenario(client, service):
            status, payload = await client.execute(
                source=source, design=design, sizes=env, backend="sim"
            )
            assert status == 200
            assert payload["matched"] is True
            assert payload["results"] == [expected]

        service_run(scenario)

    @pytest.mark.parametrize(
        "exp_id, source, design",
        paper_requests(),
        ids=[exp_id for exp_id, _, _ in paper_requests()],
    )
    def test_verify_matches(self, service_run, exp_id, source, design):
        async def scenario(client, service):
            status, payload = await client.verify(
                source=source, design=design, sizes=SIZES[exp_id]
            )
            assert status == 200
            assert payload["matched"] is True
            assert payload["mismatch_count"] == 0
            assert payload["makespan"] > 0

        service_run(scenario)


class TestEmit:
    def test_emit_variants_match_cli_renderers(self, service_run):
        from repro.target.build import build_target_program
        from repro.target.cgen import render_c
        from repro.target.occam import render_occam
        from repro.target.pretty import render_paper

        exp_id, source, design = paper_requests()[0]
        _, program, array = all_paper_designs()[0]
        target = build_target_program(compile_systolic(program, array))
        expected = {
            "paper": render_paper(target),
            "occam": render_occam(target),
            "c": render_c(target),
        }

        async def scenario(client, service):
            for emit, text in expected.items():
                status, payload = await client.compile(
                    source, design, emit=emit
                )
                assert status == 200
                assert payload["emitted"] == text

        service_run(scenario)

    def test_unknown_emit_is_400(self, service_run):
        _, source, design = paper_requests()[0]

        async def scenario(client, service):
            status, payload = await client.compile(source, design, emit="ada")
            assert status == 400
            assert "emit" in payload["error"]

        service_run(scenario)


class TestErrorMapping:
    def test_malformed_json_body_is_400(self, service_run):
        import asyncio

        async def scenario(client, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(
                b"POST /compile HTTP/1.1\r\n"
                b"Content-Length: 9\r\n\r\nnot json!"
            )
            await writer.drain()
            status_line = await reader.readline()
            assert b"400" in status_line
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            body = await reader.readexactly(int(headers["content-length"]))
            assert b"malformed JSON" in body
            writer.close()
            # the daemon keeps serving afterwards
            status, payload = await client.healthz()
            assert status == 200
            assert service.metrics.malformed == 1

        service_run(scenario)

    def test_parser_error_maps_to_400_with_diagnostic(self, service_run):
        async def scenario(client, service):
            status, payload = await client.compile(
                "size n\nvar a[0..n]\nfor i = 0 <- 1 -> n\n  a[i] := b[i]",
                {"step": [[1]], "place": [[1]]},
            )
            assert status == 400
            # the PR-5 parser diagnostic comes through verbatim
            assert "undeclared variable 'b'" in payload["error"]
            assert payload["type"] == "SourceProgramError"

        service_run(scenario)

    def test_inconsistent_design_maps_to_400_family(self, service_run):
        _, source, _ = paper_requests()[0]

        async def scenario(client, service):
            status, payload = await client.compile(
                source, {"step": [[1, 1]], "place": [[1, 0]]}
            )
            assert status in (400, 422)
            assert payload["type"].endswith("Error") or payload["type"].endswith("Violation")

        service_run(scenario)

    def test_missing_design_fields_400(self, service_run):
        _, source, _ = paper_requests()[0]

        async def scenario(client, service):
            status, payload = await client.compile(source, {"step": [[2, 1]]})
            assert status == 400
            assert "place" in payload["error"]

        service_run(scenario)

    def test_unknown_fingerprint_400(self, service_run):
        async def scenario(client, service):
            status, payload = await client.execute(
                fingerprint="f" * 64, sizes={"n": 2}
            )
            assert status == 400
            assert "unknown design fingerprint" in payload["error"]

        service_run(scenario)

    def test_unknown_route_404_and_wrong_method_405(self, service_run):
        async def scenario(client, service):
            status, payload = await client.request("POST", "/nope", {})
            assert status == 404
            assert "/compile" in json.dumps(payload)
            status, payload = await client.request("GET", "/compile")
            assert status == 405
            assert payload["allowed"] == ["POST"]

        service_run(scenario)

    def test_missing_sizes_400(self, service_run):
        _, source, design = paper_requests()[0]

        async def scenario(client, service):
            status, payload = await client.execute(source=source, design=design)
            assert status == 400
            assert "sizes" in payload["error"]

        service_run(scenario)

    def test_bad_backend_400(self, service_run):
        _, source, design = paper_requests()[0]

        async def scenario(client, service):
            status, payload = await client.execute(
                source=source, design=design, sizes={"n": 2}, backend="cuda"
            )
            assert status == 400
            assert "backend" in payload["error"]

        service_run(scenario)

    def test_oversized_body_413(self, service_run):
        async def scenario(client, service):
            status, payload = await client.request(
                "POST", "/compile", {"source": "x" * 4096}
            )
            assert status == 413
            assert "limit" in payload["error"]

        service_run(scenario, max_body_bytes=2048)


class TestOperationalEndpoints:
    def test_healthz_and_stats_shape(self, service_run):
        _, source, design = paper_requests()[0]

        async def scenario(client, service):
            status, health = await client.healthz()
            assert status == 200
            assert health["status"] == "ok"
            assert health["designs"] == 0
            await client.compile(source, design)
            status, stats = await client.stats()
            assert status == 200
            assert stats["store"]["designs"] == 1
            assert stats["store"]["misses"] == 1
            endpoint = stats["service"]["endpoints"]["compile"]
            assert endpoint["requests"] == 1
            assert endpoint["latency"]["count"] == 1
            assert endpoint["latency"]["p95_s"] >= endpoint["latency"]["p50_s"]
            assert "memo" in stats and "module_cache" in stats
            assert "memo_tables" in stats

        service_run(scenario)

    def test_explore_matches_serial_sweep(self, service_run):
        from repro.lang.parser import parse_program
        from repro.parallel import sweep_designs
        from repro.systolic.schedule import synthesize_step

        _, source, _ = paper_requests()[0]
        program = parse_program(source)
        step = synthesize_step(program, bound=2)[0]
        expected = sweep_designs(program, step, [{"n": 4}], bound=1, limit=4)

        async def scenario(client, service):
            status, payload = await client.explore(
                source=source, sizes={"n": 4}, limit=4
            )
            assert status == 200
            assert payload["step"] == [list(r) for r in step.rows]
            rows = payload["tables"][0]["rows"]
            assert rows == [c.row() for c in expected.by_size[0][1]]

        service_run(scenario)

    def test_fuzz_replay_known_pin(self, service_run):
        async def scenario(client, service):
            status, payload = await client.fuzz_replay("2c6a5806697e")
            assert status == 200
            assert payload["file"] == "seed_2c6a5806697e.json"
            assert payload["expect"] == "pass"
            assert payload["ok"] is True
            assert payload["checks_run"]

        service_run(scenario)

    def test_fuzz_replay_unknown_ref_400(self, service_run):
        async def scenario(client, service):
            status, payload = await client.fuzz_replay("deadbeef")
            assert status == 400
            assert "no reproducer matching" in payload["error"]

        service_run(scenario)
