"""Larger-scale smoke tests: the substrate at sizes beyond the unit tests.

Kept fast enough for the default suite (a few seconds total) but large
enough to exercise thousands of processes, deep pipelines, and big chord
enumerations.
"""

import pytest

from repro import compile_systolic, run_sequential
from repro.runtime import Channel, Recv, Scheduler, Send, execute
from repro.systolic import all_paper_designs
from repro.verify import random_inputs

ALL = all_paper_designs()


class TestLargeDesigns:
    def test_d1_n32(self):
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        n = 32
        inputs = random_inputs(prog, {"n": n}, seed=1)
        final, stats = execute(sp, {"n": n}, inputs)
        assert final == run_sequential(prog, {"n": n}, inputs)
        # n+1 compute, n+1 latches (stream b), 3 inputs, 3 outputs
        assert stats.process_count == 2 * (n + 1) + 6

    def test_e2_n6(self):
        exp_id, prog, array = ALL[3]
        sp = compile_systolic(prog, array)
        n = 6
        inputs = random_inputs(prog, {"n": n}, seed=2)
        final, stats = execute(sp, {"n": n}, inputs)
        assert final == run_sequential(prog, {"n": n}, inputs)
        assert stats.process_count > 300

    def test_d2_n24(self):
        exp_id, prog, array = ALL[1]
        sp = compile_systolic(prog, array)
        n = 24
        inputs = random_inputs(prog, {"n": n}, seed=3)
        final, stats = execute(sp, {"n": n}, inputs)
        assert final == run_sequential(prog, {"n": n}, inputs)


class TestSchedulerScale:
    def test_thousand_process_pipeline(self):
        stages = 1000
        sched = Scheduler()
        chans = [sched.add_channel(Channel(f"c{i}")) for i in range(stages + 1)]

        def stage(i):
            def body():
                for _ in range(3):
                    v = yield Recv(chans[i])
                    yield Send(chans[i + 1], v + 1)

            return body()

        def src():
            for k in range(3):
                yield Send(chans[0], k)

        got = []

        def sink():
            for _ in range(3):
                got.append((yield Recv(chans[stages])))

        sched.spawn("src", src())
        for i in range(stages):
            sched.spawn(f"s{i}", stage(i))
        sched.spawn("sink", sink())
        stats = sched.run()
        assert got == [stages, stages + 1, stages + 2]
        assert stats.process_count == stages + 2
        # pipeline makespan is Theta(stages + messages), not their product
        assert stats.makespan < 3 * (stages + 3)

    def test_wide_fan(self):
        width = 500
        sched = Scheduler()
        chans = [sched.add_channel(Channel(f"c{i}")) for i in range(width)]
        total = []

        def sender(i):
            def body():
                yield Send(chans[i], i)

            return body()

        def receiver():
            acc = 0
            for c in chans:
                acc += yield Recv(c)
            total.append(acc)

        for i in range(width):
            sched.spawn(f"snd{i}", sender(i))
        sched.spawn("rcv", receiver())
        sched.run()
        assert total == [width * (width - 1) // 2]


class TestCompileScale:
    def test_compile_is_size_independent(self):
        """One compiled object instantiates at any n without recompiling."""
        exp_id, prog, array = ALL[3]
        sp = compile_systolic(prog, array)
        assert sp.process_space({"n": 1}).size == 9
        assert sp.process_space({"n": 50}).size == 101 * 101
        # symbolic artefacts unchanged by instantiation
        assert len(sp.first.cases) == 3
