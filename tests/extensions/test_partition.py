"""Tile bands over the wavefront schedule (block-fold activity masks)."""

import pytest

from repro import compile_systolic
from repro.extensions import TileBand, wavefront_tile_bands
from repro.systolic import all_paper_designs
from repro.util.errors import RuntimeSimulationError

numpy = pytest.importorskip("numpy")

DESIGNS = {e: (p, a) for e, p, a in all_paper_designs()}


def compiled(exp_id):
    prog, arr = DESIGNS[exp_id]
    return compile_systolic(prog, arr)


class TestWavefrontTileBands:
    @pytest.mark.parametrize("exp_id", sorted(DESIGNS))
    @pytest.mark.parametrize("bands", [1, 2, 3])
    def test_bands_tile_the_schedule(self, exp_id, bands):
        """Bands are contiguous, disjoint, and account for every statement."""
        sp = compiled(exp_id)
        env = {"n": 4}
        tiles = wavefront_tile_bands(sp, env, bands)
        assert 1 <= len(tiles) <= bands
        # contiguous and disjoint along the leading coordinate
        for a, b in zip(tiles, tiles[1:]):
            assert b.lo == a.hi + 1
        # per step, band works sum to the wavefront width
        from repro.analysis.wavefront import wavefront_schedule

        schedule = wavefront_schedule(sp, env)
        for s, step in enumerate(schedule.steps):
            assert sum(t.work[s] for t in tiles) == step.width
        # masks agree with counts
        for t in tiles:
            assert len(t.active_steps) == schedule.n_steps
            assert all((w > 0) == a for w, a in zip(t.work, t.active_steps))
        # all statements accounted for exactly once
        assert sum(t.total_work for t in tiles) == schedule.total_points

    def test_single_band_is_the_whole_schedule(self):
        sp = compiled("D1")
        (tile,) = wavefront_tile_bands(sp, {"n": 4}, 1)
        from repro.analysis.wavefront import wavefront_schedule

        schedule = wavefront_schedule(sp, {"n": 4})
        assert tile.work == tuple(s.width for s in schedule.steps)
        assert all(tile.active_steps)
        assert tile.busy_steps == schedule.n_steps

    def test_band_wavefront_sweeps_through(self):
        """On D1 the wavefront enters low bands before it leaves high ones."""
        sp = compiled("D1")
        tiles = wavefront_tile_bands(sp, {"n": 6}, 3)
        firsts = [t.active_steps.index(True) for t in tiles]
        assert firsts == sorted(firsts)

    def test_more_bands_than_cells_clamps(self):
        sp = compiled("D1")
        tiles = wavefront_tile_bands(sp, {"n": 2}, 100)
        spans = [t.hi - t.lo for t in tiles]
        assert all(s == 0 for s in spans)  # one cell column per band

    def test_str_and_errors(self):
        sp = compiled("D1")
        tiles = wavefront_tile_bands(sp, {"n": 3}, 2)
        assert isinstance(tiles[0], TileBand)
        assert "band 0" in str(tiles[0])
        with pytest.raises(RuntimeSimulationError):
            wavefront_tile_bands(sp, {"n": 3}, 0)

    @pytest.mark.parametrize("exp_id", sorted(DESIGNS))
    @pytest.mark.parametrize("bands", [2, 3])
    def test_bands_agree_with_partitioned_schedule(self, exp_id, bands):
        """The numpy-derived tile bands and the symbolic specialization
        describe the identical cut: same edges, same per-step work."""
        from repro.extensions import partitioned_schedule

        sp = compiled(exp_id)
        env = {"n": 4}
        tiles = wavefront_tile_bands(sp, env, bands)
        schedule = partitioned_schedule(sp, env, (bands,), use_cache=False)
        assert len(tiles) == len(schedule.bands)
        for t, b in zip(tiles, schedule.bands):
            assert (t.lo, t.hi) == (b.lo, b.hi)
            assert t.work == b.work
            assert t.active_steps == b.active_steps


class TestBandedNpgen:
    @pytest.mark.parametrize("exp_id", sorted(DESIGNS))
    @pytest.mark.parametrize("n", [2, 4])
    def test_banded_bit_identical_to_unbounded(self, exp_id, n):
        from repro.target.npgen import execute_numpy_banded, execute_numpy_batch
        from repro.verify import random_inputs

        prog, arr = DESIGNS[exp_id]
        sp = compiled(exp_id)
        batch = [random_inputs(prog, {"n": n}, seed=s) for s in range(3)]
        want = execute_numpy_batch(sp, {"n": n}, batch)
        shapes = [(2,), (3,)]
        if len(sp.coords) >= 2:
            shapes.append((2, 2))
        for shape in shapes:
            got = execute_numpy_banded(sp, {"n": n}, batch, shape=shape)
            assert got == want, shape

    def test_banded_matches_oracle(self):
        from repro import run_sequential
        from repro.target.npgen import execute_numpy_banded
        from repro.verify import random_inputs

        prog, arr = DESIGNS["E2"]
        sp = compiled("E2")
        inputs = random_inputs(prog, {"n": 3}, seed=5)
        oracle = run_sequential(prog, {"n": 3}, inputs)
        got = execute_numpy_banded(sp, {"n": 3}, [inputs], shape=(2, 2))[0]
        for var, expected in oracle.items():
            for element, value in expected.items():
                assert got[var][tuple(element)] == value

    def test_band_cols_cached_per_shape(self):
        from repro.analysis.wavefront import wavefront_schedule
        from repro.target.npgen import execute_numpy_banded
        from repro.verify import random_inputs

        prog, arr = DESIGNS["D1"]
        sp = compiled("D1")
        inputs = random_inputs(prog, {"n": 3}, seed=0)
        execute_numpy_banded(sp, {"n": 3}, [inputs], shape=(2,))
        schedule = wavefront_schedule(sp, {"n": 3})
        keys = [k for k in schedule.runtime_cache if isinstance(k, tuple)
                and k and k[0] == "npgen_band_cols"]
        assert keys  # banded slicing survives for the next run
        execute_numpy_banded(sp, {"n": 3}, [inputs], shape=(3,))
        keys = [k for k in schedule.runtime_cache if isinstance(k, tuple)
                and k and k[0] == "npgen_band_cols"]
        assert len(keys) == 2  # one slicing per band-edge vector

    def test_empty_batch_rejected(self):
        from repro.target.npgen import execute_numpy_banded
        from repro.util.errors import CompilationError

        sp = compiled("D1")
        with pytest.raises(CompilationError):
            execute_numpy_banded(sp, {"n": 3}, [], shape=(2,))


class TestVerifyDesignPartition:
    @pytest.mark.parametrize("backend", ["sim", "npgen"])
    def test_verify_partitioned_backends(self, backend):
        from repro.verify import verify_design

        prog, arr = DESIGNS["E1"]
        report = verify_design(
            prog, arr, {"n": 3}, backend=backend, partition=(2,)
        )
        assert report.matched

    def test_pygen_has_no_partitioned_mode(self):
        from repro.util.errors import VerificationError
        from repro.verify import verify_design

        prog, arr = DESIGNS["D1"]
        with pytest.raises(VerificationError):
            verify_design(prog, arr, {"n": 3}, backend="pygen", partition=(2,))
