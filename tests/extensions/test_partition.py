"""Tile bands over the wavefront schedule (block-fold activity masks)."""

import pytest

from repro import compile_systolic
from repro.extensions import TileBand, wavefront_tile_bands
from repro.systolic import all_paper_designs
from repro.util.errors import RuntimeSimulationError

numpy = pytest.importorskip("numpy")

DESIGNS = {e: (p, a) for e, p, a in all_paper_designs()}


def compiled(exp_id):
    prog, arr = DESIGNS[exp_id]
    return compile_systolic(prog, arr)


class TestWavefrontTileBands:
    @pytest.mark.parametrize("exp_id", sorted(DESIGNS))
    @pytest.mark.parametrize("bands", [1, 2, 3])
    def test_bands_tile_the_schedule(self, exp_id, bands):
        """Bands are contiguous, disjoint, and account for every statement."""
        sp = compiled(exp_id)
        env = {"n": 4}
        tiles = wavefront_tile_bands(sp, env, bands)
        assert 1 <= len(tiles) <= bands
        # contiguous and disjoint along the leading coordinate
        for a, b in zip(tiles, tiles[1:]):
            assert b.lo == a.hi + 1
        # per step, band works sum to the wavefront width
        from repro.analysis.wavefront import wavefront_schedule

        schedule = wavefront_schedule(sp, env)
        for s, step in enumerate(schedule.steps):
            assert sum(t.work[s] for t in tiles) == step.width
        # masks agree with counts
        for t in tiles:
            assert len(t.active_steps) == schedule.n_steps
            assert all((w > 0) == a for w, a in zip(t.work, t.active_steps))
        # all statements accounted for exactly once
        assert sum(t.total_work for t in tiles) == schedule.total_points

    def test_single_band_is_the_whole_schedule(self):
        sp = compiled("D1")
        (tile,) = wavefront_tile_bands(sp, {"n": 4}, 1)
        from repro.analysis.wavefront import wavefront_schedule

        schedule = wavefront_schedule(sp, {"n": 4})
        assert tile.work == tuple(s.width for s in schedule.steps)
        assert all(tile.active_steps)
        assert tile.busy_steps == schedule.n_steps

    def test_band_wavefront_sweeps_through(self):
        """On D1 the wavefront enters low bands before it leaves high ones."""
        sp = compiled("D1")
        tiles = wavefront_tile_bands(sp, {"n": 6}, 3)
        firsts = [t.active_steps.index(True) for t in tiles]
        assert firsts == sorted(firsts)

    def test_more_bands_than_cells_clamps(self):
        sp = compiled("D1")
        tiles = wavefront_tile_bands(sp, {"n": 2}, 100)
        spans = [t.hi - t.lo for t in tiles]
        assert all(s == 0 for s in spans)  # one cell column per band

    def test_str_and_errors(self):
        sp = compiled("D1")
        tiles = wavefront_tile_bands(sp, {"n": 3}, 2)
        assert isinstance(tiles[0], TileBand)
        assert "band 0" in str(tiles[0])
        with pytest.raises(RuntimeSimulationError):
            wavefront_tile_bands(sp, {"n": 3}, 0)
