"""Tests for the under-rank stream pipelining lift (Section 3.1's Note)."""

import pytest

from repro import compile_systolic, parse_program, run_sequential, validate_program
from repro.extensions import pipeline_program
from repro.geometry import Matrix, Point
from repro.runtime import execute
from repro.systolic import SystolicArray, polynomial_product_program
from repro.util.errors import RestrictionViolation, SourceProgramError

WEIGHTED = """
program weighted
size n
var a[0..n, 0..n], w[0..n], c[0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
for k = 0 <- 1 -> n
    c[i,j] := c[i,j] + a[i,k] * w[k]
"""


def weighted_inputs(n):
    return {
        "a": {Point.of(i, k): i + 2 * k for i in range(n + 1) for k in range(n + 1)},
        "w": {Point.of(k): k + 1 for k in range(n + 1)},
        "c": 0,
    }


def e1_style_array():
    return SystolicArray(
        step=Matrix([[1, 1, 1]]),
        place=Matrix([[1, 0, 0], [0, 1, 0]]),
        loading_vectors={"c": Point.of(1, 0)},
    )


class TestLift:
    def test_underrank_stream_lifted(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        assert len(pp.lifts) == 1
        lift = pp.lifts[0]
        assert lift.name == "w" and lift.original_dim == 1
        w = pp.program.stream("w")
        assert w.index_map.shape == (2, 3)
        assert w.index_map.rank == 2
        assert w.variable.dim == 2

    def test_full_rank_streams_untouched(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        original = parse_program(WEIGHTED)
        assert pp.program.stream("a").index_map == original.stream("a").index_map
        assert pp.program.stream("c").index_map == original.stream("c").index_map

    def test_lifted_program_validates(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        validate_program(pp.program)

    def test_already_valid_program_is_noop(self):
        prog = polynomial_product_program()
        pp = pipeline_program(prog)
        assert pp.lifts == ()
        assert pp.program.streams == prog.streams

    def test_written_underrank_rejected(self):
        text = """
size n
var w[0..n], a[0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
for k = 0 <- 1 -> n
    w[k] := w[k] + a[i,j]
"""
        with pytest.raises(RestrictionViolation):
            pipeline_program(parse_program(text))

    def test_added_bounds_come_from_loops(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        w = pp.program.stream("w").variable
        # the second dimension is a copy of loop i's bounds 0..n
        assert str(w.bounds[1][0]) == "0"
        assert str(w.bounds[1][1]) == "n"


class TestAdaptors:
    def test_expand_inputs_broadcast(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        n = 2
        lifted = pp.expand_inputs({"n": n}, weighted_inputs(n))
        w = lifted["w"]
        for k in range(n + 1):
            values = {w[Point.of(k, extra)] for extra in range(n + 1)}
            assert values == {k + 1}

    def test_expand_missing_element(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        bad = weighted_inputs(2)
        del bad["w"][Point.of(0)]
        with pytest.raises(SourceProgramError):
            pp.expand_inputs({"n": 2}, bad)

    def test_project_outputs_collapses(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        n = 1
        lifted = pp.expand_inputs({"n": n}, weighted_inputs(n))
        projected = pp.project_outputs({"w": lifted["w"]})
        assert projected["w"] == {Point(k): v for k, v in weighted_inputs(n)["w"].items()}

    def test_project_detects_disagreement(self):
        pp = pipeline_program(parse_program(WEIGHTED))
        bad = {Point.of(0, 0): 1, Point.of(0, 1): 2}
        with pytest.raises(SourceProgramError):
            pp.project_outputs({"w": bad})


class TestEndToEnd:
    @pytest.mark.parametrize("n", [1, 3])
    def test_lifted_execution_matches_original_oracle(self, n):
        prog = parse_program(WEIGHTED)
        pp = pipeline_program(prog)
        sp = compile_systolic(pp.program, e1_style_array())
        inputs = weighted_inputs(n)
        final, _ = execute(sp, {"n": n}, pp.expand_inputs({"n": n}, inputs))
        projected = pp.project_outputs(final)
        oracle = run_sequential(prog, {"n": n}, inputs)
        assert projected["c"] == oracle["c"]
        assert projected["w"] == oracle["w"]
        assert projected["a"] == oracle["a"]
