"""A/B identity of the two scheduler engines, and request-validation fixes.

The fast single-op engine (``REPRO_SCHED_FAST=1``, the default) must be
*behaviorally invisible*: for every network the fast and generic engines
produce identical final values, identical :class:`SchedulerStats`,
identical trace event streams, and -- on deadlocking networks -- identical
report text.  This module pins that bar on all four paper designs, on the
historical corpus deadlock seed, and on hand-built networks, plus the
request-validation bugfixes that landed with the engine:

* a malformed ``Par`` (nested ``Par``, non-op member, zero members) raises
  a named :class:`RuntimeSimulationError` at yield time instead of dying
  with an ``AttributeError`` deep in the rendezvous machinery;
* a worker assignment that misses spawned processes raises at ``run()``
  start instead of silently skipping them (wrong makespans);
* a second ``run()`` raises instead of silently returning zero-round stats
  computed from stale state.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro import compile_systolic, run_sequential
from repro.fuzz.compiled import CompiledInstance
from repro.fuzz.corpus import load_reproducer
from repro.runtime import Channel, Par, Recv, Scheduler, Send
from repro.runtime.network import network_plan
from repro.runtime.scheduler import fast_engine_enabled
from repro.runtime.trace import attach_tracer
from repro.systolic import all_paper_designs
from repro.util.errors import DeadlockError, RuntimeSimulationError
from repro.verify import random_inputs

CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"
PINNED_DEADLOCK_CASE = CORPUS / "seed_2c6a5806697e.json"


@contextmanager
def _engine(flag: str):
    """Select the scheduler engine for Schedulers constructed inside."""
    prior = os.environ.get("REPRO_SCHED_FAST")
    os.environ["REPRO_SCHED_FAST"] = flag
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_SCHED_FAST", None)
        else:
            os.environ["REPRO_SCHED_FAST"] = prior


def _traced_run(plan, inputs, *, timing=True):
    """(final values, stats, trace events, deadlock text) of one run."""
    network = plan.instantiate(inputs)
    trace = attach_tracer(network)
    try:
        stats = network.run(timing=timing)
        deadlock = None
    except DeadlockError as exc:
        stats = None
        deadlock = str(exc)
    return network.host.final, stats, trace.events, deadlock


def _ab(plan, inputs, *, timing=True):
    with _engine("1"):
        fast = _traced_run(plan, inputs, timing=timing)
    with _engine("0"):
        generic = _traced_run(plan, inputs, timing=timing)
    return fast, generic


class TestEngineIdentityOnPaperDesigns:
    @pytest.mark.parametrize(
        "exp_id", [d[0] for d in all_paper_designs()]
    )
    def test_values_stats_and_trace_identical(self, exp_id):
        """Byte-stable A/B on every paper design: values, stats, trace."""
        prog, array = next(
            (p, a) for eid, p, a in all_paper_designs() if eid == exp_id
        )
        n = 3
        sp = compile_systolic(prog, array)
        inputs = random_inputs(prog, {"n": n}, seed=0)
        oracle = run_sequential(prog, {"n": n}, inputs)
        plan = network_plan(sp, {"n": n})
        fast, generic = _ab(plan, inputs)
        assert fast[3] is None and generic[3] is None
        assert fast[0] == oracle
        assert fast[0] == generic[0]
        # dataclass equality covers makespan, rounds, per-channel messages,
        # per-process clocks -- the whole stats surface
        assert fast[1] == generic[1]
        assert fast[2] == generic[2]
        assert len(fast[2]) > 0

    def test_timing_off_identical_on_fast_path(self):
        """timing=False on the fast engine: same values/messages, no clock."""
        exp_id, prog, array = all_paper_designs()[0]
        sp = compile_systolic(prog, array)
        inputs = random_inputs(prog, {"n": 3}, seed=1)
        plan = network_plan(sp, {"n": 3})
        fast_t, generic_t = _ab(plan, inputs, timing=True)
        fast_u, generic_u = _ab(plan, inputs, timing=False)
        assert fast_u[0] == fast_t[0] == generic_u[0]
        assert fast_u[1] == generic_u[1]
        assert fast_u[1].makespan == 0
        assert fast_u[1].total_messages == fast_t[1].total_messages
        assert fast_u[1].scheduler_rounds == fast_t[1].scheduler_rounds


class TestEngineIdentityOnDeadlocks:
    def test_pinned_corpus_seed_identical_on_both_engines(self):
        """The historical deadlock pin runs clean and identically A/B."""
        instance, _config, _raw = load_reproducer(PINNED_DEADLOCK_CASE)
        compiled = CompiledInstance.build(instance)
        inputs = compiled.inputs(0)
        fast, generic = _ab(compiled.plan(), inputs)
        assert fast[3] is None and generic[3] is None
        assert fast[0] == generic[0]
        assert fast[1] == generic[1]
        assert fast[2] == generic[2]

    def test_planted_deadlock_report_text_identical(self):
        """A planted deadlock yields byte-identical report text A/B."""
        instance, _config, _raw = load_reproducer(PINNED_DEADLOCK_CASE)
        compiled = CompiledInstance.build(instance, mutate="soak_plus_one")
        inputs = compiled.inputs(0)
        fast, generic = _ab(compiled.plan(), inputs)
        assert fast[3] is not None
        assert fast[3] == generic[3]
        assert "cannot progress" in fast[3]
        # the event streams up to the deadlock must match too
        assert fast[2] == generic[2]

    def test_hand_built_deadlock_report_identical(self):
        """Mixed parked shapes (bare ops and a Par) report identically."""

        def build():
            sched = Scheduler()
            c1 = sched.add_channel(Channel("c1"))
            c2 = sched.add_channel(Channel("c2"))

            def starved():
                yield Recv(c1)

            def stuck_par():
                yield Par([Send(c2, 7), Recv(c1)])

            sched.spawn("starved", starved(), single_op=True)
            sched.spawn("stuck", stuck_par())
            return sched

        reports = {}
        for flag in ("1", "0"):
            with _engine(flag):
                sched = build()
            with pytest.raises(DeadlockError) as info:
                sched.run()
            reports[flag] = str(info.value)
        assert reports["1"] == reports["0"]
        assert "starved: waiting on recv c1" in reports["1"]


class TestParValidation:
    """Malformed Par requests die with a named error at yield time.

    ``Par.__init__`` already validates, so the malformed shapes are built
    via ``__new__`` -- modelling a corrupted or hand-rolled request object,
    which previously fell through to a raw ``AttributeError`` inside
    ``_try_recv``.
    """

    @staticmethod
    def _raw_par(ops) -> Par:
        par = Par.__new__(Par)
        par.ops = tuple(ops)
        return par

    @pytest.mark.parametrize("engine", ["1", "0"])
    def test_nested_par_rejected(self, engine):
        with _engine(engine):
            sched = Scheduler()
            chan = sched.add_channel(Channel("c"))
            inner = self._raw_par([Recv(chan)])
            bad = self._raw_par([Send(chan, 1), inner])

            def proc():
                yield bad

            sched.spawn("offender", proc())
        with pytest.raises(RuntimeSimulationError, match="offender.*Par"):
            sched.run()

    @pytest.mark.parametrize("engine", ["1", "0"])
    def test_non_op_member_rejected(self, engine):
        with _engine(engine):
            sched = Scheduler()
            chan = sched.add_channel(Channel("c"))
            bad = self._raw_par([Recv(chan), "not an op"])

            def proc():
                yield bad

            sched.spawn("offender", proc())
        with pytest.raises(
            RuntimeSimulationError, match="offender.*not an op"
        ):
            sched.run()

    @pytest.mark.parametrize("engine", ["1", "0"])
    def test_empty_par_rejected(self, engine):
        with _engine(engine):
            sched = Scheduler()
            bad = self._raw_par([])

            def proc():
                yield bad

            sched.spawn("offender", proc())
        with pytest.raises(RuntimeSimulationError, match="offender.*empty Par"):
            sched.run()

    def test_no_channel_side_effects_before_error(self):
        """Validation fires before any sub-op touches a channel."""
        sched = Scheduler()
        chan = sched.add_channel(Channel("c", capacity=4))
        bad = self._raw_par([Send(chan, 1), object()])

        def proc():
            yield bad

        sched.spawn("offender", proc())
        with pytest.raises(RuntimeSimulationError):
            sched.run()
        assert chan.messages_carried == 0
        assert not chan.queue


class TestWorkerAssignmentValidation:
    def test_uncovered_process_raises_named_error(self):
        sched = Scheduler()
        chan = sched.add_channel(Channel("c"))

        def ping():
            yield Send(chan, 1)

        def pong():
            yield Recv(chan)

        sched.spawn("ping", ping())
        sched.spawn("pong", pong())
        sched.assign_workers({"ping": 0})  # typo'd/partial assignment
        with pytest.raises(RuntimeSimulationError, match="uncovered: pong"):
            sched.run()

    def test_full_assignment_still_runs(self):
        sched = Scheduler()
        chan = sched.add_channel(Channel("c"))

        def ping():
            yield Send(chan, 1)

        def pong():
            yield Recv(chan)

        sched.spawn("ping", ping())
        sched.spawn("pong", pong())
        sched.assign_workers({"ping": 0, "pong": 0})
        stats = sched.run()
        assert stats.total_messages == 1


class TestRunReentry:
    @pytest.mark.parametrize("engine", ["1", "0"])
    def test_second_run_raises_and_first_stats_survive(self, engine):
        with _engine(engine):
            sched = Scheduler()
            chan = sched.add_channel(Channel("c"))

            def producer():
                for i in range(3):
                    yield Send(chan, i)

            def consumer():
                for _ in range(3):
                    yield Recv(chan)

            sched.spawn("p", producer())
            sched.spawn("c", consumer())
        stats = sched.run()
        rounds, messages = stats.scheduler_rounds, stats.total_messages
        with pytest.raises(RuntimeSimulationError, match="already ran"):
            sched.run()
        # the failed re-entry must not have touched the first run's stats
        assert stats.scheduler_rounds == rounds > 0
        assert stats.total_messages == messages == 3

    def test_reentry_raises_even_after_deadlock(self):
        sched = Scheduler()
        chan = sched.add_channel(Channel("c"))

        def lonely():
            yield Recv(chan)

        sched.spawn("lonely", lonely())
        with pytest.raises(DeadlockError):
            sched.run()
        with pytest.raises(RuntimeSimulationError, match="already ran"):
            sched.run()


class TestSingleOpDeclaration:
    def test_mis_declared_par_still_works(self):
        """single_op is a hint: a Par from a declared process is correct."""

        def build():
            sched = Scheduler()
            c1 = sched.add_channel(Channel("c1"))
            c2 = sched.add_channel(Channel("c2"))
            got = []

            def fanout():
                # declared single-op below, but yields a Par anyway
                yield Par([Send(c1, 10), Send(c2, 20)])

            def sink():
                a = yield Recv(c1)
                b = yield Recv(c2)
                got.append((a, b))

            sched.spawn("fanout", fanout(), single_op=True)
            sched.spawn("sink", sink(), single_op=True)
            return sched, got

        results = {}
        for flag in ("1", "0"):
            with _engine(flag):
                sched, got = build()
            stats = sched.run()
            results[flag] = (got[0], stats)
        assert results["1"][0] == results["0"][0] == (10, 20)
        assert results["1"][1] == results["0"][1]

    def test_engine_flag_is_read_at_construction(self):
        with _engine("0"):
            sched = Scheduler()
            assert not sched._fast
        with _engine("1"):
            assert fast_engine_enabled()
            sched = Scheduler()
            assert sched._fast
