"""Unit tests for the channel/scheduler substrate."""

import pytest

from repro.runtime import Channel, Par, Recv, Scheduler, Send
from repro.util.errors import DeadlockError, RuntimeSimulationError


def make_sched():
    return Scheduler()


class TestChannel:
    def test_push_pop(self):
        c = Channel("c", capacity=2)
        c.push(1, 0)
        c.push(2, 0)
        assert not c.has_room()
        assert c.pop().value == 1
        assert c.has_room()

    def test_push_full_raises(self):
        c = Channel("c", capacity=0)
        with pytest.raises(RuntimeSimulationError):
            c.push(1, 0)

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeSimulationError):
            Channel("c").pop()

    def test_negative_capacity(self):
        with pytest.raises(RuntimeSimulationError):
            Channel("c", capacity=-1)

    def test_stats(self):
        c = Channel("c", capacity=3)
        c.push(1, 0)
        c.push(2, 0)
        c.pop()
        assert c.messages_carried == 2
        assert c.max_occupancy == 2


class TestBasicCommunication:
    @pytest.mark.parametrize("capacity", [0, 1, 5])
    def test_ping_pong(self, capacity):
        sched = make_sched()
        chan = sched.add_channel(Channel("c", capacity=capacity))
        received = []

        def producer():
            for i in range(10):
                yield Send(chan, i)

        def consumer():
            for _ in range(10):
                v = yield Recv(chan)
                received.append(v)

        sched.spawn("prod", producer())
        sched.spawn("cons", consumer())
        stats = sched.run()
        assert received == list(range(10))
        assert stats.total_messages == 10

    def test_pipeline_chain(self):
        sched = make_sched()
        chans = [sched.add_channel(Channel(f"c{i}")) for i in range(4)]
        result = []

        def stage(i):
            def body():
                for _ in range(5):
                    v = yield Recv(chans[i])
                    yield Send(chans[i + 1], v + 1)

            return body()

        def source():
            for i in range(5):
                yield Send(chans[0], i)

        def sink():
            for _ in range(5):
                result.append((yield Recv(chans[3])))

        sched.spawn("src", source())
        for i in range(3):
            sched.spawn(f"s{i}", stage(i))
        sched.spawn("sink", sink())
        sched.run()
        assert result == [3, 4, 5, 6, 7]

    def test_fifo_order_preserved(self):
        sched = make_sched()
        chan = sched.add_channel(Channel("c", capacity=3))
        out = []

        def producer():
            for i in range(20):
                yield Send(chan, i)

        def consumer():
            for _ in range(20):
                out.append((yield Recv(chan)))

        sched.spawn("p", producer())
        sched.spawn("c", consumer())
        sched.run()
        assert out == list(range(20))

    def test_duplicate_name_rejected(self):
        sched = make_sched()

        def noop():
            return
            yield

        sched.spawn("x", noop())
        with pytest.raises(RuntimeSimulationError):
            sched.spawn("x", noop())


class TestPar:
    def test_par_recv_any_order(self):
        sched = make_sched()
        c1 = sched.add_channel(Channel("c1", capacity=0))
        c2 = sched.add_channel(Channel("c2", capacity=0))
        got = {}

        def worker():
            vals = yield Par([Recv(c1), Recv(c2)])
            got["vals"] = vals

        def sender2():
            yield Send(c2, "two")

        def sender1():
            yield Send(c1, "one")

        sched.spawn("w", worker())
        sched.spawn("s2", sender2())  # c2 arrives "first"
        sched.spawn("s1", sender1())
        sched.run()
        assert got["vals"] == ["one", "two"]  # results in member order

    def test_par_mixed_send_recv(self):
        sched = make_sched()
        cin = sched.add_channel(Channel("in", capacity=0))
        cout = sched.add_channel(Channel("out", capacity=0))
        result = []

        def relay():
            vals = yield Par([Recv(cin), Send(cout, 99)])
            result.append(vals[0])

        def left():
            yield Send(cin, 7)

        def right():
            result.append((yield Recv(cout)))

        sched.spawn("relay", relay())
        sched.spawn("l", left())
        sched.spawn("r", right())
        sched.run()
        assert sorted(result) == [7, 99]

    def test_par_avoids_ordering_deadlock(self):
        """Two processes exchanging values: sequential recv/send on capacity-0
        channels would deadlock; Par must not."""
        sched = make_sched()
        ab = sched.add_channel(Channel("ab", capacity=0))
        ba = sched.add_channel(Channel("ba", capacity=0))
        out = {}

        def a():
            vals = yield Par([Send(ab, "from-a"), Recv(ba)])
            out["a"] = vals[1]

        def b():
            vals = yield Par([Send(ba, "from-b"), Recv(ab)])
            out["b"] = vals[1]

        sched.spawn("a", a())
        sched.spawn("b", b())
        sched.run()
        assert out == {"a": "from-b", "b": "from-a"}

    def test_bad_par_member(self):
        with pytest.raises(RuntimeSimulationError):
            Par(["bogus"])

    def test_bad_yield_value(self):
        sched = make_sched()

        def bad():
            yield "nope"

        sched.spawn("bad", bad())
        with pytest.raises(RuntimeSimulationError):
            sched.run()


class TestDeadlock:
    def test_recv_with_no_sender(self):
        sched = make_sched()
        chan = sched.add_channel(Channel("c"))

        def lonely():
            yield Recv(chan)

        sched.spawn("lonely", lonely())
        with pytest.raises(DeadlockError) as err:
            sched.run()
        assert "lonely" in str(err.value)
        assert "recv c" in str(err.value)

    def test_cyclic_rendezvous_deadlock(self):
        sched = make_sched()
        ab = sched.add_channel(Channel("ab", capacity=0))
        ba = sched.add_channel(Channel("ba", capacity=0))

        def a():
            yield Send(ab, 1)  # blocks: b is also sending
            yield Recv(ba)

        def b():
            yield Send(ba, 1)
            yield Recv(ab)

        sched.spawn("a", a())
        sched.spawn("b", b())
        # capacity-0 cross sends with sequential ordering: both block forever
        with pytest.raises(DeadlockError):
            sched.run()

    def test_max_rounds(self):
        sched = make_sched()
        chan = sched.add_channel(Channel("c", capacity=1))

        def chatter():
            for i in range(1000):
                yield Send(chan, i)

        def listener():
            for _ in range(1000):
                yield Recv(chan)

        sched.spawn("c1", chatter())
        sched.spawn("c2", listener())
        with pytest.raises(RuntimeSimulationError):
            sched.run(max_rounds=10)


class TestVirtualTime:
    def test_pipeline_makespan_linear(self):
        """A k-stage pipeline of m messages has makespan ~ k + m, not k*m."""

        def run(stages, messages):
            sched = make_sched()
            chans = [sched.add_channel(Channel(f"c{i}")) for i in range(stages + 1)]

            def src():
                for i in range(messages):
                    yield Send(chans[0], i)

            def stage(i):
                def body():
                    for _ in range(messages):
                        v = yield Recv(chans[i])
                        yield Send(chans[i + 1], v)

                return body()

            def sink():
                for _ in range(messages):
                    yield Recv(chans[stages])

            sched.spawn("src", src())
            for i in range(stages):
                sched.spawn(f"st{i}", stage(i))
            sched.spawn("sink", sink())
            return sched.run().makespan

        m_small = run(stages=4, messages=4)
        m_large = run(stages=4, messages=8)
        # doubling messages must NOT double the makespan of a pipeline
        assert m_large < 2 * m_small
        assert m_large > m_small

    def test_determinism(self):
        """Two identical runs produce identical stats."""

        def build():
            sched = make_sched()
            c1 = sched.add_channel(Channel("c1"))
            c2 = sched.add_channel(Channel("c2"))

            def a():
                for i in range(5):
                    yield Send(c1, i)
                    yield Recv(c2)

            def b():
                for _ in range(5):
                    v = yield Recv(c1)
                    yield Send(c2, v * 2)

            sched.spawn("a", a())
            sched.spawn("b", b())
            return sched.run()

        s1, s2 = build(), build()
        assert s1.makespan == s2.makespan
        assert s1.per_channel_messages == s2.per_channel_messages
        assert s1.scheduler_rounds == s2.scheduler_rounds


class TestSpawnScaling:
    def test_many_processes_spawn_fast(self):
        """Name bookkeeping is O(1) per spawn: 10k processes must register
        in well under a second (the old linear scan took quadratic time)."""
        import time

        def noop():
            yield from ()

        sched = make_sched()
        t0 = time.perf_counter()
        for i in range(10_000):
            sched.spawn(f"p{i}", noop())
        elapsed = time.perf_counter() - t0
        assert elapsed < 2.0, f"10k spawns took {elapsed:.2f}s"
        assert len(sched.process_names) == 10_000

    def test_duplicates_still_rejected(self):
        def noop():
            yield from ()

        sched = make_sched()
        for i in range(100):
            sched.spawn(f"p{i}", noop())
        with pytest.raises(RuntimeSimulationError):
            sched.spawn("p42", noop())
