"""Tests for execution tracing and the finite-machine partition extension."""

import pytest

from repro import compile_systolic, run_sequential
from repro.extensions import (
    block_assignment,
    partitioned_execute,
    round_robin_assignment,
)
from repro.extensions.partition import _position_of
from repro.geometry import Point
from repro.runtime import build_network
from repro.runtime.trace import Trace, TraceEvent, attach_tracer, trace_run
from repro.systolic import all_paper_designs
from repro.util.errors import RuntimeSimulationError
from repro.verify import random_inputs

ALL = all_paper_designs()


def setup_design(idx=0, n=3, seed=0):
    exp_id, prog, array = ALL[idx]
    sp = compile_systolic(prog, array)
    inputs = random_inputs(prog, {"n": n}, seed=seed)
    oracle = run_sequential(prog, {"n": n}, inputs)
    return sp, prog, inputs, oracle, n


class TestTrace:
    def test_trace_run_matches_plain_run(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        stats, trace = trace_run(net)
        assert net.host.final == oracle
        assert trace.makespan == stats.makespan

    def test_event_count_matches_requests(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        stats, trace = trace_run(net)
        # every completed request produced exactly one event
        assert len(trace.events) == sum(
            len(evs) for evs in trace.per_process_events().values()
        )
        assert len(trace.events) > stats.total_messages  # sends+recvs+pars

    def test_busy_intervals_ordered(self):
        sp, prog, inputs, oracle, n = setup_design(idx=2)
        net = build_network(sp, {"n": n}, inputs)
        _, trace = trace_run(net)
        for lo, hi in trace.busy_intervals().values():
            assert 0 <= lo <= hi <= trace.makespan

    def test_utilisation_bounds(self):
        sp, prog, inputs, oracle, n = setup_design(idx=2)
        net = build_network(sp, {"n": n}, inputs)
        _, trace = trace_run(net)
        for u in trace.utilisation().values():
            assert u > 0

    def test_wavefront_sums_to_events(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        _, trace = trace_run(net)
        assert sum(trace.wavefront().values()) == len(trace.events)

    def test_summary_text(self):
        t = Trace([TraceEvent("P(0,)", 3, "send"), TraceEvent("P(0,)", 5, "recv")])
        assert "2 events" in t.summary()
        assert t.compute_processes() == ["P(0,)"]


class TestInstrumentationIdempotence:
    """Regression: attaching a tracer twice used to stack wrapper on
    wrapper, double-instrumenting every process and double-counting its
    events."""

    def test_double_attach_does_not_double_count(self):
        sp, prog, inputs, oracle, n = setup_design()
        baseline_net = build_network(sp, {"n": n}, inputs)
        _, baseline = trace_run(baseline_net)

        net = build_network(sp, {"n": n}, inputs)
        first = attach_tracer(net)
        second = attach_tracer(net)  # replaces, must not stack
        net.run()
        assert len(second.events) == len(baseline.events)
        assert first.events == []  # superseded tracer receives nothing
        assert net.host.final == oracle

    def test_trace_run_twice_on_one_network(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        _, trace1 = trace_run(net)
        count = len(trace1.events)
        # a second trace_run re-instruments cleanly; the exhausted
        # generators simply produce no further events (not 2x events)
        _, trace2 = trace_run(net)
        assert len(trace1.events) == count
        assert trace2.events == []

    def test_attach_then_trace_run_counts_once(self):
        sp, prog, inputs, oracle, n = setup_design(idx=1)
        baseline_net = build_network(sp, {"n": n}, inputs)
        _, baseline = trace_run(baseline_net)

        net = build_network(sp, {"n": n}, inputs)
        attach_tracer(net)
        _, trace = trace_run(net)
        assert len(trace.events) == len(baseline.events)


class TestAssignments:
    def test_position_parsing(self):
        assert _position_of("P(1, 2)") == Point.of(1, 2)
        assert _position_of("B:a(0, -3)") == Point.of(0, -3)
        assert _position_of("L:b(2,)#0") == Point.of(2)
        assert _position_of("IN:a(-3, 1)") == Point.of(-3, 1)
        assert _position_of("noparens") is None

    def test_round_robin_covers_all_workers(self):
        names = [f"P({i},)" for i in range(10)]
        mapping = round_robin_assignment(names, 3)
        assert set(mapping.values()) == {0, 1, 2}

    def test_block_contiguity(self):
        names = [f"P({i},)" for i in range(8)]
        mapping = block_assignment(names, 2)
        # sorted-by-position processes split into two slabs
        first = [n for n, w in mapping.items() if w == 0]
        second = [n for n, w in mapping.items() if w == 1]
        assert len(first) == len(second) == 4
        assert max(_position_of(n)[0] for n in first) < min(
            _position_of(n)[0] for n in second
        )

    def test_invalid_worker_count(self):
        with pytest.raises(RuntimeSimulationError):
            round_robin_assignment(["a"], 0)
        with pytest.raises(RuntimeSimulationError):
            block_assignment(["a"], 0)


class TestPartitionedExecution:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("assignment", ["block", "round_robin"])
    def test_results_invariant_under_fold(self, workers, assignment):
        sp, prog, inputs, oracle, n = setup_design(idx=0)
        final, stats = partitioned_execute(
            sp, {"n": n}, inputs, workers=workers, assignment=assignment
        )
        assert final == oracle
        assert stats.makespan > 0

    def test_makespan_monotone_in_workers(self):
        sp, prog, inputs, oracle, n = setup_design(idx=2, n=4)
        spans = []
        for w in (1, 2, 4, 16):
            _, stats = partitioned_execute(sp, {"n": n}, inputs, workers=w)
            spans.append(stats.makespan)
        assert spans == sorted(spans, reverse=True)
        assert spans[0] > 2 * spans[-1]  # folding to 1 worker hurts a lot

    def test_single_worker_serializes_everything(self):
        """On one worker the makespan is at least one tick per event (plus
        a little slack where message stamps straddle the serialization)."""
        sp, prog, inputs, oracle, n = setup_design(idx=0, n=2)
        net = build_network(sp, {"n": n}, inputs)
        unbounded_stats, trace = trace_run(net)
        _, stats = partitioned_execute(sp, {"n": n}, inputs, workers=1)
        assert stats.makespan >= len(trace.events)
        assert stats.makespan <= len(trace.events) + unbounded_stats.makespan

    def test_unknown_assignment(self):
        sp, prog, inputs, oracle, n = setup_design()
        with pytest.raises(RuntimeSimulationError):
            partitioned_execute(sp, {"n": n}, inputs, workers=2, assignment="zigzag")
