"""Tests for execution tracing and the finite-machine partition extension."""

import pytest

from repro import compile_systolic, run_sequential
from repro.extensions import (
    band_edges,
    block_assignment,
    compile_partition,
    partitioned_execute,
    partitioned_schedule,
    round_robin_assignment,
)
from repro.extensions.partition import PARTITION_CACHE, _position_of, band_of
from repro.geometry import Point
from repro.runtime import build_network
from repro.runtime.trace import Trace, TraceEvent, attach_tracer, trace_run
from repro.systolic import all_paper_designs
from repro.util.errors import RuntimeSimulationError
from repro.verify import random_inputs

ALL = all_paper_designs()


def setup_design(idx=0, n=3, seed=0):
    exp_id, prog, array = ALL[idx]
    sp = compile_systolic(prog, array)
    inputs = random_inputs(prog, {"n": n}, seed=seed)
    oracle = run_sequential(prog, {"n": n}, inputs)
    return sp, prog, inputs, oracle, n


class TestTrace:
    def test_trace_run_matches_plain_run(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        stats, trace = trace_run(net)
        assert net.host.final == oracle
        assert trace.makespan == stats.makespan

    def test_event_count_matches_requests(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        stats, trace = trace_run(net)
        # every completed request produced exactly one event
        assert len(trace.events) == sum(
            len(evs) for evs in trace.per_process_events().values()
        )
        assert len(trace.events) > stats.total_messages  # sends+recvs+pars

    def test_busy_intervals_ordered(self):
        sp, prog, inputs, oracle, n = setup_design(idx=2)
        net = build_network(sp, {"n": n}, inputs)
        _, trace = trace_run(net)
        for lo, hi in trace.busy_intervals().values():
            assert 0 <= lo <= hi <= trace.makespan

    def test_utilisation_bounds(self):
        sp, prog, inputs, oracle, n = setup_design(idx=2)
        net = build_network(sp, {"n": n}, inputs)
        _, trace = trace_run(net)
        for u in trace.utilisation().values():
            assert u > 0

    def test_wavefront_sums_to_events(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        _, trace = trace_run(net)
        assert sum(trace.wavefront().values()) == len(trace.events)

    def test_summary_text(self):
        t = Trace([TraceEvent("P(0,)", 3, "send"), TraceEvent("P(0,)", 5, "recv")])
        assert "2 events" in t.summary()
        assert t.compute_processes() == ["P(0,)"]


class TestInstrumentationIdempotence:
    """Regression: attaching a tracer twice used to stack wrapper on
    wrapper, double-instrumenting every process and double-counting its
    events."""

    def test_double_attach_does_not_double_count(self):
        sp, prog, inputs, oracle, n = setup_design()
        baseline_net = build_network(sp, {"n": n}, inputs)
        _, baseline = trace_run(baseline_net)

        net = build_network(sp, {"n": n}, inputs)
        first = attach_tracer(net)
        second = attach_tracer(net)  # replaces, must not stack
        net.run()
        assert len(second.events) == len(baseline.events)
        assert first.events == []  # superseded tracer receives nothing
        assert net.host.final == oracle

    def test_trace_run_twice_on_one_network(self):
        sp, prog, inputs, oracle, n = setup_design()
        net = build_network(sp, {"n": n}, inputs)
        stats1, trace1 = trace_run(net)
        count = len(trace1.events)
        # a network runs exactly once: a second trace_run raises instead of
        # silently returning an empty trace from exhausted generators
        with pytest.raises(RuntimeSimulationError, match="already ran"):
            trace_run(net)
        # the failed re-entry leaves the first run's results untouched
        assert len(trace1.events) == count
        assert stats1.scheduler_rounds > 0

    def test_attach_then_trace_run_counts_once(self):
        sp, prog, inputs, oracle, n = setup_design(idx=1)
        baseline_net = build_network(sp, {"n": n}, inputs)
        _, baseline = trace_run(baseline_net)

        net = build_network(sp, {"n": n}, inputs)
        attach_tracer(net)
        _, trace = trace_run(net)
        assert len(trace.events) == len(baseline.events)


class TestAssignments:
    def test_position_parsing(self):
        assert _position_of("P(1, 2)") == Point.of(1, 2)
        assert _position_of("B:a(0, -3)") == Point.of(0, -3)
        assert _position_of("L:b(2,)#0") == Point.of(2)
        assert _position_of("IN:a(-3, 1)") == Point.of(-3, 1)
        assert _position_of("noparens") is None

    def test_round_robin_covers_all_workers(self):
        names = [f"P({i},)" for i in range(10)]
        mapping = round_robin_assignment(names, 3)
        assert set(mapping.values()) == {0, 1, 2}

    def test_block_contiguity(self):
        names = [f"P({i},)" for i in range(8)]
        mapping = block_assignment(names, 2)
        # sorted-by-position processes split into two slabs
        first = [n for n, w in mapping.items() if w == 0]
        second = [n for n, w in mapping.items() if w == 1]
        assert len(first) == len(second) == 4
        assert max(_position_of(n)[0] for n in first) < min(
            _position_of(n)[0] for n in second
        )

    def test_invalid_worker_count(self):
        with pytest.raises(RuntimeSimulationError):
            round_robin_assignment(["a"], 0)
        with pytest.raises(RuntimeSimulationError):
            block_assignment(["a"], 0)

    def test_block_cuts_coordinate_interval_on_triangular_space(self):
        """Regression: block_assignment used to cut the *sorted process
        list* into equal-count slabs while wavefront_tile_bands cut the
        *coordinate interval*; on a triangular process space the two
        disagreed.  Both now cut the leading-coordinate interval."""
        names = [f"P({i}, {j})" for i in range(4) for j in range(i + 1)]
        mapping = block_assignment(names, 2)
        edges = band_edges(0, 3, 2)  # the shared splitter: [0,1] | [2,3]
        for name in names:
            lead = _position_of(name)[0]
            assert mapping[name] == band_of(edges, lead), name
        # equal-count slabs would put 5 processes in each half; the
        # interval cut puts rows 0-1 (3 processes) on worker 0
        assert sum(1 for w in mapping.values() if w == 0) == 3
        assert sum(1 for w in mapping.values() if w == 1) == 7

    def test_io_processes_clamp_into_nearest_band(self):
        names = ["P(0,)", "P(1,)", "P(2,)", "P(3,)", "IN:a(-3,)", "OUT:c(9,)"]
        mapping = block_assignment(names, 2)
        assert mapping["IN:a(-3,)"] == 0  # below the compute range
        assert mapping["OUT:c(9,)"] == 1  # above the compute range


class TestPartitionedExecution:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("assignment", ["block", "round_robin"])
    def test_results_invariant_under_fold(self, workers, assignment):
        sp, prog, inputs, oracle, n = setup_design(idx=0)
        final, stats = partitioned_execute(
            sp, {"n": n}, inputs, workers=workers, assignment=assignment
        )
        assert final == oracle
        assert stats.makespan > 0

    def test_makespan_monotone_in_workers(self):
        sp, prog, inputs, oracle, n = setup_design(idx=2, n=4)
        spans = []
        for w in (1, 2, 4, 16):
            _, stats = partitioned_execute(sp, {"n": n}, inputs, workers=w)
            spans.append(stats.makespan)
        assert spans == sorted(spans, reverse=True)
        assert spans[0] > 2 * spans[-1]  # folding to 1 worker hurts a lot

    def test_single_worker_serializes_everything(self):
        """On one worker the makespan is at least one tick per event (plus
        a little slack where message stamps straddle the serialization)."""
        sp, prog, inputs, oracle, n = setup_design(idx=0, n=2)
        net = build_network(sp, {"n": n}, inputs)
        unbounded_stats, trace = trace_run(net)
        _, stats = partitioned_execute(sp, {"n": n}, inputs, workers=1)
        assert stats.makespan >= len(trace.events)
        assert stats.makespan <= len(trace.events) + unbounded_stats.makespan

    def test_unknown_assignment(self):
        sp, prog, inputs, oracle, n = setup_design()
        with pytest.raises(RuntimeSimulationError):
            partitioned_execute(sp, {"n": n}, inputs, workers=2, assignment="zigzag")

    @pytest.mark.parametrize("idx", range(len(ALL)))
    @pytest.mark.parametrize("workers", [1, 3, 7])
    @pytest.mark.parametrize("assignment", ["block", "round_robin"])
    def test_identity_all_designs_all_folds(self, idx, workers, assignment):
        """Every paper design, folded every way, stays bit-identical to the
        sequential oracle (Kahn determinism: the fold changes timing
        only)."""
        sp, prog, inputs, oracle, n = setup_design(idx=idx, n=3)
        final, stats = partitioned_execute(
            sp, {"n": n}, inputs, workers=workers, assignment=assignment
        )
        assert final == oracle
        assert stats.makespan > 0


class TestSymbolicPartitionedExecution:
    def test_exactly_one_machine_description(self):
        sp, prog, inputs, oracle, n = setup_design()
        with pytest.raises(RuntimeSimulationError):
            partitioned_execute(sp, {"n": n}, inputs)
        with pytest.raises(RuntimeSimulationError):
            partitioned_execute(sp, {"n": n}, inputs, workers=2, shape=(2,))

    @pytest.mark.parametrize("idx", range(len(ALL)))
    def test_shape_identity_all_designs(self, idx):
        sp, prog, inputs, oracle, n = setup_design(idx=idx, n=3)
        shapes = [(2,), (3,)]
        if len(sp.coords) >= 2:
            shapes.append((2, 2))
        for shape in shapes:
            final, stats = partitioned_execute(sp, {"n": n}, inputs, shape=shape)
            assert final == oracle, shape
            assert stats.makespan > 0

    def test_shape_rejects_bad_shapes(self):
        sp, prog, inputs, oracle, n = setup_design(idx=0)  # 1-d coords
        with pytest.raises(RuntimeSimulationError):
            compile_partition(sp, (2, 2))
        with pytest.raises(RuntimeSimulationError):
            compile_partition(sp, (0,))

    def test_interband_channels_buffered(self):
        """The folded network materialises inter-band buffers on every
        channel that crosses a band boundary."""
        from repro.runtime import build_network

        sp, prog, inputs, oracle, n = setup_design(idx=0, n=3)
        schedule = partitioned_schedule(sp, {"n": n}, (2,))
        plain = build_network(sp, {"n": n}, inputs)
        assert plain.interband_channels == 0
        folded = build_network(
            sp,
            {"n": n},
            inputs,
            worker_of=schedule.worker_of,
            interband_capacity=schedule.symbolic.interband_capacity,
        )
        assert folded.interband_channels > 0

    def test_specialization_reuses_symbolic_compilation(self):
        """Compile once for the fixed array, specialize to any size: after
        the first size, the symbolic memo only records hits and the
        specialized-schedule cache grows one entry per size."""
        from repro.core.memo import MEMO

        exp_id, prog, array = ALL[2]  # E1
        sp = compile_systolic(prog, array)
        PARTITION_CACHE.clear()
        MEMO.tables.pop("partition_symbolic", None)  # forget prior compiles
        h0, m0 = MEMO.table_counters("partition_symbolic")
        partitioned_schedule(sp, {"n": 2}, (3,))
        h1, m1 = MEMO.table_counters("partition_symbolic")
        assert m1 == m0 + 1  # first compile for this (design, shape)
        for n in (3, 4, 5):
            partitioned_schedule(sp, {"n": n}, (3,))
        h2, m2 = MEMO.table_counters("partition_symbolic")
        assert m2 == m1  # no re-derivation for new sizes
        assert h2 == h1 + 3
        assert PARTITION_CACHE.stats()["misses"] == 4  # one per size
        # same size again: pure cache hit, the memo is not even consulted
        partitioned_schedule(sp, {"n": 4}, (3,))
        assert PARTITION_CACHE.stats()["hits"] >= 1
        assert MEMO.table_counters("partition_symbolic") == (h2, m2)

    def test_schedule_bands_describe_soak_and_drain(self):
        sp, prog, inputs, oracle, n = setup_design(idx=0, n=4)
        schedule = partitioned_schedule(sp, {"n": n}, (3,))
        assert schedule.shape == (3,)
        assert schedule.workers == 3
        assert sum(b.total_work for b in schedule.bands) == schedule.total_work
        # the wavefront sweeps the leading coordinate: lower bands start
        # earlier and finish earlier
        assert list(schedule.soak) == sorted(schedule.soak)
        assert list(schedule.drain) == sorted(schedule.drain, reverse=True)
        assert "partition 3" in schedule.summary()

    def test_shape_clamps_to_span(self):
        sp, prog, inputs, oracle, n = setup_design(idx=0, n=2)  # lead 0..2
        schedule = partitioned_schedule(sp, {"n": n}, (100,))
        assert schedule.workers == 3  # one band per cell column

    def test_worker_of_tiles_2d(self):
        exp_id, prog, array = ALL[2]  # E1: 2-d coords
        sp = compile_systolic(prog, array)
        schedule = partitioned_schedule(sp, {"n": 3}, (2, 2))
        workers = {
            schedule.worker_of(Point.of(i, j))
            for i in range(4)
            for j in range(4)
        }
        assert workers == {0, 1, 2, 3}
