"""End-to-end tests: generated systolic programs vs the sequential oracle.

These are the strongest tests in the repository: the symbolic closed forms
(first/last/count, soak/drain, i/o repeaters, Eq. 10) *drive* the network,
so agreement with the oracle validates every derivation at once.
"""

import pytest

from repro.core import compile_systolic
from repro.geometry import Point
from repro.lang import run_sequential
from repro.runtime import build_network, execute
from repro.systolic import all_paper_designs
from repro.util.errors import RuntimeSimulationError


def poly_inputs(n, seed=0):
    return {
        "a": {Point.of(i): (i * 7 + seed) % 13 - 5 for i in range(n + 1)},
        "b": {Point.of(j): (j * 3 + seed) % 11 - 4 for j in range(n + 1)},
        "c": 0,
    }


def matmul_inputs(n, seed=0):
    rng = range(n + 1)
    return {
        "a": {Point.of(i, k): (i * 5 + k * 2 + seed) % 9 - 4 for i in rng for k in rng},
        "b": {Point.of(k, j): (k * 3 - j + seed) % 7 - 3 for k in rng for j in rng},
        "c": 0,
    }


def inputs_for(exp_id, n, seed=0):
    return poly_inputs(n, seed) if exp_id.startswith("D") else matmul_inputs(n, seed)


ALL = all_paper_designs()


class TestEndToEnd:
    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_matches_oracle(self, design_idx, n):
        exp_id, prog, array = ALL[design_idx]
        sp = compile_systolic(prog, array)
        inputs = inputs_for(exp_id, n)
        final, stats = execute(sp, {"n": n}, inputs)
        oracle = run_sequential(prog, {"n": n}, inputs)
        for var in oracle:
            assert final[var] == oracle[var], f"{exp_id} n={n}: {var} differs"
        assert stats.makespan > 0
        assert stats.total_messages > 0

    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    @pytest.mark.parametrize("capacity", [0, 2])
    def test_capacity_insensitive(self, design_idx, capacity):
        """Results are identical under pure rendezvous and buffered links."""
        exp_id, prog, array = ALL[design_idx]
        sp = compile_systolic(prog, array)
        n = 2
        inputs = inputs_for(exp_id, n)
        final, _ = execute(sp, {"n": n}, inputs, channel_capacity=capacity)
        oracle = run_sequential(prog, {"n": n}, inputs)
        for var in oracle:
            assert final[var] == oracle[var]

    def test_degenerate_n0(self):
        """n = 0: single-statement programs still work."""
        for exp_id, prog, array in ALL:
            sp = compile_systolic(prog, array)
            inputs = inputs_for(exp_id, 0, seed=3)
            final, _ = execute(sp, {"n": 0}, inputs)
            oracle = run_sequential(prog, {"n": 0}, inputs)
            for var in oracle:
                assert final[var] == oracle[var], f"{exp_id} n=0"

    def test_readonly_streams_unchanged(self):
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        inputs = poly_inputs(3)
        final, _ = execute(sp, {"n": 3}, inputs)
        assert final["a"] == {Point(k): v for k, v in inputs["a"].items()}
        assert final["b"] == {Point(k): v for k, v in inputs["b"].items()}


class TestNetworkShape:
    def test_d1_process_inventory(self):
        """D.1 at size n: n+1 compute processes, n+1 latches for b (one per
        link into each process), 3 pipes worth of i/o processes."""
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        n = 4
        net = build_network(sp, {"n": n}, poly_inputs(n))
        assert net.node_counts["compute"] == n + 1
        assert net.node_counts["buffer"] == 0  # CS = PS for a simple place
        assert net.node_counts["latch"] == n + 1  # only stream b, denom 2
        assert net.node_counts["input"] == 3
        assert net.node_counts["output"] == 3

    def test_e2_has_external_buffers(self):
        """E.2: the hexagonal CS sits inside the square PS; corners buffer."""
        exp_id, prog, array = ALL[3]
        sp = compile_systolic(prog, array)
        n = 3
        net = build_network(sp, {"n": n}, matmul_inputs(n))
        side = 2 * n + 1
        hexagon = side * side - n * (n + 1)  # points with |col-row| <= n
        assert net.node_counts["compute"] == hexagon
        assert net.node_counts["buffer"] == side * side - hexagon
        assert net.node_counts["latch"] == 0

    def test_e1_no_buffers_at_all(self):
        exp_id, prog, array = ALL[2]
        sp = compile_systolic(prog, array)
        net = build_network(sp, {"n": 2}, matmul_inputs(2))
        assert net.node_counts["buffer"] == 0
        assert net.node_counts["latch"] == 0
        assert net.node_counts["compute"] == 9

    def test_channel_occupancy_bounded(self):
        """No channel ever holds more than its capacity."""
        exp_id, prog, array = ALL[1]
        sp = compile_systolic(prog, array)
        net = build_network(sp, {"n": 3}, poly_inputs(3), channel_capacity=1)
        net.run()
        for chan in net.scheduler._channels:
            assert chan.max_occupancy <= 1


class TestHostChecks:
    def test_full_recovery_enforced(self):
        from repro.runtime.host import Host

        exp_id, prog, array = ALL[0]
        host = Host(prog, {"n": 2}, poly_inputs(2))
        with pytest.raises(RuntimeSimulationError):
            host.check_full_recovery("a")  # nothing recovered yet

    def test_double_write_rejected(self):
        from repro.runtime.host import Host

        exp_id, prog, array = ALL[0]
        host = Host(prog, {"n": 2}, poly_inputs(2))
        host.write_element("a", Point.of(0), 1)
        with pytest.raises(RuntimeSimulationError):
            host.write_element("a", Point.of(0), 2)

    def test_write_outside_space_rejected(self):
        from repro.runtime.host import Host

        exp_id, prog, array = ALL[0]
        host = Host(prog, {"n": 2}, poly_inputs(2))
        with pytest.raises(RuntimeSimulationError):
            host.write_element("a", Point.of(99), 1)

    def test_read_undefined_element(self):
        from repro.runtime.host import Host

        exp_id, prog, array = ALL[0]
        host = Host(prog, {"n": 2}, poly_inputs(2))
        with pytest.raises(RuntimeSimulationError):
            host.read_element("a", Point.of(99))


class TestGuardedBodyEndToEnd:
    def test_conditional_reset_program(self):
        """A body with an index guard compiles and runs correctly."""
        from repro.lang import parse_program
        from repro.geometry import Matrix
        from repro.systolic import SystolicArray

        text = """
size n
var a[0..n], b[0..n], c[0..2*n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  if i == 0 -> c[i+j] := 0
  c[i+j] := c[i+j] + a[i] * b[j]
"""
        prog = parse_program(text)
        array = SystolicArray(
            step=Matrix([[2, 1]]),
            place=Matrix([[1, 0]]),
            loading_vectors={"a": Point.of(1)},
        )
        sp = compile_systolic(prog, array)
        n = 3
        inputs = poly_inputs(n, seed=1)
        inputs["c"] = 99  # the i==0 guard must reset each c element
        final, _ = execute(sp, {"n": n}, inputs)
        oracle = run_sequential(prog, {"n": n}, inputs)
        assert final["c"] == oracle["c"]
