"""Smoke tests: every example script runs to completion.

The examples contain their own assertions (oracle / NumPy comparisons), so
running them is a real integration test, not just an import check.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(
    p.name
    for p in EXAMPLES_DIR.glob("*.py")
    if not p.name.startswith("generated_")  # artefacts written by examples
)


def test_examples_directory_found():
    assert EXAMPLE_SCRIPTS, f"no examples in {EXAMPLES_DIR}"
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_generated_example_is_current():
    """The checked-in generated_matmul_systolic.py is byte-identical to a
    fresh render_python of the same design -- regenerate it by running
    ``python examples/standalone_python.py`` whenever the backend changes."""
    from repro import compile_systolic, matrix_product_program, render_python
    from repro.systolic import matmul_design_e2

    sp = compile_systolic(matrix_product_program(), matmul_design_e2())
    checked_in = (EXAMPLES_DIR / "generated_matmul_systolic.py").read_text()
    assert render_python(sp) == checked_in


def test_example_count_matches_readme_table():
    """The README documents the examples; keep the set in sync."""
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    documented = {s for s in EXAMPLE_SCRIPTS if f"examples/{s}" in readme}
    # every script is runnable; at least the core five are documented
    assert {"quickstart.py", "polynomial_product.py", "matrix_multiplication.py",
            "fir_filter.py", "codegen_tour.py"} <= documented