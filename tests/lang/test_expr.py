"""Unit tests for the basic-statement AST (repro.lang.expr)."""

import pytest

from repro.lang.expr import (
    Assign,
    BinOp,
    Body,
    Branch,
    Condition,
    Const,
    IndexExpr,
    StreamRead,
)
from repro.symbolic import Affine
from repro.util.errors import SourceProgramError

i = Affine.var("i")


class TestExpressions:
    def test_const(self):
        assert Const(5).evaluate({}, {}) == 5

    def test_stream_read(self):
        assert StreamRead("a").evaluate({"a": 7}, {}) == 7

    def test_stream_read_missing(self):
        with pytest.raises(SourceProgramError):
            StreamRead("a").evaluate({}, {})

    def test_index_expr(self):
        assert IndexExpr(2 * i + 1).evaluate({}, {"i": 3}) == 7

    def test_binop_arith(self):
        e = BinOp("+", Const(1), BinOp("*", StreamRead("a"), StreamRead("b")))
        assert e.evaluate({"a": 2, "b": 3}, {}) == 7

    def test_binop_minmax(self):
        assert BinOp("min", Const(2), Const(5)).evaluate({}, {}) == 2
        assert BinOp("max", Const(2), Const(5)).evaluate({}, {}) == 5

    def test_binop_bad_op(self):
        with pytest.raises(SourceProgramError):
            BinOp("%", Const(1), Const(1))

    def test_stream_reads_collected(self):
        e = BinOp("+", StreamRead("a"), BinOp("*", StreamRead("b"), Const(1)))
        assert e.stream_reads() == {"a", "b"}


class TestCondition:
    def test_eq(self):
        c = Condition(i - 2, "==")
        assert c.evaluate({"i": 2})
        assert not c.evaluate({"i": 3})

    @pytest.mark.parametrize(
        "rel,val,expected",
        [("<=", 0, True), ("<", 0, False), (">=", 0, True), (">", 1, True), ("!=", 1, True)],
    )
    def test_relations(self, rel, val, expected):
        assert Condition(i, rel).evaluate({"i": val}) is expected

    def test_bad_relation(self):
        with pytest.raises(SourceProgramError):
            Condition(i, "~")


class TestBody:
    def body_mac(self):
        # c := c + a * b
        return Body.single_assign(
            "c", BinOp("+", StreamRead("c"), BinOp("*", StreamRead("a"), StreamRead("b")))
        )

    def test_single_assign_execute(self):
        out = self.body_mac().execute({"a": 2, "b": 3, "c": 10}, {})
        assert out == {"a": 2, "b": 3, "c": 16}

    def test_execute_does_not_mutate_input(self):
        values = {"a": 1, "b": 1, "c": 0}
        self.body_mac().execute(values, {})
        assert values["c"] == 0

    def test_streams_accessed(self):
        b = self.body_mac()
        assert b.streams_read() == {"a", "b", "c"}
        assert b.streams_written() == {"c"}
        assert b.streams_accessed() == {"a", "b", "c"}

    def test_guarded_branch_taken(self):
        body = Body(
            (
                Branch(Condition(i, "=="), (Assign("c", Const(99)),)),
                Branch(None, (Assign("c", BinOp("+", StreamRead("c"), Const(1))),)),
            )
        )
        assert body.execute({"c": 0}, {"i": 0})["c"] == 100  # both branches
        assert body.execute({"c": 0}, {"i": 5})["c"] == 1  # only second

    def test_sequential_branches_see_updates(self):
        body = Body(
            (
                Branch(None, (Assign("c", Const(5)),)),
                Branch(None, (Assign("c", BinOp("*", StreamRead("c"), Const(2))),)),
            )
        )
        assert body.execute({"c": 0}, {})["c"] == 10

    def test_str_forms(self):
        assert "c :=" in str(self.body_mac())
