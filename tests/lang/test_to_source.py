"""Round-trip tests: SourceProgram.to_source() -> parse_program."""

import pytest

from repro import parse_program, run_sequential
from repro.systolic import (
    all_paper_designs,
    rectangular_matmul_program,
    reversed_polyprod_program,
)
from repro.verify import random_inputs


def roundtrip(prog, env):
    reparsed = parse_program(prog.to_source())
    assert reparsed.name == prog.name
    assert reparsed.loops == prog.loops
    assert [s.index_map for s in reparsed.streams] == [
        s.index_map for s in prog.streams
    ]
    assert [s.variable for s in reparsed.streams] == [
        s.variable for s in prog.streams
    ]
    inputs = random_inputs(prog, env, seed=9)
    assert run_sequential(prog, env, inputs) == run_sequential(reparsed, env, inputs)
    return reparsed


class TestRoundTrip:
    @pytest.mark.parametrize("idx", [0, 2])
    def test_paper_programs(self, idx):
        prog = all_paper_designs()[idx][1]
        roundtrip(prog, {"n": 2})

    def test_negative_step(self):
        prog = reversed_polyprod_program()
        reparsed = roundtrip(prog, {"n": 3})
        assert reparsed.loops[1].step == -1

    def test_multiple_size_symbols(self):
        prog = rectangular_matmul_program()
        reparsed = roundtrip(prog, {"l": 2, "m": 3, "p": 2})
        assert set(reparsed.size_symbols) == {"l", "m", "p"}

    def test_guarded_body(self):
        text = """
program guarded
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
    if j == 0 -> a[i] := 0
    a[i] := a[i] + b[j]
"""
        prog = parse_program(text)
        reparsed = roundtrip(prog, {"n": 3})
        assert reparsed.body.branches[0].condition is not None

    def test_minmax_body(self):
        text = """
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
    a[i] := min(a[i], b[j])
"""
        prog = parse_program(text)
        roundtrip(prog, {"n": 3})

    def test_source_is_plain_text(self):
        src = all_paper_designs()[0][1].to_source()
        assert "program polyprod" in src
        assert "var a[0..n]" in src
        assert "c[i + j] :=" in src
