"""Tests for the sequential oracle, validator and dependence analysis."""

import pytest

from repro.geometry import Matrix, Point
from repro.lang import (
    check_step_function,
    dependence_vectors,
    parse_program,
    run_sequential,
    validate_program,
)
from repro.lang.interpreter import initial_state
from repro.util.errors import (
    RequirementViolation,
    RestrictionViolation,
    SourceProgramError,
    SystolicSpecError,
)
from tests.lang.test_parser_program import MATMUL, POLYPROD


def poly_inputs(n):
    return {
        "a": {Point.of(i): i + 1 for i in range(n + 1)},
        "b": {Point.of(j): 2 * j + 1 for j in range(n + 1)},
        "c": 0,
    }


class TestSequentialOracle:
    def test_polyprod_matches_direct_computation(self):
        n = 4
        p = parse_program(POLYPROD)
        final = run_sequential(p, {"n": n}, poly_inputs(n))
        a = [i + 1 for i in range(n + 1)]
        b = [2 * j + 1 for j in range(n + 1)]
        expect = [0] * (2 * n + 1)
        for i in range(n + 1):
            for j in range(n + 1):
                expect[i + j] += a[i] * b[j]
        assert [final["c"][Point.of(k)] for k in range(2 * n + 1)] == expect

    def test_matmul_matches_numpy(self):
        import numpy as np

        n = 3
        p = parse_program(MATMUL)
        rng = np.random.default_rng(42)
        a = rng.integers(-5, 6, size=(n + 1, n + 1))
        b = rng.integers(-5, 6, size=(n + 1, n + 1))
        inputs = {
            "a": {Point.of(i, k): int(a[i, k]) for i in range(n + 1) for k in range(n + 1)},
            "b": {Point.of(k, j): int(b[k, j]) for k in range(n + 1) for j in range(n + 1)},
            "c": 0,
        }
        final = run_sequential(p, {"n": n}, inputs)
        expect = a @ b
        for i in range(n + 1):
            for j in range(n + 1):
                assert final["c"][Point.of(i, j)] == expect[i, j]

    def test_inputs_default_zero(self):
        p = parse_program(POLYPROD)
        final = run_sequential(p, {"n": 1})
        assert all(v == 0 for v in final["c"].values())

    def test_missing_input_element_rejected(self):
        p = parse_program(POLYPROD)
        with pytest.raises(SourceProgramError):
            initial_state(p, {"n": 2}, {"a": {Point.of(0): 1}})

    def test_input_outside_space_rejected(self):
        p = parse_program(POLYPROD)
        bad = {Point.of(i): 0 for i in range(5)}  # a has 3 elements at n=2
        with pytest.raises(SourceProgramError):
            initial_state(p, {"n": 2}, {"a": bad})

    def test_guarded_body(self):
        text = """
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  if j == 0 -> a[i] := 0
  a[i] := a[i] + b[j]
"""
        p = parse_program(text)
        final = run_sequential(p, {"n": 2}, {"b": {Point.of(j): j for j in range(3)}, "a": 7})
        # a[i] is reset at j=0 then accumulates b[0]+b[1]+b[2] = 3
        assert all(final["a"][Point.of(i)] == 3 for i in range(3))


class TestValidate:
    def test_polyprod_valid(self):
        validate_program(parse_program(POLYPROD))

    def test_matmul_valid(self):
        validate_program(parse_program(MATMUL))

    def test_single_loop_rejected(self):
        from repro.lang.expr import Body, StreamRead, BinOp
        from repro.lang.program import Loop, SourceProgram
        from repro.lang.stream import Stream
        from repro.lang.variables import IndexedVariable

        # One loop: index maps would have to be 0 x 1; not a systolic program.
        prog = SourceProgram(
            loops=(Loop.of("i", 0, 5),),
            streams=(),
            body=Body.single_assign("a", StreamRead("a")),
        )
        with pytest.raises((RequirementViolation, RestrictionViolation)):
            validate_program(prog)

    def test_wrong_variable_dimension(self):
        text = """
size n
var a[0..n, 0..n], b[0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  a[i,j] := a[i,j] + b[j,i]
"""
        # 2-d variables in a 2-loop program: must be (r-1)=1-dimensional.
        with pytest.raises((RequirementViolation, RestrictionViolation)):
            validate_program(parse_program(text))

    def test_partial_coverage_rejected(self):
        text = """
size n
var a[0..2*n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  a[i] := a[i] + b[j]
"""
        # a has 2n+1 elements but only n+1 are accessed
        with pytest.raises(RestrictionViolation):
            validate_program(parse_program(text))


class TestDependence:
    def test_polyprod_vectors(self):
        p = parse_program(POLYPROD)
        deps = dependence_vectors(p)
        assert deps["a"] == Point.of(0, 1)
        assert deps["b"] == Point.of(1, 0)
        assert deps["c"] == Point.of(1, -1)

    def test_matmul_vectors(self):
        p = parse_program(MATMUL)
        deps = dependence_vectors(p)
        assert deps["a"] == Point.of(0, 1, 0)
        assert deps["b"] == Point.of(1, 0, 0)
        assert deps["c"] == Point.of(0, 0, 1)

    def test_negative_step_orientation(self):
        text = """
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- -1 -> n
  a[i] := a[i] + b[j]
"""
        p = parse_program(text)
        # loop j runs from n down to 0, so the a-dependence points along -j
        assert dependence_vectors(p)["a"] == Point.of(0, -1)

    def test_paper_step_functions_valid(self):
        check_step_function(parse_program(POLYPROD), Matrix([[2, 1]]))
        check_step_function(parse_program(MATMUL), Matrix([[1, 1, 1]]))

    def test_violating_step_rejected(self):
        # step = i - j maps the c-dependence (1,-1) to 2 > 0 but the
        # a-dependence (0,1) to -1 < 0 -- a is read-only, so the failure is
        # b/c of the written stream? a is read-only: -1 != 0 is fine.
        # b-dependence (1,0) -> 1 > 0.  c is written: (1,-1) -> 2 > 0. Valid!
        check_step_function(parse_program(POLYPROD), Matrix([[1, -1]]))
        # step = j - i maps written stream c's dependence (1,-1) to -2.
        with pytest.raises(SystolicSpecError):
            check_step_function(parse_program(POLYPROD), Matrix([[-1, 1]]))

    def test_zero_step_for_readonly_rejected(self):
        # step = (1, 0) maps a's dependence (0,1) to 0: shared access.
        with pytest.raises(SystolicSpecError):
            check_step_function(parse_program(POLYPROD), Matrix([[1, 0]]))

    def test_bad_shape(self):
        with pytest.raises(SystolicSpecError):
            check_step_function(parse_program(POLYPROD), Matrix([[1, 1, 1]]))
