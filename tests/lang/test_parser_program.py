"""Tests for the source-language parser, program model and variables."""

import pytest

from repro.geometry import Matrix, Point
from repro.lang import parse_affine, parse_program
from repro.lang.program import Loop
from repro.lang.variables import IndexedVariable
from repro.symbolic import Affine
from repro.util.errors import RequirementViolation, SourceProgramError

POLYPROD = """
program polyprod
size n
var a[0..n], b[0..n], c[0..2*n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
    c[i+j] := c[i+j] + a[i] * b[j]
"""

MATMUL = """
program matmul
size n
var a[0..n, 0..n], b[0..n, 0..n], c[0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
for k = 0 <- 1 -> n
    c[i,j] := c[i,j] + a[i,k] * b[k,j]
"""


class TestParseAffine:
    def test_basic(self):
        assert parse_affine("2*n - 1") == 2 * Affine.var("n") - 1

    def test_parens(self):
        assert parse_affine("2*(n+1)") == 2 * Affine.var("n") + 2

    def test_unary_minus(self):
        assert parse_affine("-n + 3") == 3 - Affine.var("n")

    def test_division(self):
        from fractions import Fraction

        assert parse_affine("n/2").coeff("n") == Fraction(1, 2)

    def test_trailing_garbage(self):
        with pytest.raises(SourceProgramError):
            parse_affine("n n")

    def test_nonaffine_rejected(self):
        with pytest.raises(Exception):
            parse_affine("n*m")


class TestParsePolyprod:
    def test_shape(self):
        p = parse_program(POLYPROD)
        assert p.name == "polyprod"
        assert p.r == 2
        assert p.indices == ("i", "j")
        assert p.size_symbols == ("n",)

    def test_streams(self):
        p = parse_program(POLYPROD)
        maps = {s.name: s.index_map for s in p.streams}
        assert maps["a"] == Matrix([[1, 0]])
        assert maps["b"] == Matrix([[0, 1]])
        assert maps["c"] == Matrix([[1, 1]])

    def test_variable_bounds(self):
        p = parse_program(POLYPROD)
        c = p.stream("c").variable
        assert c.bounds[0][0] == Affine.constant(0)
        assert c.bounds[0][1] == 2 * Affine.var("n")

    def test_null_directions(self):
        p = parse_program(POLYPROD)
        assert p.stream("a").null_direction() in (Point.of(0, 1), Point.of(0, -1))
        assert p.stream("c").null_direction() in (Point.of(1, -1), Point.of(-1, 1))

    def test_index_space(self):
        p = parse_program(POLYPROD)
        space = p.index_space({"n": 2})
        assert space.lo == Point.of(0, 0) and space.hi == Point.of(2, 2)

    def test_body(self):
        p = parse_program(POLYPROD)
        assert p.body.streams_written() == {"c"}
        assert p.body.streams_read() == {"a", "b", "c"}


class TestParseMatmul:
    def test_streams(self):
        p = parse_program(MATMUL)
        maps = {s.name: s.index_map for s in p.streams}
        assert maps["a"] == Matrix([[1, 0, 0], [0, 0, 1]])  # (i, k)
        assert maps["b"] == Matrix([[0, 0, 1], [0, 1, 0]])  # (k, j)
        assert maps["c"] == Matrix([[1, 0, 0], [0, 1, 0]])  # (i, j)

    def test_null_directions(self):
        p = parse_program(MATMUL)
        assert p.stream("a").null_direction() == Point.of(0, 1, 0)
        assert p.stream("b").null_direction() == Point.of(1, 0, 0)
        assert p.stream("c").null_direction() == Point.of(0, 0, 1)


class TestParserErrors:
    def test_no_loops(self):
        with pytest.raises(SourceProgramError):
            parse_program("size n\nvar a[0..n]")

    def test_no_body(self):
        with pytest.raises(SourceProgramError):
            parse_program("var a[0..n]\nfor i = 0 <- 1 -> n")

    def test_undeclared_variable(self):
        with pytest.raises(SourceProgramError):
            parse_program("for i = 0 <- 1 -> 5\nfor j = 0 <- 1 -> 5\n  q[i] := q[i]")

    def test_inconsistent_occurrences(self):
        bad = """
var a[0..5], b[0..5]
for i = 0 <- 1 -> 5
for j = 0 <- 1 -> 5
  a[i] := a[j] + b[j]
"""
        with pytest.raises(SourceProgramError):
            parse_program(bad)

    def test_constant_subscript_rejected(self):
        bad = """
var a[0..5], b[0..5]
for i = 0 <- 1 -> 5
for j = 0 <- 1 -> 5
  a[i+1] := a[i+1] + b[j]
"""
        with pytest.raises(SourceProgramError):
            parse_program(bad)

    def test_size_symbol_in_subscript_rejected(self):
        bad = """
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  a[i+n] := a[i+n] + b[j]
"""
        with pytest.raises(SourceProgramError):
            parse_program(bad)

    def test_subscript_arity_mismatch(self):
        bad = """
var a[0..5, 0..5], b[0..5]
for i = 0 <- 1 -> 5
for j = 0 <- 1 -> 5
  a[i] := a[i] + b[j]
"""
        with pytest.raises(SourceProgramError):
            parse_program(bad)

    def test_duplicate_variable(self):
        with pytest.raises(SourceProgramError):
            parse_program("var a[0..1], a[0..1]\nfor i = 0 <- 1 -> 1\nfor j = 0 <- 1 -> 1\n  a[i] := a[i]")

    def test_unused_variable(self):
        bad = """
var a[0..5], b[0..5]
for i = 0 <- 1 -> 5
for j = 0 <- 1 -> 5
  a[i] := a[i]
"""
        with pytest.raises(SourceProgramError):
            parse_program(bad)

    def test_loop_index_shadowing_size_symbol(self):
        bad = """
size n
var a[0..n], c[0..n]
for n = 0 <- 1 -> 5
for j = 0 <- 1 -> n
  c[n] := a[j]
"""
        with pytest.raises(SourceProgramError, match="shadow"):
            parse_program(bad)

    def test_duplicate_size_declaration(self):
        bad = """
size n
size n
var a[0..n], c[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  c[i] := a[j]
"""
        with pytest.raises(SourceProgramError, match="duplicate"):
            parse_program(bad)

    def test_duplicate_loop_index(self):
        bad = """
size n
var a[0..n], c[0..n]
for i = 0 <- 1 -> n
for i = 0 <- 1 -> n
  c[i] := a[i]
"""
        with pytest.raises(SourceProgramError, match="duplicate"):
            parse_program(bad)

    def test_loop_bound_using_loop_index(self):
        bad = """
size n
var a[0..n], c[0..n]
for i = 0 <- 1 -> n
for j = i <- 1 -> n
  c[i] := a[j]
"""
        with pytest.raises(SourceProgramError, match="loop ind"):
            parse_program(bad)

    def test_comment_and_blank_lines(self):
        text = POLYPROD.replace("size n", "size n  # problem size")
        assert parse_program(text).size_symbols == ("n",)


class TestExtremumBounds:
    def test_min_max_bounds_parse_and_round_trip(self):
        src = """program clipped
size m, n
var a[max(0, m - n)..min(m, n)], c[max(0, m - n)..min(m, n)]
for i = max(0, m - n) <- 1 -> min(m, n)
for j = 0 <- 1 -> n
  c[i] := a[i] + c[i]
"""
        p = parse_program(src)
        again = parse_program(p.to_source())
        assert again.to_source() == p.to_source()
        lo, hi = p.loops[0].lower, p.loops[0].upper
        assert str(lo) == "max(0, m - n)"
        assert str(hi) == "min(m, n)"
        assert lo.evaluate_int({"m": 5, "n": 3}) == 2
        assert hi.evaluate_int({"m": 5, "n": 3}) == 3

    def test_min_as_lower_bound_rejected(self):
        bad = """
size m, n
var a[0..n], c[0..n]
for i = min(m, n) <- 1 -> n
for j = 0 <- 1 -> n
  c[i] := a[j]
"""
        with pytest.raises(SourceProgramError, match="max"):
            parse_program(bad)

    def test_max_as_upper_bound_rejected(self):
        bad = """
size m, n
var a[0..n], c[0..n]
for i = 0 <- 1 -> max(m, n)
for j = 0 <- 1 -> n
  c[i] := a[j]
"""
        with pytest.raises(SourceProgramError, match="min"):
            parse_program(bad)

    def test_extremum_bound_mixing_loop_index_rejected(self):
        bad = """
size m, n
var a[0..n], c[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> min(n, i + 2)
  c[i] := a[j]
"""
        with pytest.raises(SourceProgramError, match="loop ind"):
            parse_program(bad)


class TestLoop:
    def test_negative_step_iteration(self):
        lp = Loop.of("i", 0, Affine.var("n"), step=-1)
        assert list(lp.iteration_values({"n": 3})) == [3, 2, 1, 0]

    def test_positive_step_iteration(self):
        lp = Loop.of("i", 1, 4)
        assert list(lp.iteration_values({})) == [1, 2, 3, 4]

    def test_bad_step(self):
        with pytest.raises(RequirementViolation):
            Loop.of("i", 0, 5, step=2)

    def test_empty_range_rejected(self):
        with pytest.raises(SourceProgramError):
            Loop.of("i", 5, Affine.var("n")).iteration_values({"n": 2})

    def test_parse_negative_step(self):
        text = """
var a[0..5], b[0..5]
for i = 0 <- 1 -> 5
for j = 0 <- -1 -> 5
  a[i] := a[i] + b[j]
"""
        p = parse_program(text)
        assert p.loops[1].step == -1


class TestIndexedVariable:
    def test_space(self):
        v = IndexedVariable.of("a", (0, Affine.var("n")))
        space = v.space({"n": 4})
        assert space.size == 5

    def test_bad_name(self):
        with pytest.raises(SourceProgramError):
            IndexedVariable.of("9x", (0, 1))

    def test_size_symbols(self):
        v = IndexedVariable.of("a", (0, Affine.var("n")), (Affine.var("m"), 9))
        assert v.size_symbols == {"n", "m"}

    def test_str(self):
        assert "a[0..n]" in str(IndexedVariable.of("a", (0, Affine.var("n"))))
