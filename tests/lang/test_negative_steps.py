"""Negative-step handling, end to end (the audit the fuzzer widening forced).

Three layers must agree on what a negative step means:

* the interpreter runs a negative-step loop from its right bound down to
  its left bound (Section 3.1);
* dependence vectors are oriented along *execution* order, so the sign
  contribution of a negative-step axis flips
  (``lang.dependence._lexicographic_orientation``);
* ``core.increment.derive_increment`` orients along increasing step
  value, which composes with the above into a schedule that respects
  every dependence.

The tests here pin each layer directly for r = 3 nests with all-negative
and mixed-sign steps, then close the loop with a full differential
harness run.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.increment import derive_increment
from repro.geometry import Matrix, Point
from repro.lang import (
    check_step_function,
    dependence_vectors,
    parse_program,
    run_sequential,
    validate_program,
)
from repro.systolic.spec import SystolicArray
from repro.util.errors import SystolicSpecError

ALL_NEG = """program allneg
size n
var a[0..n, 0..n], d[0..n, 0..n], c[0..n, 0..n]
for i = 0 <- -1 -> n
for j = 0 <- -1 -> n
for k = 0 <- -1 -> n
    c[i, j] := c[i, j] + (a[i, k] * d[k, j])
"""

MIXED = """program mixed
size n
var a[0..n, 0..n], d[0..n, 0..n], c[0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- -1 -> n
for k = 0 <- 1 -> n
    c[i, j] := c[i, j] + (a[i, k] * d[k, j])
"""

#: order-sensitive r = 3 nest: the fold over i is non-commutative, so a
#: wrong iteration direction produces a numerically different result.
ORDER = """program order3
size n
var a[0..n, 0..n], c[0..n, 0..n]
for i = 0 <- {step} -> n
for j = 0 <- 1 -> n
for k = 0 <- 1 -> n
    c[j, k] := (c[j, k] * 2) + a[i, j]
"""


def _positions(program, env):
    """Execution-order rank of every index point."""
    orders = [list(lp.iteration_values(env)) for lp in program.loops]
    return {Point.of(*x): t for t, x in enumerate(itertools.product(*orders))}


class TestInterpreterDirection:
    def test_negative_step_iterates_right_to_left(self):
        program = parse_program(ALL_NEG)
        for lp in program.loops:
            assert list(lp.iteration_values({"n": 2})) == [2, 1, 0]

    @pytest.mark.parametrize("step", [1, -1])
    def test_fold_order_matches_direct_computation(self, step):
        n = 3
        program = parse_program(ORDER.format(step=step))
        a = {(i, j): 3 * i + j + 1 for i in range(n + 1) for j in range(n + 1)}
        inputs = {
            "a": {Point.of(i, j): v for (i, j), v in a.items()},
            "c": 0,
        }
        final = run_sequential(program, {"n": n}, inputs)
        i_order = range(n + 1) if step > 0 else range(n, -1, -1)
        for j in range(n + 1):
            for k in range(n + 1):
                acc = 0
                for i in i_order:
                    acc = acc * 2 + a[(i, j)]
                assert final["c"][Point.of(j, k)] == acc

    def test_direction_is_observable(self):
        # Sanity: the two directions genuinely disagree on ORDER, so the
        # test above cannot pass vacuously.
        n = 2
        inputs = {
            "a": {
                Point.of(i, j): i + 1
                for i in range(n + 1)
                for j in range(n + 1)
            },
            "c": 0,
        }
        fwd = run_sequential(parse_program(ORDER.format(step=1)), {"n": n}, inputs)
        bwd = run_sequential(parse_program(ORDER.format(step=-1)), {"n": n}, inputs)
        assert fwd["c"] != bwd["c"]


class TestDependenceOrientation:
    def test_all_negative_flips_every_vector(self):
        vecs = dependence_vectors(parse_program(ALL_NEG))
        assert vecs["c"] == Point.of(0, 0, -1)
        assert vecs["a"] == Point.of(0, -1, 0)
        assert vecs["d"] == Point.of(-1, 0, 0)

    def test_mixed_signs_flip_only_negative_axes(self):
        vecs = dependence_vectors(parse_program(MIXED))
        assert vecs["c"] == Point.of(0, 0, 1)
        assert vecs["a"] == Point.of(0, -1, 0)
        assert vecs["d"] == Point.of(1, 0, 0)

    @pytest.mark.parametrize("src", [ALL_NEG, MIXED], ids=["allneg", "mixed"])
    def test_dependences_point_forward_in_execution_order(self, src):
        # The cross-layer invariant everything else rests on: for every
        # stream, the statement at x + d executes strictly after x.
        program = parse_program(src)
        pos = _positions(program, {"n": 2})
        for name, d in dependence_vectors(program).items():
            hits = 0
            for x, t in pos.items():
                x2 = x + d
                if x2 in pos:
                    hits += 1
                    assert pos[x2] > t, (name, tuple(x), tuple(d))
            assert hits, f"dependence of {name} never lands inside the nest"

    def test_step_function_respects_flipped_dependences(self):
        program = parse_program(ALL_NEG)
        check_step_function(program, Matrix([(-1, -1, -1)]))
        with pytest.raises(SystolicSpecError):
            check_step_function(program, Matrix([(1, 1, 1)]))


class TestIncrementOrientation:
    def test_increment_follows_step_sign(self):
        place = Matrix([(1, 0, 0), (0, 1, 0)])
        neg = SystolicArray(
            step=Matrix([(-1, -1, -1)]), place=place,
            loading_vectors={}, name="neg",
        )
        pos = SystolicArray(
            step=Matrix([(1, 1, 1)]), place=place,
            loading_vectors={}, name="pos",
        )
        assert derive_increment(neg) == Point.of(0, 0, -1)
        assert derive_increment(pos) == Point.of(0, 0, 1)


class TestEndToEnd:
    @pytest.mark.parametrize("src", [ALL_NEG, MIXED], ids=["allneg", "mixed"])
    def test_harness_is_quiet_on_negative_step_nests(self, src):
        from repro.fuzz.generator import FuzzInstance
        from repro.fuzz.harness import HarnessConfig, run_instance
        from repro.fuzz.shrink import first_design

        program = parse_program(src)
        validate_program(program)
        array = first_design(program)
        assert array is not None, "no design for a textbook nest"
        inst = FuzzInstance(program=program, array=array, env={"n": 2}, seed=-1)
        report = run_instance(inst, HarnessConfig())
        assert report.ok, str(report)
