"""The vectorized NumPy wavefront backend (npgen).

Bit-equality against the sequential oracle and the pygen module for every
paper design, batch-axis equivalence, wavefront-schedule cache behaviour,
value-domain guards, NumPy optionality, and corpus replay with npgen in
the differential engine set.
"""

from __future__ import annotations

import sys
from dataclasses import replace
from fractions import Fraction
from pathlib import Path

import pytest

from repro import compile_systolic, run_sequential
from repro.lang.expr import BinOp, Body, Const, StreamRead
from repro.systolic import all_paper_designs
from repro.util.errors import (
    BackendUnsupportedError,
    MissingDependencyError,
)
from repro.verify import random_inputs, verify_design

numpy = pytest.importorskip("numpy")

from repro.analysis.wavefront import (  # noqa: E402  (needs numpy)
    SCHEDULE_CACHE,
    ScheduleCache,
    wavefront_schedule,
)
from repro.target.npgen import (  # noqa: E402
    HAVE_NUMPY,
    execute_numpy,
    execute_numpy_batch,
)
from repro.target.pygen import execute_python  # noqa: E402

DESIGNS = {e: (p, a) for e, p, a in all_paper_designs()}


def compiled(exp_id):
    prog, arr = DESIGNS[exp_id]
    return prog, compile_systolic(prog, arr)


def oracle_state(prog, env, inputs):
    return {
        v: {tuple(k): x for k, x in m.items()}
        for v, m in run_sequential(prog, env, inputs).items()
    }


@pytest.fixture(autouse=True)
def _fresh_schedule_cache():
    SCHEDULE_CACHE.clear()
    yield
    SCHEDULE_CACHE.clear()


class TestBitEquality:
    @pytest.mark.parametrize("exp_id", sorted(DESIGNS))
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_all_designs_vs_oracle_and_pygen(self, exp_id, n):
        prog, sp = compiled(exp_id)
        env = {"n": n}
        inputs = random_inputs(prog, env, seed=n)
        want = oracle_state(prog, env, inputs)
        assert execute_numpy(sp, env, inputs) == want
        assert execute_python(sp, env, inputs) == want

    def test_verify_design_backend_npgen(self):
        prog, arr = DESIGNS["D2"]
        report = verify_design(prog, arr, {"n": 4}, backend="npgen")
        assert report.matched
        assert report.stats is None
        assert "npgen" in str(report)

    def test_exact_fraction_inputs_use_object_dtype(self):
        """Non-integer inputs fall back to exact object arrays."""
        prog, sp = compiled("D1")
        env = {"n": 3}
        inputs = random_inputs(prog, env, seed=7)
        inputs["a"] = {
            p: v + Fraction(1, 3) for p, v in inputs["a"].items()
        }
        want = oracle_state(prog, env, inputs)
        got = execute_numpy(sp, env, inputs)
        assert got == want
        assert any(
            isinstance(v, Fraction)
            for m in got.values()
            for v in m.values()
        )


class TestBatchExecution:
    def test_batch_slices_equal_single_runs(self):
        prog, sp = compiled("E1")
        env = {"n": 3}
        batch = [random_inputs(prog, env, seed=s) for s in range(8)]
        together = execute_numpy_batch(sp, env, batch)
        for inputs, got in zip(batch, together):
            assert got == execute_numpy(sp, env, inputs)
            assert got == oracle_state(prog, env, inputs)

    def test_batch_of_one_equals_plain(self):
        prog, sp = compiled("D1")
        env = {"n": 4}
        inputs = random_inputs(prog, env, seed=1)
        (one,) = execute_numpy_batch(sp, env, [inputs])
        assert one == execute_numpy(sp, env, inputs)

    def test_empty_batch_rejected(self):
        _, sp = compiled("D1")
        from repro.util.errors import CompilationError

        with pytest.raises(CompilationError):
            execute_numpy_batch(sp, {"n": 2}, [])


class TestScheduleCache:
    def test_hit_on_repeat_miss_on_new_size(self):
        _, sp = compiled("D1")
        wavefront_schedule(sp, {"n": 4})
        stats = SCHEDULE_CACHE.stats()
        assert (stats["hits"], stats["misses"]) == (0, 1)
        wavefront_schedule(sp, {"n": 4})
        assert SCHEDULE_CACHE.stats()["hits"] == 1
        wavefront_schedule(sp, {"n": 5})
        stats = SCHEDULE_CACHE.stats()
        assert stats["misses"] == 2 and stats["size"] == 2

    def test_executions_share_schedule_and_body_plan(self):
        prog, sp = compiled("D2")
        env = {"n": 4}
        inputs = random_inputs(prog, env, seed=0)
        execute_numpy(sp, env, inputs)
        schedule = wavefront_schedule(sp, env)
        plan = schedule.runtime_cache.get("npgen_body_plan")
        assert plan is not None
        execute_numpy(sp, env, inputs)
        assert schedule.runtime_cache["npgen_body_plan"] is plan
        assert SCHEDULE_CACHE.stats()["hits"] >= 2

    def test_distinct_designs_distinct_entries(self):
        _, d1 = compiled("D1")
        _, d2 = compiled("D2")
        a = wavefront_schedule(d1, {"n": 3})
        b = wavefront_schedule(d2, {"n": 3})
        assert a.fingerprint != b.fingerprint
        assert SCHEDULE_CACHE.stats()["size"] == 2

    def test_lru_eviction(self):
        _, sp = compiled("D1")
        cache = ScheduleCache(capacity=2)
        for n in (2, 3, 4):
            cache.schedule_for(sp, {"n": n})
        stats = cache.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1
        # n=2 was evicted; n=4 still resident
        cache.schedule_for(sp, {"n": 4})
        assert cache.stats()["hits"] == 1


class TestValueDomain:
    def test_fractional_constant_unsupported(self):
        prog, arr = DESIGNS["D1"]
        frac_body = Body.single_assign(
            "c",
            BinOp(
                "+",
                BinOp("+", StreamRead("c"),
                      BinOp("*", StreamRead("a"), StreamRead("b"))),
                Const(Fraction(1, 2)),
            ),
        )
        frac_prog = replace(prog, body=frac_body)
        sp = compile_systolic(frac_prog, arr)
        with pytest.raises(BackendUnsupportedError, match="pygen"):
            execute_numpy(sp, {"n": 2}, random_inputs(frac_prog, {"n": 2}))

    def test_missing_numpy_raises_install_hint(self, monkeypatch):
        _, sp = compiled("D1")
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(MissingDependencyError, match=r"repro\[np\]"):
            execute_numpy(sp, {"n": 2})

    def test_have_numpy_flag(self):
        assert HAVE_NUMPY is True


class TestCorpusReplayWithNpgen:
    CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"

    def test_corpus_replays_clean_with_npgen_engine(self):
        from repro.fuzz.corpus import corpus_files, load_reproducer
        from repro.fuzz.harness import run_instance

        replayed = 0
        for path in corpus_files(self.CORPUS):
            instance, config, raw = load_reproducer(path)
            if raw.get("expect") != "pass":
                continue
            report = run_instance(instance, replace(config, check_npgen=True))
            assert "npgen" in report.checks_run, path.name
            assert report.ok, f"{path.name} with npgen: {report}"
            replayed += 1
        assert replayed > 0, "no expect-pass corpus pins found"
