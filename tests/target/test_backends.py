"""The four target renderers on the four paper designs.

Snapshot-style stability: rendering is a pure function of the compiled
program, so rendering twice (from independently compiled programs) must
give byte-identical text, and the text must carry the structural markers
of the paper's generated programs.
"""

import pytest

from repro import compile_systolic
from repro.systolic import all_paper_designs
from repro.target import (
    build_target_program,
    render_c,
    render_occam,
    render_paper,
    render_python,
)

ALL = list(all_paper_designs())
IDS = [exp for exp, _, _ in ALL]


@pytest.fixture(scope="module", params=range(len(ALL)), ids=IDS)
def design(request):
    exp, prog, arr = ALL[request.param]
    return exp, prog, arr, compile_systolic(prog, arr)


class TestRenderStability:
    def test_stable_across_recompiles(self, design):
        """Same design, compiled twice -> byte-identical renderings."""
        exp, prog, arr, sp = design
        sp2 = compile_systolic(prog, arr)
        tp, tp2 = build_target_program(sp), build_target_program(sp2)
        assert render_paper(tp) == render_paper(tp2)
        assert render_occam(tp) == render_occam(tp2)
        assert render_c(tp) == render_c(tp2)
        assert render_python(sp) == render_python(sp2)


class TestPaperNotation:
    def test_structure(self, design):
        exp, _, _, sp = design
        text = render_paper(build_target_program(sp))
        assert text.strip()
        assert "par" in text and "parfor" in text
        assert "Input Processes" in text and "Output Processes" in text
        assert "Buffer Processes" in text
        for plan in sp.streams:
            assert plan.name in text

    def test_repeater_notation(self, design):
        """Repeaters are written {first last increment} on i/o processes."""
        exp, _, _, sp = design
        text = render_paper(build_target_program(sp))
        for plan in sp.streams:
            assert f"in {plan.name} : {{" in text
            assert f"out {plan.name} : {{" in text


class TestOccam:
    def test_structure(self, design):
        exp, _, _, sp = design
        text = render_occam(build_target_program(sp))
        assert "PROC compute" in text
        assert "PROC pass.elems" in text
        assert "PAR" in text and "SEQ" in text
        for plan in sp.streams:
            assert f"PROC input.{plan.name}" in text
            assert f"PROC output.{plan.name}" in text


class TestC:
    def test_structure(self, design):
        exp, _, _, sp = design
        text = render_c(build_target_program(sp))
        assert "void compute(" in text
        assert "chan_send" in text and "chan_recv" in text
        assert "static long count_steps(" in text
        for plan in sp.streams:
            assert f"void input_{plan.name}(" in text
            assert f"void output_{plan.name}(" in text

    def test_closed_forms_lowered(self, design):
        """Every soak/drain/pass amount becomes a guarded flat function."""
        exp, _, _, sp = design
        text = render_c(build_target_program(sp))
        for plan in sp.streams:
            assert f"{plan.name}_pass_amount(" in text


class TestPygenSource:
    def test_compiles(self, design):
        exp, _, _, sp = design
        source = render_python(sp)
        compile(source, f"<pygen:{exp}>", "exec")

    def test_standalone(self, design):
        """The emitted module imports nothing outside the stdlib."""
        exp, _, _, sp = design
        source = render_python(sp)
        for line in source.splitlines():
            if line.startswith(("import ", "from ")):
                mod = line.split()[1]
                assert mod in {"fractions", "collections", "queue", "threading"}

    def test_interface(self, design):
        exp, _, _, sp = design
        source = render_python(sp)
        assert "def run(sizes, inputs):" in source
        assert "def run_threaded(sizes, inputs):" in source
        namespace = {}
        exec(compile(source, f"<pygen:{exp}>", "exec"), namespace)
        assert namespace["COORDS"] == sp.coords
        assert len(namespace["STREAMS"]) == len(sp.streams)
