"""End-to-end correctness of the executable Python backend.

``execute_python`` must be bit-for-bit equal to the sequential oracle and
to the coroutine simulator on every paper design -- the generated module
is a compiled fast path, not an approximation.
"""

import pytest

from repro import compile_systolic, run_sequential
from repro.runtime import execute
from repro.systolic import all_paper_designs
from repro.target import execute_python
from repro.verify import random_inputs

ALL = list(all_paper_designs())
IDS = [exp for exp, _, _ in ALL]


def _tupled(state):
    return {var: {tuple(k): v for k, v in m.items()} for var, m in state.items()}


@pytest.fixture(scope="module", params=range(len(ALL)), ids=IDS)
def design(request):
    exp, prog, arr = ALL[request.param]
    return exp, prog, compile_systolic(prog, arr)


class TestAgainstOracle:
    @pytest.mark.parametrize("size", [2, 3, 4, 5])
    def test_matches_run_sequential(self, design, size):
        exp, prog, sp = design
        inputs = random_inputs(prog, {"n": size}, seed=size * 17 + 3)
        oracle = run_sequential(prog, {"n": size}, inputs)
        assert execute_python(sp, {"n": size}, inputs) == _tupled(oracle)

    def test_default_inputs(self, design):
        """inputs=None means the interpreter's defaults, as everywhere."""
        exp, prog, sp = design
        got = execute_python(sp, {"n": 2})
        oracle = run_sequential(prog, {"n": 2})
        assert got == _tupled(oracle)


class TestAgainstSimulator:
    def test_matches_runtime_execute(self, design):
        exp, prog, sp = design
        inputs = random_inputs(prog, {"n": 3}, seed=11)
        final, _stats = execute(sp, {"n": 3}, inputs)
        assert execute_python(sp, {"n": 3}, inputs) == _tupled(final)


class TestThreadedEngine:
    def test_engines_agree(self, design):
        """Kahn determinism: threads + bounded queues give the same result."""
        exp, prog, sp = design
        inputs = random_inputs(prog, {"n": 2}, seed=5)
        fast = execute_python(sp, {"n": 2}, inputs)
        threaded = execute_python(sp, {"n": 2}, inputs, threaded=True)
        assert fast == threaded
