"""Tests for the two-level pygen compile cache: the bounded in-process
LRU of compiled namespaces and the optional on-disk render cache."""

import pytest

from repro import compile_systolic
from repro.systolic.designs import (
    all_paper_designs,
    matmul_design_e1,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
)
from repro.target.pygen import (
    MODULE_CACHE,
    ModuleCache,
    design_fingerprint,
    execute_python,
    render_python,
    render_python_cached,
)


class TestModuleCacheLRU:
    def test_miss_then_hit(self):
        cache = ModuleCache(capacity=4)
        ns1 = cache.namespace_for("X = 1")
        assert (cache.hits, cache.misses) == (0, 1)
        ns2 = cache.namespace_for("X = 1")
        assert (cache.hits, cache.misses) == (1, 1)
        assert ns1 is ns2
        assert ns1["X"] == 1

    def test_eviction_at_capacity(self):
        cache = ModuleCache(capacity=2)
        cache.namespace_for("X = 1")
        cache.namespace_for("X = 2")
        assert len(cache) == 2 and cache.evictions == 0
        cache.namespace_for("X = 3")  # evicts the oldest ("X = 1")
        assert len(cache) == 2
        assert cache.evictions == 1
        assert "X = 1" not in cache
        assert "X = 2" in cache and "X = 3" in cache

    def test_lru_order_respects_hits(self):
        cache = ModuleCache(capacity=2)
        cache.namespace_for("X = 1")
        cache.namespace_for("X = 2")
        cache.namespace_for("X = 1")  # refresh: "X = 2" is now oldest
        cache.namespace_for("X = 3")
        assert "X = 1" in cache
        assert "X = 2" not in cache

    def test_identical_namespace_after_eviction(self):
        cache = ModuleCache(capacity=1)
        first = dict(cache.namespace_for("VALUE = [1, 2, 3]"))
        cache.namespace_for("VALUE = 'other'")  # evicts
        assert cache.evictions == 1
        again = cache.namespace_for("VALUE = [1, 2, 3]")
        assert again["VALUE"] == first["VALUE"]
        assert cache.misses == 3 and cache.hits == 0

    def test_discard_and_clear(self):
        cache = ModuleCache(capacity=4)
        cache.namespace_for("X = 1")
        cache.discard("X = 1")
        assert len(cache) == 0
        cache.discard("X = 1")  # absent: no error
        cache.namespace_for("X = 1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

    def test_resize_evicts(self):
        cache = ModuleCache(capacity=3)
        for i in range(3):
            cache.namespace_for(f"X = {i}")
        cache.resize(1)
        assert len(cache) == 1 and cache.capacity == 1
        assert "X = 2" in cache  # newest survives
        with pytest.raises(ValueError):
            cache.resize(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ModuleCache(capacity=0)

    def test_stats_shape(self):
        cache = ModuleCache(capacity=2)
        assert cache.stats() == {
            "capacity": 2,
            "size": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }

    def test_key_is_source_hash(self):
        assert ModuleCache.key_of("a") != ModuleCache.key_of("b")
        assert ModuleCache.key_of("a") == ModuleCache.key_of("a")


class TestExecuteThroughBoundedCache:
    """Generated-program results must be byte-identical before and after
    eviction: eviction costs a recompile, never correctness."""

    def test_results_stable_across_eviction(self):
        exp_id, prog, arr = all_paper_designs()[0]
        sp = compile_systolic(prog, arr)
        source = render_python(sp)
        old_capacity = MODULE_CACHE.capacity
        try:
            before = execute_python(sp, {"n": 3})
            MODULE_CACHE.resize(1)
            # exercise the module through a capacity-1 cache: each foreign
            # compile evicts it
            MODULE_CACHE.namespace_for("X = 1")
            assert source not in MODULE_CACHE
            after = execute_python(sp, {"n": 3})
            assert after == before
        finally:
            MODULE_CACHE.resize(old_capacity)

    def test_global_cache_hit_counter_moves(self):
        exp_id, prog, arr = all_paper_designs()[0]
        sp = compile_systolic(prog, arr)
        execute_python(sp, {"n": 2})
        hits = MODULE_CACHE.hits
        execute_python(sp, {"n": 2})
        assert MODULE_CACHE.hits == hits + 1


class TestDesignFingerprint:
    def test_deterministic(self):
        prog = matrix_product_program()
        sp1 = compile_systolic(prog, matmul_design_e1())
        sp2 = compile_systolic(matrix_product_program(), matmul_design_e1())
        assert design_fingerprint(sp1) == design_fingerprint(sp2)

    def test_distinguishes_designs(self):
        prog = polynomial_product_program()
        d1 = compile_systolic(prog, polyprod_design_d1())
        d2 = compile_systolic(prog, polyprod_design_d2())
        assert design_fingerprint(d1) != design_fingerprint(d2)

    def test_distinguishes_programs(self):
        poly = compile_systolic(polynomial_product_program(), polyprod_design_d1())
        mat = compile_systolic(matrix_product_program(), matmul_design_e1())
        assert design_fingerprint(poly) != design_fingerprint(mat)


class TestRenderCacheOnDisk:
    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_RENDER_CACHE", raising=False)
        prog = polynomial_product_program()
        sp = compile_systolic(prog, polyprod_design_d1())
        assert render_python_cached(sp) == render_python(sp)

    def test_populates_and_reuses(self, tmp_path):
        prog = polynomial_product_program()
        sp = compile_systolic(prog, polyprod_design_d1())
        first = render_python_cached(sp, tmp_path)
        cached_file = tmp_path / f"{design_fingerprint(sp)}.py"
        assert cached_file.exists()
        assert cached_file.read_text() == first == render_python(sp)
        # poison the cache entry to prove the second call reads the disk
        cached_file.write_text("# sentinel")
        assert render_python_cached(sp, tmp_path) == "# sentinel"

    def test_env_variable_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RENDER_CACHE", str(tmp_path))
        prog = polynomial_product_program()
        sp = compile_systolic(prog, polyprod_design_d2())
        source = render_python_cached(sp)
        assert (tmp_path / f"{design_fingerprint(sp)}.py").read_text() == source

    def test_execute_python_through_disk_cache(self, tmp_path):
        prog = polynomial_product_program()
        sp = compile_systolic(prog, polyprod_design_d1())
        plain = execute_python(sp, {"n": 3})
        cached = execute_python(sp, {"n": 3}, cache_dir=tmp_path)
        assert cached == plain
        assert list(tmp_path.glob("*.py"))

    def test_unwritable_directory_still_renders(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("")
        prog = polynomial_product_program()
        sp = compile_systolic(prog, polyprod_design_d1())
        # cache root is a *file*: writing fails, rendering must not
        assert render_python_cached(sp, blocked) == render_python(sp)
