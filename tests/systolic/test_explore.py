"""Tests for design-space exploration."""

import pytest

from repro.geometry import Matrix, Point
from repro.systolic import (
    DesignCost,
    cost_candidate,
    cost_of,
    explore_designs,
    loading_candidates,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
)
from repro.systolic.designs import tensor_contraction_program
from repro.systolic.spec import SystolicArray
from repro.util.errors import ReproError


class TestCostOf:
    def test_e1_cost(self):
        prog = matrix_product_program()
        cost = cost_of(prog, matmul_design_e1(), {"n": 4})
        assert cost.processes == 25  # (n+1)^2
        assert cost.null_processes == 0
        assert cost.stationary_streams == 1
        assert cost.latch_buffers == 0

    def test_e2_cost(self):
        prog = matrix_product_program()
        cost = cost_of(prog, matmul_design_e2(), {"n": 4})
        assert cost.processes == 81  # (2n+1)^2
        assert cost.null_processes == 20  # square minus hexagon
        assert cost.stationary_streams == 0

    def test_d1_latches(self):
        prog = polynomial_product_program()
        cost = cost_of(prog, polyprod_design_d1(), {"n": 4})
        assert cost.latch_buffers == 5  # one per process for stream b

    def test_total_cells(self):
        prog = matrix_product_program()
        cost = cost_of(prog, matmul_design_e1(), {"n": 2})
        assert cost.total_cells == cost.processes + cost.io_processes


class TestExplore:
    def test_matmul_space(self):
        prog = matrix_product_program()
        costs = explore_designs(prog, Matrix([[1, 1, 1]]), {"n": 3}, bound=1)
        assert len(costs) > 50  # a real design space
        # sorted by total cells ascending
        totals = [c.total_cells for c in costs]
        assert totals == sorted(totals)

    def test_paper_designs_present(self):
        prog = matrix_product_program()
        costs = explore_designs(prog, Matrix([[1, 1, 1]]), {"n": 3}, bound=1)
        row_sets = {frozenset(c.place.rows) for c in costs}
        assert frozenset({(1, 0, 0), (0, 1, 0)}) in row_sets  # E.1
        assert frozenset({(1, 0, -1), (0, 1, -1)}) in row_sets  # E.2

    def test_e1_family_beats_e2_family(self):
        """The compact grid with a stationary accumulator costs fewer cells
        than the Kung-Leiserson hexagon -- the trade-off the paper's two
        appendix E designs illustrate, quantified."""
        prog = matrix_product_program()
        costs = explore_designs(prog, Matrix([[1, 1, 1]]), {"n": 3}, bound=1)
        by_rows = {frozenset(c.place.rows): c for c in costs}
        e1 = by_rows[frozenset({(1, 0, 0), (0, 1, 0)})]
        e2 = by_rows[frozenset({(1, 0, -1), (0, 1, -1)})]
        assert e1.total_cells < e2.total_cells
        assert e2.stationary_streams == 0 < e1.stationary_streams

    def test_limit(self):
        prog = polynomial_product_program()
        costs = explore_designs(prog, Matrix([[2, 1]]), {"n": 3}, bound=1, limit=2)
        assert len(costs) == 2

    def test_every_cost_is_designcost(self):
        prog = polynomial_product_program()
        costs = explore_designs(prog, Matrix([[2, 1]]), {"n": 3}, bound=1)
        assert all(isinstance(c, DesignCost) for c in costs)
        assert all("place" in c.row() for c in costs)


class TestLoadingAxisFallback:
    """Regression: ``_default_loading`` looped ``for axis in range(dim)``
    but unconditionally broke after axis 0, so designs whose stationary
    streams only load along another axis were silently dropped."""

    # A tensor-contraction design (r = 4) whose stationary stream ``a``
    # shifts element identities non-integrally along axis 0 but loads
    # fine along axes 1 and 2.
    STEP = Matrix([[1, 1, 1, 1]])
    PLACE = Matrix([(-1, -1, 0, 0), (-1, -1, 0, 1), (-1, 0, 0, -1)])

    def test_axis0_alone_fails(self):
        prog = tensor_contraction_program()
        axis0 = SystolicArray(
            step=self.STEP,
            place=self.PLACE,
            loading_vectors={"a": Point.unit(3, 0)},
        )
        with pytest.raises(ReproError):
            cost_of(prog, axis0, {"n": 2})

    def test_costable_with_nonzero_axis(self):
        prog = tensor_contraction_program()
        cost = cost_candidate(prog, self.STEP, self.PLACE, {"n": 2})
        assert isinstance(cost, DesignCost)
        assert cost.stationary_streams == 1

    def test_candidates_cover_every_axis(self):
        prog = tensor_contraction_program()
        cands = list(loading_candidates(prog, self.STEP, self.PLACE))
        assert [c["a"] for c in cands] == [
            Point.unit(3, 0),
            Point.unit(3, 1),
            Point.unit(3, 2),
        ]

    def test_moving_design_yields_single_empty_assignment(self):
        prog = matrix_product_program()
        e2 = matmul_design_e2()
        cands = list(loading_candidates(prog, e2.step, e2.place))
        assert cands == [{}]

    def test_all_axes_failing_raises_last_error(self):
        prog = matrix_product_program()
        # every axis violates a restriction for this stationary design
        place = Matrix([(-1, -1, 0), (-1, 1, 0)])
        with pytest.raises(ReproError):
            cost_candidate(prog, Matrix([[1, 1, 1]]), place, {"n": 2})
