"""Tests for design-space exploration."""

import pytest

from repro.geometry import Matrix
from repro.systolic import (
    DesignCost,
    cost_of,
    explore_designs,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
)


class TestCostOf:
    def test_e1_cost(self):
        prog = matrix_product_program()
        cost = cost_of(prog, matmul_design_e1(), {"n": 4})
        assert cost.processes == 25  # (n+1)^2
        assert cost.null_processes == 0
        assert cost.stationary_streams == 1
        assert cost.latch_buffers == 0

    def test_e2_cost(self):
        prog = matrix_product_program()
        cost = cost_of(prog, matmul_design_e2(), {"n": 4})
        assert cost.processes == 81  # (2n+1)^2
        assert cost.null_processes == 20  # square minus hexagon
        assert cost.stationary_streams == 0

    def test_d1_latches(self):
        prog = polynomial_product_program()
        cost = cost_of(prog, polyprod_design_d1(), {"n": 4})
        assert cost.latch_buffers == 5  # one per process for stream b

    def test_total_cells(self):
        prog = matrix_product_program()
        cost = cost_of(prog, matmul_design_e1(), {"n": 2})
        assert cost.total_cells == cost.processes + cost.io_processes


class TestExplore:
    def test_matmul_space(self):
        prog = matrix_product_program()
        costs = explore_designs(prog, Matrix([[1, 1, 1]]), {"n": 3}, bound=1)
        assert len(costs) > 50  # a real design space
        # sorted by total cells ascending
        totals = [c.total_cells for c in costs]
        assert totals == sorted(totals)

    def test_paper_designs_present(self):
        prog = matrix_product_program()
        costs = explore_designs(prog, Matrix([[1, 1, 1]]), {"n": 3}, bound=1)
        row_sets = {frozenset(c.place.rows) for c in costs}
        assert frozenset({(1, 0, 0), (0, 1, 0)}) in row_sets  # E.1
        assert frozenset({(1, 0, -1), (0, 1, -1)}) in row_sets  # E.2

    def test_e1_family_beats_e2_family(self):
        """The compact grid with a stationary accumulator costs fewer cells
        than the Kung-Leiserson hexagon -- the trade-off the paper's two
        appendix E designs illustrate, quantified."""
        prog = matrix_product_program()
        costs = explore_designs(prog, Matrix([[1, 1, 1]]), {"n": 3}, bound=1)
        by_rows = {frozenset(c.place.rows): c for c in costs}
        e1 = by_rows[frozenset({(1, 0, 0), (0, 1, 0)})]
        e2 = by_rows[frozenset({(1, 0, -1), (0, 1, -1)})]
        assert e1.total_cells < e2.total_cells
        assert e2.stationary_streams == 0 < e1.stationary_streams

    def test_limit(self):
        prog = polynomial_product_program()
        costs = explore_designs(prog, Matrix([[2, 1]]), {"n": 3}, bound=1, limit=2)
        assert len(costs) == 2

    def test_every_cost_is_designcost(self):
        prog = polynomial_product_program()
        costs = explore_designs(prog, Matrix([[2, 1]]), {"n": 3}, bound=1)
        assert all(isinstance(c, DesignCost) for c in costs)
        assert all("place" in c.row() for c in costs)
