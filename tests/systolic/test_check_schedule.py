"""Tests for array checking and for step/place synthesis."""

import pytest

from repro.geometry import Matrix, Point
from repro.systolic import (
    SystolicArray,
    all_paper_designs,
    check_systolic_array,
    makespan,
    matrix_product_program,
    polynomial_product_program,
    synthesize_array,
    synthesize_places,
    synthesize_step,
)
from repro.util.errors import (
    InconsistentDistributionError,
    RequirementViolation,
    SystolicSpecError,
)


class TestCheckSystolicArray:
    def test_all_paper_designs_pass(self):
        for exp_id, prog, array in all_paper_designs():
            check_systolic_array(array, prog)

    def test_incompatible_step_place(self):
        # place=(i), step=(1,0): step vanishes on null.place=(0,1)
        prog = polynomial_product_program()
        array = SystolicArray(
            step=Matrix([[1, 0]]),
            place=Matrix([[1, 0]]),
            loading_vectors={"a": Point.of(1)},
        )
        with pytest.raises(InconsistentDistributionError):
            check_systolic_array(array, prog)

    def test_non_neighbour_flow_rejected(self):
        # D.2.3's note: place=(i-j) gives flow.c = 2
        prog = polynomial_product_program()
        array = SystolicArray(step=Matrix([[2, 1]]), place=Matrix([[1, -1]]))
        with pytest.raises(RequirementViolation):
            check_systolic_array(array, prog)

    def test_arity_mismatch(self):
        prog = matrix_product_program()
        with pytest.raises(SystolicSpecError):
            check_systolic_array(
                SystolicArray(step=Matrix([[2, 1]]), place=Matrix([[1, 0]])), prog
            )

    def test_bad_loading_vector_neighbourhood(self):
        prog = matrix_product_program()
        array = SystolicArray(
            step=Matrix([[1, 1, 1]]),
            place=Matrix([[1, 0, 0], [0, 1, 0]]),
            loading_vectors={"c": Point.of(2, 0)},  # not a neighbour hop
        )
        with pytest.raises(RequirementViolation):
            check_systolic_array(array, prog)


class TestMakespan:
    def test_polyprod_step(self):
        prog = polynomial_product_program()
        # step = 2i+j over [0,n]^2 spans 0 .. 3n, so makespan = 3n+1
        assert makespan(prog, Matrix([[2, 1]]), {"n": 4}) == 13

    def test_matmul_step(self):
        prog = matrix_product_program()
        assert makespan(prog, Matrix([[1, 1, 1]]), {"n": 4}) == 13


class TestSynthesizeStep:
    def test_polyprod_optimum(self):
        """The synthesiser can beat the paper's step 2i+j: step i-j has
        makespan 2n+1 (a's dependence is read-only, so a negative step
        component along j is legal).  The paper's step must still be valid,
        just not minimal under this metric."""
        prog = polynomial_product_program()
        best = synthesize_step(prog, bound=2)
        spans = {makespan(prog, s, {"n": 4}) for s in best}
        assert spans == {9}  # 2n+1 at n=4
        assert Matrix([[1, -1]]) in best
        # the paper's step is valid but spans 3n+1:
        from repro.lang import check_step_function

        check_step_function(prog, Matrix([[2, 1]]))
        assert makespan(prog, Matrix([[2, 1]]), {"n": 4}) == 13

    def test_matmul_optimum_contains_paper_step(self):
        prog = matrix_product_program()
        best = synthesize_step(prog, bound=1)
        assert Matrix([[1, 1, 1]]) in best

    def test_all_results_valid(self):
        from repro.lang import check_step_function

        prog = polynomial_product_program()
        for s in synthesize_step(prog, bound=2):
            check_step_function(prog, s)

    def test_impossible_bound(self):
        # bound=0 leaves no non-zero candidates
        prog = polynomial_product_program()
        with pytest.raises(SystolicSpecError):
            synthesize_step(prog, bound=0)


class TestSynthesizePlaces:
    def test_polyprod_contains_paper_places(self):
        prog = polynomial_product_program()
        places = synthesize_places(prog, Matrix([[2, 1]]), bound=1)
        assert Matrix([[1, 0]]) in places
        assert Matrix([[1, 1]]) in places

    def test_paper_d23_place_excluded(self):
        # place=(i-j) has flow.c = 2: excluded by the neighbour filter
        prog = polynomial_product_program()
        places = synthesize_places(prog, Matrix([[2, 1]]), bound=1)
        assert Matrix([[1, -1]]) not in places
        unfiltered = synthesize_places(
            prog, Matrix([[2, 1]]), bound=1, require_neighbour_flows=False
        )
        assert Matrix([[1, -1]]) in unfiltered

    def test_matmul_contains_both_paper_places(self):
        """Places are deduplicated up to row order, so compare row sets."""
        prog = matrix_product_program()
        places = synthesize_places(prog, Matrix([[1, 1, 1]]), bound=1)
        row_sets = {frozenset(p.rows) for p in places}
        assert frozenset({(1, 0, 0), (0, 1, 0)}) in row_sets
        assert frozenset({(1, 0, -1), (0, 1, -1)}) in row_sets

    def test_all_results_have_full_rank(self):
        prog = matrix_product_program()
        for p in synthesize_places(prog, Matrix([[1, 1, 1]]), bound=1):
            assert p.rank == prog.r - 1


class TestSynthesizeArray:
    def test_polyprod_end_to_end(self):
        prog = polynomial_product_program()
        array = synthesize_array(prog)
        check_systolic_array(array, prog)

    def test_matmul_end_to_end(self):
        prog = matrix_product_program()
        array = synthesize_array(prog)
        check_systolic_array(array, prog)
