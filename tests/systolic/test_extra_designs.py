"""Tests for catalogue designs beyond the paper's four appendices."""

from fractions import Fraction

import pytest

from repro.core import compile_systolic
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import (
    check_systolic_array,
    polyprod_design_reversed,
    rectangular_matmul_program,
    rectmm_design,
    reversed_polyprod_program,
)
from repro.verify import check_all_theorems, verify_design

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


class TestReversedPolyprod:
    """Negative inner-loop step: st_j = -1, flow.c = 1/3."""

    def test_checks_pass(self):
        check_systolic_array(polyprod_design_reversed(), reversed_polyprod_program())

    def test_increment_flipped(self):
        sp = compile_systolic(reversed_polyprod_program(), polyprod_design_reversed())
        assert sp.increment == Point.of(0, -1)

    def test_first_starts_at_right_bound(self):
        """With st_j = -1 the first statement of each chord is at j = n."""
        sp = compile_systolic(reversed_polyprod_program(), polyprod_design_reversed())
        assert sp.first.collapse() == AffineVec.of(col, n)
        assert sp.last.collapse() == AffineVec.of(col, 0)

    def test_flows_and_latches(self):
        sp = compile_systolic(reversed_polyprod_program(), polyprod_design_reversed())
        assert sp.plan("b").flow == Point.of(Fraction(1, 2))
        assert sp.plan("c").flow == Point.of(Fraction(1, 3))
        assert sp.plan("c").internal_buffers() == 2
        assert sp.plan("a").stationary

    def test_reversed_io_order(self):
        """Elements are consumed in decreasing index order: {n 0 -1}."""
        sp = compile_systolic(reversed_polyprod_program(), polyprod_design_reversed())
        assert sp.plan("b").increment_s == Point.of(-1)
        env = {"col": 0, "n": 5}
        assert sp.plan("b").first_s.evaluate(env) == Point.of(5)
        assert sp.plan("b").last_s.evaluate(env) == Point.of(0)

    @pytest.mark.parametrize("size", [1, 3, 5])
    def test_end_to_end(self, size):
        report = verify_design(
            reversed_polyprod_program(),
            polyprod_design_reversed(),
            {"n": size},
            seed=size,
        )
        assert report.matched

    def test_theorems(self):
        assert len(
            check_all_theorems(
                reversed_polyprod_program(), polyprod_design_reversed(), {"n": 3}
            )
        ) == 10


class TestRectangularMatmul:
    """Three independent problem-size symbols l, m, p."""

    def test_symbolic_in_all_sizes(self):
        sp = compile_systolic(rectangular_matmul_program(), rectmm_design())
        assert sp.ps_max == AffineVec.of(Affine.var("l"), Affine.var("m"))
        assert sp.count.collapse() == Affine.var("p") + 1

    def test_io_repeaters(self):
        sp = compile_systolic(rectangular_matmul_program(), rectmm_design())
        env = {"col": 1, "row": 2, "l": 3, "m": 4, "p": 5}
        # a[i,k]: pipe along rows of a, k = 0..p
        assert sp.plan("a").first_s.evaluate(env) == Point.of(1, 0)
        assert sp.plan("a").last_s.evaluate(env) == Point.of(1, 5)
        # b[k,j]: pipe along columns, k = 0..p
        assert sp.plan("b").first_s.evaluate(env) == Point.of(0, 2)
        assert sp.plan("b").last_s.evaluate(env) == Point.of(5, 2)
        # c stationary, loaded along (1,0): row of c
        assert sp.plan("c").first_s.evaluate(env) == Point.of(0, 2)
        assert sp.plan("c").last_s.evaluate(env) == Point.of(3, 2)

    def test_loading_amounts_in_l(self):
        sp = compile_systolic(rectangular_matmul_program(), rectmm_design())
        # loading passes = l - col (independent of m, p)
        assert sp.plan("c").drain.collapse() == Affine.var("l") - col
        assert sp.plan("c").soak.collapse() == col

    @pytest.mark.parametrize("sizes", [(1, 1, 1), (2, 4, 3), (3, 1, 4)])
    def test_end_to_end_asymmetric(self, sizes):
        l, m, p = sizes
        report = verify_design(
            rectangular_matmul_program(),
            rectmm_design(),
            {"l": l, "m": m, "p": p},
            seed=l + m + p,
        )
        assert report.matched

    def test_matches_numpy(self):
        import numpy as np

        from repro.runtime import execute

        sp = compile_systolic(rectangular_matmul_program(), rectmm_design())
        l, m, p = 2, 3, 4
        rng = np.random.default_rng(5)
        a = rng.integers(-5, 6, size=(l + 1, p + 1))
        b = rng.integers(-5, 6, size=(p + 1, m + 1))
        inputs = {
            "a": {Point.of(i, k): int(a[i, k]) for i in range(l + 1) for k in range(p + 1)},
            "b": {Point.of(k, j): int(b[k, j]) for k in range(p + 1) for j in range(m + 1)},
            "c": 0,
        }
        final, _ = execute(sp, {"l": l, "m": m, "p": p}, inputs)
        expect = a @ b
        for i in range(l + 1):
            for j in range(m + 1):
                assert final["c"][Point.of(i, j)] == expect[i, j]

    def test_theorems(self):
        assert len(
            check_all_theorems(
                rectangular_matmul_program(), rectmm_design(), {"l": 2, "m": 3, "p": 2}
            )
        ) == 10
