"""Tests for the cross-correlation design (opposing stream flows)."""

import pytest

from repro.core import compile_systolic
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import all_flows, correlation_design, correlation_program
from repro.verify import check_all_theorems, verify_design

n = Affine.var("n")
col = Affine.var("col")


class TestCorrelationCompile:
    def test_opposing_flows(self):
        flows = all_flows(correlation_design(), correlation_program())
        assert flows["x"] == Point.of(-1)
        assert flows["y"] == Point.of(1)
        assert flows["r"] == Point.of(0)  # stationary lag accumulators

    def test_negative_variable_bounds(self):
        prog = correlation_program()
        r = prog.stream("r").variable
        assert r.bounds[0][0] == -n
        assert r.space({"n": 3}).lo == Point.of(-3)

    def test_process_per_lag(self):
        sp = compile_systolic(correlation_program(), correlation_design())
        assert sp.ps_min == AffineVec.of(-n)
        assert sp.ps_max == AffineVec.of(n)

    def test_first_cases(self):
        sp = compile_systolic(correlation_program(), correlation_design())
        values = [c.value for c in sp.first.cases]
        assert AffineVec.of(0, -col) in values  # negative lags start at i=0
        assert AffineVec.of(col, 0) in values  # positive lags start at j=0

    def test_count_peak_at_zero_lag(self):
        sp = compile_systolic(correlation_program(), correlation_design())
        env = {"n": 4}
        counts = {
            c: sp.count.evaluate({**env, "col": c}) for c in range(-4, 5)
        }
        assert counts[0] == 5  # full overlap at lag 0
        assert counts[4] == 1 == counts[-4]
        assert all(counts[c] == 5 - abs(c) for c in counts)

    def test_theorems(self):
        assert len(
            check_all_theorems(correlation_program(), correlation_design(), {"n": 3})
        ) == 10


class TestCorrelationExecution:
    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_oracle(self, size):
        report = verify_design(
            correlation_program(), correlation_design(), {"n": size}, seed=size
        )
        assert report.matched

    def test_actual_correlation_values(self):
        from repro.runtime import execute

        sp = compile_systolic(correlation_program(), correlation_design())
        size = 3
        x = [1, 2, 3, 4]
        y = [1, 0, -1, 2]
        inputs = {
            "x": {Point.of(i): x[i] for i in range(size + 1)},
            "y": {Point.of(j): y[j] for j in range(size + 1)},
            "r": 0,
        }
        final, _ = execute(sp, {"n": size}, inputs)
        for lag in range(-size, size + 1):
            expected = sum(
                x[i] * y[i - lag]
                for i in range(size + 1)
                if 0 <= i - lag <= size
            )
            assert final["r"][Point.of(lag)] == expected, f"lag {lag}"
