"""Tests for systolic specs and flow derivation against the paper's values."""

from fractions import Fraction

import pytest

from repro.geometry import Matrix, Point
from repro.systolic import (
    SystolicArray,
    all_flows,
    flow_denominator,
    is_stationary,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
    stream_flow,
)
from repro.util.errors import RequirementViolation, SystolicSpecError


class TestSpecValidation:
    def test_paper_designs_construct(self):
        polyprod_design_d1()
        polyprod_design_d2()
        matmul_design_e1()
        matmul_design_e2()

    def test_step_must_be_single_row(self):
        with pytest.raises(SystolicSpecError):
            SystolicArray(step=Matrix([[1, 0], [0, 1]]), place=Matrix([[1, 0]]))

    def test_place_shape_checked(self):
        with pytest.raises(SystolicSpecError):
            SystolicArray(step=Matrix([[1, 1, 1]]), place=Matrix([[1, 0, 0]]))

    def test_place_rank_checked(self):
        with pytest.raises(SystolicSpecError):
            SystolicArray(
                step=Matrix([[1, 1, 1]]),
                place=Matrix([[1, 0, 0], [2, 0, 0]]),
            )

    def test_loading_vector_dim_checked(self):
        with pytest.raises(SystolicSpecError):
            SystolicArray(
                step=Matrix([[2, 1]]),
                place=Matrix([[1, 0]]),
                loading_vectors={"a": Point.of(1, 0)},
            )

    def test_zero_loading_vector_rejected(self):
        with pytest.raises(SystolicSpecError):
            SystolicArray(
                step=Matrix([[2, 1]]),
                place=Matrix([[1, 0]]),
                loading_vectors={"a": Point.of(0)},
            )

    def test_missing_loading_vector_raises(self):
        with pytest.raises(SystolicSpecError):
            polyprod_design_d2().loading_vector("a")

    def test_null_place(self):
        assert polyprod_design_d1().null_place() == Point.of(0, 1)
        assert matmul_design_e2().null_place() == Point.of(1, 1, 1)

    def test_step_of_place_of(self):
        d2 = polyprod_design_d2()
        assert d2.step_of(Point.of(1, 1)) == 3
        assert d2.place_of(Point.of(1, 1)) == Point.of(2)


class TestFlowsD1:
    """Appendix D.1: flow.a = 0, flow.b = 1/2, flow.c = 1."""

    def test_flows(self):
        prog = polynomial_product_program()
        flows = all_flows(polyprod_design_d1(), prog)
        assert flows["a"] == Point.of(0)
        assert flows["b"] == Point.of(Fraction(1, 2))
        assert flows["c"] == Point.of(1)

    def test_stationary(self):
        prog = polynomial_product_program()
        flows = all_flows(polyprod_design_d1(), prog)
        assert is_stationary(flows["a"])
        assert not is_stationary(flows["b"])


class TestFlowsD2:
    """Appendix D.2: flow.a = 1, flow.b = 1/2, flow.c = 0."""

    def test_flows(self):
        prog = polynomial_product_program()
        flows = all_flows(polyprod_design_d2(), prog)
        assert flows["a"] == Point.of(1)
        assert flows["b"] == Point.of(Fraction(1, 2))
        assert flows["c"] == Point.of(0)


class TestFlowsE1:
    """Appendix E.1: flow.a = (0,1), flow.b = (1,0), flow.c = (0,0)."""

    def test_flows(self):
        prog = matrix_product_program()
        flows = all_flows(matmul_design_e1(), prog)
        assert flows["a"] == Point.of(0, 1)
        assert flows["b"] == Point.of(1, 0)
        assert flows["c"] == Point.of(0, 0)


class TestFlowsE2:
    """Appendix E.2: flow.a = (0,1), flow.b = (1,0), flow.c = (-1,-1)."""

    def test_flows(self):
        prog = matrix_product_program()
        flows = all_flows(matmul_design_e2(), prog)
        assert flows["a"] == Point.of(0, 1)
        assert flows["b"] == Point.of(1, 0)
        assert flows["c"] == Point.of(-1, -1)


class TestFlowErrors:
    def test_flow_undefined_when_step_kills_null(self):
        # place=(i), step=(1,0): step maps a's null (0,1) to 0.
        prog = polynomial_product_program()
        array = SystolicArray(step=Matrix([[1, 0]]), place=Matrix([[1, 0]]))
        with pytest.raises(SystolicSpecError):
            stream_flow(array, prog.stream("a"))

    def test_paper_d23_note_flow_2_rejected(self):
        """D.2.3's note: with place.(i,j) = i-j, flow.c = 2, which violates
        the neighbouring-communication restriction."""
        prog = polynomial_product_program()
        array = SystolicArray(step=Matrix([[2, 1]]), place=Matrix([[1, -1]]))
        flow_c = stream_flow(array, prog.stream("c"))
        assert flow_c == Point.of(2)
        with pytest.raises(RequirementViolation):
            flow_denominator(flow_c)


class TestFlowDenominator:
    def test_unit_flow(self):
        assert flow_denominator(Point.of(1, 0)) == 1

    def test_half_flow(self):
        assert flow_denominator(Point.of(Fraction(1, 2))) == 2

    def test_diagonal(self):
        assert flow_denominator(Point.of(-1, -1)) == 1

    def test_zero(self):
        assert flow_denominator(Point.of(0, 0)) == 1

    def test_mixed_magnitudes_rejected(self):
        with pytest.raises(RequirementViolation):
            flow_denominator(Point.of(1, Fraction(1, 2)))

    def test_non_unit_numerator_rejected(self):
        with pytest.raises(RequirementViolation):
            flow_denominator(Point.of(Fraction(2, 3)))
