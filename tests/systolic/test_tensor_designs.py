"""Tests for the four-loop (r = 4) tensor-contraction designs.

One dimension beyond the paper's appendices: 3-D process spaces, generic
coordinate names (y0, y1, y2), 3-D chains and boundary i/o planes.
"""

import pytest

from repro import compile_systolic
from repro.geometry import Point
from repro.runtime import build_network, execute
from repro.symbolic import Affine, AffineVec
from repro.systolic import (
    tensor_contraction_program,
    tensor_design_simple,
    tensor_design_skewed,
)
from repro.verify import check_all_theorems, cross_check, random_inputs, verify_design

n = Affine.var("n")


class TestSimpleTensorDesign:
    def test_shape(self):
        sp = compile_systolic(tensor_contraction_program(), tensor_design_simple())
        assert sp.coords == ("y0", "y1", "y2")
        assert sp.increment == Point.of(0, 0, 0, 1)
        assert sp.simple
        assert sp.count.collapse() == n + 1

    def test_flows(self):
        sp = compile_systolic(tensor_contraction_program(), tensor_design_simple())
        assert sp.plan("a").flow == Point.of(0, 0, 1)
        assert sp.plan("b").flow == Point.of(1, 0, 0)
        assert sp.plan("c").stationary

    def test_process_count(self):
        sp = compile_systolic(tensor_contraction_program(), tensor_design_simple())
        assert sp.process_space({"n": 2}).size == 27

    @pytest.mark.parametrize("size", [1, 2])
    def test_oracle(self, size):
        assert verify_design(
            tensor_contraction_program(),
            tensor_design_simple(),
            {"n": size},
            seed=size,
        ).matched

    def test_cross_check(self):
        sp = compile_systolic(tensor_contraction_program(), tensor_design_simple())
        assert cross_check(sp, {"n": 2}).ok

    def test_theorems(self):
        assert len(
            check_all_theorems(
                tensor_contraction_program(), tensor_design_simple(), {"n": 2}
            )
        ) == 10

    def test_against_direct_computation(self):
        prog = tensor_contraction_program()
        sp = compile_systolic(prog, tensor_design_simple())
        size = 2
        rng = range(size + 1)
        a = {(i, j, l): (i + 2 * j - l) % 5 - 2 for i in rng for j in rng for l in rng}
        b = {(j, k, l): (j - k + 3 * l) % 7 - 3 for j in rng for k in rng for l in rng}
        inputs = {
            "a": {Point(p): v for p, v in a.items()},
            "b": {Point(p): v for p, v in b.items()},
            "c": 0,
        }
        final, _ = execute(sp, {"n": size}, inputs)
        for i in rng:
            for j in rng:
                for k in rng:
                    expect = sum(a[(i, j, l)] * b[(j, k, l)] for l in rng)
                    assert final["c"][Point.of(i, j, k)] == expect


class TestSkewedTensorDesign:
    def test_nonsimple_with_3d_buffers(self):
        prog = tensor_contraction_program()
        sp = compile_systolic(prog, tensor_design_skewed())
        assert not sp.simple
        assert len(sp.first.cases) == 3  # like E.2, one clause per face
        assert not any(p.stationary for p in sp.streams)
        assert sp.plan("c").flow == Point.of(-1, -1, 0)
        net = build_network(sp, {"n": 2}, random_inputs(prog, {"n": 2}))
        assert net.node_counts["buffer"] > 0  # 3-D analogue of E.2's corners
        # the slab |y0 - y1| <= n of the (2n+1)^2 (n+1) box computes
        assert net.node_counts["compute"] == 57

    def test_oracle(self):
        assert verify_design(
            tensor_contraction_program(), tensor_design_skewed(), {"n": 2}
        ).matched

    def test_cross_check(self):
        sp = compile_systolic(tensor_contraction_program(), tensor_design_skewed())
        assert cross_check(sp, {"n": 2}).ok

    def test_pygen_translation(self):
        """The executable Python backend is dimension-generic too."""
        from repro.lang import run_sequential
        from repro.target.pygen import execute_python

        prog = tensor_contraction_program()
        sp = compile_systolic(prog, tensor_design_simple())
        inputs = random_inputs(prog, {"n": 1}, seed=4)
        final = execute_python(sp, {"n": 1}, inputs)
        oracle = run_sequential(prog, {"n": 1}, inputs)
        for var in oracle:
            assert final[var] == {tuple(k): v for k, v in oracle[var].items()}
