"""Shared pytest configuration: Hypothesis profiles.

CI runs with ``--hypothesis-profile=ci`` (see ``.github/workflows/ci.yml``):
derandomized, so every property suite draws the same examples on every run
and a red build is always reproducible locally with the same flag.  The
default profile keeps Hypothesis's random exploration for local runs.
"""

from __future__ import annotations

try:
    from hypothesis import settings
except ImportError:  # property suites are skipped without hypothesis
    settings = None

if settings is not None:
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        print_blob=True,
    )
    settings.register_profile("dev", deadline=None)
