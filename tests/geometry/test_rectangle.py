"""Unit tests for repro.geometry.rectangle."""

import pytest

from repro.geometry import Point, Rectangle
from repro.util.errors import GeometryError


class TestConstruction:
    def test_basic(self):
        r = Rectangle(Point.of(0, 0), Point.of(2, 3))
        assert r.dim == 2
        assert r.size == 12

    def test_single_point(self):
        r = Rectangle(Point.of(1), Point.of(1))
        assert r.size == 1

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rectangle(Point.of(1), Point.of(0))

    def test_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Rectangle(Point.of(0), Point.of(0, 0))

    def test_fractional_rejected(self):
        from fractions import Fraction

        with pytest.raises(GeometryError):
            Rectangle(Point.of(Fraction(1, 2)), Point.of(1))


class TestMembership:
    def test_contains(self):
        r = Rectangle(Point.of(0, 0), Point.of(2, 2))
        assert Point.of(1, 1) in r
        assert Point.of(0, 2) in r
        assert Point.of(3, 0) not in r
        assert Point.of(-1, 0) not in r

    def test_contains_wrong_dim(self):
        r = Rectangle(Point.of(0), Point.of(2))
        assert Point.of(1, 1) not in r


class TestIteration:
    def test_iter_order(self):
        r = Rectangle(Point.of(0, 0), Point.of(1, 1))
        assert list(r) == [
            Point.of(0, 0),
            Point.of(0, 1),
            Point.of(1, 0),
            Point.of(1, 1),
        ]

    def test_iter_count_matches_size(self):
        r = Rectangle(Point.of(-1, 0, 2), Point.of(1, 1, 3))
        assert len(list(r)) == r.size

    def test_extent(self):
        r = Rectangle(Point.of(-2, 0), Point.of(2, 0))
        assert r.extent(0) == 5
        assert r.extent(1) == 1


class TestCornersFaces:
    def test_corners(self):
        r = Rectangle(Point.of(0, 0), Point.of(1, 2))
        cs = set(r.corners())
        assert cs == {Point.of(0, 0), Point.of(0, 2), Point.of(1, 0), Point.of(1, 2)}

    def test_corners_degenerate_axis(self):
        r = Rectangle(Point.of(0, 5), Point.of(1, 5))
        assert set(r.corners()) == {Point.of(0, 5), Point.of(1, 5)}

    def test_face(self):
        r = Rectangle(Point.of(0, 0), Point.of(2, 2))
        f = r.face(0, at_lo=True)
        assert set(f) == {Point.of(0, 0), Point.of(0, 1), Point.of(0, 2)}

    def test_boundary_points(self):
        r = Rectangle(Point.of(0, 0), Point.of(2, 2))
        b = set(r.boundary_points(0))
        assert Point.of(0, 1) in b and Point.of(2, 1) in b
        assert Point.of(1, 1) not in b


class TestClampBounding:
    def test_clamp(self):
        r = Rectangle(Point.of(0, 0), Point.of(2, 2))
        assert r.clamp(Point.of(-5, 1)) == Point.of(0, 1)
        assert r.clamp(Point.of(3, 3)) == Point.of(2, 2)

    def test_bounding(self):
        r = Rectangle.bounding([Point.of(1, 5), Point.of(-1, 2), Point.of(0, 0)])
        assert r.lo == Point.of(-1, 0)
        assert r.hi == Point.of(1, 5)

    def test_bounding_empty(self):
        with pytest.raises(GeometryError):
            Rectangle.bounding([])
