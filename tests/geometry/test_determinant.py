"""Tests for Matrix.determinant (used by the unimodular-face check)."""

from fractions import Fraction

import pytest

from repro.geometry import Matrix
from repro.util.errors import GeometryError


class TestDeterminant:
    def test_identity(self):
        from repro.geometry import identity

        assert identity(3).determinant() == 1

    def test_2x2(self):
        assert Matrix([[1, 2], [3, 4]]).determinant() == -2

    def test_singular(self):
        assert Matrix([[1, 2], [2, 4]]).determinant() == 0

    def test_permutation_sign(self):
        assert Matrix([[0, 1], [1, 0]]).determinant() == -1

    def test_fractional(self):
        m = Matrix([[Fraction(1, 2), 0], [0, 4]])
        assert m.determinant() == 2

    def test_nonsquare_rejected(self):
        with pytest.raises(GeometryError):
            Matrix([[1, 2, 3]]).determinant()

    def test_consistent_with_inverse(self):
        m = Matrix([[2, 1], [1, 1]])
        assert m.determinant() != 0
        m.inverse()  # must not raise

    def test_paper_faces_unimodular(self):
        """Every face of every appendix design has |det| = 1 -- the
        condition the reproduction identified as necessary for integral
        face solutions."""
        from repro.core import derive_increment
        from repro.systolic import all_paper_designs

        for exp_id, prog, array in all_paper_designs():
            inc = derive_increment(array)
            for axis, c in enumerate(inc):
                if c == 0:
                    continue
                det = array.place.drop_column(axis).determinant()
                assert abs(det) == 1, f"{exp_id} face {axis}"

    def test_non_unimodular_place_rejected_at_compile(self):
        """The sublattice failure mode found by the property search:
        a place whose reduced face matrix has |det| != 1 maps the index
        lattice onto a proper sublattice and must be rejected."""
        from repro.core import compile_systolic
        from repro.systolic import SystolicArray, matrix_product_program
        from repro.util.errors import ReproError

        prog = matrix_product_program()
        bad = SystolicArray(
            step=Matrix([[1, 1, 1]]),
            place=Matrix([[1, 1, 0], [1, -1, 0]]),  # det of k-face = -2
        )
        with pytest.raises(ReproError):
            compile_systolic(prog, bad)
