"""Unit tests for Fourier-Motzkin feasibility (guard pruning substrate)."""

from fractions import Fraction

import pytest

from repro.geometry import ConstraintSystem, LinearConstraint, fourier_motzkin_feasible
from repro.util.errors import GeometryError


def ge(coeffs, const):
    """sum coeffs.x + const >= 0"""
    return LinearConstraint.of(coeffs, const)


class TestLinearConstraint:
    def test_trivial_true(self):
        assert ge([0, 0], 1).trivially_true

    def test_trivial_false(self):
        assert ge([0], -1).trivially_false

    def test_evaluate(self):
        c = ge([1, -1], 0)  # x >= y
        assert c.evaluate([3, 2])
        assert not c.evaluate([2, 3])

    def test_evaluate_fraction(self):
        assert ge([2], -1).evaluate([Fraction(1, 2)])

    def test_evaluate_dim_mismatch(self):
        with pytest.raises(GeometryError):
            ge([1], 0).evaluate([1, 2])


class TestFeasibility:
    def test_empty_system(self):
        assert fourier_motzkin_feasible([], 2)

    def test_box(self):
        cs = [ge([1], 0), ge([-1], 5)]  # 0 <= x <= 5
        assert fourier_motzkin_feasible(cs, 1)

    def test_empty_interval(self):
        cs = [ge([1], -5), ge([-1], 2)]  # x >= 5 and x <= 2
        assert not fourier_motzkin_feasible(cs, 1)

    def test_two_vars_feasible(self):
        # x >= 0, y >= 0, x + y <= 3
        cs = [ge([1, 0], 0), ge([0, 1], 0), ge([-1, -1], 3)]
        assert fourier_motzkin_feasible(cs, 2)

    def test_two_vars_infeasible(self):
        # x >= 2, y >= 2, x + y <= 3
        cs = [ge([1, 0], -2), ge([0, 1], -2), ge([-1, -1], 3)]
        assert not fourier_motzkin_feasible(cs, 2)

    def test_trivially_false_input(self):
        assert not fourier_motzkin_feasible([ge([0], -1)], 1)

    def test_constraint_dim_mismatch(self):
        with pytest.raises(GeometryError):
            fourier_motzkin_feasible([ge([1], 0)], 2)

    def test_paper_e2_vacuous_subalternative(self):
        """Appendix E.2.5 prunes sub-alternatives like
        0 <= row-col <= n  /\\  0 <= -col <= n  /\\  0 <= col <= n  /\\ col > 0
        vs the consistent ones.  Model: vars (col, row, n), n >= 1.

        The clause guard 0<=row-col<=n /\\ 0<=-col<=n together with the
        sub-guard col >= 1 is infeasible (since -col >= 0 forces col <= 0).
        """
        col, row, n = 0, 1, 2
        base = [
            ge([-1, 1, 0], 0),   # row - col >= 0
            ge([1, -1, 1], 0),   # n - (row - col) >= 0
            ge([-1, 0, 0], 0),   # -col >= 0
            ge([1, 0, 1], 0),    # n + col >= 0
            ge([0, 0, 1], -1),   # n >= 1
        ]
        infeasible = base + [ge([1, 0, 0], -1)]  # col >= 1
        assert not fourier_motzkin_feasible(infeasible, 3)
        feasible = base + [ge([-1, 0, 0], 0)]  # col <= 0 (consistent)
        assert fourier_motzkin_feasible(feasible, 3)


class TestConstraintSystem:
    def test_add_and_evaluate(self):
        sys = ConstraintSystem(2)
        sys.add(ge([1, 0], 0))
        sys.add(ge([0, 1], -1))
        assert sys.evaluate([0, 1])
        assert not sys.evaluate([0, 0])

    def test_is_feasible(self):
        sys = ConstraintSystem(1, [ge([1], 0), ge([-1], -1)])
        assert not sys.is_feasible()

    def test_dim_check(self):
        sys = ConstraintSystem(2)
        with pytest.raises(GeometryError):
            sys.add(ge([1], 0))
