"""Unit tests for repro.geometry.point (paper Section 2 notation)."""

from fractions import Fraction

import pytest

from repro.geometry import Point, dot, gcd_reduce, nb, sgn, vector_quotient
from repro.util.errors import GeometryError


class TestConstruction:
    def test_of(self):
        assert Point.of(1, 2, 3) == (1, 2, 3)

    def test_origin(self):
        assert Point.origin(3) == (0, 0, 0)
        assert Point.origin(3).is_zero

    def test_unit(self):
        assert Point.unit(3, 1) == (0, 1, 0)

    def test_unit_out_of_range(self):
        with pytest.raises(GeometryError):
            Point.unit(2, 5)

    def test_integral_fraction_collapses_to_int(self):
        p = Point([Fraction(4, 2), 1])
        assert isinstance(p[0], int) and p[0] == 2

    def test_rejects_float(self):
        with pytest.raises(GeometryError):
            Point([1.5, 2])

    def test_rejects_bool(self):
        with pytest.raises(GeometryError):
            Point([True])


class TestArithmetic:
    def test_add(self):
        assert Point.of(1, 2) + Point.of(3, 4) == (4, 6)

    def test_add_plain_tuple(self):
        assert Point.of(1, 2) + (3, 4) == (4, 6)

    def test_sub(self):
        assert Point.of(5, 5) - Point.of(2, 3) == (3, 2)

    def test_neg(self):
        assert -Point.of(1, -2) == (-1, 2)

    def test_scalar_mul(self):
        assert Point.of(1, 2) * 3 == (3, 6)
        assert 3 * Point.of(1, 2) == (3, 6)

    def test_scalar_div(self):
        assert Point.of(2, 4) / 2 == (1, 2)

    def test_fractional_div(self):
        p = Point.of(1, 2) / 2
        assert p == (Fraction(1, 2), 1)
        assert not p.is_integral

    def test_div_by_zero(self):
        with pytest.raises(GeometryError):
            Point.of(1) / 0

    def test_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Point.of(1, 2) + Point.of(1, 2, 3)

    def test_with_coord(self):
        # the paper's (x; i: e) notation
        assert Point.of(1, 2, 3).with_coord(1, 9) == (1, 9, 3)

    def test_result_type_is_point(self):
        assert isinstance(Point.of(1) + Point.of(1), Point)
        assert isinstance(Point.of(1) * 2, Point)


class TestDotSgnNb:
    def test_dot(self):
        assert dot(Point.of(1, 2, 3), Point.of(4, 5, 6)) == 32

    def test_dot_mismatch(self):
        with pytest.raises(GeometryError):
            dot(Point.of(1), Point.of(1, 2))

    @pytest.mark.parametrize("v,expected", [(5, 1), (0, 0), (-3, -1)])
    def test_sgn(self, v, expected):
        assert sgn(v) == expected

    def test_sgn_fraction(self):
        assert sgn(Fraction(-1, 2)) == -1

    def test_nb_true(self):
        assert nb(Point.of(1, -1, 0))

    def test_nb_false(self):
        assert not nb(Point.of(2, 0))

    def test_nb_fractional(self):
        assert nb(Point.of(Fraction(1, 2), 1))


class TestGcdReduce:
    def test_basic(self):
        assert gcd_reduce(Point.of(0, -8)) == (Point.of(0, -1), 8)

    def test_coprime(self):
        assert gcd_reduce(Point.of(2, 3)) == (Point.of(2, 3), 1)

    def test_paper_d2(self):
        # Appendix D.2: (2,-2) reduces by gcd 2 to (1,-1)
        assert gcd_reduce(Point.of(2, -2)) == (Point.of(1, -1), 2)

    def test_paper_e2(self):
        # Appendix E.2: (3,3,3) reduces by gcd 3 to (1,1,1)
        assert gcd_reduce(Point.of(3, 3, 3)) == (Point.of(1, 1, 1), 3)

    def test_zero(self):
        assert gcd_reduce(Point.of(0, 0)) == (Point.of(0, 0), 1)


class TestVectorQuotient:
    def test_exact(self):
        assert vector_quotient(Point.of(4, -8), Point.of(1, -2)) == 4

    def test_zero_numerator(self):
        assert vector_quotient(Point.of(0, 0), Point.of(1, 2)) == 0

    def test_zero_both(self):
        assert vector_quotient(Point.of(0, 0), Point.of(0, 0)) == 0

    def test_not_multiple(self):
        with pytest.raises(GeometryError):
            vector_quotient(Point.of(1, 2), Point.of(1, 1))

    def test_not_integer(self):
        with pytest.raises(GeometryError):
            vector_quotient(Point.of(1, 1), Point.of(2, 2))

    def test_zero_component_respected(self):
        assert vector_quotient(Point.of(0, 6), Point.of(0, 2)) == 3
        with pytest.raises(GeometryError):
            vector_quotient(Point.of(1, 6), Point.of(0, 2))

    def test_paper_count_formula(self):
        # Appendix E.1: ((0,0,n) // (0,0,1)) + 1 == n + 1
        n = 7
        assert vector_quotient(Point.of(0, 0, n), Point.of(0, 0, 1)) + 1 == n + 1
