"""Unit tests for repro.geometry.lattice (Theorem 7 and chords)."""

from fractions import Fraction

import pytest

from repro.geometry import (
    Line,
    Point,
    integer_direction,
    lattice_points_on_vector,
    on_chord,
    unit_distance,
)
from repro.util.errors import GeometryError


class TestLine:
    def test_contains(self):
        line = Line(Point.of(0, 0), Point.of(1, 2))
        assert line.contains(Point.of(2, 4))
        assert not line.contains(Point.of(2, 5))

    def test_contains_axis_parallel(self):
        line = Line(Point.of(3, 0), Point.of(0, 1))
        assert line.contains(Point.of(3, 100))
        assert not line.contains(Point.of(4, 0))

    def test_zero_direction_rejected(self):
        with pytest.raises(GeometryError):
            Line(Point.of(0), Point.of(0))

    def test_parameter_of(self):
        line = Line(Point.of(1, 1), Point.of(2, 2))
        assert line.parameter_of(Point.of(5, 5)) == 2

    def test_parameter_of_off_line(self):
        with pytest.raises(GeometryError):
            Line(Point.of(0, 0), Point.of(1, 0)).parameter_of(Point.of(0, 1))

    def test_lattice_points_between(self):
        line = Line(Point.of(0, 0), Point.of(1, 1))
        pts = list(line.lattice_points_between(Point.of(0, 0), Point.of(3, 3)))
        assert pts == [Point.of(0, 0), Point.of(1, 1), Point.of(2, 2), Point.of(3, 3)]

    def test_lattice_points_between_negative_direction(self):
        line = Line(Point.of(2, 0), Point.of(-1, 1))
        pts = list(line.lattice_points_between(Point.of(0, 0), Point.of(2, 2)))
        assert Point.of(2, 0) in pts and Point.of(0, 2) in pts
        assert len(pts) == 3

    def test_lattice_points_outside_box(self):
        line = Line(Point.of(10, 10), Point.of(1, 0))
        assert list(line.lattice_points_between(Point.of(0, 0), Point.of(5, 5))) == []


class TestOnChord:
    def test_origin_always_on(self):
        assert on_chord(Point.of(0, 0), Point.of(3, 9))

    def test_endpoint_on(self):
        assert on_chord(Point.of(3, 9), Point.of(3, 9))

    def test_midpoint_on(self):
        assert on_chord(Point.of(1, 3), Point.of(3, 9))

    def test_beyond_endpoint_off(self):
        assert not on_chord(Point.of(4, 12), Point.of(3, 9))

    def test_off_direction(self):
        assert not on_chord(Point.of(1, 4), Point.of(3, 9))

    def test_zero_chord(self):
        assert on_chord(Point.of(0, 0), Point.of(0, 0))
        assert not on_chord(Point.of(1, 0), Point.of(0, 0))


class TestTheorem7:
    """Theorem 7: a vector x has gcd(x)+1 lattice points on its chord."""

    def test_count(self):
        pts = lattice_points_on_vector(Point.of(4, 6))
        assert len(pts) == 3  # gcd(4,6)=2 -> 3 points

    def test_points(self):
        assert lattice_points_on_vector(Point.of(4, 6)) == [
            Point.of(0, 0),
            Point.of(2, 3),
            Point.of(4, 6),
        ]

    def test_coprime_vector_only_endpoints(self):
        assert lattice_points_on_vector(Point.of(3, 5)) == [
            Point.of(0, 0),
            Point.of(3, 5),
        ]

    def test_all_on_chord(self):
        x = Point.of(6, -9, 3)
        for p in lattice_points_on_vector(x):
            assert on_chord(p, x)
            assert p.is_integral

    def test_zero_vector(self):
        assert lattice_points_on_vector(Point.of(0, 0)) == [Point.of(0, 0)]


class TestUnitDistance:
    def test_basic(self):
        assert unit_distance(Point.of(0, -8)) == Point.of(0, -1)

    def test_already_unit(self):
        assert unit_distance(Point.of(1, -1)) == Point.of(1, -1)

    def test_zero_rejected(self):
        with pytest.raises(GeometryError):
            unit_distance(Point.of(0, 0))

    def test_adjacent_points_one_unit_apart(self):
        x = Point.of(6, 9)
        pts = lattice_points_on_vector(x)
        u = unit_distance(x)
        for a, b in zip(pts, pts[1:]):
            assert b - a == u


class TestIntegerDirection:
    def test_fractional_input(self):
        assert integer_direction(Point.of(Fraction(1, 2), 1)) == Point.of(1, 2)

    def test_sign_preserved(self):
        assert integer_direction(Point.of(Fraction(-1, 2), 0)) == Point.of(-1, 0)

    def test_integral_input_reduced(self):
        assert integer_direction(Point.of(4, 6)) == Point.of(2, 3)

    def test_zero_rejected(self):
        with pytest.raises(GeometryError):
            integer_direction(Point.of(0, 0))
