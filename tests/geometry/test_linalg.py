"""Unit tests for repro.geometry.linalg."""

from fractions import Fraction

import pytest

from repro.geometry import Matrix, Point, identity, null_space_vector, solve_unique
from repro.util.errors import GeometryError, SingularMatrixError


class TestMatrixBasics:
    def test_shape(self):
        m = Matrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)

    def test_ragged_rejected(self):
        with pytest.raises(GeometryError):
            Matrix([[1, 2], [3]])

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Matrix([])

    def test_immutable(self):
        m = Matrix([[1]])
        with pytest.raises(AttributeError):
            m.rows = ()

    def test_indexing_row_col(self):
        m = Matrix([[1, 2], [3, 4]])
        assert m[1, 0] == 3
        assert m.row(0) == Point.of(1, 2)
        assert m.col(1) == Point.of(2, 4)

    def test_eq_hash(self):
        assert Matrix([[1, 2]]) == Matrix([[1, 2]])
        assert hash(Matrix([[1, 2]])) == hash(Matrix([[1, 2]]))


class TestApply:
    def test_apply_point(self):
        m = Matrix([[1, 0, 1], [0, 1, -1]])  # the index map of A[i+k, j-k]
        assert m.apply_point(Point.of(2, 3, 1)) == Point.of(3, 2)

    def test_matmul(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[0, 1], [1, 0]])
        assert a @ b == Matrix([[2, 1], [4, 3]])

    def test_transpose(self):
        assert Matrix([[1, 2, 3]]).transpose() == Matrix([[1], [2], [3]])

    def test_drop_column(self):
        m = Matrix([[1, 2, 3], [4, 5, 6]])
        assert m.drop_column(1) == Matrix([[1, 3], [4, 6]])

    def test_apply_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Matrix([[1, 2]]).apply_point(Point.of(1, 2, 3))


class TestRankNullSpace:
    def test_rank_full(self):
        assert Matrix([[1, 0], [0, 1]]).rank == 2

    def test_rank_deficient(self):
        assert Matrix([[1, 2], [2, 4]]).rank == 1

    def test_null_space_simple_place(self):
        # place.(i,j) = i  (Appendix D.1): null space spanned by (0,1)
        m = Matrix([[1, 0]])
        assert null_space_vector(m) == Point.of(0, 1)

    def test_null_space_nonsimple_place(self):
        # place.(i,j) = i+j (Appendix D.2): null space spanned by +-(1,-1)
        v = null_space_vector(Matrix([[1, 1]]))
        assert v in (Point.of(1, -1), Point.of(-1, 1))

    def test_null_space_kung_leiserson(self):
        # place.(i,j,k) = (i-k, j-k) (Appendix E.2): span of (1,1,1)
        v = null_space_vector(Matrix([[1, 0, -1], [0, 1, -1]]))
        assert v == Point.of(1, 1, 1)

    def test_null_space_matmul_simple(self):
        # place.(i,j,k) = (i,j) (Appendix E.1): span of (0,0,1)
        v = null_space_vector(Matrix([[1, 0, 0], [0, 1, 0]]))
        assert v == Point.of(0, 0, 1)

    def test_null_space_vector_requires_dim_one(self):
        with pytest.raises(GeometryError):
            null_space_vector(Matrix([[1, 0, 0]]))  # 2-dimensional null space

    def test_null_space_basis_orthogonality(self):
        m = Matrix([[1, 2, 3]])
        for v in m.null_space_basis():
            assert m.apply_point(v).is_zero

    def test_null_space_vector_is_coprime_integral(self):
        v = null_space_vector(Matrix([[2, 2]]))
        assert v.is_integral
        assert v in (Point.of(1, -1), Point.of(-1, 1))


class TestInverseSolve:
    def test_identity(self):
        assert identity(3) @ identity(3) == identity(3)

    def test_inverse(self):
        m = Matrix([[1, 2], [3, 5]])
        assert m @ m.inverse() == identity(2)

    def test_inverse_fractional(self):
        m = Matrix([[2, 0], [0, 4]])
        inv = m.inverse()
        assert inv[0, 0] == Fraction(1, 2)
        assert inv[1, 1] == Fraction(1, 4)

    def test_singular(self):
        with pytest.raises(SingularMatrixError):
            Matrix([[1, 1], [1, 1]]).inverse()

    def test_nonsquare_inverse_rejected(self):
        with pytest.raises(GeometryError):
            Matrix([[1, 2, 3]]).inverse()

    def test_solve_unique(self):
        m = Matrix([[2, 1], [1, 1]])
        x = solve_unique(m, [Fraction(3), Fraction(2)])
        assert x == [1, 1]

    def test_solve_roundtrip(self):
        m = Matrix([[1, 2], [3, 4]])
        rhs = [Fraction(7), Fraction(10)]
        x = solve_unique(m, rhs)
        assert m.apply(x) == rhs


class TestPlaceColumnDropInvertibility:
    """Dropping column i of place is invertible iff increment.i != 0.

    This is the property the face-solving step of Section 7.2.2 relies on.
    """

    def test_kung_leiserson_all_faces_invertible(self):
        place = Matrix([[1, 0, -1], [0, 1, -1]])  # increment = (1,1,1)
        for i in range(3):
            place.drop_column(i).inverse()  # must not raise

    def test_simple_place_parallel_face_singular(self):
        place = Matrix([[1, 0, 0], [0, 1, 0]])  # increment = (0,0,1)
        with pytest.raises(SingularMatrixError):
            place.drop_column(0).inverse()  # increment.0 == 0 -> singular
        place.drop_column(2).inverse()  # increment.2 != 0 -> invertible
