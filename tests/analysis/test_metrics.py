"""Direct unit tests for repro.analysis.metrics."""

import pytest

from repro import compile_systolic
from repro.analysis import (
    ParallelismProfile,
    parallelism_profile,
    sequential_operation_count,
    synchronous_makespan,
)
from repro.runtime import execute
from repro.systolic import all_paper_designs
from repro.verify import random_inputs

ALL = all_paper_designs()


class TestStaticMetrics:
    def test_sequential_ops_polyprod(self):
        exp, prog, arr = ALL[0]
        assert sequential_operation_count(prog, {"n": 4}) == 25

    def test_sequential_ops_matmul(self):
        exp, prog, arr = ALL[2]
        assert sequential_operation_count(prog, {"n": 4}) == 125

    def test_sync_makespan_d(self):
        exp, prog, arr = ALL[0]
        # step = 2i + j over [0,n]^2 spans 0..3n
        assert synchronous_makespan(prog, arr, {"n": 4}) == 13

    def test_sync_makespan_e2_equals_e1(self):
        """Both E designs share step = i+j+k, hence the same ideal time."""
        _, prog, e1 = ALL[2]
        _, _, e2 = ALL[3]
        assert synchronous_makespan(prog, e1, {"n": 5}) == synchronous_makespan(
            prog, e2, {"n": 5}
        )


class TestProfile:
    def make_profile(self, idx=2, n=3):
        exp, prog, arr = ALL[idx]
        sp = compile_systolic(prog, arr)
        inputs = random_inputs(prog, {"n": n}, seed=0)
        _, stats = execute(sp, {"n": n}, inputs)
        return parallelism_profile(sp, {"n": n}, stats)

    def test_fields(self):
        p = self.make_profile()
        assert p.sequential_ops == 64
        assert p.synchronous_makespan == 10
        assert p.observed_makespan >= p.synchronous_makespan
        assert p.processes > 0 and p.messages > 0

    def test_speedup_efficiency_relationship(self):
        p = self.make_profile()
        assert p.efficiency == pytest.approx(p.speedup / p.processes)

    def test_row_is_flat_and_json_friendly(self):
        row = self.make_profile().row()
        for key in ("n", "seq_ops", "sync_makespan", "observed_makespan",
                    "processes", "messages", "speedup", "efficiency"):
            assert key in row
        assert all(isinstance(v, (int, float)) for v in row.values())

    def test_profile_is_frozen(self):
        p = self.make_profile()
        with pytest.raises(Exception):
            p.processes = 0


class TestInterpreterOrder:
    def test_negative_step_sequential_order(self):
        """Sequential semantics honour the step direction: with st_j = -1
        the last write wins at j = 0 (not j = n)."""
        from repro.lang import parse_program, run_sequential
        from repro.geometry import Point

        text = """
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- -1 -> n
  a[i] := b[j]
"""
        prog = parse_program(text)
        n = 3
        inputs = {"b": {Point.of(j): j * 10 for j in range(n + 1)}, "a": 0}
        final = run_sequential(prog, {"n": n}, inputs)
        # j runs n..0, so the final value of a[i] is b[0]
        assert all(final["a"][Point.of(i)] == 0 for i in range(n + 1))

    def test_positive_step_order(self):
        from repro.lang import parse_program, run_sequential
        from repro.geometry import Point

        text = """
size n
var a[0..n], b[0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
  a[i] := b[j]
"""
        prog = parse_program(text)
        n = 3
        inputs = {"b": {Point.of(j): j * 10 for j in range(n + 1)}, "a": 0}
        final = run_sequential(prog, {"n": n}, inputs)
        assert all(final["a"][Point.of(i)] == 30 for i in range(n + 1))
