"""Tests for the wavefront visualisation and topology validation."""

import pytest

from repro import compile_systolic
from repro.analysis.wavefront import (
    activity_histogram,
    render_wavefront_film,
    render_wavefront_grid,
    synchronous_wavefronts,
)
from repro.geometry import Point
from repro.runtime import build_network
from repro.runtime.trace import Trace, trace_run
from repro.systolic import all_paper_designs
from repro.util.errors import ReproError, RuntimeSimulationError
from repro.verify import random_inputs

ALL = all_paper_designs()


class TestSynchronousWavefronts:
    def test_d1_wavefront_sizes(self):
        """step = 2i+j over [0,n]^2: front sizes ramp up and down."""
        exp, prog, arr = ALL[0]
        sp = compile_systolic(prog, arr)
        fronts = synchronous_wavefronts(sp, {"n": 2})
        assert set(fronts) == set(range(0, 7))  # steps 0..3n
        assert len(fronts[0]) == 1
        assert all(len(v) >= 1 for v in fronts.values())
        total = sum(len(v) for v in fronts.values())
        assert total == 9  # |IS| = (n+1)^2

    def test_e2_hexagon_wavefront(self):
        exp, prog, arr = ALL[3]
        sp = compile_systolic(prog, arr)
        fronts = synchronous_wavefronts(sp, {"n": 2})
        assert sum(len(v) for v in fronts.values()) == 27

    def test_each_front_is_antichain_in_place(self):
        """Two ops in one front never share a place (Eq. 1)."""
        exp, prog, arr = ALL[3]
        sp = compile_systolic(prog, arr)
        for front in synchronous_wavefronts(sp, {"n": 3}).values():
            assert len(front) == len(set(front))


class TestRenderGrid:
    def test_1d_grid(self):
        exp, prog, arr = ALL[0]
        sp = compile_systolic(prog, arr)
        art = render_wavefront_grid(sp, {"n": 4}, step=0)
        assert art.count("#") == 1
        assert len(art) == 5  # n+1 cells, single row

    def test_2d_grid_marks_buffers_blank(self):
        exp, prog, arr = ALL[3]  # E2: corners outside CS
        sp = compile_systolic(prog, arr)
        art = render_wavefront_grid(sp, {"n": 2}, step=0)
        lines = art.splitlines()
        assert len(lines) == 5  # 2n+1 rows
        assert any(" " in line for line in lines)  # blank corners
        assert sum(line.count("#") for line in lines) >= 1

    def test_film(self):
        exp, prog, arr = ALL[2]
        sp = compile_systolic(prog, arr)
        film = render_wavefront_film(sp, {"n": 2}, max_frames=3)
        assert film.count("step ") == 3

    def test_film_always_shows_the_final_wavefront(self):
        """Regression: stride sampling used to drop the last step whenever
        ``len(steps)`` was not a multiple of the stride."""
        exp, prog, arr = ALL[0]
        sp = compile_systolic(prog, arr)
        for n in (3, 4, 5):
            fronts = synchronous_wavefronts(sp, {"n": n})
            last = max(fronts)
            for max_frames in (2, 3, 4, 5):
                film = render_wavefront_film(sp, {"n": n}, max_frames=max_frames)
                assert f"step {last}:" in film
                assert film.count("step ") <= max(max_frames, 1)

    def test_3d_rejected(self):
        # build a 4-loop program? use coords length check via fake coords
        exp, prog, arr = ALL[2]
        sp = compile_systolic(prog, arr)
        # monkey trick: ask for an unsupported dimensionality explicitly
        with pytest.raises(ReproError):
            render_wavefront_grid(
                sp.__class__(**{**sp.__dict__, "coords": ("a", "b", "c")}),
                {"n": 1},
                0,
            )


class TestActivityHistogram:
    def test_histogram_from_run(self):
        exp, prog, arr = ALL[0]
        sp = compile_systolic(prog, arr)
        net = build_network(sp, {"n": 3}, random_inputs(prog, {"n": 3}))
        _, trace = trace_run(net)
        hist = activity_histogram(trace, bins=5)
        assert hist.count("t=") == 5
        assert "#" in hist

    def test_empty_trace(self):
        assert "(no events)" in activity_histogram(Trace())


class TestValidateTopology:
    def test_all_designs_validate(self):
        for exp, prog, arr in ALL:
            sp = compile_systolic(prog, arr)
            net = build_network(sp, {"n": 2}, random_inputs(prog, {"n": 2}))
            net.validate_topology()

    def test_corrupted_totals_detected(self):
        exp, prog, arr = ALL[0]
        sp = compile_systolic(prog, arr)
        net = build_network(sp, {"n": 2}, random_inputs(prog, {"n": 2}))
        key = next(iter(net.chain_totals))
        net.chain_totals[key] += 1
        with pytest.raises(RuntimeSimulationError):
            net.validate_topology()
