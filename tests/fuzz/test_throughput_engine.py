"""Regression pins for the campaign throughput engine.

The fuzz pipeline compiles each instance once (``CompiledInstance``), wires
its process network once (``NetworkPlan``), and switches tracing/timing off
when nobody reads them.  Each of those reuse paths is an opportunity to
silently lose a guarantee -- deadlock detection, trace fidelity, Lamport
stats -- so this module proves they all survive:

* the historically-deadlocking corpus pin ``seed_2c6a5806697e`` stays green
  through the pre-bound plan path, and a *planted* deadlock is still caught
  on every instantiation of a reused plan;
* trace-on / trace-off / timing-off runs produce identical final values
  (and trace-on does not perturb the stats);
* the pipeline counters show one compile and one render per harness run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.compiled import CompiledInstance, stats as pipeline_stats
from repro.fuzz.corpus import load_reproducer
from repro.fuzz.harness import HarnessConfig, run_instance
from repro.runtime.network import execute, network_plan, plan_stats
from repro.runtime.trace import attach_tracer
from repro.util.errors import DeadlockError

CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"

#: the pin that once deadlocked at capacity 1 (one-stream-at-a-time soak)
PINNED_DEADLOCK_CASE = CORPUS / "seed_2c6a5806697e.json"


@pytest.fixture()
def pinned_instance():
    instance, _config, _raw = load_reproducer(PINNED_DEADLOCK_CASE)
    return instance


class TestPreBoundDeadlockDetection:
    def test_pinned_case_clean_through_plan_path(self, pinned_instance):
        """The historical deadlocker runs clean via plan -> instantiate."""
        compiled = CompiledInstance.build(pinned_instance)
        plan = compiled.plan()
        for _ in range(2):  # the second run reuses the cached plan wiring
            net = plan.instantiate(inputs=compiled.inputs(0))
            net.run()
            for splan in compiled.sp.streams:
                net.host.check_full_recovery(splan.name)

    def test_planted_deadlock_caught_on_every_instantiation(
        self, pinned_instance
    ):
        """A real deadlock fires through a pre-bound plan -- repeatedly.

        ``soak_plus_one`` makes a compute node expect one more moving value
        than its producer sends: a guaranteed blocked ``Recv``.  The plan is
        instantiated twice to prove that reuse hands out *fresh* process
        state each time rather than generators poisoned by the first crash.
        """
        compiled = CompiledInstance.build(
            pinned_instance, mutate="soak_plus_one"
        )
        plan = compiled.plan()
        for _ in range(2):
            net = plan.instantiate(inputs=compiled.inputs(0))
            with pytest.raises(DeadlockError, match="cannot progress"):
                net.run()

    def test_plan_is_cached_per_program(self, pinned_instance):
        compiled = CompiledInstance.build(pinned_instance)
        before = plan_stats()
        first = compiled.plan()
        second = compiled.plan()
        after = plan_stats()
        assert first is second
        assert after["reuses"] > before["reuses"]


class TestTraceAndTimingModes:
    def test_trace_off_and_timing_off_match_trace_on(self, pinned_instance):
        compiled = CompiledInstance.build(pinned_instance)
        sp, env = compiled.sp, pinned_instance.env
        inputs = compiled.inputs(0)

        plain, stats_plain = execute(sp, env, inputs)
        untimed, stats_untimed = execute(sp, env, inputs, timing=False)

        net = compiled.plan().instantiate(inputs=inputs)
        trace = attach_tracer(net)
        stats_traced = net.run()
        traced = net.host.final

        assert plain == untimed == traced
        # Tracing must observe, never perturb: identical Lamport stats.
        assert stats_traced.makespan == stats_plain.makespan
        assert stats_traced.total_messages == stats_plain.total_messages
        assert len(trace.events) > 0
        # timing=False skips the clock entirely; everything else is equal.
        assert stats_untimed.makespan == 0
        assert stats_untimed.total_messages == stats_plain.total_messages


class TestCompiledInstanceReuse:
    def test_one_compile_one_render_per_harness_run(self, pinned_instance):
        """A full harness pass builds the pipeline exactly once.

        All metamorphic checks are forced on so every consumer of the
        rendered module runs; the counters must show a single render build
        with the rest arriving as reuses.
        """
        config = HarnessConfig(
            check_memo_ab=True,
            check_pickle=True,
            check_render_cache=True,
            check_repeat=True,
        )
        before = pipeline_stats()
        report = run_instance(pinned_instance, config)
        after = pipeline_stats()
        assert report.ok, f"pinned case went red: {report}"
        assert after["builds"] - before["builds"] == 1
        assert after["render_builds"] - before["render_builds"] == 1
        assert after["render_reuses"] - before["render_reuses"] >= 2
        assert after["oracle_builds"] - before["oracle_builds"] == 1
        assert after["oracle_reuses"] - before["oracle_reuses"] >= 1

    def test_prebuilt_pipeline_is_consumed(self, pinned_instance):
        """run_instance reuses a matching prebuilt CompiledInstance."""
        compiled = CompiledInstance.build(pinned_instance)
        before = pipeline_stats()
        report = run_instance(pinned_instance, compiled=compiled)
        after = pipeline_stats()
        assert report.ok
        assert after["builds"] - before["builds"] == 0

    def test_mismatched_pipeline_is_rebuilt(self, pinned_instance):
        """A pipeline built for another mutation must not be trusted."""
        compiled = CompiledInstance.build(pinned_instance, mutate=None)
        config = HarnessConfig(mutate="drain_plus_one")
        before = pipeline_stats()
        report = run_instance(pinned_instance, config, compiled=compiled)
        after = pipeline_stats()
        assert not report.ok  # the planted bug must still be caught
        assert after["builds"] - before["builds"] == 1
