"""The random program/design generator: validity, determinism, round-trip.

The generator must be *valid by construction* -- every program it emits
passes :func:`repro.lang.validate.validate_program` (Appendix A rules,
including the coverage restriction) without ever being repaired -- and
fully deterministic in the seed, since campaign replay and the corpus
format both depend on it.
"""

from __future__ import annotations

import random

import pytest

from repro.fuzz.corpus import instance_from_json, instance_to_json
from repro.fuzz.generator import (
    FEATURES,
    FuzzInstance,
    generate_design,
    generate_instance,
    generate_program,
    program_features,
    program_size_symbols,
    variable_bounds_for,
)
from repro.lang.program import Loop
from repro.lang.validate import validate_program
from repro.symbolic.affine import Affine

SEED_RANGE = range(120)


class TestGeneratorValidity:
    def test_every_seed_yields_a_valid_program(self):
        # generate_program raises (generator bug) if validation fails;
        # validate again here so the test does not rely on that coupling.
        for seed in SEED_RANGE:
            program = generate_program(random.Random(seed))
            validate_program(program)

    def test_written_streams_include_c(self):
        # "c" is always the accumulated output; multi-assignment branches
        # may additionally write one of the read streams.
        saw_multi_write = False
        for seed in SEED_RANGE:
            program = generate_program(random.Random(seed))
            written = program.body.streams_written()
            assert "c" in written
            assert written <= {s.name for s in program.streams}
            if len(written) > 1:
                saw_multi_write = True
        assert saw_multi_write, "no seed exercised multi-assignment branches"

    def test_rank_and_shape_of_index_maps(self):
        for seed in SEED_RANGE:
            program = generate_program(random.Random(seed))
            r = program.r
            for stream in program.streams:
                rows = stream.index_map.rows
                assert len(rows) == r - 1
                assert all(len(row) == r for row in rows)

    def test_most_seeds_are_schedulable(self):
        instances = [generate_instance(seed) for seed in range(40)]
        found = [i for i in instances if i is not None]
        # The design synthesizer will not accept every random program, but
        # an unschedulable-majority means the generator drifted out of the
        # space the paper's scheme covers.
        assert len(found) >= 30
        for inst in found:
            assert isinstance(inst, FuzzInstance)
            validate_program(inst.program)
            assert set(inst.env) == set(program_size_symbols(inst.program))


class TestGeneratorDeterminism:
    def test_same_seed_same_instance(self):
        for seed in (0, 7, 23):
            a = generate_instance(seed)
            b = generate_instance(seed)
            assert (a is None) == (b is None)
            if a is not None:
                assert instance_to_json(a) == instance_to_json(b)

    def test_program_determinism_from_rng_state(self):
        a = generate_program(random.Random(99))
        b = generate_program(random.Random(99))
        assert a.to_source() == b.to_source()

    def test_design_determinism(self):
        program = generate_program(random.Random(3))
        a = generate_design(random.Random(5), program)
        b = generate_design(random.Random(5), program)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.step.rows == b.step.rows
            assert a.place.rows == b.place.rows
            assert a.loading_vectors == b.loading_vectors


class TestFeatureStrata:
    def test_tags_are_well_known(self):
        for seed in SEED_RANGE:
            program = generate_program(random.Random(seed))
            tags = program_features(program)
            assert tags <= set(FEATURES)
            # all_negative implies negative_step
            if "all_negative" in tags:
                assert "negative_step" in tags

    def test_every_feature_is_reachable(self):
        seen: set[str] = set()
        for seed in SEED_RANGE:
            seen |= program_features(generate_program(random.Random(seed)))
        assert seen == set(FEATURES)

    @pytest.mark.parametrize("feature", FEATURES)
    def test_restricted_generation_carries_the_tag(self, feature):
        found = 0
        for seed in range(30):
            inst = generate_instance(seed, feature=feature)
            if inst is None:
                continue
            found += 1
            assert feature in program_features(inst.program)
        assert found >= 10, f"stratum {feature} starved"

    def test_restricted_generation_is_deterministic(self):
        a = generate_instance(4, feature="negative_step")
        b = generate_instance(4, feature="negative_step")
        assert (a is None) == (b is None)
        if a is not None:
            assert instance_to_json(a) == instance_to_json(b)

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="feature"):
            generate_instance(0, feature="exotic")


class TestVariableBounds:
    def test_sign_rule(self):
        # index row (1, -1) over j in [0, 3], k in [0, 2]: the image is
        # [0 - 2, 3 - 0] = [-2, 3].
        loops = (
            Loop("j", Affine.constant(0), Affine.constant(3), 1),
            Loop("k", Affine.constant(0), Affine.constant(2), 1),
        )
        ((lo, hi),) = variable_bounds_for(((1, -1),), loops)
        assert lo == Affine.constant(-2)
        assert hi == Affine.constant(3)


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        for seed in (0, 1, 2, 11):
            inst = generate_instance(seed)
            if inst is None:
                continue
            data = instance_to_json(inst)
            back = instance_from_json(data)
            assert back.program.to_source() == inst.program.to_source()
            assert back.array.step.rows == inst.array.step.rows
            assert back.array.place.rows == inst.array.place.rows
            assert back.array.loading_vectors == inst.array.loading_vectors
            assert back.env == inst.env
            # a second encode is byte-stable (corpus filenames hash this)
            assert instance_to_json(back) == data
