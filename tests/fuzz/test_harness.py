"""The differential harness and shrinker.

Three claims are load-bearing:

* the harness is *quiet* on honest designs (paper catalogue and generated
  instances alike) -- otherwise every campaign drowns in noise;
* each planted mutation is *caught* -- a detector that cannot see an
  off-by-one drain count is not a detector;
* the shrinker minimizes a caught failure deterministically, down to a
  reproducer that still fails for the same reason, and the corpus
  round-trip replays it.
"""

from __future__ import annotations

import pytest

from repro.fuzz.corpus import (
    load_reproducer,
    reproducer_name,
    write_reproducer,
)
from repro.fuzz.driver import fuzz_run
from repro.fuzz.generator import FuzzInstance, generate_instance
from repro.fuzz.harness import (
    MUTATIONS,
    HarnessConfig,
    apply_mutation,
    run_instance,
)
from repro.fuzz.shrink import shrink_instance
from repro.systolic.designs import all_paper_designs

ENGINE_CHECKS = {"simulator", "pygen", "cross_check"}


def _skip_if_unschedulable(instance):
    if instance is None:
        pytest.skip("seed outside the schedulable space")
    return instance


class TestHarnessClean:
    @pytest.mark.parametrize(
        "exp_id,program,array",
        [(e, p, a) for e, p, a in all_paper_designs()],
        ids=lambda v: v if isinstance(v, str) else "",
    )
    def test_paper_designs_pass(self, exp_id, program, array):
        syms = set(program.size_symbols)
        for lp in program.loops:
            syms |= lp.lower.free_symbols | lp.upper.free_symbols
        instance = FuzzInstance(
            program=program, array=array, env={s: 3 for s in syms}
        )
        report = run_instance(
            instance,
            HarnessConfig(
                check_threaded=True, check_capacity=True, check_partition=True
            ),
        )
        assert report.ok, str(report)
        assert "partition" in report.checks_run

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_generated_instances_pass(self, seed):
        instance = _skip_if_unschedulable(generate_instance(seed))
        report = run_instance(instance, HarnessConfig())
        assert report.ok, str(report)
        assert {"compile", "oracle"} | ENGINE_CHECKS <= set(report.checks_run)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_generated_instances_pass_partitioned(self, seed):
        """The symbolic 2-band fold stays bit-identical on fuzz-generated
        programs, through both the folded simulator and banded npgen."""
        instance = _skip_if_unschedulable(generate_instance(seed))
        report = run_instance(instance, HarnessConfig(check_partition=True))
        assert report.ok, str(report)
        assert "partition" in report.checks_run

    def test_partition_catches_planted_bug(self):
        """The partitioned engines replay the planted-mutation corpus: a
        drain bump that deadlocks or corrupts the fold is detected."""
        for seed in range(6):
            instance = generate_instance(seed)
            if instance is None:
                continue
            report = run_instance(
                instance,
                HarnessConfig(mutate="map_shear", check_partition=True),
            )
            if "partition" in report.failed_checks:
                return
        pytest.skip("no seed produced a partition-visible shear")


class TestMutationsCaught:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_planted_bug_is_caught(self, mutation):
        # A planted bug must be caught on at least most schedulable seeds;
        # accept a rare slip on one seed (some tiny designs have a drain
        # count the mutation cannot perturb observably) but not silence.
        caught = missed = 0
        for seed in range(6):
            instance = generate_instance(seed)
            if instance is None:
                continue
            report = run_instance(instance, HarnessConfig(mutate=mutation))
            if report.failed_checks & ENGINE_CHECKS:
                caught += 1
            else:
                missed += 1
        assert caught >= max(1, caught + missed - 1), (
            f"{mutation}: caught {caught}, missed {missed}"
        )

    def test_mutation_changes_the_program(self):
        from repro.core.scheme import compile_systolic

        instance = _skip_if_unschedulable(generate_instance(0))
        sp = compile_systolic(instance.program, instance.array)
        mutated = apply_mutation(sp, "drain_plus_one")
        assert mutated is not sp
        assert apply_mutation(sp, None) is sp
        with pytest.raises(ValueError):
            apply_mutation(sp, "no_such_mutation")

    def test_harness_records_instead_of_raising(self):
        instance = _skip_if_unschedulable(generate_instance(0))
        report = run_instance(instance, HarnessConfig(mutate="drain_plus_one"))
        assert not report.ok
        assert report.failures and all(f.message for f in report.failures)


class TestShrinker:
    def test_shrinks_to_two_loops_and_replays(self, tmp_path):
        config = HarnessConfig(mutate="drain_plus_one")
        instance = _skip_if_unschedulable(generate_instance(0))
        original = run_instance(instance, config)
        assert not original.ok

        shrunk, report = shrink_instance(instance, config)
        assert shrunk.program.r <= 2
        assert report.failed_checks & original.failed_checks

        # deterministic: shrinking again yields the identical reproducer
        shrunk2, _ = shrink_instance(instance, config)
        assert shrunk2.program.to_source() == shrunk.program.to_source()
        assert shrunk2.env == shrunk.env

        # corpus round-trip replays the same failure kinds
        path = write_reproducer(shrunk, report, tmp_path, config=config)
        loaded, loaded_config, raw = load_reproducer(path)
        assert raw["expect"] == "fail"
        assert loaded_config.mutate == "drain_plus_one"
        replayed = run_instance(loaded, loaded_config)
        assert replayed.failed_checks & report.failed_checks

    def test_shrinks_planted_map_shear_to_tiny(self):
        # The acceptance bar for index-map shrinking: a planted index-map
        # corruption must come out at <= 2 loops and <= 2 streams.
        config = HarnessConfig(mutate="map_shear")
        instance = _skip_if_unschedulable(generate_instance(0))
        original = run_instance(instance, config)
        assert not original.ok

        shrunk, report = shrink_instance(instance, config)
        assert shrunk.program.r <= 2
        assert len(shrunk.program.streams) <= 2
        assert report.failed_checks & original.failed_checks

    def test_bound_variants_collapse_extrema(self):
        from repro.fuzz.shrink import _bound_variants
        from repro.lang.program import Loop
        from repro.symbolic.affine import Affine
        from repro.symbolic.minmax import extremum

        n, m = Affine.var("n"), Affine.var("m")
        lp = Loop.of(
            "i",
            extremum("max", (Affine.constant(0), n - m)),
            extremum("min", (n, m + 1)),
            -1,
        )
        variants = list(_bound_variants(lp))
        # one step flip + one per upper argument + one per lower argument
        assert len(variants) == 5
        assert any(v.step == 1 for v in variants)
        uppers = {str(v.upper) for v in variants if v.step == lp.step}
        lowers = {str(v.lower) for v in variants if v.step == lp.step}
        assert {"n", "m + 1"} <= uppers
        assert {"0", "-m + n"} <= lowers

    def test_reproducer_filename_is_content_addressed(self):
        data = {"source": "p", "design": {"step": [[1]]}, "env": {"n": 2}}
        assert reproducer_name(data) == reproducer_name(dict(data))
        assert reproducer_name(data) != reproducer_name({**data, "env": {"n": 3}})


class TestDriver:
    def test_small_clean_campaign(self):
        summary = fuzz_run(seed=0, iterations=8, shrink=False)
        assert summary.ok
        assert summary.iterations == 8
        assert summary.generated + summary.skipped == 8
        assert summary.check_counts.get("compile", 0) == summary.generated

    def test_campaign_catches_and_shrinks(self, tmp_path):
        summary = fuzz_run(
            seed=0,
            iterations=2,
            config=HarnessConfig(mutate="drain_plus_one"),
            corpus_dir=tmp_path,
            max_failures=2,
        )
        assert not summary.ok
        for failure in summary.failures:
            assert failure.reproducer is not None
            loaded, cfg, raw = load_reproducer(failure.reproducer)
            assert loaded.program.r <= 2
            assert not run_instance(loaded, cfg).ok

    def test_time_budget_stops_early(self):
        summary = fuzz_run(seed=0, iterations=500, time_budget=0.0, shrink=False)
        assert summary.stopped_early
        assert summary.iterations < 500
