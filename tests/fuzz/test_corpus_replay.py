"""Replay every checked-in reproducer in ``tests/fuzz_corpus/``.

Each corpus file becomes one pytest case.  ``"expect": "pass"`` files are
regression pins: instances the harness once exercised (or minimized
reproducers of since-fixed bugs) that must stay green forever.
``"expect": "fail"`` files would be open bugs -- the campaign writes them
but they are only checked in deliberately; replaying them red keeps an
open bug visible until it is fixed and the file flipped to ``"pass"``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.corpus import corpus_files, load_reproducer
from repro.fuzz.harness import run_instance

CORPUS = Path(__file__).resolve().parent.parent / "fuzz_corpus"


def test_corpus_is_not_empty():
    assert corpus_files(CORPUS), (
        f"no reproducers under {CORPUS}; the checked-in pins are gone"
    )


@pytest.mark.parametrize(
    "path", corpus_files(CORPUS), ids=lambda p: p.stem
)
def test_pin_declares_expectation(path):
    _, _, raw = load_reproducer(path)
    expect = raw.get("expect")
    assert expect in ("pass", "fail"), (
        f"{path.name}: every pin must declare \"expect\": \"pass\"|\"fail\""
    )
    if expect == "fail":
        assert raw.get("failure", {}).get("checks"), (
            f"{path.name}: expect-fail pins must record the failing check "
            "set under failure.checks"
        )


@pytest.mark.parametrize(
    "path", corpus_files(CORPUS), ids=lambda p: p.stem
)
def test_replay(path):
    instance, config, raw = load_reproducer(path)
    report = run_instance(instance, config)
    if raw.get("expect") == "pass":
        assert report.ok, f"{path.name}: regression pin went red: {report}"
    else:
        expected = set(raw.get("failure", {}).get("checks", []))
        assert not report.ok, (
            f"{path.name}: expected-fail reproducer now passes; "
            "flip it to \"expect\": \"pass\""
        )
        # The pinned failure-kind set is the bug's signature: replay must
        # fail for exactly the recorded reasons, or the file is stale.
        assert report.failed_checks == expected, (
            f"{path.name}: fails differently from its pin "
            f"({sorted(report.failed_checks)} vs pinned {sorted(expected)})"
        )
