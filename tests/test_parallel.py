"""Tests for the parallel/batched design-space sweep layer."""

import pickle
import warnings

import pytest

from repro.geometry import Matrix
from repro.parallel import (
    SweepTimings,
    explore_designs_parallel,
    resolve_jobs,
    sweep_designs,
)
from repro.symbolic.affine import Affine
from repro.symbolic.guard import Constraint, Guard
from repro.symbolic.piecewise import Case, Piecewise
from repro.systolic import explore_designs
from repro.systolic.designs import polynomial_product_program
from repro.systolic.schedule import candidate_tasks

POLY_STEP = Matrix([[2, 1]])


class TestPicklableSubstrate:
    """multiprocessing ships designs to workers and costs back: every
    immutable core class must round-trip through pickle."""

    def test_matrix(self):
        m = Matrix([[1, 2, -3], [0, 1, 7]])
        assert pickle.loads(pickle.dumps(m)) == m

    def test_affine(self):
        a = Affine({"n": 2, "m": -1}, 5)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_guard_and_constraint(self):
        c = Constraint.ge(Affine.var("n"), 3)
        g = Guard([c])
        assert pickle.loads(pickle.dumps(c)) == c
        assert pickle.loads(pickle.dumps(g)) == g

    def test_piecewise(self):
        pw = Piecewise.with_null_default(
            [Case(Guard([Constraint.ge(Affine.var("n"), 0)]), Affine.var("n"))]
        )
        back = pickle.loads(pickle.dumps(pw))
        assert back.cases == pw.cases
        assert back.has_default and back.default is None

    def test_program_and_tasks(self):
        prog = polynomial_product_program()
        back = pickle.loads(pickle.dumps(prog))
        assert back.name == prog.name
        tasks = candidate_tasks(prog, POLY_STEP, bound=1)
        assert pickle.loads(pickle.dumps(tasks)) == tasks
        assert all(isinstance(rows, tuple) for rows in tasks)


class TestResolveJobs:
    def test_default_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestSweepDesigns:
    def test_single_size_matches_explore(self):
        prog = polynomial_product_program()
        serial = explore_designs(prog, POLY_STEP, {"n": 3}, bound=1)
        result = sweep_designs(prog, POLY_STEP, [{"n": 3}], bound=1)
        assert result.costs_at({"n": 3}) == serial

    def test_multi_size_shares_compilation(self):
        prog = polynomial_product_program()
        result = sweep_designs(prog, POLY_STEP, [{"n": 3}, {"n": 5}], bound=1)
        assert len(result.by_size) == 2
        per_size = {tuple(env.items()): costs for env, costs in result.by_size}
        assert per_size[(("n", 3),)] != per_size[(("n", 5),)]
        # each size ranked independently but over the same design set
        assert len(per_size[(("n", 3),)]) == len(per_size[(("n", 5),)])
        # and each equals its own serial exploration
        for n in (3, 5):
            assert result.costs_at({"n": n}) == explore_designs(
                prog, POLY_STEP, {"n": n}, bound=1
            )

    def test_timings_populated(self):
        prog = polynomial_product_program()
        result = sweep_designs(prog, POLY_STEP, [{"n": 3}], bound=1)
        t = result.timings
        assert isinstance(t, SweepTimings)
        assert t.total_s >= t.cost_s >= 0
        assert t.synthesis_s >= 0
        assert t.candidates >= t.compiled > 0
        assert t.jobs == 1
        assert set(t.row()) == {
            "synthesis_s",
            "cost_s",
            "total_s",
            "jobs",
            "candidates",
            "compiled",
        }

    def test_limit(self):
        prog = polynomial_product_program()
        result = sweep_designs(prog, POLY_STEP, [{"n": 3}], bound=1, limit=2)
        assert len(result.costs_at({"n": 3})) == 2

    def test_costs_at_unknown_size(self):
        prog = polynomial_product_program()
        result = sweep_designs(prog, POLY_STEP, [{"n": 3}], bound=1)
        with pytest.raises(KeyError):
            result.costs_at({"n": 99})

    def test_empty_envs_rejected(self):
        prog = polynomial_product_program()
        with pytest.raises(ValueError):
            sweep_designs(prog, POLY_STEP, [], bound=1)


class TestParallelMatchesSerial:
    """`--jobs N` must produce the same ranked table as serial, any N.

    These run with a real pool: ``force_pool=True`` bypasses the 1-CPU
    serial fallback so the cross-process path is exercised even on
    single-core machines (where the fallback would otherwise kick in).
    """

    def test_polyprod_jobs2(self):
        prog = polynomial_product_program()
        serial = explore_designs(prog, POLY_STEP, {"n": 3}, bound=1)
        parallel = sweep_designs(
            prog, POLY_STEP, [{"n": 3}], bound=1, jobs=2, force_pool=True
        ).costs_at({"n": 3})
        assert parallel == serial

    def test_explore_designs_jobs_kwarg(self):
        prog = polynomial_product_program()
        serial = explore_designs(prog, POLY_STEP, {"n": 3}, bound=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert explore_designs(
                prog, POLY_STEP, {"n": 3}, bound=1, jobs=2
            ) == serial

    def test_parallel_sweep_multi_size(self):
        prog = polynomial_product_program()
        serial = sweep_designs(prog, POLY_STEP, [{"n": 2}, {"n": 4}], bound=1)
        parallel = sweep_designs(
            prog, POLY_STEP, [{"n": 2}, {"n": 4}], bound=1, jobs=2,
            force_pool=True,
        )
        assert parallel.by_size == serial.by_size
        assert parallel.timings.jobs == 2


class TestSerialFallback:
    """Degenerate parallelism must not pay pool overhead silently."""

    def test_single_cpu_falls_back_with_warning(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 1)
        prog = polynomial_product_program()
        with pytest.warns(RuntimeWarning, match="only 1 CPU"):
            result = sweep_designs(prog, POLY_STEP, [{"n": 3}], bound=1, jobs=2)
        assert result.timings.jobs == 1
        assert result.costs_at({"n": 3}) == explore_designs(
            prog, POLY_STEP, {"n": 3}, bound=1
        )

    def test_force_pool_overrides_single_cpu(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 1)
        prog = polynomial_product_program()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = sweep_designs(
                prog, POLY_STEP, [{"n": 3}], bound=1, jobs=2, force_pool=True
            )
        assert result.timings.jobs == 2

    def test_jobs_clamped_to_candidate_count(self, monkeypatch):
        import repro.parallel as par

        monkeypatch.setattr(par.os, "cpu_count", lambda: 64)
        prog = polynomial_product_program()
        tasks = candidate_tasks(prog, POLY_STEP, bound=1)
        result = sweep_designs(
            prog, POLY_STEP, [{"n": 3}], bound=1, jobs=len(tasks) + 50
        )
        assert result.timings.jobs <= len(tasks)
