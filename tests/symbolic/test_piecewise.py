"""Unit tests for repro.symbolic.piecewise."""

import pytest

from repro.symbolic import Affine, AffineVec, Case, Constraint, Guard, Piecewise, interval
from repro.util.errors import SymbolicError

n = Affine.var("n")
col = Affine.var("col")


def paper_d2_first():
    """Appendix D.2: first = if 0<=col<=n -> (0,col) [] n<=col<=2n -> (col-n,n) fi"""
    return Piecewise(
        [
            Case(interval(0, col, n), AffineVec.of(0, col)),
            Case(interval(n, col, 2 * n), AffineVec.of(col - n, n)),
        ]
    )


class TestEvaluate:
    def test_first_case(self):
        pw = paper_d2_first()
        assert pw.evaluate({"col": 2, "n": 5}) == (0, 2)

    def test_second_case(self):
        pw = paper_d2_first()
        assert pw.evaluate({"col": 8, "n": 5}) == (3, 5)

    def test_overlap_agrees(self):
        # the paper notes guards overlap at col = n and values coincide
        pw = paper_d2_first()
        env = {"col": 5, "n": 5}
        assert len(pw.matching_cases(env)) == 2
        assert pw.check_overlaps_agree(env)
        assert pw.evaluate(env) == (0, 5)

    def test_no_case_raises(self):
        pw = paper_d2_first()
        with pytest.raises(SymbolicError):
            pw.evaluate({"col": 99, "n": 5})

    def test_null_default(self):
        pw = Piecewise.with_null_default(
            [Case(interval(0, col, n), Affine.constant(1))]
        )
        assert pw.evaluate({"col": 99, "n": 5}) is None

    def test_single(self):
        pw = Piecewise.single(n + 1)
        assert pw.evaluate({"n": 3}) == 4

    def test_nested(self):
        inner = Piecewise(
            [
                Case(Guard([Constraint.ge(col, 1)]), Affine.constant(10)),
                Case(Guard([Constraint.le(col, 0)]), Affine.constant(20)),
            ]
        )
        outer = Piecewise([Case(Guard.TRUE, inner)])
        assert outer.evaluate({"col": 2}) == 10
        assert outer.evaluate({"col": -1}) == 20


class TestSubs:
    def test_subs_guard_and_value(self):
        pw = paper_d2_first().subs({"col": Affine.constant(3)})
        assert pw.evaluate({"n": 5}) == (0, 3)

    def test_subs_preserves_default(self):
        pw = Piecewise.with_null_default([]).subs({"col": 1})
        assert pw.has_default
        assert pw.evaluate({}) is None


class TestPrune:
    def test_prunes_infeasible(self):
        pw = Piecewise(
            [
                Case(interval(0, col, n), Affine.constant(1)),
                Case(Guard([Constraint.ge(col, 1), Constraint.le(col, 0)]), Affine.constant(2)),
            ]
        )
        pruned = pw.prune()
        assert len(pruned.cases) == 1

    def test_prune_with_assumptions(self):
        # case requires col >= n+1, assumption pins col <= n
        pw = Piecewise(
            [
                Case(Guard([Constraint.ge(col, n + 1)]), Affine.constant(1)),
                Case(Guard([Constraint.le(col, n)]), Affine.constant(2)),
            ]
        )
        pruned = pw.prune(assumptions=Guard([Constraint.le(col, n)]))
        # col >= n+1 together with col <= n is infeasible, so it is dropped
        assert len(pruned.cases) == 1
        assert pruned.cases[0].value == Affine.constant(2)

    def test_prune_nested_in_context(self):
        """Appendix E.2.5: sub-alternatives inconsistent with the enclosing
        clause guard are removed."""
        outer_guard = interval(0, -col, n)  # forces col <= 0
        inner = Piecewise(
            [
                Case(interval(0, -col, n), Affine.constant(0)),
                Case(Guard([Constraint.ge(col, 1)]), col),  # impossible under outer
            ]
        )
        pw = Piecewise([Case(outer_guard, inner)])
        pruned = pw.prune(assumptions=Guard([Constraint.ge(n, 1)]))
        inner_pruned = pruned.cases[0].value
        assert isinstance(inner_pruned, Piecewise)
        assert len(inner_pruned.cases) == 1

    def test_collapse(self):
        pw = Piecewise.single(n)
        assert pw.collapse() is pw.cases[0].value
        assert paper_d2_first().collapse() is not None


class TestMapValues:
    def test_map(self):
        pw = paper_d2_first().map_values(lambda v: v + (1, 1))
        assert pw.evaluate({"col": 0, "n": 5}) == (1, 1)

    def test_map_recurses(self):
        inner = Piecewise.single(Affine.constant(1))
        outer = Piecewise([Case(Guard.TRUE, inner)])
        mapped = outer.map_values(lambda v: v + 1)
        assert mapped.evaluate({}) == 2


class TestDisplay:
    def test_str_contains_guards(self):
        s = str(paper_d2_first())
        assert "if" in s and "fi" in s and "[]" in s

    def test_str_null_default(self):
        s = str(Piecewise.with_null_default([]))
        assert "null" in s
