"""Unit tests for repro.symbolic.affine."""

from fractions import Fraction

import pytest

from repro.geometry import Matrix, Point
from repro.symbolic import Affine, AffineVec
from repro.util.errors import SymbolicError

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


class TestConstruction:
    def test_constant(self):
        assert Affine.constant(5).is_constant
        assert Affine.constant(5).as_int() == 5

    def test_var(self):
        assert n.free_symbols == {"n"}
        assert n.coeff("n") == 1

    def test_zero_coefficients_dropped(self):
        a = Affine({"n": 0, "m": 2})
        assert a.free_symbols == {"m"}

    def test_lift(self):
        assert Affine.lift(3) == Affine.constant(3)
        assert Affine.lift(n) is n

    def test_bad_symbol(self):
        with pytest.raises(SymbolicError):
            Affine({"": 1})

    def test_immutable(self):
        with pytest.raises(AttributeError):
            n.const = 5


class TestArithmetic:
    def test_add(self):
        assert (n + 1).const == 1
        assert (n + col).free_symbols == {"n", "col"}

    def test_sub_cancels(self):
        assert (n - n).is_zero

    def test_rsub(self):
        a = 5 - n
        assert a.const == 5 and a.coeff("n") == -1

    def test_scalar_mul(self):
        a = 2 * n + 3
        assert a.coeff("n") == 2 and a.const == 3

    def test_mul_by_constant_affine(self):
        assert n * Affine.constant(4) == Affine({"n": 4})

    def test_nonaffine_product_rejected(self):
        with pytest.raises(SymbolicError):
            n * col

    def test_div(self):
        assert (2 * n) / 2 == n
        assert (n / 2).coeff("n") == Fraction(1, 2)

    def test_div_by_symbol_rejected(self):
        with pytest.raises(SymbolicError):
            n / col

    def test_div_by_zero(self):
        with pytest.raises(SymbolicError):
            n / 0

    def test_neg(self):
        assert (-n).coeff("n") == -1

    def test_paper_expression(self):
        # 2*n - col (drain of stream c, Appendix D.1)
        drain = 2 * n - col
        assert drain.evaluate_int({"n": 4, "col": 3}) == 5


class TestSubsEvaluate:
    def test_subs_number(self):
        assert (n + col).subs({"col": 3}) == n + 3

    def test_subs_expression(self):
        assert (2 * col).subs({"col": n - 1}) == 2 * n - 2

    def test_subs_missing_kept(self):
        assert (n + col).subs({"q": 1}) == n + col

    def test_evaluate(self):
        assert (2 * n + col).evaluate({"n": 3, "col": 1}) == 7

    def test_evaluate_unbound(self):
        with pytest.raises(SymbolicError):
            n.evaluate({})

    def test_evaluate_int_rejects_fraction(self):
        with pytest.raises(SymbolicError):
            (n / 2).evaluate_int({"n": 3})


class TestDisplay:
    def test_str_simple(self):
        assert str(n) == "n"

    def test_str_combined(self):
        assert str(2 * n - col + 1) in ("-col + 2*n + 1", "2*n - col + 1")

    def test_str_constant(self):
        assert str(Affine.constant(0)) == "0"

    def test_eq_with_number(self):
        assert Affine.constant(3) == 3
        assert n != 3


class TestAffineVec:
    def test_of(self):
        v = AffineVec.of(col, 0)
        assert v.dim == 2
        assert v[1].is_zero

    def test_from_point(self):
        assert AffineVec.from_point(Point.of(1, 2)).as_point() == Point.of(1, 2)

    def test_symbols(self):
        v = AffineVec.symbols(["col", "row"])
        assert v.free_symbols == {"col", "row"}

    def test_add_sub(self):
        v = AffineVec.of(col, row) + (1, 2)
        assert v == AffineVec.of(col + 1, row + 2)
        assert v - (1, 2) == AffineVec.of(col, row)

    def test_rsub(self):
        v = (1, 2) - AffineVec.of(col, row)
        assert v == AffineVec.of(1 - col, 2 - row)

    def test_scalar_mul(self):
        assert AffineVec.of(col, 1) * 2 == AffineVec.of(2 * col, 2)

    def test_mul_by_affine(self):
        assert AffineVec.of(1, 1) * n == AffineVec.of(n, n)

    def test_dim_mismatch(self):
        with pytest.raises(SymbolicError):
            AffineVec.of(col) + AffineVec.of(col, row)

    def test_evaluate(self):
        v = AffineVec.of(col, n - col)
        assert v.evaluate({"col": 2, "n": 5}) == Point.of(2, 3)

    def test_as_point_requires_constant(self):
        with pytest.raises(SymbolicError):
            AffineVec.of(col).as_point()

    def test_with_coord(self):
        v = AffineVec.symbols(["i", "j", "k"]).with_coord(2, 0)
        assert v[2].is_zero and v[0] == Affine.var("i")

    def test_matrix_apply(self):
        # index map M.c = (i, j) applied to symbolic point (col, row, 0)
        m = Matrix([[1, 0, 0], [0, 1, 0]])
        out = AffineVec(m.apply(AffineVec.of(col, row, 0)))
        assert out == AffineVec.of(col, row)

    def test_matrix_apply_kung_leiserson(self):
        # place = (i-k, j-k) applied to (col, row, 0)
        m = Matrix([[1, 0, -1], [0, 1, -1]])
        out = AffineVec(m.apply(AffineVec.of(0, row - col, -col)))
        assert out == AffineVec.of(col, row)
