"""The hash-consed extremum layer (``repro.symbolic.minmax``).

The structural restriction -- lower bounds are plain or ``max``-form,
upper bounds plain or ``min``-form -- is what keeps every membership test
conjunctive; the tests here pin the normalizing constructor, the exact
arithmetic closure, and the bound-splitting helpers that the core
derivations (``firstlast``, ``io_comm``, ``scheme``) rely on.
"""

from __future__ import annotations

import pickle

import pytest

from repro.symbolic.affine import Affine
from repro.symbolic.minmax import (
    Extremum,
    bound_alternatives,
    bound_args,
    bound_le_constraints,
    check_bound_kind,
    extremum,
    lower_bound_constraints,
    max_of,
    min_of,
    upper_bound_constraints,
)
from repro.util.errors import SymbolicError

n = Affine.var("n")
m = Affine.var("m")


class TestConstructor:
    def test_interning_and_equality(self):
        a = extremum("min", (n, m))
        b = extremum("min", (m, n))
        assert a is b  # argument order is canonical
        assert hash(a) == hash(b)

    def test_singleton_collapses_to_affine(self):
        assert extremum("min", (n, n)) is n
        assert isinstance(extremum("max", (n + 0, n)), Affine)

    def test_flattening_same_kind(self):
        inner = extremum("min", (n, m))
        outer = extremum("min", (inner, m - n))
        assert isinstance(outer, Extremum)
        assert set(map(str, outer.args)) == {"n", "m", "m - n"}

    def test_flattening_folds_dominated_args(self):
        # n + 1 can never attain a minimum that n does not: it folds away.
        inner = extremum("min", (n, m))
        assert extremum("min", (inner, n + 1)) is inner

    def test_cross_kind_nesting_rejected(self):
        inner = extremum("min", (n, m))
        with pytest.raises(SymbolicError):
            extremum("max", (inner, Affine.constant(0)))

    def test_constant_offset_dominance_folds(self):
        # min(n, n + 2) = n; max(n, n + 2) = n + 2
        assert extremum("min", (n, n + 2)) is n
        assert extremum("max", (n, n + 2)) == n + 2

    def test_evaluate(self):
        e = extremum("min", (n, m))
        assert e.evaluate_int({"n": 3, "m": 5}) == 3
        assert extremum("max", (n, m)).evaluate_int({"n": 3, "m": 5}) == 5

    def test_pickle_reinterns(self):
        e = extremum("max", (n, m - n))
        assert pickle.loads(pickle.dumps(e)) is e


class TestArithmetic:
    def test_addition_with_affine(self):
        e = min_of(n, m) + 1
        assert isinstance(e, Extremum)
        assert set(map(str, e.args)) == {"n + 1", "m + 1"}
        assert (1 + min_of(n, m)) is e

    def test_same_kind_addition_is_pairwise(self):
        # min(a, b) + min(c, d) = min over pairwise sums
        e = min_of(n, m) + min_of(n + 1, m - 1)
        assert isinstance(e, Extremum)
        assert e.kind == "min"
        assert len(e.args) <= 4
        for env in ({"n": 2, "m": 7}, {"n": 7, "m": 2}, {"n": 4, "m": 4}):
            direct = min(env["n"], env["m"]) + min(env["n"] + 1, env["m"] - 1)
            assert e.evaluate_int(env) == direct

    def test_negation_flips_kind(self):
        e = -min_of(n, m)
        assert isinstance(e, Extremum)
        assert e.kind == "max"
        assert e.evaluate_int({"n": 3, "m": 5}) == -3

    def test_scaling(self):
        doubled = min_of(n, m) * 2
        assert doubled.kind == "min"
        flipped = min_of(n, m) * -1
        assert flipped.kind == "max"
        assert (min_of(n, m) * 0) == Affine.constant(0)

    def test_subtraction(self):
        e = max_of(n, m) - 1
        assert e.kind == "max"
        assert e.evaluate_int({"n": 3, "m": 5}) == 4

    def test_str_is_parseable_form(self):
        assert str(min_of(n, m)) == "min(m, n)"


class TestBoundHelpers:
    def test_bound_args(self):
        assert bound_args(n) == (n,)
        assert set(bound_args(min_of(n, m))) == {n, m}

    def test_check_bound_kind(self):
        check_bound_kind(n, "min", "upper")
        check_bound_kind(min_of(n, m), "min", "upper")
        with pytest.raises(SymbolicError):
            check_bound_kind(min_of(n, m), "max", "lower")

    def test_conjunctive_constraints(self):
        e = Affine.var("col")
        lo = lower_bound_constraints(e, max_of(Affine.constant(0), n - m))
        hi = upper_bound_constraints(e, min_of(n, m))
        assert len(lo) == 2 and len(hi) == 2
        cross = bound_le_constraints(max_of(Affine.constant(0), n - m), min_of(n, m))
        assert len(cross) == 4

    def test_bound_alternatives_cover_and_agree(self):
        alts = bound_alternatives(min_of(n, m))
        assert len(alts) == 2
        for env in ({"n": 2, "m": 5}, {"n": 5, "m": 2}, {"n": 3, "m": 3}):
            winners = [
                value.evaluate_int(env)
                for sel, value in alts
                if all(c.evaluate(env) for c in sel)
            ]
            assert winners, f"no selector covers {env}"
            assert all(w == min(env["n"], env["m"]) for w in winners)

    def test_plain_bound_has_single_alternative(self):
        ((sel, value),) = bound_alternatives(n)
        assert sel == () and value is n
