"""Unit tests for repro.symbolic.guard."""

import pytest

from repro.symbolic import Affine, Constraint, Guard, interval
from repro.util.errors import GuardError

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


class TestConstraint:
    def test_ge(self):
        c = Constraint.ge(col, 0)
        assert c.evaluate({"col": 0})
        assert not c.evaluate({"col": -1})

    def test_le(self):
        c = Constraint.le(col, n)
        assert c.evaluate({"col": 3, "n": 3})
        assert not c.evaluate({"col": 4, "n": 3})

    def test_trivial(self):
        assert Constraint.ge(1, 0).is_trivially_true
        assert Constraint.ge(0, 1).is_trivially_false

    def test_subs(self):
        c = Constraint.le(col, n).subs({"col": n})
        assert c.is_trivially_true or c.evaluate({"n": 5})

    def test_to_linear(self):
        lin = Constraint.ge(col, n).to_linear(["col", "n"])
        assert lin.coeffs == (1, -1)

    def test_to_linear_missing_symbol(self):
        with pytest.raises(GuardError):
            Constraint.ge(col, n).to_linear(["col"])

    def test_eq_hash(self):
        assert Constraint.ge(col, 0) == Constraint.ge(col, 0)
        assert hash(Constraint.ge(col, 0)) == hash(Constraint.ge(col, 0))


class TestGuard:
    def test_true(self):
        assert Guard.TRUE.is_true
        assert Guard.TRUE.evaluate({})

    def test_interval(self):
        g = interval(0, col, n)  # 0 <= col <= n
        assert g.evaluate({"col": 2, "n": 5})
        assert not g.evaluate({"col": 6, "n": 5})
        assert not g.evaluate({"col": -1, "n": 5})

    def test_and(self):
        g = interval(0, col, n) & interval(0, row, n)
        assert g.evaluate({"col": 1, "row": 1, "n": 2})
        assert not g.evaluate({"col": 1, "row": 3, "n": 2})

    def test_and_constraint(self):
        g = Guard.TRUE & Constraint.ge(col, 1)
        assert not g.evaluate({"col": 0})

    def test_dedup(self):
        g = Guard([Constraint.ge(col, 0), Constraint.ge(col, 0)])
        assert len(g.constraints) == 1

    def test_trivially_true_dropped(self):
        g = Guard([Constraint.ge(1, 0)])
        assert g.is_true

    def test_subs(self):
        g = interval(0, col, n).subs({"col": Affine.constant(-1)})
        assert g.is_trivially_false

    def test_free_symbols(self):
        assert interval(0, col, n).free_symbols == {"col", "n"}


class TestFeasibility:
    def test_feasible(self):
        assert interval(0, col, n).feasible()

    def test_infeasible(self):
        g = Guard([Constraint.ge(col, 1), Constraint.le(col, 0)])
        assert not g.feasible()

    def test_feasible_with_assumptions(self):
        # 0 <= -col <= n  /\  col >= 1 is infeasible
        g = interval(0, -col, n) & Constraint.ge(col, 1)
        assert not g.feasible(assumptions=Guard([Constraint.ge(n, 1)]))

    def test_paper_d2_overlap_point(self):
        # guards 0<=col<=n and n<=col<=2n overlap exactly at col=n
        g = interval(0, col, n) & interval(n, col, 2 * n)
        assert g.feasible(assumptions=Guard([Constraint.ge(n, 1)]))

    def test_trivially_false(self):
        assert not Guard([Constraint.ge(0, 1)]).feasible()


class TestImplication:
    def test_simple_implication(self):
        g = interval(1, col, n)
        assert g.implies(Constraint.ge(col, 0))

    def test_non_implication(self):
        g = interval(0, col, n)
        assert not g.implies(Constraint.ge(col, 1))

    def test_implies_guard(self):
        g = interval(2, col, 3)
        assert g.implies(interval(0, col, 5))

    def test_implication_with_assumptions(self):
        g = interval(0, col, n)
        assumptions = Guard([Constraint.ge(n, 0)])
        assert g.implies(Constraint.ge(n - col, 0), assumptions)

    def test_fractional_coefficients_scaled(self):
        g = Guard([Constraint.ge(col / 2, 1)])  # col >= 2
        assert g.implies(Constraint.ge(col, 2))
