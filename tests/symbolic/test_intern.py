"""Hash-consing invariants of the symbolic core.

Structural equality must imply *identity* for constructor-built
expressions, normalization must be idempotent (and memo-stable), ``subs``
must round-trip back to the interned original, compiled evaluation must
agree with the interpretive walk, and pickling -- the substrate of
``parallel.sweep_designs`` workers -- must re-intern on load.
"""

import pickle

import pytest

from repro.geometry import Matrix
from repro.parallel import sweep_designs
from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.compile import compile_guard, compile_piecewise
from repro.symbolic.guard import Constraint, Guard, interval
from repro.symbolic.piecewise import Case, Piecewise
from repro.systolic import explore_designs
from repro.systolic.designs import polynomial_product_program
from repro.util.errors import SymbolicError


def _pw():
    n = Affine.var("n")
    col = Affine.var("col")
    return Piecewise.with_null_default(
        [
            Case(interval(0, col, n), col - 1),
            Case(Guard([Constraint.ge(col, n + 1)]), AffineVec.of(col, 0)),
        ]
    )


class TestStructuralEqualityIsIdentity:
    def test_affine(self):
        assert Affine({"n": 2, "col": -1}, 5) is Affine({"col": -1, "n": 2}, 5)
        assert Affine.var("n") + 1 is Affine({"n": 1}, 1)
        # zero coefficients normalize away before interning
        assert Affine({"n": 0}, 3) is Affine.constant(3)

    def test_constraint_and_guard(self):
        assert Constraint.ge(Affine.var("n"), 3) is Constraint.ge(Affine.var("n"), 3)
        g1 = interval(0, Affine.var("col"), Affine.var("n"))
        g2 = interval(0, Affine.var("col"), Affine.var("n"))
        assert g1 is g2
        assert Guard() is Guard.TRUE

    def test_case_and_piecewise(self):
        assert _pw() is _pw()
        c = Case(Guard.TRUE, Affine.var("n"))
        assert c is Case(Guard.TRUE, Affine.var("n"))

    def test_distinct_forms_stay_distinct(self):
        assert Affine.var("n") is not Affine.var("m")
        assert Affine({"n": 1}, 1) != Affine({"n": 1}, 2)

    def test_guard_order_preserved_for_printing(self):
        # __eq__ on guards is order-insensitive, but the intern key keeps
        # constraint order so rendered output is deterministic.
        a, b = Constraint.ge(Affine.var("n"), 0), Constraint.ge(Affine.var("m"), 0)
        g_ab, g_ba = Guard([a, b]), Guard([b, a])
        assert g_ab == g_ba
        assert g_ab.constraints == (a, b)
        assert g_ba.constraints == (b, a)


class TestImmutability:
    def test_all_classes_reject_setattr(self):
        n = Affine.var("n")
        for obj in (n, Constraint(n), Guard([Constraint(n)]), Case(Guard.TRUE, n),
                    Piecewise.single(n)):
            with pytest.raises(AttributeError):
                obj.anything = 1


class TestNormalizationIdempotence:
    def test_guard_simplify_idempotent_and_memoized(self):
        assumptions = Guard([Constraint.ge(Affine.var("n"), 1)])
        g = interval(0, Affine.var("col"), 2 * Affine.var("n"))
        once = g.simplify(assumptions)
        assert g.simplify(assumptions) is once  # memo: same object back
        assert once.simplify(assumptions) is once  # idempotent

    def test_piecewise_simplify_idempotent_and_memoized(self):
        assumptions = Guard([Constraint.ge(Affine.var("n"), 1)])
        pw = _pw()
        once = pw.simplify(assumptions)
        assert pw.simplify(assumptions) is once
        assert once.simplify(assumptions) is once

    def test_prune_memoized(self):
        pw = _pw()
        assert pw.prune() is pw.prune()


class TestSubsRoundTrip:
    def test_affine_round_trip(self):
        a = Affine({"col": 2, "n": -1}, 3)
        shifted = a.subs({"col": Affine.var("col") + 1})
        assert shifted.subs({"col": Affine.var("col") - 1}) is a

    def test_piecewise_round_trip(self):
        pw = _pw()
        there = pw.subs({"col": Affine.var("col") + 1})
        assert there is not pw
        assert there.subs({"col": Affine.var("col") - 1}) is pw

    def test_piecewise_subs_memoized(self):
        pw = _pw()
        mapping = {"col": Affine.var("col") + 1}
        assert pw.subs(mapping) is pw.subs(mapping)


class TestCompiledEvaluation:
    def test_guard_compiled_matches_interpretive(self):
        g = interval(0, Affine.var("col"), Affine.var("n"))
        fn = compile_guard(g)
        for col in (-1, 0, 2, 4, 5):
            env = {"col": col, "n": 4}
            assert fn(env) == all(c.evaluate(env) for c in g.constraints)
            assert g.evaluate(env) == fn(env)

    def test_piecewise_compiled_matches_interpretive(self):
        pw = _pw()
        fn = compile_piecewise(pw)
        assert fn is not None
        for col in (-2, 0, 3, 4, 5, 7):
            env = {"col": col, "n": 4}
            assert fn(env) == pw._evaluate_interp(env)
            assert pw.evaluate(env) == pw._evaluate_interp(env)

    def test_nested_piecewise_compiles(self):
        inner = Piecewise.single(Affine.var("n") * 2)
        outer = Piecewise(
            [Case(Guard([Constraint.ge(Affine.var("n"), 0)]), inner)]
        )
        assert outer.evaluate({"n": 3}) == 6

    def test_compiled_unbound_symbol_raises_symbolic_error(self):
        g = Guard([Constraint.ge(Affine.var("n"), 0)])
        with pytest.raises(SymbolicError):
            g.evaluate({})
        with pytest.raises(SymbolicError):
            _pw().evaluate({"col": 1})

    def test_compiled_no_alternative_raises(self):
        pw = Piecewise([Case(Guard([Constraint.ge(Affine.var("n"), 0)]),
                             Affine.var("n"))])
        with pytest.raises(SymbolicError, match="no alternative"):
            pw.evaluate({"n": -1})

    def test_any_case_holds_matches_matching_cases(self):
        pw = _pw()
        for col in (-2, 0, 4, 5, 9):
            env = {"col": col, "n": 4}
            assert pw.any_case_holds(env) == bool(pw.matching_cases(env))

    def test_vector_leaf_evaluates_to_point(self):
        pw = Piecewise.single(AffineVec.of(Affine.var("n"), 0))
        assert pw.evaluate({"n": 2}) == (2, 0)


class TestPicklingReinterns:
    def test_round_trip_restores_identity(self):
        pw = _pw()
        a = Affine({"n": 2}, -1)
        g = interval(0, Affine.var("col"), Affine.var("n"))
        assert pickle.loads(pickle.dumps(a)) is a
        assert pickle.loads(pickle.dumps(g)) is g
        assert pickle.loads(pickle.dumps(pw)) is pw

    def test_through_sweep_workers(self):
        # The real cross-process path: workers rebuild interned objects via
        # __reduce__ and send DesignCosts back; the pooled table must equal
        # the serial one exactly.
        prog = polynomial_product_program()
        step = Matrix([[2, 1]])
        serial = explore_designs(prog, step, {"n": 3}, bound=1)
        pooled = sweep_designs(
            prog, step, [{"n": 3}], bound=1, jobs=2, force_pool=True
        ).costs_at({"n": 3})
        assert pooled == serial
