"""Tests for the error hierarchy and the top-level public API surface."""

import pytest

import repro
from repro.util import errors


class TestEnvInt:
    """Cache-size environment knobs must fail with a clear, named error."""

    def test_default_when_unset(self, monkeypatch):
        from repro.util import env_int

        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_int("REPRO_TEST_KNOB", 17) == 17

    def test_blank_means_default(self, monkeypatch):
        from repro.util import env_int

        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert env_int("REPRO_TEST_KNOB", 17) == 17

    def test_parses_with_whitespace(self, monkeypatch):
        from repro.util import env_int

        monkeypatch.setenv("REPRO_TEST_KNOB", " 42 ")
        assert env_int("REPRO_TEST_KNOB", 17) == 42

    def test_malformed_names_the_variable(self, monkeypatch):
        from repro.util import env_int

        monkeypatch.setenv("REPRO_TEST_KNOB", "banana")
        with pytest.raises(errors.ReproError, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB", 17)

    def test_minimum_enforced(self, monkeypatch):
        from repro.util import env_int

        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        with pytest.raises(errors.ReproError, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB", 17, minimum=1)

    @pytest.mark.parametrize(
        "name, module",
        [
            ("REPRO_PYGEN_CACHE_SIZE", "repro.target.pygen"),
            ("REPRO_WAVEFRONT_CACHE_SIZE", "repro.analysis.wavefront"),
            ("REPRO_PARTITION_CACHE_SIZE", "repro.extensions.partition"),
        ],
    )
    def test_real_knobs_raise_named_errors(self, name, module):
        """Importing a cache module under a malformed size knob fails with
        a ReproError naming the variable, not a bare ValueError."""
        import os
        import subprocess
        import sys

        env = dict(os.environ, **{name: "not-a-number"})
        proc = subprocess.run(
            [sys.executable, "-c", f"import {module}"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode != 0
        assert name in proc.stderr
        assert "ReproError" in proc.stderr
        assert "ValueError" not in proc.stderr


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_violations_are_source_program_errors(self):
        assert issubclass(errors.RequirementViolation, errors.SourceProgramError)
        assert issubclass(errors.RestrictionViolation, errors.SourceProgramError)

    def test_deadlock_is_runtime_error(self):
        assert issubclass(errors.DeadlockError, errors.RuntimeSimulationError)

    def test_inconsistent_is_spec_error(self):
        assert issubclass(
            errors.InconsistentDistributionError, errors.SystolicSpecError
        )

    def test_catching_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.DeadlockError("x")
        with pytest.raises(errors.ReproError):
            raise errors.GuardError("x")


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_docstring_code_runs(self):
        """The module docstring's example is real code; run its essence."""
        from repro import (
            SystolicArray,
            compile_systolic,
            parse_program,
            verify_design,
        )
        from repro.geometry import Matrix, Point

        program = parse_program(
            """
            size n
            var a[0..n], b[0..n], c[0..2*n]
            for i = 0 <- 1 -> n
            for j = 0 <- 1 -> n
                c[i+j] := c[i+j] + a[i] * b[j]
            """
        )
        array = SystolicArray(
            step=Matrix([[2, 1]]),
            place=Matrix([[1, 0]]),
            loading_vectors={"a": Point.of(1)},
        )
        systolic = compile_systolic(program, array)
        report = verify_design(program, array, {"n": 4}, compiled=systolic)
        assert report.matched

    def test_subpackage_docstrings(self):
        """Every public module carries a real docstring."""
        import importlib
        import pkgutil

        bad = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                bad.append(info.name)
        assert not bad, f"modules without docstrings: {bad}"


class TestOpsRepr:
    def test_reprs(self):
        from repro.runtime import Channel, Par, Recv, Send

        c = Channel("ch")
        assert "ch" in repr(Send(c, 1))
        assert "ch" in repr(Recv(c))
        assert "Par" in repr(Par([Send(c, 1), Recv(c)]))
        assert "ch" in repr(c)
