"""Tests for the enumerative cross-checker."""

import dataclasses

import pytest

from repro import compile_systolic
from repro.symbolic import Affine, Piecewise
from repro.systolic import (
    all_paper_designs,
    correlation_design,
    correlation_program,
    polyprod_design_reversed,
    rectangular_matmul_program,
    rectmm_design,
    reversed_polyprod_program,
)
from repro.verify import cross_check

ALL = all_paper_designs()


class TestCleanDesigns:
    @pytest.mark.parametrize("idx", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [1, 3])
    def test_paper_designs_clean(self, idx, n):
        exp_id, prog, array = ALL[idx]
        sp = compile_systolic(prog, array)
        report = cross_check(sp, {"n": n})
        assert report.ok, report.errors[:3]
        assert report.chords_checked > 0
        assert report.pipes_checked > 0

    def test_catalogue_extensions_clean(self):
        for prog, design in (
            (correlation_program(), correlation_design()),
            (reversed_polyprod_program(), polyprod_design_reversed()),
        ):
            sp = compile_systolic(prog, design)
            assert cross_check(sp, {"n": 3}).ok

    def test_rectangular_clean(self):
        sp = compile_systolic(rectangular_matmul_program(), rectmm_design())
        assert cross_check(sp, {"l": 2, "m": 3, "p": 2}).ok

    def test_report_str(self):
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        assert "OK" in str(cross_check(sp, {"n": 2}))


class TestDetectsCorruption:
    def corrupt(self, sp, **overrides):
        return dataclasses.replace(sp, **overrides)

    def test_wrong_count_detected(self):
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        bad = self.corrupt(sp, count=Piecewise.single(Affine.constant(99)))
        report = cross_check(bad, {"n": 2})
        assert not report.ok
        assert any("count" in e for e in report.errors)

    def test_wrong_first_detected(self):
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        bad = self.corrupt(sp, first=sp.last)  # swap ends
        report = cross_check(bad, {"n": 2})
        assert any("first" in e for e in report.errors)

    def test_wrong_soak_detected(self):
        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        plans = list(sp.streams)
        c_idx = next(i for i, p in enumerate(plans) if p.name == "c")
        plans[c_idx] = dataclasses.replace(
            plans[c_idx], soak=Piecewise.single(Affine.constant(0))
        )
        bad = self.corrupt(sp, streams=tuple(plans))
        report = cross_check(bad, {"n": 3})
        assert any("soak" in e for e in report.errors)

    def test_wrong_pass_amount_detected(self):
        exp_id, prog, array = ALL[2]
        sp = compile_systolic(prog, array)
        plans = list(sp.streams)
        plans[0] = dataclasses.replace(
            plans[0], pass_amount=Piecewise.single(Affine.constant(1))
        )
        bad = self.corrupt(sp, streams=tuple(plans))
        report = cross_check(bad, {"n": 2})
        assert any("Eq.10" in e for e in report.errors)
