"""Failure injection: corrupt executions must be *detected*, not absorbed.

The verification layer is only trustworthy if it actually fails when
something goes wrong.  Each test injects one fault into an otherwise
correct network -- a dropped message, a corrupted value, a dead process, a
mis-sized pass loop -- and asserts the corresponding detector (deadlock
report, oracle comparison, host accounting, topology validation) fires.
"""

import pytest

from repro import compile_systolic, run_sequential
from repro.geometry import Point
from repro.runtime import Recv, Send, build_network
from repro.systolic import all_paper_designs
from repro.util.errors import DeadlockError, RuntimeSimulationError
from repro.verify import random_inputs

ALL = all_paper_designs()


def fresh(idx=0, n=3, seed=0):
    exp_id, prog, array = ALL[idx]
    sp = compile_systolic(prog, array)
    inputs = random_inputs(prog, {"n": n}, seed=seed)
    oracle = run_sequential(prog, {"n": n}, inputs)
    return sp, prog, inputs, oracle, n


def find_proc(net, prefix):
    for p in net.scheduler._procs:
        if p.name.startswith(prefix):
            return p
    raise AssertionError(f"no process starting with {prefix}")


class TestDroppedMessage:
    def test_swallowing_one_value_deadlocks(self):
        """Replace a latch with one that eats its first value: the element
        count stops adding up and the network deadlocks with a report that
        names blocked processes."""
        sp, prog, inputs, oracle, n = fresh(idx=0)
        net = build_network(sp, {"n": n}, inputs)
        victim = find_proc(net, "L:b")
        original = victim.gen

        def dropper(inner):
            value = None
            first = True
            while True:
                try:
                    op = inner.send(value)
                except StopIteration:
                    return
                if first and isinstance(op, Send):
                    first = False
                    value = None  # swallow: skip the send entirely
                    continue
                value = yield op

        victim.gen = dropper(original)
        with pytest.raises(DeadlockError) as err:
            net.run()
        assert "waiting on" in str(err.value)


class TestCorruptedValue:
    def test_flipped_value_caught_by_oracle(self):
        """A latch that corrupts one payload produces a wrong result; the
        run completes but the oracle comparison must fail."""
        sp, prog, inputs, oracle, n = fresh(idx=0)
        net = build_network(sp, {"n": n}, inputs)
        victim = find_proc(net, "L:b")
        original = victim.gen

        def corruptor(inner):
            value = None
            corrupted = False
            while True:
                try:
                    op = inner.send(value)
                except StopIteration:
                    return
                if not corrupted and isinstance(op, Send):
                    corrupted = True
                    op = Send(op.channel, op.value + 1000)
                value = yield op

        victim.gen = corruptor(original)
        net.run()
        assert net.host.final != oracle  # the fault is visible end to end


class TestDeadProcess:
    def test_killed_compute_process_deadlocks(self):
        sp, prog, inputs, oracle, n = fresh(idx=2)
        net = build_network(sp, {"n": n}, inputs)
        victim = find_proc(net, "P(1, 1)")

        def corpse():
            return
            yield  # pragma: no cover

        victim.gen = corpse()
        with pytest.raises(DeadlockError):
            net.run()

    def test_killed_input_process_deadlocks(self):
        sp, prog, inputs, oracle, n = fresh(idx=0)
        net = build_network(sp, {"n": n}, inputs)
        victim = find_proc(net, "IN:c")

        def corpse():
            return
            yield  # pragma: no cover

        victim.gen = corpse()
        with pytest.raises(DeadlockError):
            net.run()


class TestHostAccounting:
    def test_duplicate_output_detected(self):
        """An output process writing one element twice is an error even if
        the values agree."""
        sp, prog, inputs, oracle, n = fresh(idx=0)
        net = build_network(sp, {"n": n}, inputs)
        host = net.host
        host.write_element("c", Point.of(0), 7)
        with pytest.raises(RuntimeSimulationError):
            host.write_element("c", Point.of(0), 7)

    def test_partial_recovery_detected(self):
        from repro.runtime import execute

        sp, prog, inputs, oracle, n = fresh(idx=0)
        # run fine, then check that a *fresh* host complains
        from repro.runtime.host import Host

        host = Host(prog, {"n": n}, inputs)
        host.write_element("a", Point.of(0), 1)
        with pytest.raises(RuntimeSimulationError) as err:
            host.check_full_recovery("a")
        assert "never recovered" in str(err.value)


class TestMiscountedPass:
    def test_short_latch_deadlocks(self):
        """A latch that passes one element too few leaves a value stranded."""
        sp, prog, inputs, oracle, n = fresh(idx=0)
        net = build_network(sp, {"n": n}, inputs)
        victim = find_proc(net, "L:b")
        original = victim.gen

        def short(inner):
            value = None
            steps = 0
            while True:
                try:
                    op = inner.send(value)
                except StopIteration:
                    return
                steps += 1
                if steps > 2 * (n + 1) - 2:  # stop one recv/send pair early
                    return
                value = yield op

        victim.gen = short(original)
        with pytest.raises(DeadlockError):
            net.run()

    def test_deadlock_report_is_actionable(self):
        sp, prog, inputs, oracle, n = fresh(idx=0)
        net = build_network(sp, {"n": n}, inputs)
        victim = find_proc(net, "IN:a")

        def corpse():
            return
            yield  # pragma: no cover

        victim.gen = corpse()
        with pytest.raises(DeadlockError) as err:
            net.run()
        message = str(err.value)
        assert "a_chan" in message  # names the stuck channel family
