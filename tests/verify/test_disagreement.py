"""Disagreement detection: the verifiers must go red on wrong artifacts.

Every other verify test exercises the green path.  Here we hand each
verifier something subtly wrong -- a compiled program whose body computes a
different function than the source, an array violating one specific
theorem -- and require a loud, correctly-attributed failure.  A verifier
that never fires is indistinguishable from one that checks nothing.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.core.scheme import compile_systolic
from repro.geometry.linalg import Matrix
from repro.lang.expr import BinOp, Body, Const
from repro.systolic.designs import all_paper_designs
from repro.systolic.spec import SystolicArray
from repro.util.errors import SystolicSpecError, VerificationError
from repro.verify.equivalence import verify_design
from repro.verify.theorems import (
    THEOREM_CHECKS,
    check_all_theorems,
    theorem_1_null_dimension,
    theorem_3_step_nonzero_on_null,
)


def _design(exp_id):
    for e, program, array in all_paper_designs():
        if e == exp_id:
            return program, array
    raise LookupError(exp_id)


def _off_by_one(program):
    """The same program computing `expr + 1`: streams and dependences are
    unchanged, so the original design still compiles it."""
    (branch,) = program.body.branches
    (assign,) = branch.assigns
    wrong = BinOp("+", assign.expr, Const(1))
    return replace(program, body=Body.single_assign(assign.stream, wrong))


class TestEquivalenceDisagreement:
    def test_wrong_body_is_reported(self):
        program, array = _design("D1")
        wrong_sp = compile_systolic(_off_by_one(program), array)
        report = verify_design(
            program, array, {"n": 3}, compiled=wrong_sp, raise_on_mismatch=False
        )
        assert not report.matched
        assert report.mismatches
        assert "oracle" in report.mismatches[0]

    def test_wrong_body_raises_by_default(self):
        program, array = _design("D1")
        wrong_sp = compile_systolic(_off_by_one(program), array)
        with pytest.raises(VerificationError, match="disagrees with the oracle"):
            verify_design(program, array, {"n": 3}, compiled=wrong_sp)

    def test_honest_design_still_matches(self):
        program, array = _design("D1")
        report = verify_design(program, array, {"n": 3})
        assert report.matched and not report.mismatches


class TestTheoremDisagreement:
    def test_theorem_1_rank_deficient_place(self):
        # SystolicArray itself refuses a rank-deficient place, so the
        # theorem check is exercised on a bare stand-in.
        program, _ = _design("E1")
        fake = SimpleNamespace(place=Matrix(((1, 0, 0), (2, 0, 0))))
        with pytest.raises(VerificationError, match="Theorem 1"):
            theorem_1_null_dimension(program, fake, {"n": 3})
        with pytest.raises(SystolicSpecError, match="rank"):
            SystolicArray(
                step=Matrix(((1, 1, 1),)),
                place=Matrix(((1, 0, 0), (2, 0, 0))),
            )

    def test_theorem_3_step_vanishes_on_null_place(self):
        # place rows (1,0,0),(0,1,1) have null direction (0,1,-1);
        # step (1,1,1) is orthogonal to it, so processes would have to
        # compute two statements at the same time step.
        program, _ = _design("E1")
        bad = SystolicArray(
            step=Matrix(((1, 1, 1),)),
            place=Matrix(((1, 0, 0), (0, 1, 1))),
            name="theorem-3-violation",
        )
        with pytest.raises(VerificationError, match="Theorem 3"):
            theorem_3_step_nonzero_on_null(program, bad, {"n": 3})
        with pytest.raises(VerificationError, match="Theorem 3"):
            check_all_theorems(program, bad, {"n": 3})

    @pytest.mark.parametrize("exp_id", ["D1", "D2", "E1", "E2"])
    def test_paper_designs_verify_every_theorem(self, exp_id):
        program, array = _design(exp_id)
        verified = check_all_theorems(program, array, {"n": 3})
        assert verified == sorted(THEOREM_CHECKS)
