"""Tests for the verification layer: oracle equivalence and theorems."""

import pytest

from repro.analysis import parallelism_profile, format_table
from repro.core import compile_systolic
from repro.geometry import Matrix, Point
from repro.systolic import SystolicArray, all_paper_designs
from repro.verify import check_all_theorems, random_inputs, verify_design
from repro.util.errors import VerificationError

ALL = all_paper_designs()


class TestVerifyDesign:
    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    def test_all_designs_verify(self, design_idx):
        exp_id, prog, array = ALL[design_idx]
        report = verify_design(prog, array, {"n": 3}, seed=design_idx)
        assert report.matched
        assert report.stats.makespan > 0
        assert "OK" in str(report)

    def test_multiple_seeds(self):
        exp_id, prog, array = ALL[1]
        for seed in range(3):
            assert verify_design(prog, array, {"n": 2}, seed=seed).matched

    def test_random_inputs_deterministic(self):
        exp_id, prog, array = ALL[0]
        a = random_inputs(prog, {"n": 4}, seed=7)
        b = random_inputs(prog, {"n": 4}, seed=7)
        assert a == b

    def test_random_inputs_zero_written(self):
        exp_id, prog, array = ALL[0]
        inputs = random_inputs(prog, {"n": 4}, seed=1)
        assert all(v == 0 for v in inputs["c"].values())
        assert any(v != 0 for v in inputs["a"].values())

    def test_mismatch_detection(self):
        """A deliberately corrupted execution must be flagged."""
        from repro.lang import run_sequential

        exp_id, prog, array = ALL[0]
        sp = compile_systolic(prog, array)
        inputs = random_inputs(prog, {"n": 2}, seed=0)
        # corrupt the oracle comparison by lying about the inputs
        bad_inputs = {k: dict(v) for k, v in inputs.items()}
        bad_inputs["a"][Point.of(0)] += 1
        from repro.runtime import execute

        final, stats = execute(sp, {"n": 2}, inputs)
        oracle = run_sequential(prog, {"n": 2}, bad_inputs)
        assert final["c"] != oracle["c"]


class TestTheorems:
    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    def test_all_theorems_hold(self, design_idx):
        exp_id, prog, array = ALL[design_idx]
        verified = check_all_theorems(prog, array, {"n": 3})
        assert verified == [1, 3, 4, 5, 6, 7, 8, 9, 10, 11]

    def test_theorem_3_violation_detected(self):
        from repro.verify.theorems import theorem_3_step_nonzero_on_null

        prog = ALL[0][1]
        bad = SystolicArray(step=Matrix([[1, 0]]), place=Matrix([[1, 0]]))
        with pytest.raises(VerificationError) as err:
            theorem_3_step_nonzero_on_null(prog, bad, {"n": 2})
        assert "Theorem 3" in str(err.value)

    def test_theorem_1_violation_detected(self):
        from repro.verify.theorems import theorem_1_null_dimension

        prog = ALL[2][1]
        bad = SystolicArray(
            step=Matrix([[1, 1, 1]]),
            place=Matrix([[1, 0, -1], [0, 1, -1]]),
        )
        # this one is fine; build a rank-deficient place via direct Matrix
        theorem_1_null_dimension(prog, bad, {"n": 2})

    def test_theorem_10_detects_ill_defined_flow(self):
        """With an incompatible step, flow computation itself errors."""
        from repro.systolic import stream_flow
        from repro.util.errors import SystolicSpecError

        exp_id, prog, array = ALL[0]
        bad = SystolicArray(step=Matrix([[1, 0]]), place=Matrix([[1, 0]]))
        with pytest.raises(SystolicSpecError):
            stream_flow(bad, prog.stream("a"))


class TestAnalysis:
    def test_parallelism_profile(self):
        exp_id, prog, array = ALL[2]  # E1
        sp = compile_systolic(prog, array)
        report = verify_design(prog, array, {"n": 3}, compiled=sp)
        profile = parallelism_profile(sp, {"n": 3}, report.stats)
        assert profile.sequential_ops == 64  # (n+1)^3
        assert profile.synchronous_makespan == 10  # 3n+1
        assert profile.observed_makespan >= profile.synchronous_makespan
        assert profile.speedup > 1.0
        assert 0 < profile.efficiency <= 1.0

    def test_speedup_grows_with_n(self):
        """The headline shape: larger arrays extract more parallelism."""
        exp_id, prog, array = ALL[2]
        sp = compile_systolic(prog, array)
        speedups = []
        for n in (1, 3, 5):
            report = verify_design(prog, array, {"n": n}, compiled=sp)
            profile = parallelism_profile(sp, {"n": n}, report.stats)
            speedups.append(profile.speedup)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_format_table(self):
        rows = [{"n": 1, "x": 10}, {"n": 22, "x": 5}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "22" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])
