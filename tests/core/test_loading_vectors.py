"""Loading & recovery vector freedom (Section 4.2).

"Loading and recovery may be performed at any boundary of the process
space; it is not specified by the systolic array."  These tests exercise
directions the appendices never use: reversed, orthogonal and diagonal
loading, all verified end to end.
"""

import pytest

from repro.core import compile_systolic
from repro.geometry import Matrix, Point
from repro.symbolic import AffineVec, Affine
from repro.systolic import (
    SystolicArray,
    matrix_product_program,
    polynomial_product_program,
)
from repro.verify import verify_design

n = Affine.var("n")


def d1_with_loading(vector):
    return SystolicArray(
        step=Matrix([[2, 1]]),
        place=Matrix([[1, 0]]),
        loading_vectors={"a": vector},
        name=f"D1 load {tuple(vector)}",
    )


def e1_with_loading(vector):
    return SystolicArray(
        step=Matrix([[1, 1, 1]]),
        place=Matrix([[1, 0, 0], [0, 1, 0]]),
        loading_vectors={"c": vector},
        name=f"E1 load {tuple(vector)}",
    )


class TestReversedLoading:
    def test_d1_load_from_right(self):
        """Loading vector -1: a enters at col = n, elements in reverse."""
        prog = polynomial_product_program()
        sp = compile_systolic(prog, d1_with_loading(Point.of(-1)))
        assert sp.plan("a").increment_s == Point.of(-1)
        assert sp.plan("a").first_s.collapse() == AffineVec.of(n)
        assert sp.plan("a").last_s.collapse() == AffineVec.of(0)
        # loading passes now count from the right: drain = col
        assert sp.plan("a").drain.collapse() == Affine.var("col")
        assert verify_design(prog, d1_with_loading(Point.of(-1)), {"n": 4}).matched

    def test_both_directions_same_results(self):
        prog = polynomial_product_program()
        from repro.verify import random_inputs
        from repro.runtime import execute

        inputs = random_inputs(prog, {"n": 3}, seed=2)
        left = compile_systolic(prog, d1_with_loading(Point.of(1)))
        right = compile_systolic(prog, d1_with_loading(Point.of(-1)))
        final_l, _ = execute(left, {"n": 3}, inputs)
        final_r, _ = execute(right, {"n": 3}, inputs)
        assert final_l == final_r


class TestOrthogonalLoading:
    def test_e1_load_vertically(self):
        """c loaded along (0,1) -- per column instead of per row."""
        prog = matrix_product_program()
        array = e1_with_loading(Point.of(0, 1))
        sp = compile_systolic(prog, array)
        assert sp.plan("c").increment_s == Point.of(0, 1)
        env = {"col": 2, "row": 1, "n": 4}
        assert sp.plan("c").first_s.evaluate(env) == Point.of(2, 0)
        assert sp.plan("c").last_s.evaluate(env) == Point.of(2, 4)
        assert verify_design(prog, array, {"n": 3}).matched


class TestDiagonalLoading:
    def test_e1_load_diagonally(self):
        """c loaded along (1,1): each diagonal pipeline loads its own
        slice of the result matrix -- not in the paper, but within the
        stated freedom and fully handled."""
        prog = matrix_product_program()
        array = e1_with_loading(Point.of(1, 1))
        sp = compile_systolic(prog, array)
        assert sp.plan("c").increment_s == Point.of(1, 1)
        # two faces now: pipes starting on the left or bottom boundary
        assert len(sp.plan("c").first_s.cases) == 2
        assert verify_design(prog, array, {"n": 3}).matched

    def test_non_neighbour_loading_rejected(self):
        from repro.util.errors import RequirementViolation

        prog = matrix_product_program()
        with pytest.raises(RequirementViolation):
            compile_systolic(prog, e1_with_loading(Point.of(2, 0)))
