"""Tests for the process-space basis (7.1) and increment (7.2.1)."""

import pytest

from repro.core import (
    concrete_process_space,
    derive_increment,
    process_space_basis,
    process_space_guard,
)
from repro.geometry import Matrix, Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import (
    SystolicArray,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
)
from repro.util.errors import InconsistentDistributionError, RestrictionViolation

n = Affine.var("n")


class TestBasis:
    def test_d1(self):
        lo, hi = process_space_basis(polynomial_product_program(), polyprod_design_d1())
        assert lo == AffineVec.of(0)
        assert hi == AffineVec.of(n)

    def test_d2(self):
        lo, hi = process_space_basis(polynomial_product_program(), polyprod_design_d2())
        assert lo == AffineVec.of(0)
        assert hi == AffineVec.of(2 * n)

    def test_e1(self):
        lo, hi = process_space_basis(matrix_product_program(), matmul_design_e1())
        assert lo == AffineVec.of(0, 0)
        assert hi == AffineVec.of(n, n)

    def test_e2(self):
        lo, hi = process_space_basis(matrix_product_program(), matmul_design_e2())
        assert lo == AffineVec.of(-n, -n)
        assert hi == AffineVec.of(n, n)

    def test_matches_exhaustive_minimum(self):
        """The vertex construction equals brute-force min/max over IS."""
        prog = matrix_product_program()
        array = matmul_design_e2()
        lo, hi = process_space_basis(prog, array)
        env = {"n": 3}
        points = [array.place_of(x) for x in prog.index_space(env)]
        for i in range(2):
            assert lo[i].evaluate_int(env) == min(p[i] for p in points)
            assert hi[i].evaluate_int(env) == max(p[i] for p in points)

    def test_concrete_process_space(self):
        lo, hi = process_space_basis(matrix_product_program(), matmul_design_e2())
        ps = concrete_process_space(lo, hi, {"n": 2})
        assert ps.lo == Point.of(-2, -2) and ps.hi == Point.of(2, 2)

    def test_process_space_guard(self):
        lo, hi = process_space_basis(polynomial_product_program(), polyprod_design_d2())
        g = process_space_guard(lo, hi, ("col",))
        assert g.evaluate({"col": 3, "n": 2})
        assert not g.evaluate({"col": 5, "n": 2})


class TestIncrement:
    def test_d1(self):
        assert derive_increment(polyprod_design_d1()) == Point.of(0, 1)

    def test_d2(self):
        assert derive_increment(polyprod_design_d2()) == Point.of(1, -1)

    def test_e1(self):
        assert derive_increment(matmul_design_e1()) == Point.of(0, 0, 1)

    def test_e2(self):
        assert derive_increment(matmul_design_e2()) == Point.of(1, 1, 1)

    def test_points_forward_in_time(self):
        """Theorem 6: step . increment > 0 for every design."""
        for array in (
            polyprod_design_d1(),
            polyprod_design_d2(),
            matmul_design_e1(),
            matmul_design_e2(),
        ):
            inc = derive_increment(array)
            assert array.step.apply_point(inc)[0] > 0

    def test_in_null_place(self):
        """Theorem 5: increment lies in null.place."""
        for array in (polyprod_design_d2(), matmul_design_e2()):
            inc = derive_increment(array)
            assert array.place_of(inc).is_zero

    def test_inconsistent_rejected(self):
        array = SystolicArray(step=Matrix([[1, 0]]), place=Matrix([[1, 0]]))
        with pytest.raises(InconsistentDistributionError):
            derive_increment(array)

    def test_restriction_enforced(self):
        # place=(i+2j) has null (2,-1): increment (2,-1) violates A.2
        array = SystolicArray(step=Matrix([[2, 1]]), place=Matrix([[1, 2]]))
        with pytest.raises(RestrictionViolation):
            derive_increment(array)
        # but the unrestricted inspection succeeds
        inc = derive_increment(array, enforce_restriction=False)
        assert abs(inc[0]) == 2
