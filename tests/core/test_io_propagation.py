"""Tests for i/o layout/communications (7.3-7.4), soak/drain (7.5) and
buffers (7.6), pinned to the closed forms printed in Appendices D and E."""

import pytest

from repro.core import compile_systolic
from repro.core.io_layout import concrete_io_points, io_axes, io_boundary_sides
from repro.geometry import Point, Rectangle
from repro.symbolic import Affine, AffineVec
from repro.systolic import (
    all_paper_designs,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
)

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


def compiled(prog_fn, design_fn):
    return compile_systolic(prog_fn(), design_fn())


class TestIOLayout:
    def test_axes(self):
        assert io_axes(Point.of(0, 1)) == [1]
        assert io_axes(Point.of(-1, -1)) == [0, 1]

    def test_sides(self):
        assert io_boundary_sides(Point.of(0, 1), 1) == ("lo", "hi")
        assert io_boundary_sides(Point.of(-1, -1), 0) == ("hi", "lo")

    def test_e1_stream_a_on_horizontal_boundaries(self):
        """E.1.3: a's i/o processes lie on the horizontal boundaries; input
        at the bottom (row = 0), output at the top (row = n)."""
        space = Rectangle(Point.of(0, 0), Point.of(3, 3))
        pts = concrete_io_points(space, Point.of(0, 1))
        inputs = {p.position for p in pts if p.role == "input"}
        outputs = {p.position for p in pts if p.role == "output"}
        assert inputs == {Point.of(i, 0) for i in range(4)}
        assert outputs == {Point.of(i, 3) for i in range(4)}

    def test_e2_stream_c_dedup(self):
        """E.2.3: c flows (-1,-1); inputs on top and right, outputs on bottom
        and left, with corner duplicates removed from the later set."""
        space = Rectangle(Point.of(-2, -2), Point.of(2, 2))
        pts = concrete_io_points(space, Point.of(-1, -1))
        inputs = [p for p in pts if p.role == "input"]
        outputs = [p for p in pts if p.role == "output"]
        # no duplicate positions within a role
        assert len({p.position for p in inputs}) == len(inputs)
        assert len({p.position for p in outputs}) == len(outputs)
        # (2,2) is an input corner claimed by axis 0 only
        claimed = [p for p in inputs if p.position == Point.of(2, 2)]
        assert len(claimed) == 1 and claimed[0].axis == 0
        # counts: each side has 5, minus 1 duplicate corner per role
        assert len(inputs) == 9 and len(outputs) == 9


class TestD1IO:
    """D.1.4: repeaters {0 n 1} for a and b, {0 2n 1} for c."""

    def test_endpoints(self):
        sp = compiled(polynomial_product_program, polyprod_design_d1)
        env = {"col": 0, "n": 5}
        assert sp.plan("a").first_s.evaluate(env) == Point.of(0)
        assert sp.plan("a").last_s.evaluate(env) == Point.of(5)
        assert sp.plan("b").first_s.evaluate(env) == Point.of(0)
        assert sp.plan("b").last_s.evaluate(env) == Point.of(5)
        assert sp.plan("c").first_s.evaluate(env) == Point.of(0)
        assert sp.plan("c").last_s.evaluate(env) == Point.of(10)

    def test_increments(self):
        sp = compiled(polynomial_product_program, polyprod_design_d1)
        assert sp.plan("a").increment_s == Point.of(1)  # the loading vector
        assert sp.plan("b").increment_s == Point.of(1)
        assert sp.plan("c").increment_s == Point.of(1)


class TestD2IO:
    """D.2.4: increment_a = 1, increment_b = -1, increment_c = 0 (stationary,
    loading vector 1); repeaters {0 n 1}, {n 0 -1}, {0 2n 1}."""

    def test_b_reversed(self):
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        env = {"col": 0, "n": 5}
        assert sp.plan("b").increment_s == Point.of(-1)
        assert sp.plan("b").first_s.evaluate(env) == Point.of(5)
        assert sp.plan("b").last_s.evaluate(env) == Point.of(0)

    def test_c_stationary_uses_loading_vector(self):
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        assert sp.plan("c").stationary
        assert sp.plan("c").increment_s == Point.of(1)
        env = {"col": 0, "n": 5}
        assert sp.plan("c").first_s.evaluate(env) == Point.of(0)
        assert sp.plan("c").last_s.evaluate(env) == Point.of(10)


class TestE1IO:
    """E.1.4's summary table: first_a=(col,0), last_a=(col,n),
    first_b=(0,row), last_b=(n,row), first_c=(0,row), last_c=(n,row)."""

    def test_table(self):
        sp = compiled(matrix_product_program, matmul_design_e1)
        env = {"col": 2, "row": 1, "n": 4}
        assert sp.plan("a").first_s.evaluate(env) == Point.of(2, 0)
        assert sp.plan("a").last_s.evaluate(env) == Point.of(2, 4)
        assert sp.plan("b").first_s.evaluate(env) == Point.of(0, 1)
        assert sp.plan("b").last_s.evaluate(env) == Point.of(4, 1)
        assert sp.plan("c").first_s.evaluate(env) == Point.of(0, 1)
        assert sp.plan("c").last_s.evaluate(env) == Point.of(4, 1)

    def test_increments(self):
        sp = compiled(matrix_product_program, matmul_design_e1)
        assert sp.plan("a").increment_s == Point.of(0, 1)
        assert sp.plan("b").increment_s == Point.of(1, 0)
        assert sp.plan("c").increment_s == Point.of(1, 0)  # loading vector


class TestE2IO:
    """E.2.4: first_a = (0,-col) | (col,0); last_a = (n+col,n) | (n,n-col);
    symmetrically for b; first_c = (0,row-col) | (col-row,0)."""

    def test_first_a(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        assert sp.plan("a").increment_s == Point.of(1, 1)
        assert sp.plan("a").first_s.evaluate({"col": -2, "row": 0, "n": 4}) == Point.of(0, 2)
        assert sp.plan("a").first_s.evaluate({"col": 2, "row": 0, "n": 4}) == Point.of(2, 0)

    def test_last_a(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        assert sp.plan("a").last_s.evaluate({"col": -2, "row": 0, "n": 4}) == Point.of(2, 4)
        assert sp.plan("a").last_s.evaluate({"col": 2, "row": 0, "n": 4}) == Point.of(4, 2)

    def test_first_b(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        assert sp.plan("b").first_s.evaluate({"col": 0, "row": -2, "n": 4}) == Point.of(2, 0)
        assert sp.plan("b").first_s.evaluate({"col": 0, "row": 2, "n": 4}) == Point.of(0, 2)

    def test_first_c_depends_on_diagonal(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        assert sp.plan("c").first_s.evaluate({"col": 1, "row": 3, "n": 4}) == Point.of(0, 2)
        assert sp.plan("c").first_s.evaluate({"col": 3, "row": 1, "n": 4}) == Point.of(2, 0)

    def test_null_pipe_in_corner(self):
        """c's pipes through the PS corners miss VS.c entirely."""
        sp = compiled(matrix_product_program, matmul_design_e2)
        assert sp.plan("c").first_s.evaluate({"col": 4, "row": -4, "n": 4}) is None


class TestSoakDrain:
    def test_d1_values(self):
        """D.1.5: soak_b = drain_b = 0; soak_c = col, drain_c = n - col;
        loading a = n - col, recovery a = col."""
        sp = compiled(polynomial_product_program, polyprod_design_d1)
        for c in range(6):
            env = {"col": c, "n": 5}
            assert sp.plan("b").soak.evaluate(env) == 0
            assert sp.plan("b").drain.evaluate(env) == 0
            assert sp.plan("c").soak.evaluate(env) == c
            assert sp.plan("c").drain.evaluate(env) == 5 - c
            assert sp.plan("a").drain.evaluate(env) == 5 - c  # loading passes
            assert sp.plan("a").soak.evaluate(env) == c  # recovery passes

    def test_d2_values(self):
        """D.2.5: per-clause soak/drain for a and b."""
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        nv = 5
        for c in range(2 * nv + 1):
            env = {"col": c, "n": nv}
            soak_a = sp.plan("a").soak.evaluate(env)
            drain_a = sp.plan("a").drain.evaluate(env)
            soak_b = sp.plan("b").soak.evaluate(env)
            drain_b = sp.plan("b").drain.evaluate(env)
            assert soak_a == (0 if c <= nv else c - nv)
            assert drain_a == (nv - c if c <= nv else 0)
            assert soak_b == (nv - c if c <= nv else 0)
            assert drain_b == (0 if c <= nv else c - nv)
            # c stationary: loading = 2n - col, recovery = col
            assert sp.plan("c").drain.evaluate(env) == 2 * nv - c
            assert sp.plan("c").soak.evaluate(env) == c

    def test_e1_no_soak_drain_for_moving(self):
        """E.1.5: M.s.first = first_s for a and b -- no soaking/draining;
        c loads n-col passes and recovers col passes."""
        sp = compiled(matrix_product_program, matmul_design_e1)
        for cc in range(4):
            for rr in range(4):
                env = {"col": cc, "row": rr, "n": 3}
                assert sp.plan("a").soak.evaluate(env) == 0
                assert sp.plan("a").drain.evaluate(env) == 0
                assert sp.plan("b").soak.evaluate(env) == 0
                assert sp.plan("b").drain.evaluate(env) == 0
                assert sp.plan("c").drain.evaluate(env) == 3 - cc  # loading
                assert sp.plan("c").soak.evaluate(env) == cc  # recovery

    def test_e2_clause_values(self):
        """E.2.5/E.2.7: the nested soak code, evaluated per region.

        The paper's guarded commands may have several true sub-alternatives;
        evaluation picks the first (values agree on overlaps).  E.g. in the
        first clause (col <= 0 <= row-col <= n), sub-case first_a = (0,-col)
        holds, and M.a.first = (0,-col) equals it: soak_a = 0.
        """
        sp = compiled(matrix_product_program, matmul_design_e2)
        nv = 3
        # first-clause region (upper-left of the hexagon)
        env = {"col": -2, "row": 0, "n": nv}
        assert sp.plan("a").soak.evaluate(env) == 0
        assert sp.plan("b").soak.evaluate(env) == 2  # row - col
        assert sp.plan("c").soak.evaluate(env) == 0
        # third-clause region (col, row >= 0)
        env = {"col": 1, "row": 2, "n": nv}
        assert sp.plan("a").soak.evaluate(env) == 0
        assert sp.plan("a").drain.evaluate(env) == 1
        assert sp.plan("b").soak.evaluate(env) == 0
        assert sp.plan("c").soak.evaluate(env) == 1  # row - col
        # second-clause region (row <= 0 <= col - row)
        env = {"col": 1, "row": -1, "n": nv}
        assert sp.plan("a").soak.evaluate(env) == 1  # col - row - ... = 1
        assert sp.plan("b").soak.evaluate(env) == 0
        assert sp.plan("b").drain.evaluate(env) == 1
        assert sp.plan("c").soak.evaluate(env) == 0


class TestPipeConservation:
    """soak + count + drain == pipe length for every computation process,
    in every design -- the invariant that makes the propagation protocol
    work.  Checked by brute force against the symbolic formulas."""

    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    def test_conservation(self, design_idx):
        exp_id, prog, array = all_paper_designs()[design_idx]
        sp = compile_systolic(prog, array)
        env = {"n": 3}
        ps = sp.process_space(env)
        for y in ps:
            binding = sp.bind(y, env)
            count = sp.count.evaluate(binding)
            for plan in sp.streams:
                first_s = plan.first_s.evaluate(binding)
                if count is None or count == 0:
                    continue  # null process: covered by pass_amount
                soak = plan.soak.evaluate(binding)
                drain = plan.drain.evaluate(binding)
                total = plan.pass_amount.evaluate(binding)
                assert first_s is not None
                assert soak is not None and drain is not None
                assert soak >= 0 and drain >= 0, f"{exp_id} {y} {plan.name}"
                if plan.stationary:
                    # the process retains exactly one element: recovery
                    # passes (soak) + itself + loading passes (drain)
                    assert soak + 1 + drain == total, (
                        f"{exp_id} {y} {plan.name}: {soak}+1+{drain} != {total}"
                    )
                else:
                    assert soak + count + drain == total, (
                        f"{exp_id} {y} {plan.name}: {soak}+{count}+{drain} != {total}"
                    )

    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    def test_pass_amount_matches_enumeration(self, design_idx):
        """Eq. 10 equals the actual number of variable elements on the pipe."""
        exp_id, prog, array = all_paper_designs()[design_idx]
        sp = compile_systolic(prog, array)
        env = {"n": 3}
        index_space = prog.index_space(env)
        ps = sp.process_space(env)
        for plan in sp.streams:
            stream = plan.stream
            transport = plan.transport
            for y in ps:
                binding = sp.bind(y, env)
                total = plan.pass_amount.evaluate(binding)
                # enumerate the pipe through y along the transport direction
                from repro.geometry import Line, integer_direction

                direction = integer_direction(transport)
                line = Line(y, direction)
                pipe = [
                    z
                    for z in line.lattice_points_between(ps.lo, ps.hi)
                ]
                elems = set()
                for z in pipe:
                    bz = sp.bind(z, env)
                    cases = sp.first.matching_cases(bz)
                    if not cases and sp.first.has_default:
                        continue
                    for x in index_space:
                        if array.place_of(x) == z:
                            elems.add(stream.element_of(x))
                expected = len(elems) if elems else None
                assert total == expected, (
                    f"{exp_id} {plan.name} at {y}: Eq.10 gives {total}, "
                    f"enumeration gives {expected}"
                )


class TestE2Buffers:
    """E.2.6: corner buffers pass n+col+1 / n-col+1 elements of a (and the
    symmetric amounts of b) and nothing of c."""

    def test_amounts(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        nv = 3
        env = {"col": -1, "row": 3, "n": nv}  # col-row = -4 < -n: a buffer point
        assert not sp.in_computation_space(Point.of(-1, 3), {"n": nv})
        assert sp.plan("a").pass_amount.evaluate(env) == nv + (-1) + 1
        assert sp.plan("b").pass_amount.evaluate(env) == nv - 3 + 1
        assert sp.plan("c").pass_amount.evaluate(env) is None  # no c elements

    def test_internal_buffer_counts(self):
        d1 = compiled(polynomial_product_program, polyprod_design_d1)
        assert d1.plan("b").internal_buffers() == 1
        assert d1.plan("a").internal_buffers() == 0
        e2 = compiled(matrix_product_program, matmul_design_e2)
        assert all(p.internal_buffers() == 0 for p in e2.streams)
