"""Tests for first/last/count (7.2.2-7.2.3) against the paper's closed forms."""

import pytest

from repro.core import (
    compile_systolic,
    derive_count,
    derive_first,
    derive_increment,
    derive_last,
    is_simple_place,
)
from repro.geometry import Matrix, Point
from repro.symbolic import Affine, AffineVec
from repro.systolic import (
    SystolicArray,
    matmul_design_e1,
    matmul_design_e2,
    matrix_product_program,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
)

n = Affine.var("n")
col = Affine.var("col")
row = Affine.var("row")


def compiled(prog_fn, design_fn):
    return compile_systolic(prog_fn(), design_fn())


class TestSimplePlaceDetection:
    def test_d1_simple(self):
        assert is_simple_place(polyprod_design_d1(), Point.of(0, 1))

    def test_d2_not_simple(self):
        assert not is_simple_place(polyprod_design_d2(), Point.of(1, -1))

    def test_e1_simple(self):
        assert is_simple_place(matmul_design_e1(), Point.of(0, 0, 1))

    def test_e2_not_simple(self):
        assert not is_simple_place(matmul_design_e2(), Point.of(1, 1, 1))

    def test_non_permutation_projection_not_simple(self):
        """place = (j+k, k) collapses axis i but shears the box: the
        remaining columns are not a signed permutation, so the no-guard
        shortcut must not apply."""
        array = SystolicArray(
            step=Matrix([[1, 1, 1]]),
            place=Matrix([[0, 1, 1], [0, 0, 1]]),
        )
        assert not is_simple_place(array, Point.of(1, 0, 0))


class TestD1FirstLast:
    """D.1: first = (col, 0), last = (col, n), count = n+1, no guards."""

    def test_first(self):
        sp = compiled(polynomial_product_program, polyprod_design_d1)
        assert len(sp.first.cases) == 1
        assert sp.first.cases[0].guard.is_true
        assert sp.first.cases[0].value == AffineVec.of(col, 0)

    def test_last(self):
        sp = compiled(polynomial_product_program, polyprod_design_d1)
        assert sp.last.cases[0].value == AffineVec.of(col, n)

    def test_count(self):
        sp = compiled(polynomial_product_program, polyprod_design_d1)
        assert sp.count.evaluate({"col": 2, "n": 5}) == 6


class TestD2FirstLast:
    """D.2: two alternatives each (paper Section D.2.2)."""

    def test_first_cases(self):
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        values = [c.value for c in sp.first.cases]
        assert AffineVec.of(0, col) in values
        assert AffineVec.of(col - n, n) in values

    def test_last_cases(self):
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        values = [c.value for c in sp.last.cases]
        assert AffineVec.of(col, 0) in values
        assert AffineVec.of(n, col - n) in values

    def test_overlap_at_col_n_agrees(self):
        """The paper: guards overlap at col = n and the expressions agree."""
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        env = {"col": 4, "n": 4}
        assert len(sp.first.matching_cases(env)) == 2
        assert sp.first.check_overlaps_agree(env)

    def test_count_piecewise(self):
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        # count = col+1 for 0<=col<=n; 2n-col+1 for n<=col<=2n
        assert sp.count.evaluate({"col": 2, "n": 5}) == 3
        assert sp.count.evaluate({"col": 8, "n": 5}) == 3
        assert sp.count.evaluate({"col": 5, "n": 5}) == 6

    def test_cs_covers_all_of_ps(self):
        """D.2: the guards are simplified under PS membership (their
        implicit domain), and CS = PS -- every process in 0..2n computes."""
        sp = compiled(polynomial_product_program, polyprod_design_d2)
        for c in range(11):
            assert sp.first.evaluate({"col": c, "n": 5}) is not None
        # outside CS (and PS) the *unsimplified* derivation is null
        raw = compile_systolic(
            polynomial_product_program(), polyprod_design_d2(), prune=False
        )
        assert raw.first.evaluate({"col": 99, "n": 5}) is None


class TestE1FirstLast:
    """E.1: first = (col,row,0), last = (col,row,n), count = n+1."""

    def test_values(self):
        sp = compiled(matrix_product_program, matmul_design_e1)
        assert sp.first.cases[0].value == AffineVec.of(col, row, 0)
        assert sp.last.cases[0].value == AffineVec.of(col, row, n)
        assert sp.simple
        assert sp.count.evaluate({"col": 0, "row": 0, "n": 7}) == 8


class TestE2FirstLast:
    """E.2: three alternatives each, matching Section E.2.2 verbatim."""

    def test_first_values(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        values = [c.value for c in sp.first.cases]
        assert AffineVec.of(0, row - col, -col) in values
        assert AffineVec.of(col - row, 0, -row) in values
        assert AffineVec.of(col, row, 0) in values

    def test_last_values(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        values = [c.value for c in sp.last.cases]
        assert AffineVec.of(n, row - col + n, n - col) in values
        assert AffineVec.of(col - row + n, n, n - row) in values
        assert AffineVec.of(col + n, row + n, n) in values

    def test_guards_match_paper(self):
        """First clause guard is 0 <= row-col <= n /\\ 0 <= -col <= n."""
        sp = compiled(matrix_product_program, matmul_design_e2)
        case = next(
            c for c in sp.first.cases if c.value == AffineVec.of(0, row - col, -col)
        )
        env_in = {"col": -2, "row": 0, "n": 3}
        env_out = {"col": 1, "row": 0, "n": 3}
        assert case.guard.evaluate(env_in)
        assert not case.guard.evaluate(env_out)

    def test_count_interactions(self):
        """E.2.2: guard interactions give (at least) six distinct counts."""
        sp = compiled(matrix_product_program, matmul_design_e2)
        env = {"n": 3}
        # centre process (0,0) runs the full diagonal: n+1 statements
        assert sp.count.evaluate({**env, "col": 0, "row": 0}) == 4
        # the paper's clause col+n-row+1 at (2,0):
        assert sp.count.evaluate({**env, "col": 2, "row": 0}) == 2

    def test_null_in_corners(self):
        sp = compiled(matrix_product_program, matmul_design_e2)
        # (n, -n) has col-row = 2n > n: outside the hexagon
        assert sp.first.evaluate({"col": 3, "row": -3, "n": 3}) is None


class TestChordConsistency:
    """first/last must be the true step-extremes of each process's chord."""

    @pytest.mark.parametrize("design_idx", [0, 1, 2, 3])
    def test_against_enumeration(self, design_idx):
        from repro.systolic import all_paper_designs

        exp_id, prog, array = all_paper_designs()[design_idx]
        sp = compile_systolic(prog, array)
        env = {"n": 3}
        index_space = prog.index_space(env)
        chords: dict[Point, list[Point]] = {}
        for x in index_space:
            chords.setdefault(array.place_of(x), []).append(x)
        ps = sp.process_space(env)
        for y in ps:
            binding = sp.bind(y, env)
            first = sp.first.evaluate(binding)
            last = sp.last.evaluate(binding)
            chord = chords.get(y)
            if chord is None:
                assert first is None and last is None
                continue
            by_step = sorted(chord, key=lambda x: array.step_of(x))
            assert first == by_step[0], f"{exp_id} {y}: {first} != {by_step[0]}"
            assert last == by_step[-1], f"{exp_id} {y}: {last} != {by_step[-1]}"
            assert sp.count.evaluate(binding) == len(chord)
            assert sp.first.check_overlaps_agree(binding)
            assert sp.last.check_overlaps_agree(binding)
