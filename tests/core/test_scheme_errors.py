"""Error-path tests for the compilation driver."""

import pytest

from repro.core import compile_systolic
from repro.geometry import Matrix, Point
from repro.systolic import (
    SystolicArray,
    matrix_product_program,
    polynomial_product_program,
)
from repro.util.errors import (
    CompilationError,
    InconsistentDistributionError,
    RequirementViolation,
    RestrictionViolation,
)


class TestCoordinateHandling:
    def test_custom_coords(self):
        sp = compile_systolic(
            matrix_product_program(),
            SystolicArray(
                step=Matrix([[1, 1, 1]]),
                place=Matrix([[1, 0, 0], [0, 1, 0]]),
                loading_vectors={"c": Point.of(1, 0)},
            ),
            coords=("px", "py"),
        )
        assert sp.coords == ("px", "py")
        assert sp.first.collapse().free_symbols <= {"px", "py", "n"}

    def test_wrong_coord_count(self):
        with pytest.raises(CompilationError):
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(
                    step=Matrix([[2, 1]]),
                    place=Matrix([[1, 0]]),
                    loading_vectors={"a": Point.of(1)},
                ),
                coords=("x", "y"),
            )

    def test_coord_clash_with_loop_index(self):
        with pytest.raises(CompilationError):
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(
                    step=Matrix([[2, 1]]),
                    place=Matrix([[1, 0]]),
                    loading_vectors={"a": Point.of(1)},
                ),
                coords=("i",),
            )

    def test_coord_clash_with_size_symbol(self):
        with pytest.raises(CompilationError):
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(
                    step=Matrix([[2, 1]]),
                    place=Matrix([[1, 0]]),
                    loading_vectors={"a": Point.of(1)},
                ),
                coords=("n",),
            )

    def test_default_coords_high_dim(self):
        from repro.core.scheme import default_coords

        assert default_coords(1) == ("col",)
        assert default_coords(2) == ("col", "row")
        assert default_coords(3) == ("y0", "y1", "y2")


class TestRestrictionDiagnostics:
    def test_incompatible_distributions(self):
        with pytest.raises(InconsistentDistributionError):
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(step=Matrix([[1, 0]]), place=Matrix([[1, 0]])),
            )

    def test_missing_loading_vector(self):
        # a comes out stationary under place=(i) but no vector given
        from repro.util.errors import SystolicSpecError

        with pytest.raises(SystolicSpecError):
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(step=Matrix([[2, 1]]), place=Matrix([[1, 0]])),
            )

    def test_validate_false_skips_source_checks(self):
        """validate=False trusts the caller (used by the explorer)."""
        sp = compile_systolic(
            polynomial_product_program(),
            SystolicArray(
                step=Matrix([[2, 1]]),
                place=Matrix([[1, 0]]),
                loading_vectors={"a": Point.of(1)},
            ),
            validate=False,
        )
        assert sp.simple

    def test_increment_restriction_message(self):
        with pytest.raises(RestrictionViolation) as err:
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(
                    step=Matrix([[2, 1]]),
                    place=Matrix([[1, 2]]),
                    loading_vectors={},
                ),
                validate=False,
            )
        assert "increment" in str(err.value)

    def test_flow_requirement_message(self):
        with pytest.raises(RequirementViolation) as err:
            compile_systolic(
                polynomial_product_program(),
                SystolicArray(step=Matrix([[2, 1]]), place=Matrix([[1, -1]])),
            )
        assert "flow" in str(err.value) or "1/n" in str(err.value)
