"""Direct unit tests for repeaters and the symbolic vector quotient."""

import pytest

from repro.core import Repeater, affine_vector_quotient
from repro.geometry import Point
from repro.symbolic import Affine, AffineVec, Case, Guard, Piecewise, interval
from repro.util.errors import CompilationError

n = Affine.var("n")
col = Affine.var("col")


class TestAffineVectorQuotient:
    def test_constant(self):
        q = affine_vector_quotient(AffineVec.of(4, -8), Point.of(1, -2))
        assert q == Affine.constant(4)

    def test_symbolic(self):
        num = AffineVec.of(n - col, 0, n - col)
        q = affine_vector_quotient(num, Point.of(1, 0, 1))
        assert q == n - col

    def test_zero_component_must_vanish(self):
        with pytest.raises(CompilationError):
            affine_vector_quotient(AffineVec.of(n, 1), Point.of(1, 0))

    def test_inconsistent_components(self):
        with pytest.raises(CompilationError):
            affine_vector_quotient(AffineVec.of(n, 2 * n), Point.of(1, 1))

    def test_zero_divisor(self):
        with pytest.raises(CompilationError):
            affine_vector_quotient(AffineVec.of(0, 0), Point.of(0, 0))

    def test_dim_mismatch(self):
        with pytest.raises(CompilationError):
            affine_vector_quotient(AffineVec.of(1), Point.of(1, 1))


class TestRepeater:
    def simple(self):
        return Repeater(
            Piecewise.single(AffineVec.of(col, 0)),
            Piecewise.single(AffineVec.of(col, n)),
            Point.of(0, 1),
        )

    def test_endpoints(self):
        rep = self.simple()
        assert rep.endpoints_at({"col": 2, "n": 4}) == (Point.of(2, 0), Point.of(2, 4))

    def test_count(self):
        assert self.simple().count_at({"col": 0, "n": 4}) == 5

    def test_enumerate(self):
        pts = list(self.simple().enumerate_at({"col": 1, "n": 2}))
        assert pts == [Point.of(1, 0), Point.of(1, 1), Point.of(1, 2)]

    def test_null_process(self):
        rep = Repeater(
            Piecewise.with_null_default([Case(interval(0, col, n), AffineVec.of(col))]),
            Piecewise.with_null_default([Case(interval(0, col, n), AffineVec.of(col))]),
            Point.of(1),
        )
        assert rep.endpoints_at({"col": 99, "n": 3}) is None
        assert rep.count_at({"col": 99, "n": 3}) == 0
        assert list(rep.enumerate_at({"col": 99, "n": 3})) == []

    def test_half_null_rejected(self):
        rep = Repeater(
            Piecewise.single(AffineVec.of(col)),
            Piecewise.with_null_default([Case(interval(0, col, 0), AffineVec.of(col))]),
            Point.of(1),
        )
        with pytest.raises(CompilationError):
            rep.endpoints_at({"col": 5, "n": 3})

    def test_non_integral_rejected(self):
        rep = Repeater(
            Piecewise.single(AffineVec.of(col / 2)),
            Piecewise.single(AffineVec.of(col / 2)),
            Point.of(1),
        )
        with pytest.raises(CompilationError):
            rep.endpoints_at({"col": 3})

    def test_reversed_increment(self):
        rep = Repeater(
            Piecewise.single(AffineVec.of(n)),
            Piecewise.single(AffineVec.of(0)),
            Point.of(-1),
        )
        pts = list(rep.enumerate_at({"n": 2}))
        assert pts == [Point.of(2), Point.of(1), Point.of(0)]

    def test_str(self):
        assert "{" in str(self.simple()) and "}" in str(self.simple())
