"""Hypothesis tests for the pipelining lift on random liftable programs.

Generates three-loop programs where one read-only stream is 1-dimensional
(under-rank); the lift must always produce a valid program whose compiled
execution, projected back, matches the *original* program's sequential
semantics.
"""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro import compile_systolic, run_sequential, validate_program
from repro.extensions import pipeline_program
from repro.geometry import Matrix, Point
from repro.lang.expr import Assign, BinOp, Body, Branch, StreamRead
from repro.lang.program import Loop, SourceProgram
from repro.lang.stream import Stream
from repro.lang.variables import IndexedVariable
from repro.runtime import execute
from repro.symbolic import Affine
from repro.systolic import synthesize_places, synthesize_step, SystolicArray
from repro.systolic.flow import is_stationary, stream_flow
from repro.util.errors import ReproError
from repro.verify import random_inputs
from tests.property.test_scheme_properties import (
    LOADING_CANDIDATES,
    MAP_POOL_R3,
    SETTINGS,
    body_for,
    variable_for,
)

N = Affine.var("n")

#: 1 x 3 rank-1 rows for the under-rank stream
UNDERRANK_ROWS = [(1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 0), (0, 1, 1)]


@st.composite
def liftable_programs(draw):
    full_a = Matrix(list(MAP_POOL_R3[draw(st.integers(0, len(MAP_POOL_R3) - 1))]))
    full_c = Matrix(list(MAP_POOL_R3[draw(st.integers(0, len(MAP_POOL_R3) - 1))]))
    under = Matrix([UNDERRANK_ROWS[draw(st.integers(0, len(UNDERRANK_ROWS) - 1))]])
    streams = (
        Stream(variable_for("vc", full_c), full_c),  # written, full rank
        Stream(variable_for("va", full_a), full_a),  # read, full rank
        Stream(variable_for("vw", under), under),  # read, 1-d: to lift
    )
    loops = tuple(Loop.of(f"i{j}", 0, N) for j in range(3))
    body = Body(
        (
            Branch(
                None,
                (
                    Assign(
                        "vc",
                        BinOp(
                            "+",
                            StreamRead("vc"),
                            BinOp("*", StreamRead("va"), StreamRead("vw")),
                        ),
                    ),
                ),
            ),
        )
    )
    program = SourceProgram(loops=loops, streams=streams, body=body, name="liftable")
    return program


@st.composite
def lifted_designs(draw):
    program = draw(liftable_programs())
    try:
        lifted = pipeline_program(program)
        validate_program(lifted.program)
    except ReproError:
        assume(False)
    try:
        steps = synthesize_step(lifted.program, bound=1)
    except ReproError:
        assume(False)
    step = steps[draw(st.integers(0, len(steps) - 1))]
    places = synthesize_places(lifted.program, step, bound=1)
    assume(places)
    place = places[draw(st.integers(0, len(places) - 1))]
    loading = {}
    base = SystolicArray(step=step, place=place)
    for s in lifted.program.streams:
        if is_stationary(stream_flow(base, s)):
            for candidate in LOADING_CANDIDATES[2]:
                loading[s.name] = candidate
                break
    array = SystolicArray(step=step, place=place, loading_vectors=loading)
    try:
        compiled = compile_systolic(lifted.program, array)
    except ReproError:
        assume(False)
    return program, lifted, compiled


class TestLiftedPrograms:
    @given(liftable_programs())
    @SETTINGS
    def test_lift_always_validates(self, program):
        try:
            lifted = pipeline_program(program)
        except ReproError:
            return  # e.g. rank-deficient extension impossible: clean error
        try:
            validate_program(lifted.program)
        except ReproError:
            # the *generator* can produce programs whose full-rank maps do
            # not cover their box-shaped variables (e.g. (i-k, j-k) images
            # a hexagon); the lift cannot and should not fix that, but the
            # failure must be the validator's clean diagnostic
            return
        assert len(lifted.lifts) == 1
        assert lifted.lifts[0].name == "vw"

    @given(lifted_designs())
    @SETTINGS
    def test_lifted_execution_matches_original(self, design):
        original, lifted, compiled = design
        env = {"n": 2}
        inputs = random_inputs(original, env, seed=21)
        expanded = lifted.expand_inputs(env, inputs)
        final, _ = execute(compiled, env, expanded, max_rounds=2_000_000)
        projected = lifted.project_outputs(final)
        oracle = run_sequential(original, env, inputs)
        for var in oracle:
            assert projected[var] == oracle[var], var
