"""Hypothesis property tests for the exact-arithmetic substrates."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    LinearConstraint,
    Matrix,
    Point,
    fourier_motzkin_feasible,
    gcd_reduce,
    lattice_points_on_vector,
    on_chord,
    unit_distance,
    vector_quotient,
)
from repro.symbolic import Affine, Guard, Constraint

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

small_int = st.integers(min_value=-8, max_value=8)
symbols = st.sampled_from(["n", "m", "col", "row"])


@st.composite
def affines(draw):
    coeffs = draw(
        st.dictionaries(symbols, st.fractions(min_value=-5, max_value=5), max_size=3)
    )
    const = draw(st.fractions(min_value=-5, max_value=5))
    return Affine(coeffs, const)


@st.composite
def envs(draw):
    return {s: draw(small_int) for s in ["n", "m", "col", "row"]}


@st.composite
def int_points(draw, dim=None):
    d = dim if dim is not None else draw(st.integers(min_value=1, max_value=4))
    return Point(draw(st.lists(small_int, min_size=d, max_size=d)))


# ----------------------------------------------------------------------
# affine ring laws
# ----------------------------------------------------------------------


class TestAffineLaws:
    @given(affines(), affines(), envs())
    def test_add_commutes_with_eval(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines(), affines(), envs())
    def test_sub_commutes_with_eval(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(affines(), st.integers(min_value=-5, max_value=5), envs())
    def test_scalar_mul_commutes_with_eval(self, a, k, env):
        assert (a * k).evaluate(env) == a.evaluate(env) * k

    @given(affines(), affines())
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(affines(), affines(), affines())
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affines())
    def test_sub_self_is_zero(self, a):
        assert (a - a).is_zero

    @given(affines(), envs())
    def test_subs_then_eval_equals_extended_eval(self, a, env):
        partial = a.subs({"n": Affine.constant(env["n"])})
        assert partial.evaluate(env) == a.evaluate(env)

    @given(affines(), affines(), envs())
    def test_subs_affine_composition(self, a, replacement, env):
        substituted = a.subs({"col": replacement})
        extended = dict(env)
        extended["col"] = replacement.evaluate(env)
        assert substituted.evaluate(env) == a.evaluate(extended)

    @given(affines())
    def test_hash_consistent_with_eq(self, a):
        clone = Affine(dict(a.coeffs), a.const)
        assert a == clone and hash(a) == hash(clone)


# ----------------------------------------------------------------------
# lattice geometry (Theorem 7 and friends)
# ----------------------------------------------------------------------


class TestLatticeProperties:
    @given(int_points())
    def test_gcd_reduce_roundtrip(self, x):
        unit, k = gcd_reduce(x)
        assert unit * k == x

    @given(int_points())
    def test_gcd_reduce_coprime(self, x):
        unit, _ = gcd_reduce(x)
        if not unit.is_zero:
            _, k2 = gcd_reduce(unit)
            assert k2 == 1

    @given(int_points(), st.integers(min_value=-6, max_value=6))
    def test_vector_quotient_roundtrip(self, y, m):
        assert vector_quotient(y * m, y) == m or y.is_zero

    @given(int_points())
    def test_theorem_7_count(self, x):
        pts = lattice_points_on_vector(x)
        _, k = gcd_reduce(x)
        expected = 1 if x.is_zero else k + 1
        assert len(pts) == expected
        assert all(on_chord(p, x) for p in pts)

    @given(int_points())
    def test_unit_distance_spacing(self, x):
        if x.is_zero:
            return
        pts = lattice_points_on_vector(x)
        u = unit_distance(x)
        for a, b in zip(pts, pts[1:]):
            assert b - a == u


# ----------------------------------------------------------------------
# Fourier-Motzkin vs brute force
# ----------------------------------------------------------------------


@st.composite
def constraint_systems(draw):
    dim = draw(st.integers(min_value=1, max_value=3))
    count = draw(st.integers(min_value=1, max_value=5))
    constraints = []
    for _ in range(count):
        coeffs = [draw(st.integers(min_value=-3, max_value=3)) for _ in range(dim)]
        const = draw(st.integers(min_value=-6, max_value=6))
        constraints.append(LinearConstraint.of(coeffs, const))
    return dim, constraints


class TestFourierMotzkin:
    @given(constraint_systems())
    @settings(max_examples=60)
    def test_sound_against_integer_grid(self, system):
        """If any small integer point satisfies the system, FM must report
        feasible (FM is complete over the rationals, so no false negatives
        are possible for integer-satisfiable systems)."""
        dim, constraints = system
        feasible = fourier_motzkin_feasible(constraints, dim)
        grid_hit = False
        from itertools import product

        for point in product(range(-6, 7), repeat=dim):
            if all(c.evaluate(list(point)) for c in constraints):
                grid_hit = True
                break
        if grid_hit:
            assert feasible

    @given(constraint_systems())
    @settings(max_examples=30)
    def test_infeasible_means_no_integer_point(self, system):
        dim, constraints = system
        if fourier_motzkin_feasible(constraints, dim):
            return
        from itertools import product

        for point in product(range(-6, 7), repeat=dim):
            assert not all(c.evaluate(list(point)) for c in constraints)


# ----------------------------------------------------------------------
# guard simplification soundness
# ----------------------------------------------------------------------


@st.composite
def guards(draw):
    count = draw(st.integers(min_value=0, max_value=3))
    return Guard([Constraint(draw(affines())) for _ in range(count)])


class TestGuardProperties:
    @given(guards(), guards(), envs())
    @settings(max_examples=60)
    def test_simplify_equivalent_under_assumptions(self, g, assumptions, env):
        """Wherever the assumptions hold, simplify() preserves truth."""
        if not assumptions.evaluate(env):
            return
        simplified = g.simplify(assumptions)
        assert simplified.evaluate(env) == g.evaluate(env)

    @given(guards(), envs())
    def test_and_is_conjunction(self, g, env):
        both = g.and_(g)
        assert both.evaluate(env) == g.evaluate(env)

    @given(guards(), guards(), envs())
    def test_implies_sound(self, g, h, env):
        if g.implies(h) and g.evaluate(env):
            assert h.evaluate(env)
