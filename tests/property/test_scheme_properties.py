"""Hypothesis property tests for the compilation scheme itself.

Random valid (source program, systolic array) pairs are generated from
pools of rank-(r-1) index maps; ``step``/``place`` come from the bounded
synthesiser.  For every generated design:

* Theorems 1-11 hold on a concrete instance;
* soak + count + drain equals the pipe length at every process (the FIFO
  propagation invariant);
* the generated program, executed on the simulator, reproduces the
  sequential oracle exactly.

This searches a much larger design space than the paper's four appendix
derivations.
"""

from __future__ import annotations

import itertools

from hypothesis import assume, given, settings, HealthCheck
from hypothesis import strategies as st

from repro.core import compile_systolic
from repro.geometry import Matrix, Point
from repro.lang import run_sequential, validate_program
from repro.lang.expr import Assign, BinOp, Body, Branch, StreamRead
from repro.lang.program import Loop, SourceProgram
from repro.lang.stream import Stream
from repro.lang.variables import IndexedVariable
from repro.runtime import execute
from repro.symbolic import Affine
from repro.systolic import (
    SystolicArray,
    check_systolic_array,
    is_stationary,
    stream_flow,
    synthesize_places,
    synthesize_step,
)
from repro.util.errors import ReproError
from repro.verify import check_all_theorems, random_inputs

N = Affine.var("n")

#: index-map row pools (entries in {-1,0,1} keep variable images contiguous)
MAP_POOL_R2 = [(1, 0), (0, 1), (1, 1), (1, -1)]
MAP_POOL_R3 = [
    ((1, 0, 0), (0, 1, 0)),
    ((1, 0, 0), (0, 0, 1)),
    ((0, 1, 0), (0, 0, 1)),
    ((1, 0, 0), (0, 1, -1)),
    ((1, 0, 1), (0, 1, 0)),
    ((1, 1, 0), (0, 0, 1)),
    ((1, 0, -1), (0, 1, -1)),
    ((1, 0, 1), (0, 1, 1)),
]

#: loading & recovery vector candidates per process-space dimension
LOADING_CANDIDATES = {
    1: [Point.of(1), Point.of(-1)],
    2: [Point.of(1, 0), Point.of(0, 1), Point.of(1, 1), Point.of(-1, 0), Point.of(1, -1)],
}


def variable_for(name: str, index_map: Matrix) -> IndexedVariable:
    """Bounds that make the variable exactly the image of [0,n]^r."""
    bounds = []
    for row in index_map.rows:
        lo = N * sum(min(c, 0) for c in row)
        hi = N * sum(max(c, 0) for c in row)
        bounds.append((lo, hi))
    return IndexedVariable(name, tuple(bounds))


def body_for(names: list[str]) -> Body:
    """s0 := s0 + s1 [* s2 ...]: writes the first stream, reads all."""
    product = StreamRead(names[1])
    for other in names[2:]:
        product = BinOp("*", product, StreamRead(other))
    expr = BinOp("+", StreamRead(names[0]), product)
    return Body((Branch(None, (Assign(names[0], expr),)),))


@st.composite
def random_programs(draw):
    r = draw(st.sampled_from([2, 3]))
    pool = MAP_POOL_R2 if r == 2 else MAP_POOL_R3
    n_streams = draw(st.integers(min_value=2, max_value=3))
    choices = draw(
        st.lists(
            st.sampled_from(range(len(pool))),
            min_size=n_streams,
            max_size=n_streams,
            unique=True,
        )
    )
    maps = [
        Matrix([pool[c]] if r == 2 else list(pool[c])) for c in choices
    ]
    names = [f"v{i}" for i in range(n_streams)]
    streams = tuple(
        Stream(variable_for(name, m), m) for name, m in zip(names, maps)
    )
    loops = tuple(Loop.of(f"i{j}", 0, N) for j in range(r))
    program = SourceProgram(
        loops=loops, streams=streams, body=body_for(names), name="random"
    )
    try:
        validate_program(program)
    except ReproError:
        assume(False)
    return program


@st.composite
def random_designs(draw):
    program = draw(random_programs())
    try:
        steps = synthesize_step(program, bound=1)
    except ReproError:
        assume(False)
    step = steps[draw(st.integers(min_value=0, max_value=len(steps) - 1))]
    places = synthesize_places(program, step, bound=1)
    assume(places)
    place = places[draw(st.integers(min_value=0, max_value=len(places) - 1))]

    loading: dict[str, Point] = {}
    base = SystolicArray(step=step, place=place)
    for s in program.streams:
        if is_stationary(stream_flow(base, s)):
            for candidate in LOADING_CANDIDATES[program.r - 1]:
                try:
                    trial = SystolicArray(
                        step=step,
                        place=place,
                        loading_vectors={**loading, s.name: candidate},
                    )
                    check_systolic_array(trial, program)
                except ReproError:
                    continue
                loading[s.name] = candidate
                break
            else:
                assume(False)
    array = SystolicArray(step=step, place=place, loading_vectors=loading)
    try:
        compiled = compile_systolic(program, array)
    except ReproError:
        assume(False)
    return program, array, compiled


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much,
                           HealthCheck.data_too_large],
)


class TestRandomDesigns:
    @given(random_designs())
    @SETTINGS
    def test_theorems_hold(self, design):
        program, array, _sp = design
        assert check_all_theorems(program, array, {"n": 2}) == [
            1, 3, 4, 5, 6, 7, 8, 9, 10, 11,
        ]

    @given(random_designs())
    @SETTINGS
    def test_pipe_conservation(self, design):
        """soak + count + drain == pipe length (moving);
        soak + 1 + drain == pipe length (stationary)."""
        program, array, sp = design
        env = {"n": 2}
        for y in sp.process_space(env):
            binding = sp.bind(y, env)
            count = sp.count.evaluate(binding)
            if count is None or count == 0:
                continue
            for plan in sp.streams:
                soak = plan.soak.evaluate(binding)
                drain = plan.drain.evaluate(binding)
                total = plan.pass_amount.evaluate(binding)
                middle = 1 if plan.stationary else count
                assert soak + middle + drain == total, (y, plan.name)

    @given(random_designs())
    @SETTINGS
    def test_execution_matches_oracle(self, design):
        program, array, sp = design
        env = {"n": 2}
        inputs = random_inputs(program, env, seed=11)
        final, stats = execute(sp, env, inputs, max_rounds=2_000_000)
        oracle = run_sequential(program, env, inputs)
        for var in oracle:
            assert final[var] == oracle[var], var
        assert stats.makespan > 0

    @given(random_designs())
    @SETTINGS
    def test_enumerative_cross_check_clean(self, design):
        """The full enumerative cross-checker finds no discrepancy in any
        compilable random design."""
        from repro.verify import cross_check

        program, array, sp = design
        report = cross_check(sp, {"n": 2})
        assert report.ok, report.errors[:3]

    @given(random_designs())
    @SETTINGS
    def test_first_last_match_chord_enumeration(self, design):
        program, array, sp = design
        env = {"n": 2}
        chords: dict[Point, list[Point]] = {}
        for x in program.index_space(env):
            chords.setdefault(array.place_of(x), []).append(x)
        for y, chord in chords.items():
            binding = sp.bind(y, env)
            by_step = sorted(chord, key=lambda x: array.step_of(x))
            assert sp.first.evaluate(binding) == by_step[0]
            assert sp.last.evaluate(binding) == by_step[-1]
            assert sp.count.evaluate(binding) == len(chord)
