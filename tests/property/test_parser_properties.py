"""Hypothesis tests for the textual front end.

Two kinds: (a) generated *valid* affine expressions round-trip through the
printer and parser; (b) arbitrary junk never crashes the parser with
anything but a clean :class:`SourceProgramError`.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse_affine, parse_program
from repro.symbolic import Affine
from repro.util.errors import ReproError, SourceProgramError

names = st.sampled_from(["n", "m", "i", "j", "size1"])


@st.composite
def integer_affines(draw):
    coeffs = draw(
        st.dictionaries(names, st.integers(min_value=-9, max_value=9), max_size=3)
    )
    const = draw(st.integers(min_value=-20, max_value=20))
    return Affine({k: v for k, v in coeffs.items()}, const)


class TestAffineRoundTrip:
    @given(integer_affines())
    @settings(max_examples=100)
    def test_str_parses_back(self, affine):
        assert parse_affine(str(affine)) == affine

    @given(integer_affines(), integer_affines())
    def test_sum_text_parses(self, a, b):
        text = f"({a}) + ({b})"
        assert parse_affine(text) == a + b

    @given(integer_affines(), st.integers(min_value=1, max_value=9))
    def test_scaled_text_parses(self, a, k):
        text = f"{k} * ({a})"
        assert parse_affine(text) == a * k

    @given(integer_affines(), st.integers(min_value=1, max_value=9))
    def test_divided_text_parses(self, a, k):
        text = f"({a}) / {k}"
        assert parse_affine(text) == a / k


class TestParserRobustness:
    @given(st.text(max_size=60))
    @settings(max_examples=150)
    def test_parse_affine_never_crashes(self, junk):
        try:
            parse_affine(junk)
        except ReproError:
            pass  # clean library error is the only acceptable failure

    @given(st.text(max_size=200))
    @settings(max_examples=100)
    def test_parse_program_never_crashes(self, junk):
        try:
            parse_program(junk)
        except ReproError:
            pass

    @given(
        st.lists(
            st.sampled_from(
                [
                    "size n",
                    "var a[0..n], b[0..n]",
                    "for i = 0 <- 1 -> n",
                    "for j = 0 <- 1 -> n",
                    "  a[i] := a[i] + b[j]",
                    "program p",
                    "var a[0..n]",  # duplicate decls etc.
                    "  q[i] := 1",
                    "",
                ]
            ),
            max_size=10,
        )
    )
    @settings(max_examples=100)
    def test_shuffled_fragments_never_crash(self, lines):
        try:
            parse_program("\n".join(lines))
        except ReproError:
            pass
