"""Hypothesis tests for piecewise simplification soundness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Affine, Case, Constraint, Guard, Piecewise
from repro.util.errors import SymbolicError
from tests.property.test_symbolic_properties import affines, envs


@st.composite
def simple_guards(draw):
    count = draw(st.integers(min_value=0, max_value=2))
    return Guard([Constraint(draw(affines())) for _ in range(count)])


@st.composite
def piecewises(draw):
    n_cases = draw(st.integers(min_value=0, max_value=3))
    cases = [Case(draw(simple_guards()), draw(affines())) for _ in range(n_cases)]
    has_default = draw(st.booleans())
    if has_default:
        return Piecewise.with_null_default(cases)
    return Piecewise(cases)


class TestSimplifySoundness:
    @given(piecewises(), simple_guards(), envs())
    @settings(max_examples=80)
    def test_simplify_preserves_first_match_semantics(self, pw, assumptions, env):
        """Wherever the assumptions hold, the simplified analysis evaluates
        to the same value (or raises identically)."""
        if not assumptions.evaluate(env):
            return
        simplified = pw.simplify(assumptions)

        def run(p):
            try:
                return ("value", p.evaluate(env))
            except SymbolicError:
                return ("no-match", None)

        assert run(simplified) == run(pw)

    @given(piecewises(), simple_guards())
    @settings(max_examples=60)
    def test_simplify_idempotent(self, pw, assumptions):
        once = pw.simplify(assumptions)
        twice = once.simplify(assumptions)
        assert twice.cases == once.cases
        assert twice.has_default == once.has_default

    @given(piecewises(), simple_guards())
    @settings(max_examples=60)
    def test_simplify_never_grows(self, pw, assumptions):
        assert len(pw.simplify(assumptions).cases) <= len(pw.cases)

    @given(piecewises(), envs())
    @settings(max_examples=60)
    def test_prune_preserves_semantics(self, pw, env):
        pruned = pw.prune()

        def run(p):
            try:
                return ("value", p.evaluate(env))
            except SymbolicError:
                return ("no-match", None)

        assert run(pruned) == run(pw)

    @given(piecewises(), envs())
    @settings(max_examples=60)
    def test_subs_constant_matches_extended_env(self, pw, env):
        """Substituting n by its value then evaluating equals evaluating
        with n bound."""
        substituted = pw.subs({"n": Affine.constant(env["n"])})

        def run(p, e):
            try:
                return ("value", p.evaluate(e))
            except SymbolicError:
                return ("no-match", None)

        assert run(substituted, env) == run(pw, env)
