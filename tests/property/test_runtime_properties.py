"""Hypothesis property tests for the runtime, backends and round-trips."""

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro import parse_program, run_sequential
from repro.extensions import partitioned_execute
from repro.runtime import Channel, Recv, Scheduler, Send, execute
from repro.target import build_target_program, render_c, render_occam, render_paper
from repro.verify import random_inputs
from tests.property.test_scheme_properties import SETTINGS, random_designs, random_programs


class TestRendererProperties:
    @given(random_designs())
    @SETTINGS
    def test_all_backends_render(self, design):
        """Every compilable design renders in all three backends, and every
        stream appears in each rendering."""
        program, array, sp = design
        tp = build_target_program(sp)
        for renderer in (render_paper, render_occam, render_c):
            text = renderer(tp)
            assert text
            for stream in program.streams:
                assert stream.name in text

    @given(random_designs())
    @SETTINGS
    def test_paper_rendering_structure(self, design):
        program, array, sp = design
        text = render_paper(build_target_program(sp))
        assert "par" in text and "parfor" in text
        assert "Input Processes" in text and "Output Processes" in text


class TestSourceRoundTripProperty:
    @given(random_programs())
    @SETTINGS
    def test_to_source_roundtrip(self, program):
        reparsed = parse_program(program.to_source())
        assert reparsed.loops == program.loops
        assert [s.index_map for s in reparsed.streams] == [
            s.index_map for s in program.streams
        ]
        env = {"n": 2}
        inputs = random_inputs(program, env, seed=4)
        assert run_sequential(program, env, inputs) == run_sequential(
            reparsed, env, inputs
        )


class TestPartitionProperty:
    @given(random_designs(), st.integers(min_value=1, max_value=5))
    @SETTINGS
    def test_fold_never_changes_results(self, design, workers):
        program, array, sp = design
        env = {"n": 2}
        inputs = random_inputs(program, env, seed=13)
        unbounded, _ = execute(sp, env, inputs, max_rounds=2_000_000)
        folded, stats = partitioned_execute(
            sp, env, inputs, workers=workers, max_rounds=2_000_000
        )
        assert folded == unbounded


class TestSchedulerProperties:
    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=30),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_pipeline_preserves_order_and_content(self, payload, capacity, stages):
        """Any payload pushed through any pipeline arrives intact, in order,
        at any capacity -- FIFO and conservation."""
        sched = Scheduler()
        chans = [
            sched.add_channel(Channel(f"c{i}", capacity=capacity))
            for i in range(stages + 1)
        ]
        received = []

        def source():
            for v in payload:
                yield Send(chans[0], v)

        def stage(i):
            def body():
                for _ in payload:
                    v = yield Recv(chans[i])
                    yield Send(chans[i + 1], v)

            return body()

        def sink():
            for _ in payload:
                received.append((yield Recv(chans[stages])))

        sched.spawn("src", source())
        for i in range(stages):
            sched.spawn(f"s{i}", stage(i))
        sched.spawn("sink", sink())
        stats = sched.run()
        assert received == payload
        assert stats.total_messages == len(payload) * (stages + 1)
        for chan in sched.channels:
            assert chan.max_occupancy <= max(1, capacity) or capacity == 0
            assert not chan.queue  # everything drained

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_fan_in_conserves_messages(self, senders, capacity):
        """Many senders into one receiver: every message arrives once."""
        sched = Scheduler()
        chans = [
            sched.add_channel(Channel(f"c{i}", capacity=capacity))
            for i in range(senders)
        ]
        got = []

        def sender(i):
            def body():
                for k in range(3):
                    yield Send(chans[i], (i, k))

            return body()

        def receiver():
            from repro.runtime import Par

            for _ in range(3):
                values = yield Par([Recv(c) for c in chans])
                got.extend(values)

        for i in range(senders):
            sched.spawn(f"snd{i}", sender(i))
        sched.spawn("rcv", receiver())
        sched.run()
        assert sorted(got) == sorted((i, k) for i in range(senders) for k in range(3))
