"""Tests for the command-line interface."""

import json
import os
import pathlib

import pytest

from repro.cli import load_design, main, parse_size_sweep, parse_sizes
from repro.util.errors import ReproError

SPECS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "specs"
SOURCE = str(SPECS / "polyprod.src")
DESIGN = str(SPECS / "d1.json")


class TestHelpers:
    def test_parse_sizes(self):
        assert parse_sizes(["n=4", "m=2"]) == {"n": 4, "m": 2}

    def test_parse_sizes_bad(self):
        with pytest.raises(ReproError):
            parse_sizes(["n:4"])

    def test_parse_size_sweep_single(self):
        assert parse_size_sweep(["n=4"]) == [{"n": 4}]

    def test_parse_size_sweep_repeated_name(self):
        assert parse_size_sweep(["n=4", "n=8"]) == [{"n": 4}, {"n": 8}]

    def test_parse_size_sweep_dedupes(self):
        assert parse_size_sweep(["n=4", "n=4"]) == [{"n": 4}]

    def test_parse_size_sweep_cartesian(self):
        assert parse_size_sweep(["n=2", "m=1", "n=3"]) == [
            {"n": 2, "m": 1},
            {"n": 3, "m": 1},
        ]

    def test_parse_size_sweep_empty(self):
        assert parse_size_sweep([]) == [{}]

    def test_parse_size_sweep_bad(self):
        with pytest.raises(ReproError):
            parse_size_sweep(["n:4"])

    def test_load_design(self):
        array = load_design(DESIGN)
        assert array.step.rows[0] == (2, 1)
        assert array.name == "D.1 place=(i)"
        assert "a" in array.loading_vectors

    def test_load_design_without_loading(self, tmp_path):
        spec = tmp_path / "e2.json"
        spec.write_text(
            json.dumps({"step": [[1, 1, 1]], "place": [[1, 0, -1], [0, 1, -1]]})
        )
        array = load_design(str(spec))
        assert array.name == "e2"
        assert not array.loading_vectors


class TestCommands:
    def test_compile(self, capsys):
        assert main(["compile", SOURCE, DESIGN]) == 0
        out = capsys.readouterr().out
        assert "systolic program" in out
        assert "parfor col" in out

    def test_compile_emit_c(self, capsys):
        assert main(["compile", SOURCE, DESIGN, "--emit", "c"]) == 0
        assert "void compute(" in capsys.readouterr().out

    def test_compile_emit_none(self, capsys):
        assert main(["compile", SOURCE, DESIGN, "--emit", "none"]) == 0
        assert "parfor" not in capsys.readouterr().out

    def test_verify_ok(self, capsys):
        assert main(["verify", SOURCE, DESIGN, "-s", "n=4"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_capacity_zero(self, capsys):
        assert main(["verify", SOURCE, DESIGN, "-s", "n=3", "--capacity", "0"]) == 0

    def test_synthesize(self, capsys):
        assert main(["synthesize", SOURCE, "--bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "step candidate" in out
        assert "compatible place" in out

    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for exp in ("D1", "D2", "E1", "E2"):
            assert exp in out

    def test_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"step": [[1, 0]], "place": [[1, 0]]}))
        # step vanishes on null.place: compile must fail with code 2
        assert main(["compile", SOURCE, str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_incompatible_design_verify(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"step": [[1, 1]], "place": [[1, 0]]}))
        # step (1,1) maps c's dependence (1,-1) to 0: rejected
        assert main(["verify", SOURCE, str(bad), "-s", "n=2"]) == 2


class TestExplore:
    def test_explore(self, capsys):
        assert main(["explore", SOURCE, "-s", "n=4", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "procs" in out and "total" in out
        assert "timings:" in out

    def test_explore_size_sweep(self, capsys):
        assert main(
            ["explore", SOURCE, "-s", "n=3", "-s", "n=5", "--limit", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "costs at {'n': 3}" in out
        assert "costs at {'n': 5}" in out
        assert "2 size(s)" in out

    def test_explore_jobs_matches_serial(self, capsys):
        assert main(["explore", SOURCE, "-s", "n=3", "--limit", "6"]) == 0
        serial = capsys.readouterr().out
        assert main(
            ["explore", SOURCE, "-s", "n=3", "--limit", "6", "--jobs", "2"]
        ) == 0
        captured = capsys.readouterr()
        parallel = captured.out
        # identical ranked tables; only the timings line may differ
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith("timings:")
        ]
        assert strip(serial) == strip(parallel)
        if os.cpu_count() == 1:
            # single-CPU fallback: the sweep runs serially and says so
            assert "jobs 1" in parallel
            assert "reduced to 1" in captured.err
        else:
            assert "jobs 2" in parallel

    def test_explore_without_step_candidates_exits_cleanly(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "synthesize_step", lambda *a, **k: [])
        assert main(["explore", SOURCE, "-s", "n=3"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "step candidate" in err


class TestSynthesizeGuard:
    def test_synthesize_without_step_candidates_exits_cleanly(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "synthesize_step", lambda *a, **k: [])
        assert main(["synthesize", SOURCE]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "step candidate" in err


class TestExecuteErrorPaths:
    """Regression tests for CLI error paths that previously had none."""

    @pytest.mark.parametrize("shape", ["0x2", "2x0", "-1", "0"])
    def test_invalid_array_shape_nonpositive(self, shape, capsys):
        assert main(
            ["execute", SOURCE, DESIGN, "-s", "n=2", "--array", shape]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "array shape must be positive" in err
        assert repr(shape) in err

    @pytest.mark.parametrize("shape", ["2xq", "axb", "2x"])
    def test_invalid_array_shape_noninteger(self, shape, capsys):
        assert main(
            ["execute", SOURCE, DESIGN, "-s", "n=2", "--array", shape]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "array shape must be P or PxQ" in err
        assert repr(shape) in err

    def test_array_with_pygen_backend_refused(self, capsys):
        assert main(
            ["execute", SOURCE, DESIGN, "-s", "n=2",
             "--backend", "pygen", "--array", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert "pygen" in err and "partitioned" in err

    def test_npgen_without_numpy_names_the_extra(self, monkeypatch, capsys):
        import sys as _sys

        monkeypatch.setitem(_sys.modules, "numpy", None)
        assert main(
            ["execute", SOURCE, DESIGN, "-s", "n=2", "--backend", "npgen"]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "repro[np]" in err

    def test_bad_size_pair(self, capsys):
        assert main(["execute", SOURCE, DESIGN, "-s", "n:2"]) == 2
        err = capsys.readouterr().err
        assert "name=value" in err


class TestServeFlagValidation:
    """``repro serve`` flag validation: exit 2 naming the offending flag."""

    @pytest.mark.parametrize(
        "flags, needle",
        [
            (["--rate", "-0.5"], "--rate"),
            (["--burst", "0"], "--burst"),
            (["--timeout", "0"], "--timeout"),
            (["--timeout", "-3"], "--timeout"),
            (["--workers", "0"], "--workers"),
            (["--max-tenants", "0"], "--max-tenants"),
            (["--max-designs", "0"], "--max-designs"),
            (["--port", "70000"], "--port"),
            (["--port", "-1"], "--port"),
        ],
    )
    def test_invalid_serve_flags(self, flags, needle, capsys):
        assert main(["serve", *flags]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert needle in err

    def test_validate_serve_args_accepts_defaults(self):
        from repro.cli import build_parser, validate_serve_args

        args = build_parser().parse_args(["serve"])
        validate_serve_args(args)  # must not raise
