#!/usr/bin/env python3
"""Generate a standalone Python systolic program and run it.

The paper validated its scheme by hand-translating the abstract programs
to occam and C; this library also performs a *mechanical* translation to a
runnable language: a self-contained Python module in which every process
is a generator communicating over FIFO channels.  ``run`` drives them with
a fast cooperative engine; ``run_threaded`` runs the same processes as one
thread per process with bounded queues (the paper's target model).  The
emitted file needs nothing but the standard library -- you can ship it.

Run:  python examples/standalone_python.py
(the generated module is written next to this script as
 generated_matmul_systolic.py and then imported and executed)
"""

import pathlib
import runpy

import numpy as np

from repro import compile_systolic, matrix_product_program, render_python
from repro.systolic import matmul_design_e2


def main() -> None:
    program = matrix_product_program()
    systolic = compile_systolic(program, matmul_design_e2())
    source = render_python(systolic)

    out_path = pathlib.Path(__file__).with_name("generated_matmul_systolic.py")
    out_path.write_text(source)
    print(f"wrote {out_path.name}: {len(source.splitlines())} lines, "
          "standard library only")

    module = runpy.run_path(str(out_path))

    n = 3
    rng = np.random.default_rng(0)
    a = rng.integers(-5, 6, size=(n + 1, n + 1))
    b = rng.integers(-5, 6, size=(n + 1, n + 1))
    inputs = {
        "a": {(i, k): int(a[i, k]) for i in range(n + 1) for k in range(n + 1)},
        "b": {(k, j): int(b[k, j]) for k in range(n + 1) for j in range(n + 1)},
        "c": {(i, j): 0 for i in range(n + 1) for j in range(n + 1)},
    }
    final = module["run"]({"n": n}, inputs)

    got = np.array(
        [[final["c"][(i, j)] for j in range(n + 1)] for i in range(n + 1)]
    )
    assert (got == a @ b).all()
    threaded = module["run_threaded"]({"n": n}, inputs)
    assert threaded == final
    print(f"generated program multiplied two {n+1}x{n+1} matrices; "
          "cooperative and threaded engines agree with numpy")
    print(got)


if __name__ == "__main__":
    main()
