#!/usr/bin/env python3
"""Quickstart: compile, inspect, execute and verify one systolic program.

The running example is the paper's Appendix D.1: polynomial product on a
linear array with ``place.(i,j) = i`` (stream ``a`` stays put, ``b`` creeps
at speed 1/2 through interposed buffers, ``c`` marches at speed 1).

Run:  python examples/quickstart.py
"""

from repro import (
    SystolicArray,
    compile_systolic,
    parse_program,
    render_paper,
    build_target_program,
    verify_design,
)
from repro.geometry import Matrix, Point


def main() -> None:
    # 1. The source program: r nested loops around a basic statement.
    program = parse_program(
        """
        program polyprod
        size n
        var a[0..n], b[0..n], c[0..2*n]
        for i = 0 <- 1 -> n
        for j = 0 <- 1 -> n
            c[i+j] := c[i+j] + a[i] * b[j]
        """
    )
    print(program)
    print()

    # 2. The systolic array: step (time) and place (space), both linear.
    #    Stream a turns out stationary, so a loading & recovery vector says
    #    which way to pump its elements in and out.
    array = SystolicArray(
        step=Matrix([[2, 1]]),  # step.(i,j) = 2i + j
        place=Matrix([[1, 0]]),  # place.(i,j) = i
        loading_vectors={"a": Point.of(1)},
        name="D.1 place=(i)",
    )

    # 3. Compile: every quantity below is a symbolic closed form in n/col.
    systolic = compile_systolic(program, array)
    print(systolic.summary())
    print()
    print("first  =", systolic.first.collapse())
    print("last   =", systolic.last.collapse())
    print("count  =", systolic.count.collapse())
    for plan in systolic.streams:
        print(
            f"stream {plan.name}: flow {plan.flow}, soak",
            plan.soak.collapse(),
            "drain",
            plan.drain.collapse(),
        )
    print()

    # 4. Render the abstract target program (the paper's notation).
    print(render_paper(build_target_program(systolic)))
    print()

    # 5. Execute on the asynchronous simulator and verify against the
    #    sequential oracle, for a few problem sizes.
    for n in (2, 5, 10):
        report = verify_design(program, array, {"n": n}, compiled=systolic)
        print(report)


if __name__ == "__main__":
    main()
