#!/usr/bin/env python3
"""A tour of the three target-language backends.

The paper's systolic programs are "in an abstract syntax that is easily
translated to any distributed target language"; the authors hand-translated
them to occam (transputers) and C with communication directives (Symult
s2010).  This example prints the same compiled design -- Appendix D.2,
chosen because its non-simple place function exercises the guarded-command
machinery -- in all three notations this library generates mechanically.

Run:  python examples/codegen_tour.py
"""

from repro import (
    build_target_program,
    compile_systolic,
    polynomial_product_program,
    polyprod_design_d2,
    render_c,
    render_occam,
    render_paper,
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    systolic = compile_systolic(polynomial_product_program(), polyprod_design_d2())
    target = build_target_program(systolic)

    banner("1. the paper's abstract notation (Appendix C)")
    print(render_paper(target))

    banner("2. occam flavour (the transputer experiments)")
    print(render_occam(target))

    banner("3. C + communication directives flavour (the Symult experiments)")
    print(render_c(target))


if __name__ == "__main__":
    main()
