#!/usr/bin/env python3
"""Appendix E end to end, plus a design the paper doesn't derive.

Three systolic matrix-product arrays from one source program:

* E.1  ``place = (i, j)``      -- the "collapse the k loop" design;
       stream ``c`` stays put, ``a`` and ``b`` stream through.
* E.2  ``place = (i-k, j-k)``  -- the Kung-Leiserson hexagonal array;
       all three streams move, corner buffers appear on ``PS \\ CS``.
* X    ``place = (i, j-k)``    -- *not* in the paper: a third valid
       projection the compiler handles with the same machinery, showing
       the scheme is generic in the place function.

Each is verified against NumPy for several sizes.

Run:  python examples/matrix_multiplication.py
"""

import numpy as np

from repro import SystolicArray, compile_systolic, execute, matrix_product_program
from repro.analysis import format_table, parallelism_profile
from repro.geometry import Matrix, Point
from repro.systolic import matmul_design_e1, matmul_design_e2


def novel_design() -> SystolicArray:
    """place.(i,j,k) = (i, j-k): a valid projection absent from the paper."""
    return SystolicArray(
        step=Matrix([[1, 1, 1]]),
        place=Matrix([[1, 0, 0], [0, 1, -1]]),
        name="X place=(i,j-k)",
    )


def inputs_from(a: np.ndarray, b: np.ndarray) -> dict:
    n = a.shape[0] - 1
    rng = range(n + 1)
    return {
        "a": {Point.of(i, k): int(a[i, k]) for i in rng for k in rng},
        "b": {Point.of(k, j): int(b[k, j]) for k in rng for j in rng},
        "c": 0,
    }


def main() -> None:
    program = matrix_product_program()
    rng = np.random.default_rng(2026)
    rows = []
    for design in (matmul_design_e1(), matmul_design_e2(), novel_design()):
        systolic = compile_systolic(program, design)
        print("=" * 70)
        print(systolic.summary())
        for n in (2, 4):
            a = rng.integers(-9, 10, size=(n + 1, n + 1))
            b = rng.integers(-9, 10, size=(n + 1, n + 1))
            final, stats = execute(systolic, {"n": n}, inputs_from(a, b))
            got = np.array(
                [
                    [final["c"][Point.of(i, j)] for j in range(n + 1)]
                    for i in range(n + 1)
                ]
            )
            assert (got == a @ b).all(), f"{design.name} wrong at n={n}"
            profile = parallelism_profile(systolic, {"n": n}, stats)
            rows.append({"design": design.name, **profile.row()})
        print(f"verified against numpy for n in (2, 4)")

    print()
    print(format_table(rows, title="matrix product: three designs"))
    print("\nShape check: E.1 holds c in place on an (n+1)^2 grid; the")
    print("Kung-Leiserson E.2 streams everything across a (2n+1)^2 grid of")
    print("which only the hexagon computes; the novel X design sits between.")


if __name__ == "__main__":
    main()
