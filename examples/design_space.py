#!/usr/bin/env python3
"""Exploring the matrix-product design space.

"Once [step] has been derived, many different place functions are possible"
(Section 3.2).  The paper hand-derives two; this example enumerates and
costs *every* place the scheme can compile at coefficient bound 1, locates
the paper's two designs inside the space, then executes the cheapest design
and the Kung-Leiserson design side by side.

Run:  python examples/design_space.py
"""

from repro import compile_systolic, execute, matrix_product_program, run_sequential
from repro.analysis import format_table, parallelism_profile
from repro.geometry import Matrix, Point
from repro.systolic import SystolicArray, explore_designs
from repro.verify import random_inputs


def main() -> None:
    program = matrix_product_program()
    step = Matrix([[1, 1, 1]])
    env = {"n": 3}

    costs = explore_designs(program, step, env, bound=1)
    print(f"{len(costs)} compilable place functions for step (1,1,1), n=3")
    print()
    print(format_table([c.row() for c in costs[:10]], title="ten cheapest designs"))
    print()

    by_rows = {frozenset(c.place.rows): c for c in costs}
    e1 = by_rows[frozenset({(1, 0, 0), (0, 1, 0)})]
    e2 = by_rows[frozenset({(1, 0, -1), (0, 1, -1)})]
    print("the paper's designs inside the space:")
    print(format_table([{"design": "E.1", **e1.row()}, {"design": "E.2", **e2.row()}]))
    print()

    # execute the cheapest design and the Kung-Leiserson array side by side
    cheapest = costs[0]
    loading = {}
    base = SystolicArray(step=step, place=cheapest.place)
    from repro.systolic import is_stationary, stream_flow

    for s in program.streams:
        if is_stationary(stream_flow(base, s)):
            loading[s.name] = Point.unit(2, 0)
    picks = [
        SystolicArray(step=step, place=cheapest.place, loading_vectors=loading,
                      name="cheapest"),
        SystolicArray(step=step, place=Matrix([[1, 0, -1], [0, 1, -1]]),
                      name="Kung-Leiserson"),
    ]
    rows = []
    inputs = random_inputs(program, env, seed=1)
    oracle = run_sequential(program, env, inputs)
    for array in picks:
        sp = compile_systolic(program, array)
        final, stats = execute(sp, env, inputs)
        assert final == oracle
        rows.append({"design": array.name, **parallelism_profile(sp, env, stats).row()})
    print(format_table(rows, title="executed head to head (both oracle-verified)"))


if __name__ == "__main__":
    main()
