#!/usr/bin/env python3
"""FIR filtering with a *synthesized* systolic array.

The paper assumes ``step``/``place`` arrive from an external design system
(DIASTOL, ADVIS, ...).  This example uses the library's own bounded-search
synthesiser instead: it derives an optimal-makespan ``step`` from the data
dependences of a convolution program, picks a compatible ``place``, and
compiles -- the full source-to-network path with no human-chosen
distributions.

The workload is a FIR filter written as a full convolution: with taps
``h[0..n]`` and (zero-padded) signal ``x[0..n]``, output
``y[t] = sum_k h[k] * x[t-k]`` is the polynomial-product recurrence
``y[i+j] += h[i] * x[j]``.

Run:  python examples/fir_filter.py
"""

from repro import compile_systolic, execute, parse_program, synthesize_array
from repro.analysis import format_table, parallelism_profile
from repro.geometry import Point
from repro.lang import run_sequential
from repro.systolic import makespan, synthesize_step

FIR = """
program fir
size n
var h[0..n], x[0..n], y[0..2*n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
    y[i+j] := y[i+j] + h[i] * x[j]
"""


def main() -> None:
    program = parse_program(FIR)

    # --- synthesis: search small integer step vectors -------------------
    candidates = synthesize_step(program, bound=2)
    print("minimal-makespan step candidates (bound 2):")
    for step in candidates:
        print(f"  step{tuple(step.rows[0])}  makespan {makespan(program, step, {'n': 8})}")

    array = synthesize_array(program)
    print(f"\nsynthesized array: step {array.step.rows[0]}, "
          f"place rows {array.place.rows}")

    systolic = compile_systolic(program, array)
    print(systolic.summary())

    # --- run it as an actual filter -------------------------------------
    taps = [3, -1, 2, 1, 0, 0, 0, 0, 0]  # a short low-order filter, padded
    signal = [1, 0, 2, -1, 3, 1, 0, -2, 1]
    n = len(taps) - 1
    inputs = {
        "h": {Point.of(i): taps[i] for i in range(n + 1)},
        "x": {Point.of(j): signal[j] for j in range(n + 1)},
        "y": 0,
    }
    final, stats = execute(systolic, {"n": n}, inputs)
    got = [final["y"][Point.of(t)] for t in range(2 * n + 1)]

    expected = [
        sum(taps[k] * signal[t - k] for k in range(n + 1) if 0 <= t - k <= n)
        for t in range(2 * n + 1)
    ]
    assert got == expected, (got, expected)
    oracle = run_sequential(program, {"n": n}, inputs)
    assert final["y"] == oracle["y"]
    print(f"\nfiltered output  : {got}")
    print(f"direct convolution: {expected}  -- match")

    rows = []
    for size in (4, 8, 16):
        report_inputs = {
            "h": {Point.of(i): (i % 5) - 2 for i in range(size + 1)},
            "x": {Point.of(j): (j % 7) - 3 for j in range(size + 1)},
            "y": 0,
        }
        final, stats = execute(systolic, {"n": size}, report_inputs)
        assert final["y"] == run_sequential(program, {"n": size}, report_inputs)["y"]
        rows.append(parallelism_profile(systolic, {"n": size}, stats).row())
    print()
    print(format_table(rows, title="synthesized FIR array, verified per size"))


if __name__ == "__main__":
    main()
