#!/usr/bin/env python3
"""Watching the wavefront sweep a systolic array.

Two views of the same execution:

1. the exact *synchronous* wavefront (which cells fire at step t, straight
   from the ``step``/``place`` functions) rendered as ASCII frames for the
   Kung-Leiserson hexagon -- the diagonal band sweeping the array is the
   picture systolic papers always draw;
2. the *asynchronous* activity histogram measured by the simulator's trace,
   showing the same ramp-up / plateau / drain shape in virtual time.

Run:  python examples/wavefront_visualization.py
"""

from repro import compile_systolic, matrix_product_program
from repro.analysis import activity_histogram, render_wavefront_film
from repro.runtime import build_network
from repro.runtime.trace import trace_run
from repro.systolic import matmul_design_e2
from repro.verify import random_inputs


def main() -> None:
    program = matrix_product_program()
    systolic = compile_systolic(program, matmul_design_e2())
    n = 4

    print(f"Kung-Leiserson array, n = {n}")
    print("(`#` fires this step, `.` idle computation cell, blank = buffer)")
    print()
    print(render_wavefront_film(systolic, {"n": n}, max_frames=5))
    print()

    inputs = random_inputs(program, {"n": n}, seed=3)
    network = build_network(systolic, {"n": n}, inputs)
    stats, trace = trace_run(network)
    print(
        f"asynchronous run: {stats.process_count} processes, "
        f"makespan {stats.makespan}, {len(trace.events)} events"
    )
    print()
    print("activity over virtual time:")
    print(activity_histogram(trace, bins=16))


if __name__ == "__main__":
    main()
