#!/usr/bin/env python3
"""Folding a systolic program onto a machine with few processors.

The abstract programs spawn one process per process-space point; real 1991
machines had 4 transputers or 24 Symult nodes (paper, Section 8).  This
example folds the Kung-Leiserson matrix-product array onto machines of
1..64 workers with the two classic assignment shapes and reports the
folded makespans -- results are bit-identical at every width, only time
changes.

It then switches to the *symbolic* partition: compile the fold once for a
fixed 2x2 physical array, specialize it to several problem sizes (cached
formula evaluation, never a re-derivation -- the cross-design memo
counters prove it), and execute banded with inter-band buffers.

Run:  python examples/partitioned_execution.py
"""

from repro import compile_systolic, matrix_product_program, run_sequential
from repro.analysis import format_table
from repro.core.memo import MEMO
from repro.extensions import partitioned_execute, partitioned_schedule
from repro.systolic import matmul_design_e2
from repro.verify import random_inputs


def main() -> None:
    program = matrix_product_program()
    design = matmul_design_e2()
    systolic = compile_systolic(program, design)

    n = 4
    inputs = random_inputs(program, {"n": n}, seed=42)
    oracle = run_sequential(program, {"n": n}, inputs)

    rows = []
    for assignment in ("block", "round_robin"):
        for workers in (1, 2, 4, 8, 24, 64, 256):
            final, stats = partitioned_execute(
                systolic, {"n": n}, inputs, workers=workers, assignment=assignment
            )
            assert final == oracle, "the fold must never change results"
            rows.append(
                {
                    "assignment": assignment,
                    "workers": workers,
                    "makespan": stats.makespan,
                    "processes": stats.process_count,
                }
            )

    print(format_table(rows, title=f"Kung-Leiserson n={n} on finite machines"))
    print()
    print("All runs verified against the sequential oracle.  The makespan")
    print("falls monotonically and saturates at the dataflow critical path.")
    print("Round-robin beats block tiling at middle widths: at any instant")
    print("the busy processes form an anti-diagonal wavefront, which a")
    print("contiguous tile maps onto few workers while interleaving spreads")
    print("it evenly -- the classic LSGP/LPGS trade-off, measured.")

    # -- the symbolic partition: one compile, many problem sizes ----------
    shape = (2, 2)
    print()
    print(f"Symbolic partition for a fixed {shape[0]}x{shape[1]} array:")
    for size in (3, 4, 5):
        sized_inputs = random_inputs(program, {"n": size}, seed=7)
        sized_oracle = run_sequential(program, {"n": size}, sized_inputs)
        schedule = partitioned_schedule(systolic, {"n": size}, shape)
        final, stats = partitioned_execute(
            systolic, {"n": size}, sized_inputs, shape=shape
        )
        assert final == sized_oracle, "the banded fold must not change results"
        print(f"  n={size}: makespan {stats.makespan}, "
              f"soak {schedule.soak}, drain {schedule.drain}")
    hits, misses = MEMO.table_counters("partition_symbolic")
    print(f"  symbolic memo: {hits} hits, {misses} misses -- the per-band")
    print("  formulas were derived once and only evaluated for new sizes.")


if __name__ == "__main__":
    main()
