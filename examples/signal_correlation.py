#!/usr/bin/env python3
"""Cross-correlating two signals on a systolic correlator array.

A workload shape none of the paper's appendices covers: the result variable
is indexed by the *difference* of the loop indices (the lag), so with
``place.(i,j) = i - j`` each process owns one lag's accumulator while the
two signals stream through in opposite directions -- the classic systolic
correlator.  We use it to locate a known pattern inside a noisy signal by
the peak of the cross-correlation, verified against NumPy.

Run:  python examples/signal_correlation.py
"""

import numpy as np

from repro import compile_systolic
from repro.geometry import Point
from repro.runtime import execute
from repro.systolic import correlation_design, correlation_program


def main() -> None:
    program = correlation_program()
    design = correlation_design()
    systolic = compile_systolic(program, design)
    print(systolic.summary())
    print()

    # A pattern hidden at offset 5 of a noisy signal (integer arithmetic --
    # the simulator is exact).
    rng = np.random.default_rng(7)
    n = 15
    pattern = np.array([3, -1, 4, -1, 5, -2, 6, 0, 0, 0, 0, 0, 0, 0, 0, 0])
    signal = rng.integers(-2, 3, size=n + 1)
    offset = 5
    signal[offset : offset + 7] += pattern[:7] * 3

    inputs = {
        "x": {Point.of(i): int(signal[i]) for i in range(n + 1)},
        "y": {Point.of(j): int(pattern[j]) for j in range(n + 1)},
        "r": 0,
    }
    final, stats = execute(systolic, {"n": n}, inputs)

    lags = range(-n, n + 1)
    got = {lag: final["r"][Point.of(lag)] for lag in lags}

    expected = {}
    for lag in lags:
        expected[lag] = sum(
            int(signal[i]) * int(pattern[i - lag])
            for i in range(n + 1)
            if 0 <= i - lag <= n
        )
    assert got == expected, "systolic correlation differs from direct computation"

    # numpy cross-check on the positive lags
    full = np.correlate(signal, pattern, mode="full")
    # np.correlate index: lag = i - (len(pattern) - 1) reading right-to-left
    for lag in lags:
        assert got[lag] == full[lag + n]

    peak = max(got, key=got.get)
    print(f"{stats.process_count} processes, makespan {stats.makespan}")
    print(f"correlation peak at lag {peak} (pattern was injected at offset {offset})")
    assert peak == offset
    print("verified against direct computation and numpy.correlate")


if __name__ == "__main__":
    main()
