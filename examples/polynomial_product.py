#!/usr/bin/env python3
"""Appendix D end to end: both polynomial-product designs.

Reproduces the paper's two derivations for the same source program --
``place.(i,j) = i`` (D.1, a simple place: one loop parallelized) and
``place.(i,j) = i + j`` (D.2, non-simple: guarded case analyses appear) --
prints the derived artefacts side by side, and executes both on the
simulator against real polynomial coefficients.

Run:  python examples/polynomial_product.py
"""

from repro import (
    compile_systolic,
    execute,
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
)
from repro.analysis import format_table, parallelism_profile
from repro.geometry import Point


def coefficients(n: int) -> dict:
    """f(x) = 1 + 2x + ... , g(x) = 1 - x + x^2 - ..."""
    return {
        "a": {Point.of(i): i + 1 for i in range(n + 1)},
        "b": {Point.of(j): (-1) ** j for j in range(n + 1)},
        "c": 0,
    }


def reference_product(n: int) -> list[int]:
    a = [i + 1 for i in range(n + 1)]
    b = [(-1) ** j for j in range(n + 1)]
    c = [0] * (2 * n + 1)
    for i in range(n + 1):
        for j in range(n + 1):
            c[i + j] += a[i] * b[j]
    return c


def main() -> None:
    program = polynomial_product_program()
    rows = []
    for design in (polyprod_design_d1(), polyprod_design_d2()):
        systolic = compile_systolic(program, design)
        print("=" * 70)
        print(systolic.summary())
        print("-- first --")
        print(systolic.first)
        print("-- count --")
        print(systolic.count)
        for plan in systolic.streams:
            print(f"-- {plan.name}: i/o repeater {plan.pipe_repeater()}")

        for n in (4, 8, 16):
            final, stats = execute(systolic, {"n": n}, coefficients(n))
            got = [final["c"][Point.of(k)] for k in range(2 * n + 1)]
            assert got == reference_product(n), f"{design.name} wrong at n={n}"
            profile = parallelism_profile(systolic, {"n": n}, stats)
            rows.append({"design": design.name, **profile.row()})

    print()
    print(format_table(rows, title="polynomial product: both designs verified"))
    print("\nNote the shape: D.2 uses 2n+1 processes against D.1's n+1, and")
    print("both makespans grow linearly in n while sequential work grows as n^2.")


if __name__ == "__main__":
    main()
