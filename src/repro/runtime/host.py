"""The host: variable storage outside the processor network.

Inside the systolic array a stream element is just a value; its identity
lives only in the host (Section 4.2).  The :class:`Host` owns the dense
contents of every indexed variable, hands input processes the values of the
elements their repeaters enumerate, and receives output values back into
the (separate) result arrays.
"""

from __future__ import annotations

from typing import Mapping

from repro.geometry.point import Point
from repro.lang.expr import RuntimeValue
from repro.lang.interpreter import VariableState, initial_state
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.util.errors import RuntimeSimulationError


class Host:
    """Initial and final variable state for one execution."""

    def __init__(
        self,
        program: SourceProgram,
        env: Mapping[str, Numeric],
        inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    ) -> None:
        self.program = program
        self.env = dict(env)
        self.initial: VariableState = initial_state(program, env, inputs)
        # Results start as a copy; output processes overwrite every element
        # their repeaters cover (for written streams that is all of them).
        self.final: VariableState = {
            name: dict(values) for name, values in self.initial.items()
        }
        self._written: dict[str, set[Point]] = {name: set() for name in self.initial}

    # ------------------------------------------------------------------
    def read_element(self, variable: str, element: Point) -> RuntimeValue:
        try:
            return self.initial[variable][element]
        except KeyError:
            raise RuntimeSimulationError(
                f"input process asked for undefined element {variable}{element}"
            ) from None

    def write_element(self, variable: str, element: Point, value: RuntimeValue) -> None:
        if element not in self.final[variable]:
            raise RuntimeSimulationError(
                f"output process wrote outside {variable}'s space: {element}"
            )
        if element in self._written[variable]:
            raise RuntimeSimulationError(
                f"output process wrote {variable}{element} twice"
            )
        self._written[variable].add(element)
        self.final[variable][element] = value

    def written_elements(self, variable: str) -> set[Point]:
        return set(self._written[variable])

    def check_full_recovery(self, variable: str) -> None:
        """Every element must have come back exactly once."""
        space = set(self.final[variable])
        missing = space - self._written[variable]
        if missing:
            raise RuntimeSimulationError(
                f"{len(missing)} element(s) of {variable} never recovered, "
                f"e.g. {sorted(missing)[:3]}"
            )
