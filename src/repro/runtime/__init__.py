"""The distributed-memory runtime substrate.

The paper ran its hand-translated programs on transputer networks and a
Symult s2010; this package substitutes a deterministic simulator with the
same semantics the paper relies on (Section 4): asynchronously composed
sequential processes, synchronous (blocking) communication over mutually
independent channels.

Processes are Python generators that *yield* communication requests
(:mod:`repro.runtime.ops`); the scheduler (:mod:`repro.runtime.scheduler`)
matches sends with receives, detects deadlock, and tracks Lamport-style
virtual time so that pipeline makespans can be measured.
:mod:`repro.runtime.network` lowers a compiled
:class:`~repro.core.program.SystolicProgram` at a concrete problem size into
a process network, and :func:`repro.runtime.network.execute` runs it against
host-side variable arrays.
"""

from repro.runtime.ops import Send, Recv, Par
from repro.runtime.channel import Channel
from repro.runtime.scheduler import Scheduler, SchedulerStats
from repro.runtime.host import Host
from repro.runtime.network import ProcessNetwork, build_network, execute

__all__ = [
    "Send",
    "Recv",
    "Par",
    "Channel",
    "Scheduler",
    "SchedulerStats",
    "Host",
    "ProcessNetwork",
    "build_network",
    "execute",
]
