"""The deterministic process scheduler.

Processes are generators yielding :class:`Send`/:class:`Recv`/:class:`Par`
requests.  The scheduler advances ready processes round-robin; a request
that cannot complete parks the process on the channels involved, and any
communication that frees space / delivers data immediately retries the
parked counterparts, so progress is work-driven rather than poll-driven.

Determinism: the ready queue is FIFO and channel wait lists are FIFO, so a
given network always executes the same interleaving -- failures reproduce.

Deadlock: when no process is ready and at least one is blocked, the
scheduler raises :class:`DeadlockError` with a dump of who waits on what.

Virtual time: each process carries a Lamport-style clock.  A message is
stamped ``sender_clock + 1`` at the moment its send *completes*; when a
process resumes from a request it sets ``clock = max(clock, stamps...) + 1``.
The maximum final clock is the *makespan*: the length of the critical path
through the communication graph, the asynchronous analogue of the systolic
array's synchronous step count.  (Backpressure stalls -- a sender waiting
for channel space -- are not charged to the clock; the metric tracks data
dependences only.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.runtime.channel import Channel
from repro.runtime.ops import Op, Par, Recv, Send
from repro.util.errors import DeadlockError, RuntimeSimulationError

ProcessBody = Generator[Op, Any, None]


class _Slot:
    """One sub-operation of a pending request."""

    __slots__ = ("op", "done", "result")

    def __init__(self, op) -> None:
        self.op = op
        self.done = False
        self.result: Any = None


class _ProcState:
    __slots__ = ("name", "gen", "slots", "was_par", "clock", "yield_clock",
                 "finished", "steps", "own_slot", "own_list")

    def __init__(self, name: str, gen: ProcessBody) -> None:
        self.name = name
        self.gen = gen
        self.slots: list[_Slot] | None = None
        self.was_par = False
        self.clock = 0
        self.yield_clock = 0
        self.finished = False
        self.steps = 0
        # Reused for every non-Par request: a completed slot is always
        # unparked before its process resumes, so by the time _advance
        # resets these no live reference can remain (see _drain_*).
        self.own_slot = _Slot(None)
        self.own_list = [self.own_slot]


@dataclass
class SchedulerStats:
    """Aggregate execution metrics."""

    makespan: int = 0
    total_messages: int = 0
    process_count: int = 0
    scheduler_rounds: int = 0
    per_channel_messages: dict = field(default_factory=dict)
    per_process_clock: dict = field(default_factory=dict)


class Scheduler:
    """Runs a set of processes to completion."""

    def __init__(self) -> None:
        self._procs: list[_ProcState] = []
        self._names: set[str] = set()
        self._ready: deque[_ProcState] = deque()
        self._channels: list[Channel] = []
        #: optional finite-machine model: process name -> worker id; when
        #: set, workers serialize the virtual-time cost of their processes
        #: (the paper's Section 8 "not enough processors" scenario)
        self._worker_of: dict[str, int] | None = None
        self._worker_clock: dict[int, int] = {}
        #: optional trace hook ``(process name, clock, kind) -> None``,
        #: called once per completed request at the moment the process
        #: resumes.  ``None`` (the default) costs one pointer test per
        #: resume -- the zero-cost-when-off replacement for the old
        #: generator-wrapping instrumentation (see repro.runtime.trace).
        self._trace: Any = None
        #: whether the current run maintains Lamport clocks (set by run())
        self._timing: bool = True

    def assign_workers(self, assignment: dict[str, int]) -> None:
        """Pin each process to a physical worker for virtual-time costing.

        Every process name must be covered (processes spawned later inherit
        no worker and stay unserialized).  Affects only the clock model, not
        the communication semantics or results.
        """
        self._worker_of = dict(assignment)
        self._worker_clock = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_channel(self, channel: Channel) -> Channel:
        self._channels.append(channel)
        return channel

    @property
    def channels(self) -> tuple[Channel, ...]:
        """All channels registered with this scheduler."""
        return tuple(self._channels)

    @property
    def process_names(self) -> tuple[str, ...]:
        """Names of all spawned processes."""
        return tuple(p.name for p in self._procs)

    def spawn(self, name: str, gen: ProcessBody) -> None:
        if name in self._names:
            raise RuntimeSimulationError(f"duplicate process name {name!r}")
        self._names.add(name)
        self._procs.append(_ProcState(name, gen))

    # ------------------------------------------------------------------
    # communication machinery
    # ------------------------------------------------------------------
    def _try_send(self, proc: _ProcState, slot: _Slot) -> bool:
        """Complete a send: direct handoff to a parked receiver (rendezvous)
        or a push into free channel space."""
        chan: Channel = slot.op.channel
        timing = self._timing
        stamp = proc.yield_clock + 1 if timing else 0
        while chan.waiting_receivers:
            other, rslot = chan.waiting_receivers[0]
            chan.waiting_receivers.popleft()
            if rslot.done:
                continue
            rslot.done = True
            rslot.result = slot.op.value
            chan.messages_carried += 1
            if timing:
                other.clock = max(other.clock, stamp)
            slot.done = True
            self._maybe_wake(other)
            return True
        if chan.has_room():
            chan.push(slot.op.value, stamp)
            slot.done = True
            self._drain_receivers(chan)
            return True
        return False

    def _try_recv(self, proc: _ProcState, slot: _Slot) -> bool:
        chan: Channel = slot.op.channel
        if chan.queue:
            msg = chan.pop()
            slot.done = True
            slot.result = msg.value
            if self._timing:
                proc.clock = max(proc.clock, msg.timestamp)
            self._drain_senders(chan)
            return True
        while chan.waiting_senders:
            other, sslot = chan.waiting_senders[0]
            chan.waiting_senders.popleft()
            if sslot.done:
                continue
            sslot.done = True
            slot.done = True
            slot.result = sslot.op.value
            chan.messages_carried += 1
            if self._timing:
                proc.clock = max(proc.clock, other.yield_clock + 1)
            self._maybe_wake(other)
            return True
        return False

    def _drain_senders(self, chan: Channel) -> None:
        """Space appeared: complete parked sends in FIFO order."""
        timing = self._timing
        while chan.waiting_senders and chan.has_room():
            other, sslot = chan.waiting_senders.popleft()
            if sslot.done:
                continue
            chan.push(sslot.op.value, other.yield_clock + 1 if timing else 0)
            sslot.done = True
            self._maybe_wake(other)

    def _drain_receivers(self, chan: Channel) -> None:
        """Data appeared: complete parked receives in FIFO order."""
        timing = self._timing
        while chan.waiting_receivers and chan.queue:
            other, rslot = chan.waiting_receivers.popleft()
            if rslot.done:
                continue
            msg = chan.pop()
            rslot.done = True
            rslot.result = msg.value
            if timing:
                other.clock = max(other.clock, msg.timestamp)
            self._maybe_wake(other)

    def _maybe_wake(self, proc: _ProcState) -> None:
        """Move a parked process back to ready when its request completed."""
        if proc.slots is not None and all(s.done for s in proc.slots):
            self._ready.append(proc)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, proc: _ProcState, value: Any) -> None:
        """Drive one generator step and handle the yielded request."""
        try:
            op = proc.gen.send(value)
        except StopIteration:
            proc.finished = True
            return
        proc.steps += 1
        proc.yield_clock = proc.clock
        if isinstance(op, Par):
            proc.was_par = True
            slots = [_Slot(sub) for sub in op.ops]
        elif isinstance(op, (Send, Recv)):
            proc.was_par = False
            slot = proc.own_slot
            slot.op = op
            slot.done = False
            slot.result = None
            slots = proc.own_list
        else:
            raise RuntimeSimulationError(
                f"process {proc.name} yielded {op!r}, expected Send/Recv/Par"
            )
        proc.slots = slots
        for slot in slots:
            if isinstance(slot.op, Send):
                self._try_send(proc, slot)
            else:
                self._try_recv(proc, slot)
        if all(s.done for s in slots):
            self._ready.append(proc)
        else:
            for slot in slots:
                if slot.done:
                    continue
                chan: Channel = slot.op.channel
                if isinstance(slot.op, Send):
                    chan.waiting_senders.append((proc, slot))
                else:
                    chan.waiting_receivers.append((proc, slot))

    def run(
        self, max_rounds: int | None = None, *, timing: bool = True
    ) -> SchedulerStats:
        """Run all processes to completion; returns aggregate stats.

        ``timing=False`` skips all Lamport-clock bookkeeping: values,
        deadlock detection and the FIFO interleaving are unchanged, but the
        returned stats carry zero makespan / per-process clocks.  Use it
        when only the computed values matter (differential checks).
        """
        self._timing = timing
        trace = self._trace
        rounds = 0
        for proc in self._procs:
            self._advance(proc, None)
        while self._ready:
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                raise RuntimeSimulationError(f"exceeded {max_rounds} scheduler rounds")
            proc = self._ready.popleft()
            if proc.finished or proc.slots is None:
                continue
            if not all(s.done for s in proc.slots):
                raise RuntimeSimulationError(
                    f"process {proc.name} resumed with incomplete request"
                )
            slots = proc.slots
            proc.slots = None
            if timing:
                if self._worker_of is not None and proc.name in self._worker_of:
                    worker = self._worker_of[proc.name]
                    busy_until = self._worker_clock.get(worker, 0)
                    proc.clock = max(proc.clock, busy_until) + 1
                    self._worker_clock[worker] = proc.clock
                else:
                    proc.clock += 1
            value = [s.result for s in slots] if proc.was_par else slots[0].result
            if trace is not None:
                kind = (
                    "par"
                    if proc.was_par
                    else ("send" if isinstance(slots[0].op, Send) else "recv")
                )
                trace(proc.name, proc.clock, kind)
            self._advance(proc, value)
        unfinished = [p for p in self._procs if not p.finished]
        if unfinished:
            raise DeadlockError(self._deadlock_report(unfinished))
        stats = SchedulerStats()
        stats.process_count = len(self._procs)
        stats.scheduler_rounds = rounds
        stats.makespan = max((p.clock for p in self._procs), default=0)
        stats.per_process_clock = {p.name: p.clock for p in self._procs}
        stats.per_channel_messages = {
            c.name: c.messages_carried for c in self._channels
        }
        stats.total_messages = sum(stats.per_channel_messages.values())
        return stats

    def _deadlock_report(self, unfinished: list[_ProcState]) -> str:
        lines = [f"deadlock: {len(unfinished)} process(es) cannot progress"]
        for p in unfinished[:20]:
            if p.slots is None:
                lines.append(f"  {p.name}: not blocked on any channel (lost)")
                continue
            waits = ", ".join(
                f"{'send' if isinstance(s.op, Send) else 'recv'} {s.op.channel.name}"
                for s in p.slots
                if not s.done
            )
            lines.append(f"  {p.name}: waiting on {waits}")
        if len(unfinished) > 20:
            lines.append(f"  ... and {len(unfinished) - 20} more")
        return "\n".join(lines)
