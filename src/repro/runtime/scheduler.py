"""The deterministic process scheduler.

Processes are generators yielding :class:`Send`/:class:`Recv`/:class:`Par`
requests.  The scheduler advances ready processes round-robin; a request
that cannot complete parks the process on the channels involved, and any
communication that frees space / delivers data immediately retries the
parked counterparts, so progress is work-driven rather than poll-driven.

Determinism: the ready queue is FIFO and channel wait lists are FIFO, so a
given network always executes the same interleaving -- failures reproduce.

Deadlock: when no process is ready and at least one is blocked, the
scheduler raises :class:`DeadlockError` with a dump of who waits on what.

Virtual time: each process carries a Lamport-style clock.  A message is
stamped ``sender_clock + 1`` at the moment its send *completes*; when a
process resumes from a request it sets ``clock = max(clock, stamps...) + 1``.
The maximum final clock is the *makespan*: the length of the critical path
through the communication graph, the asynchronous analogue of the systolic
array's synchronous step count.  (Backpressure stalls -- a sender waiting
for channel space -- are not charged to the clock; the metric tracks data
dependences only.)

Two execution engines share this machinery:

* the **generic engine** handles every request through the ``_Slot`` list
  -- one slot per sub-operation, ``all(slot.done)`` completion scans, and
  a per-slot parking loop;
* the **fast engine** (default) specializes the dominant request shape --
  a bare ``Send`` or ``Recv``, which a measured D.1 run is ~3/4 of all
  yields -- by completing or parking the operation directly against the
  channel: rendezvous, push and drain transitions are inlined, the slot
  list and every completion scan are skipped, and the resume path reads a
  single precomputed flag instead of re-inspecting the request.  ``Par``
  requests fall through to the generic machinery unchanged, and the two
  engines interoperate freely on the same channels (a parked ``Par`` slot
  is woken by a fast-path sender and vice versa).

``REPRO_SCHED_FAST=0`` selects the generic engine for every request -- the
A/B baseline the fuzz harness and ``tools/bench_sched.py`` compare against.
Both engines execute the identical FIFO interleaving: values, stats, trace
streams and deadlock reports are bit-identical by construction (enforced by
the sampled ``sched_ab`` metamorphic check).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.runtime.channel import Channel, Message
from repro.runtime.ops import Op, Par, Recv, Send
from repro.util.errors import DeadlockError, RuntimeSimulationError

ProcessBody = Generator[Op, Any, None]


def fast_engine_enabled() -> bool:
    """Whether new schedulers use the specialized single-op engine.

    Read per :class:`Scheduler` construction, so ``REPRO_SCHED_FAST=0``
    toggled around an instantiation (the harness A/B check does exactly
    that) selects the generic engine for that run only.
    """
    return os.environ.get("REPRO_SCHED_FAST", "1") != "0"


class _Slot:
    """One sub-operation of a pending request."""

    __slots__ = ("op", "done", "result")

    def __init__(self, op) -> None:
        self.op = op
        self.done = False
        self.result: Any = None


class _ProcState:
    __slots__ = ("name", "gen", "slots", "was_par", "clock", "yield_clock",
                 "finished", "steps", "own_slot", "own_list", "single",
                 "is_send", "par1", "par_slots", "pending", "advance")

    def __init__(self, name: str, gen: ProcessBody) -> None:
        self.name = name
        self.gen = gen
        self.slots: list[_Slot] | None = None
        self.was_par = False
        self.clock = 0
        self.yield_clock = 0
        self.finished = False
        self.steps = 0
        # Reused for every non-Par request: a completed slot is always
        # unparked before its process resumes, so by the time the next
        # request resets these no live reference can remain (see _drain_*).
        self.own_slot = _Slot(None)
        self.own_list = [self.own_slot]
        #: current request went through the fast single-op path; the resume
        #: loop then reads ``own_slot`` directly instead of scanning slots
        self.single = False
        #: fast path only: trace kind of the current request without an
        #: isinstance test at resume time
        self.is_send = False
        #: fast path only: the request was a one-member Par riding the
        #: single-op machinery -- resume list-wraps the result and traces
        #: as "par" (identical to the generic engine's handling)
        self.par1 = False
        #: fast path only: reusable slot vector for multi-member Pars (the
        #: Par analogue of own_slot -- safe for the same reason) and the
        #: count of its not-yet-completed slots (replaces the all() scans)
        self.par_slots: list[_Slot] | None = None
        self.pending = 0
        #: the advance routine driving this process, bound at spawn time --
        #: plan-declared single-op processes skip the engine dispatch test
        #: entirely (see Scheduler.spawn)
        self.advance: Any = None


@dataclass
class SchedulerStats:
    """Aggregate execution metrics."""

    makespan: int = 0
    total_messages: int = 0
    process_count: int = 0
    scheduler_rounds: int = 0
    per_channel_messages: dict = field(default_factory=dict)
    per_process_clock: dict = field(default_factory=dict)


class Scheduler:
    """Runs a set of processes to completion."""

    def __init__(self) -> None:
        self._procs: list[_ProcState] = []
        self._names: set[str] = set()
        self._ready: deque[_ProcState] = deque()
        self._channels: list[Channel] = []
        #: optional finite-machine model: process name -> worker id; when
        #: set, workers serialize the virtual-time cost of their processes
        #: (the paper's Section 8 "not enough processors" scenario)
        self._worker_of: dict[str, int] | None = None
        self._worker_clock: dict[int, int] = {}
        #: optional trace hook ``(process name, clock, kind) -> None``,
        #: called once per completed request at the moment the process
        #: resumes.  ``None`` (the default) costs one pointer test per
        #: resume -- the zero-cost-when-off replacement for the old
        #: generator-wrapping instrumentation (see repro.runtime.trace).
        self._trace: Any = None
        #: whether the current run maintains Lamport clocks (set by run())
        self._timing: bool = True
        #: engine selection, fixed at construction (REPRO_SCHED_FAST)
        self._fast: bool = fast_engine_enabled()
        #: a scheduler runs exactly once; re-entry raises
        self._ran: bool = False

    def assign_workers(self, assignment: dict[str, int]) -> None:
        """Pin each process to a physical worker for virtual-time costing.

        Every spawned process name must be covered -- ``run()`` validates
        the assignment against the spawned set and raises
        :class:`RuntimeSimulationError` listing any uncovered processes (a
        typo'd name used to be silently skipped, quietly producing wrong
        makespans).  Affects only the clock model, not the communication
        semantics or results.
        """
        self._worker_of = dict(assignment)
        self._worker_clock = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_channel(self, channel: Channel) -> Channel:
        self._channels.append(channel)
        return channel

    @property
    def channels(self) -> tuple[Channel, ...]:
        """All channels registered with this scheduler."""
        return tuple(self._channels)

    @property
    def process_names(self) -> tuple[str, ...]:
        """Names of all spawned processes."""
        return tuple(p.name for p in self._procs)

    def spawn(self, name: str, gen: ProcessBody, *, single_op: bool = False) -> None:
        """Register a process.

        ``single_op=True`` declares that the generator only ever yields
        bare ``Send``/``Recv`` requests (the :class:`~repro.runtime.network.
        NetworkPlan` pre-binds this for latch, buffer and i/o processes, and
        for compute processes without moving streams), hoisting the engine
        dispatch test out of every yield.  The declaration is a hint, not a
        contract: a ``Par`` from a declared process still takes the generic
        path with identical semantics.
        """
        if name in self._names:
            raise RuntimeSimulationError(f"duplicate process name {name!r}")
        self._names.add(name)
        proc = _ProcState(name, gen)
        if self._fast and single_op:
            proc.advance = self._advance_single
        else:
            proc.advance = self._advance
        self._procs.append(proc)

    # ------------------------------------------------------------------
    # communication machinery (generic engine / Par slots)
    # ------------------------------------------------------------------
    def _try_send(self, proc: _ProcState, slot: _Slot) -> bool:
        """Complete a send: direct handoff to a parked receiver (rendezvous)
        or a push into free channel space."""
        chan: Channel = slot.op.channel
        timing = self._timing
        stamp = proc.yield_clock + 1 if timing else 0
        while chan.waiting_receivers:
            other, rslot = chan.waiting_receivers[0]
            chan.waiting_receivers.popleft()
            if rslot.done:
                continue
            rslot.done = True
            rslot.result = slot.op.value
            chan.messages_carried += 1
            if timing:
                other.clock = max(other.clock, stamp)
            slot.done = True
            self._maybe_wake(other)
            return True
        if chan.has_room():
            chan.push(slot.op.value, stamp)
            slot.done = True
            self._drain_receivers(chan)
            return True
        return False

    def _try_recv(self, proc: _ProcState, slot: _Slot) -> bool:
        chan: Channel = slot.op.channel
        if chan.queue:
            msg = chan.pop()
            slot.done = True
            slot.result = msg.value
            if self._timing:
                proc.clock = max(proc.clock, msg.timestamp)
            self._drain_senders(chan)
            return True
        while chan.waiting_senders:
            other, sslot = chan.waiting_senders[0]
            chan.waiting_senders.popleft()
            if sslot.done:
                continue
            sslot.done = True
            slot.done = True
            slot.result = sslot.op.value
            chan.messages_carried += 1
            if self._timing:
                proc.clock = max(proc.clock, other.yield_clock + 1)
            self._maybe_wake(other)
            return True
        return False

    def _drain_senders(self, chan: Channel) -> None:
        """Space appeared: complete parked sends in FIFO order."""
        timing = self._timing
        while chan.waiting_senders and chan.has_room():
            other, sslot = chan.waiting_senders.popleft()
            if sslot.done:
                continue
            chan.push(sslot.op.value, other.yield_clock + 1 if timing else 0)
            sslot.done = True
            self._maybe_wake(other)

    def _drain_receivers(self, chan: Channel) -> None:
        """Data appeared: complete parked receives in FIFO order."""
        timing = self._timing
        while chan.waiting_receivers and chan.queue:
            other, rslot = chan.waiting_receivers.popleft()
            if rslot.done:
                continue
            msg = chan.pop()
            rslot.done = True
            rslot.result = msg.value
            if timing:
                other.clock = max(other.clock, msg.timestamp)
            self._maybe_wake(other)

    def _maybe_wake(self, proc: _ProcState) -> None:
        """Move a parked process back to ready when its request completed.

        Every caller has just completed exactly one of ``proc``'s slots, so
        on the fast engine the Par branch is a counter decrement instead of
        an ``all(slot.done)`` scan; the generic engine keeps the scan.
        """
        slots = proc.slots
        if slots is None:
            return
        if proc.single:
            if proc.own_slot.done:
                self._ready.append(proc)
        elif self._fast:
            pending = proc.pending - 1
            proc.pending = pending
            if pending == 0:
                self._ready.append(proc)
        elif all(s.done for s in slots):
            self._ready.append(proc)

    # ------------------------------------------------------------------
    # fast engine: single-op complete-or-park, no slot list, no scans
    # ------------------------------------------------------------------
    def _single_send(self, proc: _ProcState, op) -> None:
        """Inlined ``_try_send`` + park for a bare ``Send``.

        Completion/wake order matches the generic engine exactly: the
        counterpart (or drained receivers) enqueue *before* this process,
        so the FIFO interleaving -- and hence every stat and trace stream
        -- is unchanged.
        """
        proc.single = True
        proc.is_send = True
        proc.par1 = False
        slot = proc.own_slot
        slot.result = None
        proc.slots = proc.own_list
        chan: Channel = op.channel
        ready = self._ready
        waiting = chan.waiting_receivers
        while waiting:
            other, rslot = waiting.popleft()
            if rslot.done:
                continue
            # rendezvous: hand the value straight to the parked receiver
            rslot.done = True
            rslot.result = op.value
            chan.messages_carried += 1
            if self._timing:
                stamp = proc.yield_clock + 1
                if stamp > other.clock:
                    other.clock = stamp
            slot.done = True
            # inlined _maybe_wake: rslot just completed, so a single-op
            # peer is ready by construction; a fast-Par peer decrements
            # its pending counter exactly as _maybe_wake would
            if other.single:
                ready.append(other)
            elif other.slots is not None:
                pending = other.pending - 1
                other.pending = pending
                if pending == 0:
                    ready.append(other)
            ready.append(proc)
            return
        queue = chan.queue
        if len(queue) < chan.capacity:
            # push into free space (inlined Channel.push); the rendezvous
            # loop above emptied waiting_receivers, so there is nobody to
            # drain -- the guard keeps the no-op call off the hot path
            queue.append(
                Message(op.value, proc.yield_clock + 1 if self._timing else 0)
            )
            chan.messages_carried += 1
            if len(queue) > chan.max_occupancy:
                chan.max_occupancy = len(queue)
            slot.done = True
            if chan.waiting_receivers:
                self._drain_receivers(chan)
            ready.append(proc)
            return
        # park: only now does anyone else read the slot's op (the drain
        # sweeps take the value from it; the deadlock report names it)
        slot.op = op
        slot.done = False
        chan.waiting_senders.append((proc, slot))

    def _single_recv(self, proc: _ProcState, op) -> None:
        """Inlined ``_try_recv`` + park for a bare ``Recv``."""
        proc.single = True
        proc.is_send = False
        proc.par1 = False
        slot = proc.own_slot
        proc.slots = proc.own_list
        chan: Channel = op.channel
        ready = self._ready
        queue = chan.queue
        if queue:
            msg = queue.popleft()
            slot.done = True
            slot.result = msg.value
            if self._timing and msg.timestamp > proc.clock:
                proc.clock = msg.timestamp
            if chan.waiting_senders:
                self._drain_senders(chan)
            ready.append(proc)
            return
        waiting = chan.waiting_senders
        while waiting:
            other, sslot = waiting.popleft()
            if sslot.done:
                continue
            # rendezvous: take the value straight from the parked sender
            sslot.done = True
            slot.done = True
            slot.result = sslot.op.value
            chan.messages_carried += 1
            if self._timing:
                stamp = other.yield_clock + 1
                if stamp > proc.clock:
                    proc.clock = stamp
            # inlined _maybe_wake, as in _single_send
            if other.single:
                ready.append(other)
            elif other.slots is not None:
                pending = other.pending - 1
                other.pending = pending
                if pending == 0:
                    ready.append(other)
            ready.append(proc)
            return
        slot.op = op
        slot.done = False
        slot.result = None
        chan.waiting_receivers.append((proc, slot))

    def _fast_par(self, proc: _ProcState, ops) -> None:
        """Multi-member ``Par`` on the fast engine.

        Same dispatch-then-park order as the generic slot path (identical
        interleaving), but the slot vector is reused across requests (the
        Par analogue of ``own_slot`` -- every slot is completed and
        unparked before the process resumes, so no live reference remains),
        the per-sub-op dispatch is a class test instead of ``isinstance``,
        and completion is tracked by the ``pending`` counter consumed in
        :meth:`_maybe_wake` instead of ``all(slot.done)`` scans.
        """
        k = len(ops)
        slots = proc.par_slots
        if slots is None or len(slots) != k:
            slots = proc.par_slots = [_Slot(None) for _ in range(k)]
        proc.single = False
        proc.was_par = True
        proc.slots = slots
        pending = 0
        for i, sub in enumerate(ops):
            slot = slots[i]
            slot.op = sub
            slot.done = False
            slot.result = None
            if sub.__class__ is Send:
                if not self._try_send(proc, slot):
                    pending += 1
            elif not self._try_recv(proc, slot):
                pending += 1
        if pending == 0:
            proc.pending = 0
            self._ready.append(proc)
            return
        proc.pending = pending
        for slot in slots:
            if slot.done:
                continue
            chan: Channel = slot.op.channel
            if slot.op.__class__ is Send:
                chan.waiting_senders.append((proc, slot))
            else:
                chan.waiting_receivers.append((proc, slot))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _advance(self, proc: _ProcState, value: Any) -> None:
        """Drive one generator step and handle the yielded request."""
        try:
            op = proc.gen.send(value)
        except StopIteration:
            proc.finished = True
            return
        proc.steps += 1
        proc.yield_clock = proc.clock
        if self._fast:
            tp = op.__class__
            if tp is Send:
                self._single_send(proc, op)
                return
            if tp is Recv:
                self._single_recv(proc, op)
                return
        self._request_generic(proc, op)

    def _advance_single(self, proc: _ProcState, value: Any) -> None:
        """:meth:`_advance` for plan-declared single-op processes: the fast
        engine's dispatch is hoisted -- a bare ``Send``/``Recv`` goes
        straight to its inlined transition, anything else (a mis-declared
        ``Par``, an invalid yield) falls back to the generic handler with
        identical semantics."""
        try:
            op = proc.gen.send(value)
        except StopIteration:
            proc.finished = True
            return
        proc.steps += 1
        proc.yield_clock = proc.clock
        tp = op.__class__
        if tp is Send:
            self._single_send(proc, op)
        elif tp is Recv:
            self._single_recv(proc, op)
        else:
            self._request_generic(proc, op)

    def _request_generic(self, proc: _ProcState, op: Any) -> None:
        """The generic slot-based request path (every ``Par``, and every
        request when the fast engine is disabled)."""
        if isinstance(op, Par):
            ops = op.ops
            if not ops:
                raise RuntimeSimulationError(
                    f"process {proc.name} yielded an empty Par: a parallel "
                    "request needs at least one Send/Recv"
                )
            for sub in ops:
                if not isinstance(sub, (Send, Recv)):
                    raise RuntimeSimulationError(
                        f"process {proc.name} yielded Par containing {sub!r}; "
                        "every Par member must be a Send or Recv"
                    )
            if self._fast:
                if len(ops) == 1:
                    # a one-member Par is a bare op that resumes with a
                    # one-element list and traces as "par": ride the
                    # single-op machinery (same completion/park/wake order,
                    # so the interleaving is unchanged) and mark it for
                    # list-wrapping
                    sub = ops[0]
                    if sub.__class__ is Send:
                        self._single_send(proc, sub)
                    else:
                        self._single_recv(proc, sub)
                    proc.par1 = True
                else:
                    self._fast_par(proc, ops)
                return
            proc.was_par = True
            proc.single = False
            slots = [_Slot(sub) for sub in ops]
        elif isinstance(op, (Send, Recv)):
            proc.was_par = False
            proc.single = False
            slot = proc.own_slot
            slot.op = op
            slot.done = False
            slot.result = None
            slots = proc.own_list
        else:
            raise RuntimeSimulationError(
                f"process {proc.name} yielded {op!r}, expected Send/Recv/Par"
            )
        proc.slots = slots
        for slot in slots:
            if isinstance(slot.op, Send):
                self._try_send(proc, slot)
            else:
                self._try_recv(proc, slot)
        if all(s.done for s in slots):
            self._ready.append(proc)
        else:
            for slot in slots:
                if slot.done:
                    continue
                chan: Channel = slot.op.channel
                if isinstance(slot.op, Send):
                    chan.waiting_senders.append((proc, slot))
                else:
                    chan.waiting_receivers.append((proc, slot))

    def run(
        self, max_rounds: int | None = None, *, timing: bool = True
    ) -> SchedulerStats:
        """Run all processes to completion; returns aggregate stats.

        ``timing=False`` skips all Lamport-clock bookkeeping: values,
        deadlock detection and the FIFO interleaving are unchanged, but the
        returned stats carry zero makespan / per-process clocks.  Use it
        when only the computed values matter (differential checks).

        A scheduler runs exactly once: generators are consumed and channel
        state is final, so a second call raises
        :class:`RuntimeSimulationError` instead of silently returning fresh
        zero-round stats computed from stale state.  Instantiate a new
        network (``NetworkPlan.instantiate``) to execute again.
        """
        if self._ran:
            raise RuntimeSimulationError(
                "scheduler already ran: processes are exhausted and channel "
                "state is final; instantiate a fresh network to run again"
            )
        self._ran = True
        if self._worker_of is not None:
            missing = sorted(self._names - set(self._worker_of))
            if missing:
                shown = ", ".join(missing[:10])
                if len(missing) > 10:
                    shown += f", ... and {len(missing) - 10} more"
                raise RuntimeSimulationError(
                    f"worker assignment leaves {len(missing)} spawned "
                    f"process(es) uncovered: {shown}"
                )
        self._timing = timing
        trace = self._trace
        ready = self._ready
        worker_of = self._worker_of
        worker_clock = self._worker_clock
        rounds = 0
        for proc in self._procs:
            proc.advance(proc, None)
        while ready:
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                raise RuntimeSimulationError(f"exceeded {max_rounds} scheduler rounds")
            proc = ready.popleft()
            if proc.finished or proc.slots is None:
                continue
            if proc.single:
                slot = proc.own_slot
                if not slot.done:
                    raise RuntimeSimulationError(
                        f"process {proc.name} resumed with incomplete request"
                    )
                proc.slots = None
                if timing:
                    if worker_of is None:
                        proc.clock += 1
                    else:
                        self._charge_worker(proc, worker_of, worker_clock)
                value = slot.result
                if proc.par1:
                    value = [value]
                if trace is not None:
                    trace(
                        proc.name,
                        proc.clock,
                        "par"
                        if proc.par1
                        else ("send" if proc.is_send else "recv"),
                    )
                proc.advance(proc, value)
                continue
            if self._fast:
                if proc.pending:
                    raise RuntimeSimulationError(
                        f"process {proc.name} resumed with incomplete request"
                    )
            elif not all(s.done for s in proc.slots):
                raise RuntimeSimulationError(
                    f"process {proc.name} resumed with incomplete request"
                )
            slots = proc.slots
            proc.slots = None
            if timing:
                if worker_of is None:
                    proc.clock += 1
                else:
                    self._charge_worker(proc, worker_of, worker_clock)
            value = [s.result for s in slots] if proc.was_par else slots[0].result
            if trace is not None:
                kind = (
                    "par"
                    if proc.was_par
                    else ("send" if isinstance(slots[0].op, Send) else "recv")
                )
                trace(proc.name, proc.clock, kind)
            proc.advance(proc, value)
        unfinished = [p for p in self._procs if not p.finished]
        if unfinished:
            raise DeadlockError(self._deadlock_report(unfinished))
        stats = SchedulerStats()
        stats.process_count = len(self._procs)
        stats.scheduler_rounds = rounds
        stats.makespan = max((p.clock for p in self._procs), default=0)
        stats.per_process_clock = {p.name: p.clock for p in self._procs}
        stats.per_channel_messages = {
            c.name: c.messages_carried for c in self._channels
        }
        stats.total_messages = sum(stats.per_channel_messages.values())
        return stats

    @staticmethod
    def _charge_worker(
        proc: _ProcState, worker_of: dict[str, int], worker_clock: dict[int, int]
    ) -> None:
        """Serialize the resume tick through the process's physical worker.

        ``run()`` validated coverage up front, so the lookup cannot miss.
        """
        worker = worker_of[proc.name]
        busy_until = worker_clock.get(worker, 0)
        proc.clock = max(proc.clock, busy_until) + 1
        worker_clock[worker] = proc.clock

    def _deadlock_report(self, unfinished: list[_ProcState]) -> str:
        lines = [f"deadlock: {len(unfinished)} process(es) cannot progress"]
        for p in unfinished[:20]:
            if p.slots is None:
                lines.append(f"  {p.name}: not blocked on any channel (lost)")
                continue
            waits = ", ".join(
                f"{'send' if isinstance(s.op, Send) else 'recv'} {s.op.channel.name}"
                for s in p.slots
                if not s.done
            )
            lines.append(f"  {p.name}: waiting on {waits}")
        if len(unfinished) > 20:
            lines.append(f"  ... and {len(unfinished) - 20} more")
        return "\n".join(lines)
