"""Lowering a symbolic SystolicProgram to a concrete process network.

Every symbolic quantity the scheme derived -- ``first``/``last``/``count``,
``soak``/``drain``, the i/o repeaters, Eq. 10 pass amounts -- is evaluated
here at a concrete problem size and *drives the actual execution*, so an
end-to-end run is a genuine test of the derivations, not of a parallel
re-implementation.

Network shape, per stream ``s`` with hop vector ``h`` (the one-process move
of its elements) and flow denominator ``m``:

* *pipes* are the maximal chains of process-space points along ``h``;
* an input process feeds the upstream end of each pipe and an output
  process drains the downstream end (Sections 6.3, 7.3 -- the chain ends
  are exactly the deduplicated boundary sets of Eq. 5);
* each link *into* a process-space node carries ``m - 1`` interposed latch
  buffer processes (Section 7.6; like the paper's D.1 program, the link
  from the input process gets them too, the link into the output process
  does not);
* process-space points outside the computation space become external
  buffers: one pass-loop process per stream, composed in parallel exactly
  like the ``par pass a / pass b`` of the E.2.7 buffer code.

Computation processes follow the appendix phase order: stationary loads,
then moving soaks (in stream order); the repeater loop with par-receives
and par-sends around the basic statement; then moving drains and stationary
recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.program import StreamPlan, SystolicProgram
from repro.geometry.point import Point
from repro.lang.expr import RuntimeValue
from repro.runtime.channel import Channel
from repro.runtime.host import Host
from repro.runtime.ops import Par, Recv, Send
from repro.runtime.scheduler import Scheduler, SchedulerStats
from repro.symbolic.affine import Numeric
from repro.util.errors import RuntimeSimulationError


def _as_count(value: Any) -> int:
    """Evaluate-result -> non-negative int (None means zero/null)."""
    if value is None:
        return 0
    from fractions import Fraction

    if isinstance(value, Fraction):
        if value.denominator != 1:
            raise RuntimeSimulationError(f"non-integer count {value}")
        value = int(value)
    if value < 0:
        raise RuntimeSimulationError(f"negative count {value}")
    return int(value)


@dataclass
class ProcessNetwork:
    """A fully instantiated network, ready to run."""

    program: SystolicProgram
    env: dict[str, Numeric]
    host: Host
    scheduler: Scheduler
    channel_capacity: int
    node_counts: dict[str, int] = field(default_factory=dict)
    #: channels whose endpoints were folded onto different physical
    #: workers and therefore carry inter-band buffer space (LSGP fold)
    interband_channels: int = 0
    #: (stream name, PS point) -> whole-pipe element count of its chain
    chain_totals: dict = field(default_factory=dict)
    #: CS point -> (step count, {stream: (soak, drain)}) -- the per-node
    #: amounts the builder evaluated once while wiring the compute nodes
    amounts: dict = field(default_factory=dict)

    def run(self, max_rounds: int | None = None) -> SchedulerStats:
        return self.scheduler.run(max_rounds=max_rounds)

    def validate_topology(self) -> None:
        """Pre-flight conservation check: at every computation process, the
        derived per-node amounts account exactly for its chain's elements:

        * moving stream:     soak + count + drain == chain total,
        * stationary stream: soak +   1   + drain == chain total.

        A violation means the symbolic derivations disagree with the pipe
        enumeration and the run would deadlock; raising here gives a much
        better diagnostic.  (Per-channel producer/consumer uniqueness holds
        by construction of the builder.)

        The per-node amounts come from :attr:`amounts`, evaluated once by
        the builder while wiring the compute nodes; the chain totals are
        read live so later corruption is still caught.
        """
        for y, (count, per_stream) in self.amounts.items():
            for plan in self.program.streams:
                total = self.chain_totals.get((plan.name, y))
                if total is None:
                    raise RuntimeSimulationError(
                        f"no chain covers {plan.name} at {y}"
                    )
                soak, drain = per_stream[plan.name]
                middle = 1 if plan.stationary else count
                if soak + middle + drain != total:
                    raise RuntimeSimulationError(
                        f"conservation violated for {plan.name} at {y}: "
                        f"{soak} + {middle} + {drain} != {total}"
                    )


class _NetworkBuilder:
    def __init__(
        self,
        sp: SystolicProgram,
        env: Mapping[str, Numeric],
        host: Host,
        channel_capacity: int,
        worker_of: Callable[[Point], int] | None = None,
        interband_capacity: int = 2,
    ) -> None:
        self.sp = sp
        self.env = dict(env)
        self.host = host
        self.capacity = channel_capacity
        #: optional LSGP fold: maps a PS point to its physical worker; a
        #: channel whose endpoints land on different workers becomes an
        #: inter-band buffer with ``interband_capacity`` slots
        self.worker_of = worker_of
        self.interband_capacity = interband_capacity
        self.interband_channels = 0
        self.scheduler = Scheduler()
        self.space = sp.process_space(env)
        #: per stream name: {point: channel} for the link INTO / OUT OF a node
        self.in_chan: dict[str, dict[Point, Channel]] = {}
        self.out_chan: dict[str, dict[Point, Channel]] = {}
        #: per (stream, node): the whole-pipe element count of that node's
        #: chain -- the authoritative Eq. 10 value, forced to 0 for chains
        #: that never meet the computation space (Section 6.4's definition;
        #: the closed-form guards assume integral endpoints and can be
        #: fooled on all-buffer pipes of designs outside the paper's four)
        self.chain_total: dict[tuple[str, Point], int] = {}
        self.node_counts = {"compute": 0, "buffer": 0, "latch": 0, "input": 0, "output": 0}
        #: memoized per-point symbolic work, shared by the stream wiring,
        #: the node construction and validate_topology: binding dicts,
        #: CS membership, and (count, {stream: (soak, drain)}) amounts
        self._bindings: dict[Point, dict] = {}
        self._in_cs_cache: dict[Point, bool] = {}
        self.amounts: dict[Point, tuple[int, dict[str, tuple[int, int]]]] = {}

    def _bind(self, y: Point) -> dict:
        binding = self._bindings.get(y)
        if binding is None:
            binding = self._bindings[y] = self.sp.bind(y, self.env)
        return binding

    def _in_cs(self, y: Point) -> bool:
        member = self._in_cs_cache.get(y)
        if member is None:
            first = self.sp.first
            member = self._in_cs_cache[y] = (
                not first.has_default or first.any_case_holds(self._bind(y))
            )
        return member

    # ------------------------------------------------------------------
    def _channel(
        self, name: str, src: Point | None = None, dst: Point | None = None
    ) -> Channel:
        capacity = self.capacity
        if (
            self.worker_of is not None
            and src is not None
            and dst is not None
            and self.worker_of(src) != self.worker_of(dst)
        ):
            capacity = max(capacity, self.interband_capacity)
            self.interband_channels += 1
        return self.scheduler.add_channel(Channel(name, capacity=capacity))

    def _chains(self, hop: Point) -> Iterator[list[Point]]:
        for y in self.space:
            if (y - hop) in self.space:
                continue
            chain = []
            z = y
            while z in self.space:
                chain.append(z)
                z = z + hop
            yield chain

    # ------------------------------------------------------------------
    def _latch_process(self, chan_in: Channel, chan_out: Channel, count: int):
        def body():
            for _ in range(count):
                value = yield Recv(chan_in)
                yield Send(chan_out, value)

        return body()

    def _build_stream(self, plan: StreamPlan) -> None:
        """Pipes, latches and i/o processes for one stream."""
        sp, env = self.sp, self.env
        name = plan.name
        self.in_chan[name] = {}
        self.out_chan[name] = {}
        latches = plan.internal_buffers()
        for chain in self._chains(plan.hop):
            start, end = chain[0], chain[-1]
            binding = self._bind(start)
            if any(self._in_cs(z) for z in chain):
                total = _as_count(plan.pass_amount.evaluate(binding))
            else:
                total = 0  # no basic statement on the pipe: nothing to move
            for z in chain:
                self.chain_total[(name, z)] = total
            # channels along the chain; latches on every link into a node
            upstream: Channel | None = None
            for idx, y in enumerate(chain):
                src = f"{name}_in" if idx == 0 else f"{name}{chain[idx - 1]}"
                link_in = self._channel(
                    f"{name}_chan[{src}->{y}]",
                    src=None if idx == 0 else chain[idx - 1],
                    dst=y,
                )
                if idx == 0:
                    head_channel = link_in
                else:
                    self.out_chan[name][chain[idx - 1]] = link_in
                feed = link_in
                for k in range(latches):
                    buffered = self._channel(f"{name}_buff[{y}#{k}]")
                    self.scheduler.spawn(
                        f"L:{name}{y}#{k}", self._latch_process(feed, buffered, total)
                    )
                    self.node_counts["latch"] += 1
                    feed = buffered
                self.in_chan[name][y] = feed
                upstream = link_in
            tail = self._channel(f"{name}_chan[{end}->out]")
            self.out_chan[name][end] = tail
            # i/o processes (null pipes still get processes that do nothing,
            # like the paper's null communications)
            elements = list(self._pipe_elements(plan, binding, total))
            self.scheduler.spawn(
                f"IN:{name}{start}", self._input_process(plan, head_channel, elements)
            )
            self.scheduler.spawn(
                f"OUT:{name}{end}", self._output_process(plan, tail, elements)
            )
            self.node_counts["input"] += 1
            self.node_counts["output"] += 1

    def _pipe_elements(
        self, plan: StreamPlan, binding: Mapping[str, Numeric], total: int
    ) -> Iterator[Point]:
        if total == 0:
            return
        first = plan.first_s.evaluate(binding)
        if first is None:
            raise RuntimeSimulationError(
                f"stream {plan.name}: pass amount {total} but null first_s"
            )
        if not first.is_integral:
            raise RuntimeSimulationError(
                f"stream {plan.name}: non-integral first_s {first}"
            )
        current = first
        for _ in range(total):
            yield current
            current = current + plan.increment_s

    def _input_process(self, plan: StreamPlan, chan: Channel, elements: list[Point]):
        host, var = self.host, plan.name

        def body():
            for element in elements:
                yield Send(chan, host.read_element(var, element))

        return body()

    def _output_process(self, plan: StreamPlan, chan: Channel, elements: list[Point]):
        host, var = self.host, plan.name

        def body():
            for element in elements:
                value = yield Recv(chan)
                host.write_element(var, element, value)

        return body()

    # ------------------------------------------------------------------
    def _build_buffer_node(self, y: Point) -> None:
        """PS \\ CS: one parallel pass-loop per stream (E.2.7 buffer code)."""
        for plan in self.sp.streams:
            amount = self.chain_total[(plan.name, y)]
            chan_in = self.in_chan[plan.name][y]
            chan_out = self.out_chan[plan.name][y]
            self.scheduler.spawn(
                f"B:{plan.name}{y}", self._latch_process(chan_in, chan_out, amount)
            )
        self.node_counts["buffer"] += 1

    def _build_compute_node(self, y: Point) -> None:
        sp, env, host = self.sp, self.env, self.host
        binding = self._bind(y)
        statements = list(sp.repeater.enumerate_at(binding))
        source = sp.source
        body_ast = source.body
        stationary = [p for p in sp.streams if p.stationary]
        moving = [p for p in sp.streams if not p.stationary]
        index_base = {k: int(v) for k, v in env.items()}

        amounts = {
            p.name: (
                _as_count(p.soak.evaluate(binding)),
                _as_count(p.drain.evaluate(binding)),
            )
            for p in sp.streams
        }
        self.amounts[y] = (_as_count(sp.count.evaluate(binding)), amounts)
        in_ch = {p.name: self.in_chan[p.name][y] for p in sp.streams}
        out_ch = {p.name: self.out_chan[p.name][y] for p in sp.streams}

        def body():
            local: dict[str, RuntimeValue] = {}
            # -- pre phase: stationary loads, then moving soaks ----------
            for p in stationary:
                soak, drain = amounts[p.name]
                local[p.name] = yield Recv(in_ch[p.name])
                for _ in range(drain):  # loading passes = drain (Sect. 6.5)
                    value = yield Recv(in_ch[p.name])
                    yield Send(out_ch[p.name], value)
            # Soak passes are interleaved round-robin across the moving
            # streams (one element per stream per round, in declaration
            # order) rather than one stream at a time.  With bounded
            # channels, a node that insists on finishing stream A's soak
            # can deadlock against a neighbour that is blocked mid-way
            # through stream B: the neighbour's repeater (which emits one
            # element of *every* stream per statement) never runs, so A's
            # supply dries up.  Round-robin keeps every node's demand
            # aligned with the one-per-stream-per-tick order in which the
            # repeaters upstream produce.  Per-stream FIFO order -- and
            # hence every computed value -- is unchanged.
            soak_left = {p.name: amounts[p.name][0] for p in moving}
            while any(soak_left.values()):
                for p in moving:
                    if soak_left[p.name]:
                        soak_left[p.name] -= 1
                        value = yield Recv(in_ch[p.name])
                        yield Send(out_ch[p.name], value)
            # -- the repeater: the basic statements of this process ------
            for x in statements:
                indices = dict(index_base)
                indices.update(source.index_env(x))
                if moving:
                    received = yield Par([Recv(in_ch[p.name]) for p in moving])
                else:
                    received = []
                values = dict(zip((p.name for p in moving), received))
                values.update(local)
                updated = body_ast.execute(values, indices)
                for p in stationary:
                    local[p.name] = updated[p.name]
                if moving:
                    yield Par(
                        [Send(out_ch[p.name], updated[p.name]) for p in moving]
                    )
            # -- post phase: moving drains, then stationary recoveries ---
            # Drain passes round-robin for the same reason as the soaks:
            # the node upstream may still be in its repeater, emitting one
            # element of every stream per statement.
            drain_left = {p.name: amounts[p.name][1] for p in moving}
            while any(drain_left.values()):
                for p in moving:
                    if drain_left[p.name]:
                        drain_left[p.name] -= 1
                        value = yield Recv(in_ch[p.name])
                        yield Send(out_ch[p.name], value)
            for p in stationary:
                soak, _ = amounts[p.name]
                for _ in range(soak):  # recovery passes = soak (Sect. 6.5)
                    value = yield Recv(in_ch[p.name])
                    yield Send(out_ch[p.name], value)
                yield Send(out_ch[p.name], local[p.name])

        self.scheduler.spawn(f"P{y}", body())
        self.node_counts["compute"] += 1

    # ------------------------------------------------------------------
    def build(self) -> ProcessNetwork:
        for plan in self.sp.streams:
            self._build_stream(plan)
        for y in self.space:
            if self._in_cs(y):
                self._build_compute_node(y)
            else:
                self._build_buffer_node(y)
        return ProcessNetwork(
            program=self.sp,
            env=self.env,
            host=self.host,
            scheduler=self.scheduler,
            channel_capacity=self.capacity,
            node_counts=self.node_counts,
            chain_totals=self.chain_total,
            amounts=self.amounts,
            interband_channels=self.interband_channels,
        )


def build_network(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    *,
    channel_capacity: int = 1,
    worker_of: Callable[[Point], int] | None = None,
    interband_capacity: int = 2,
) -> ProcessNetwork:
    """Instantiate a compiled program at a concrete problem size.

    ``worker_of`` enables the LSGP fold: a channel between PS points on
    different workers gets ``interband_capacity`` buffer slots (an
    inter-band buffer), while intra-band channels keep
    ``channel_capacity``.  Extra buffer space never changes results (Kahn
    determinism) -- only the timing model.
    """
    host = Host(sp.source, env, inputs)
    return _NetworkBuilder(
        sp,
        env,
        host,
        channel_capacity,
        worker_of=worker_of,
        interband_capacity=interband_capacity,
    ).build()


def execute(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    *,
    channel_capacity: int = 1,
    max_rounds: int | None = None,
    validate: bool = True,
) -> tuple[dict, SchedulerStats]:
    """Build, run, and return ``(final variable state, stats)``.

    ``validate`` runs the pre-flight conservation check (better diagnostics
    than a deadlock); every element of every variable must be recovered
    exactly once.
    """
    network = build_network(sp, env, inputs, channel_capacity=channel_capacity)
    if validate:
        network.validate_topology()
    stats = network.run(max_rounds=max_rounds)
    for plan in sp.streams:
        network.host.check_full_recovery(plan.name)
    return network.host.final, stats
