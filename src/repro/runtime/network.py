"""Lowering a symbolic SystolicProgram to a concrete process network.

Every symbolic quantity the scheme derived -- ``first``/``last``/``count``,
``soak``/``drain``, the i/o repeaters, Eq. 10 pass amounts -- is evaluated
here at a concrete problem size and *drives the actual execution*, so an
end-to-end run is a genuine test of the derivations, not of a parallel
re-implementation.

Network shape, per stream ``s`` with hop vector ``h`` (the one-process move
of its elements) and flow denominator ``m``:

* *pipes* are the maximal chains of process-space points along ``h``;
* an input process feeds the upstream end of each pipe and an output
  process drains the downstream end (Sections 6.3, 7.3 -- the chain ends
  are exactly the deduplicated boundary sets of Eq. 5);
* each link *into* a process-space node carries ``m - 1`` interposed latch
  buffer processes (Section 7.6; like the paper's D.1 program, the link
  from the input process gets them too, the link into the output process
  does not);
* process-space points outside the computation space become external
  buffers: one pass-loop process per stream, composed in parallel exactly
  like the ``par pass a / pass b`` of the E.2.7 buffer code.

Computation processes follow the appendix phase order: stationary loads,
then moving soaks (in stream order); the repeater loop with par-receives
and par-sends around the basic statement; then moving drains and stationary
recoveries.

Construction is split in two so repeated executions of one design skip the
symbolic work entirely:

* a :class:`NetworkPlan` captures everything derivable from ``(sp, env)``
  alone -- chain enumeration, channel names and endpoints, per-node
  amounts, pipe element lists, pre-bound process factories -- and is
  memoized per compiled program (:func:`network_plan`);
* :meth:`NetworkPlan.instantiate` wires fresh channels and generators into
  a runnable :class:`ProcessNetwork` in one linear pass, preserving the
  exact channel/process creation order (and hence the deterministic FIFO
  interleaving) of the original single-shot builder.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro import profiling

from repro.core.program import StreamPlan, SystolicProgram
from repro.geometry.point import Point
from repro.lang.expr import RuntimeValue
from repro.runtime.channel import Channel
from repro.runtime.host import Host
from repro.runtime.ops import Par, Recv, Send
from repro.runtime.scheduler import Scheduler, SchedulerStats
from repro.symbolic.affine import Numeric
from repro.util.errors import RuntimeSimulationError


def _as_count(value: Any) -> int:
    """Evaluate-result -> non-negative int (None means zero/null)."""
    if value is None:
        return 0
    from fractions import Fraction

    if isinstance(value, Fraction):
        if value.denominator != 1:
            raise RuntimeSimulationError(f"non-integer count {value}")
        value = int(value)
    if value < 0:
        raise RuntimeSimulationError(f"negative count {value}")
    return int(value)


@dataclass
class ProcessNetwork:
    """A fully instantiated network, ready to run."""

    program: SystolicProgram
    env: dict[str, Numeric]
    host: Host
    scheduler: Scheduler
    channel_capacity: int
    node_counts: dict[str, int] = field(default_factory=dict)
    #: channels whose endpoints were folded onto different physical
    #: workers and therefore carry inter-band buffer space (LSGP fold)
    interband_channels: int = 0
    #: (stream name, PS point) -> whole-pipe element count of its chain
    chain_totals: dict = field(default_factory=dict)
    #: CS point -> (step count, {stream: (soak, drain)}) -- the per-node
    #: amounts the builder evaluated once while wiring the compute nodes
    amounts: dict = field(default_factory=dict)

    def run(self, max_rounds: int | None = None, *, timing: bool = True) -> SchedulerStats:
        return self.scheduler.run(max_rounds=max_rounds, timing=timing)

    def validate_topology(self) -> None:
        """Pre-flight conservation check: at every computation process, the
        derived per-node amounts account exactly for its chain's elements:

        * moving stream:     soak + count + drain == chain total,
        * stationary stream: soak +   1   + drain == chain total.

        A violation means the symbolic derivations disagree with the pipe
        enumeration and the run would deadlock; raising here gives a much
        better diagnostic.  (Per-channel producer/consumer uniqueness holds
        by construction of the builder.)

        The per-node amounts come from :attr:`amounts`, evaluated once by
        the builder while wiring the compute nodes; the chain totals are
        read live so later corruption is still caught.
        """
        for y, (count, per_stream) in self.amounts.items():
            for plan in self.program.streams:
                total = self.chain_totals.get((plan.name, y))
                if total is None:
                    raise RuntimeSimulationError(
                        f"no chain covers {plan.name} at {y}"
                    )
                soak, drain = per_stream[plan.name]
                middle = 1 if plan.stationary else count
                if soak + middle + drain != total:
                    raise RuntimeSimulationError(
                        f"conservation violated for {plan.name} at {y}: "
                        f"{soak} + {middle} + {drain} != {total}"
                    )


#: a process factory: given the instantiation's channel list and host,
#: return the live generator for one process.  The plan stores each with a
#: ``single_op`` flag -- True when the factory's body only ever yields bare
#: Send/Recv requests -- forwarded to ``Scheduler.spawn`` so the fast
#: engine's dispatch test is hoisted out of every yield for those
#: processes.
_Factory = Callable[[list[Channel], Host], Any]


class NetworkPlan:
    """Everything :func:`build_network` can derive from ``(sp, env)`` alone.

    The plan holds channel *specs* (name + process-space endpoints) and
    process *factories* (closures over precomputed amounts, element lists
    and channel indices); :meth:`instantiate` binds them to fresh
    :class:`Channel`/generator objects.  One plan serves any number of
    executions, any channel capacity, and any LSGP ``worker_of`` fold --
    those are instantiation-time choices.
    """

    __slots__ = (
        "sp", "env", "channel_names", "channel_ends", "processes",
        "node_counts", "chain_totals", "amounts", "_validated",
        "__weakref__",
    )

    def __init__(self, sp: SystolicProgram, env: Mapping[str, Numeric]) -> None:
        self.sp = sp
        self.env = dict(env)
        self.channel_names: list[str] = []
        self.channel_ends: list[tuple[Point | None, Point | None]] = []
        self.processes: list[tuple[str, _Factory, bool]] = []
        self.node_counts = {
            "compute": 0, "buffer": 0, "latch": 0, "input": 0, "output": 0
        }
        self.chain_totals: dict[tuple[str, Point], int] = {}
        self.amounts: dict[Point, tuple[int, dict[str, tuple[int, int]]]] = {}
        self._validated = False
        _PlanBuilder(self).build()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """The conservation check of ``ProcessNetwork.validate_topology``,
        run once per plan instead of once per execution."""
        if self._validated:
            return
        for y, (count, per_stream) in self.amounts.items():
            for plan in self.sp.streams:
                total = self.chain_totals.get((plan.name, y))
                if total is None:
                    raise RuntimeSimulationError(
                        f"no chain covers {plan.name} at {y}"
                    )
                soak, drain = per_stream[plan.name]
                middle = 1 if plan.stationary else count
                if soak + middle + drain != total:
                    raise RuntimeSimulationError(
                        f"conservation violated for {plan.name} at {y}: "
                        f"{soak} + {middle} + {drain} != {total}"
                    )
        self._validated = True

    def instantiate(
        self,
        inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
        *,
        channel_capacity: int = 1,
        worker_of: Callable[[Point], int] | None = None,
        interband_capacity: int = 2,
        host: Host | None = None,
    ) -> ProcessNetwork:
        """Wire fresh channels and processes; linear in the network size.

        Channel and process creation order match the plan's build order
        exactly, so every instantiation executes the same deterministic
        FIFO interleaving.
        """
        if host is None:
            host = Host(self.sp.source, self.env, inputs)
        scheduler = Scheduler()
        interband = 0
        channels: list[Channel] = []
        if worker_of is None:
            for name in self.channel_names:
                channels.append(Channel(name, capacity=channel_capacity))
        else:
            for name, (src, dst) in zip(self.channel_names, self.channel_ends):
                capacity = channel_capacity
                if (
                    src is not None
                    and dst is not None
                    and worker_of(src) != worker_of(dst)
                ):
                    capacity = max(capacity, interband_capacity)
                    interband += 1
                channels.append(Channel(name, capacity=capacity))
        for chan in channels:
            scheduler.add_channel(chan)
        for name, factory, single in self.processes:
            scheduler.spawn(name, factory(channels, host), single_op=single)
        return ProcessNetwork(
            program=self.sp,
            env=self.env,
            host=host,
            scheduler=scheduler,
            channel_capacity=channel_capacity,
            node_counts=self.node_counts,
            chain_totals=self.chain_totals,
            amounts=self.amounts,
            interband_channels=interband,
        )


class _PlanBuilder:
    """Builds a :class:`NetworkPlan`: same traversal as the original
    single-shot network builder (channel/process order is preserved), but
    emitting channel specs and process factories instead of live objects."""

    def __init__(self, plan: NetworkPlan) -> None:
        self.plan = plan
        self.sp = plan.sp
        self.env = plan.env
        self.space = self.sp.process_space(self.env)
        #: per stream name: {point: channel index} for links INTO / OUT OF a node
        self.in_chan: dict[str, dict[Point, int]] = {}
        self.out_chan: dict[str, dict[Point, int]] = {}
        self._bindings: dict[Point, dict] = {}
        self._in_cs_cache: dict[Point, bool] = {}

    def _bind(self, y: Point) -> dict:
        binding = self._bindings.get(y)
        if binding is None:
            binding = self._bindings[y] = self.sp.bind(y, self.env)
        return binding

    def _in_cs(self, y: Point) -> bool:
        member = self._in_cs_cache.get(y)
        if member is None:
            first = self.sp.first
            member = self._in_cs_cache[y] = (
                not first.has_default or first.any_case_holds(self._bind(y))
            )
        return member

    # ------------------------------------------------------------------
    def _channel(
        self, name: str, src: Point | None = None, dst: Point | None = None
    ) -> int:
        self.plan.channel_names.append(name)
        self.plan.channel_ends.append((src, dst))
        return len(self.plan.channel_names) - 1

    def _chains(self, hop: Point) -> Iterator[list[Point]]:
        for y in self.space:
            if (y - hop) in self.space:
                continue
            chain = []
            z = y
            while z in self.space:
                chain.append(z)
                z = z + hop
            yield chain

    # ------------------------------------------------------------------
    @staticmethod
    def _latch_factory(cin: int, cout: int, count: int) -> _Factory:
        def make(channels: list[Channel], host: Host):
            recv = Recv(channels[cin])
            chan_out = channels[cout]

            def body():
                for _ in range(count):
                    value = yield recv
                    yield Send(chan_out, value)

            return body()

        return make

    def _build_stream(self, plan: StreamPlan) -> None:
        """Pipes, latches and i/o processes for one stream."""
        name = plan.name
        self.in_chan[name] = {}
        self.out_chan[name] = {}
        latches = plan.internal_buffers()
        for chain in self._chains(plan.hop):
            start, end = chain[0], chain[-1]
            binding = self._bind(start)
            if any(self._in_cs(z) for z in chain):
                total = _as_count(plan.pass_amount.evaluate(binding))
            else:
                total = 0  # no basic statement on the pipe: nothing to move
            for z in chain:
                self.plan.chain_totals[(name, z)] = total
            # channels along the chain; latches on every link into a node
            for idx, y in enumerate(chain):
                src = f"{name}_in" if idx == 0 else f"{name}{chain[idx - 1]}"
                link_in = self._channel(
                    f"{name}_chan[{src}->{y}]",
                    src=None if idx == 0 else chain[idx - 1],
                    dst=y,
                )
                if idx == 0:
                    head_channel = link_in
                else:
                    self.out_chan[name][chain[idx - 1]] = link_in
                feed = link_in
                for k in range(latches):
                    buffered = self._channel(f"{name}_buff[{y}#{k}]")
                    self.plan.processes.append(
                        (
                            f"L:{name}{y}#{k}",
                            self._latch_factory(feed, buffered, total),
                            True,
                        )
                    )
                    self.plan.node_counts["latch"] += 1
                    feed = buffered
                self.in_chan[name][y] = feed
            tail = self._channel(f"{name}_chan[{end}->out]")
            self.out_chan[name][end] = tail
            # i/o processes (null pipes still get processes that do nothing,
            # like the paper's null communications)
            elements = list(self._pipe_elements(plan, binding, total))
            var = name

            def make_input(channels, host, *, _chan=head_channel, _elems=elements, _var=var):
                chan = channels[_chan]

                def body():
                    for element in _elems:
                        yield Send(chan, host.read_element(_var, element))

                return body()

            def make_output(channels, host, *, _chan=tail, _elems=elements, _var=var):
                recv = Recv(channels[_chan])

                def body():
                    for element in _elems:
                        value = yield recv
                        host.write_element(_var, element, value)

                return body()

            self.plan.processes.append((f"IN:{name}{start}", make_input, True))
            self.plan.processes.append((f"OUT:{name}{end}", make_output, True))
            self.plan.node_counts["input"] += 1
            self.plan.node_counts["output"] += 1

    def _pipe_elements(
        self, plan: StreamPlan, binding: Mapping[str, Numeric], total: int
    ) -> Iterator[Point]:
        if total == 0:
            return
        first = plan.first_s.evaluate(binding)
        if first is None:
            raise RuntimeSimulationError(
                f"stream {plan.name}: pass amount {total} but null first_s"
            )
        if not first.is_integral:
            raise RuntimeSimulationError(
                f"stream {plan.name}: non-integral first_s {first}"
            )
        current = first
        for _ in range(total):
            yield current
            current = current + plan.increment_s

    # ------------------------------------------------------------------
    def _build_buffer_node(self, y: Point) -> None:
        """PS \\ CS: one parallel pass-loop per stream (E.2.7 buffer code)."""
        for plan in self.sp.streams:
            amount = self.plan.chain_totals[(plan.name, y)]
            cin = self.in_chan[plan.name][y]
            cout = self.out_chan[plan.name][y]
            self.plan.processes.append(
                (f"B:{plan.name}{y}", self._latch_factory(cin, cout, amount), True)
            )
        self.plan.node_counts["buffer"] += 1

    def _build_compute_node(self, y: Point) -> None:
        sp, env = self.sp, self.env
        binding = self._bind(y)
        source = sp.source
        body_ast = source.body
        stationary = tuple(p.name for p in sp.streams if p.stationary)
        moving = tuple(p.name for p in sp.streams if not p.stationary)
        index_base = {k: int(v) for k, v in env.items()}
        # Body.execute treats the index binding as read-only, so the merged
        # per-statement index environments are computed once per plan and
        # shared by every execution.
        index_envs = [
            dict(index_base, **source.index_env(x))
            for x in sp.repeater.enumerate_at(binding)
        ]

        amounts = {
            p.name: (
                _as_count(p.soak.evaluate(binding)),
                _as_count(p.drain.evaluate(binding)),
            )
            for p in sp.streams
        }
        self.plan.amounts[y] = (_as_count(sp.count.evaluate(binding)), amounts)
        in_idx = {p.name: self.in_chan[p.name][y] for p in sp.streams}
        out_idx = {p.name: self.out_chan[p.name][y] for p in sp.streams}

        def make(channels: list[Channel], host: Host):
            in_ch = {n: channels[i] for n, i in in_idx.items()}
            out_ch = {n: channels[i] for n, i in out_idx.items()}
            # One reusable Recv per input channel (and one Par of them for
            # the repeater): requests carry no per-use state, and a process
            # never has two outstanding requests, so reuse is safe and
            # saves an allocation per communication.
            recv = {n: Recv(c) for n, c in in_ch.items()}
            par_recv = Par([recv[n] for n in moving]) if moving else None

            def body():
                local: dict[str, RuntimeValue] = {}
                # -- pre phase: stationary loads, then moving soaks ----------
                for n in stationary:
                    soak, drain = amounts[n]
                    local[n] = yield recv[n]
                    for _ in range(drain):  # loading passes = drain (Sect. 6.5)
                        value = yield recv[n]
                        yield Send(out_ch[n], value)
                # Soak passes are interleaved round-robin across the moving
                # streams (one element per stream per round, in declaration
                # order) rather than one stream at a time.  With bounded
                # channels, a node that insists on finishing stream A's soak
                # can deadlock against a neighbour that is blocked mid-way
                # through stream B: the neighbour's repeater (which emits one
                # element of *every* stream per statement) never runs, so A's
                # supply dries up.  Round-robin keeps every node's demand
                # aligned with the one-per-stream-per-tick order in which the
                # repeaters upstream produce.  Per-stream FIFO order -- and
                # hence every computed value -- is unchanged.
                soak_left = {n: amounts[n][0] for n in moving}
                while any(soak_left.values()):
                    for n in moving:
                        if soak_left[n]:
                            soak_left[n] -= 1
                            value = yield recv[n]
                            yield Send(out_ch[n], value)
                # -- the repeater: the basic statements of this process ------
                for indices in index_envs:
                    if par_recv is not None:
                        received = yield par_recv
                    else:
                        received = []
                    values = dict(zip(moving, received))
                    values.update(local)
                    updated = body_ast.execute(values, indices)
                    for n in stationary:
                        local[n] = updated[n]
                    if moving:
                        yield Par([Send(out_ch[n], updated[n]) for n in moving])
                # -- post phase: moving drains, then stationary recoveries ---
                # Drain passes round-robin for the same reason as the soaks:
                # the node upstream may still be in its repeater, emitting one
                # element of every stream per statement.
                drain_left = {n: amounts[n][1] for n in moving}
                while any(drain_left.values()):
                    for n in moving:
                        if drain_left[n]:
                            drain_left[n] -= 1
                            value = yield recv[n]
                            yield Send(out_ch[n], value)
                for n in stationary:
                    soak, _ = amounts[n]
                    for _ in range(soak):  # recovery passes = soak (Sect. 6.5)
                        value = yield recv[n]
                        yield Send(out_ch[n], value)
                    yield Send(out_ch[n], local[n])

            return body()

        # A compute node with moving streams yields Par requests in its
        # repeater; only the no-moving-stream (fully stationary) case is
        # single-op throughout.
        self.plan.processes.append((f"P{y}", make, not moving))
        self.plan.node_counts["compute"] += 1

    # ------------------------------------------------------------------
    def build(self) -> None:
        for plan in self.sp.streams:
            self._build_stream(plan)
        for y in self.space:
            if self._in_cs(y):
                self._build_compute_node(y)
            else:
                self._build_buffer_node(y)


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
#: id(compiled program) -> (weakref to it, {env key: NetworkPlan}).  Keyed
#: by identity -- SystolicProgram carries unhashable members -- with a
#: finalizer evicting the entry when the program dies, so plans never pin
#: every design a campaign ever built.  The stored weakref guards against
#: id reuse: a recycled id with a dangling ref rebuilds instead of serving
#: another program's plan.
_plans: dict[int, tuple["weakref.ref", dict]] = {}
_PLAN_STATS = {"builds": 0, "reuses": 0}
_PLANS_PER_PROGRAM = 8


def plan_stats() -> dict:
    """Build/reuse counters of the plan cache (reset never; monotonic)."""
    return dict(_PLAN_STATS)


profiling.register("network_plans", plan_stats)


def network_plan(
    sp: SystolicProgram, env: Mapping[str, Numeric]
) -> NetworkPlan:
    """The memoized :class:`NetworkPlan` for ``(sp, env)``.

    Keyed on the compiled program *object* and the concrete size binding,
    so every execution path of one instance -- the simulator, the
    capacity-invariance re-run, the LSGP fold -- shares one plan.
    """
    key_id = id(sp)
    entry = _plans.get(key_id)
    if entry is None or entry[0]() is not sp:
        per_program: dict = {}
        _plans[key_id] = (weakref.ref(sp), per_program)
        weakref.finalize(sp, _plans.pop, key_id, None)
    else:
        per_program = entry[1]
    key = tuple(sorted(env.items()))
    plan = per_program.get(key)
    if plan is None:
        if len(per_program) >= _PLANS_PER_PROGRAM:
            per_program.clear()
        plan = per_program[key] = NetworkPlan(sp, env)
        _PLAN_STATS["builds"] += 1
    else:
        _PLAN_STATS["reuses"] += 1
    return plan


def build_network(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    *,
    channel_capacity: int = 1,
    worker_of: Callable[[Point], int] | None = None,
    interband_capacity: int = 2,
) -> ProcessNetwork:
    """Instantiate a compiled program at a concrete problem size.

    ``worker_of`` enables the LSGP fold: a channel between PS points on
    different workers gets ``interband_capacity`` buffer slots (an
    inter-band buffer), while intra-band channels keep
    ``channel_capacity``.  Extra buffer space never changes results (Kahn
    determinism) -- only the timing model.
    """
    return network_plan(sp, env).instantiate(
        inputs,
        channel_capacity=channel_capacity,
        worker_of=worker_of,
        interband_capacity=interband_capacity,
    )


def execute(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs: Mapping[str, Mapping[Point, RuntimeValue] | int] | None = None,
    *,
    channel_capacity: int = 1,
    max_rounds: int | None = None,
    validate: bool = True,
    timing: bool = True,
) -> tuple[dict, SchedulerStats]:
    """Build, run, and return ``(final variable state, stats)``.

    ``validate`` runs the pre-flight conservation check (better diagnostics
    than a deadlock); every element of every variable must be recovered
    exactly once.  It is performed once per plan, not once per run.
    ``timing=False`` skips the Lamport-clock bookkeeping (stats carry zero
    makespan); values, deadlock detection and FIFO order are unaffected.
    """
    t0 = time.perf_counter()
    plan = network_plan(sp, env)
    if validate:
        plan.validate()
    network = plan.instantiate(inputs, channel_capacity=channel_capacity)
    t1 = time.perf_counter()
    stats = network.run(max_rounds=max_rounds, timing=timing)
    for splan in sp.streams:
        network.host.check_full_recovery(splan.name)
    t2 = time.perf_counter()
    profiling.add_stage("network.build", t1 - t0)
    profiling.add_stage("network.execute", t2 - t1)
    return network.host.final, stats
