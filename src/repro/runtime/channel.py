"""Channels: bounded FIFO links between two processes.

The paper's communication is synchronous (rendezvous); it also observes that
"the synchronous communication provides a buffer of size 1" when counting
buffers (Section 7.6) -- a blocked sender effectively holds one element on
the link.  The simulator makes that explicit: a :class:`Channel` has a
``capacity`` (default 1, the paper's counting; 0 gives a pure rendezvous
where a send only completes when a receive takes the value directly).

Channels are mutually independent, as Section 4 requires; each records the
number of messages carried and the timestamp bookkeeping used for the
virtual-time (makespan) metric.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import RuntimeSimulationError


# slots=True: one Message per carried element; the scheduler's fast engine
# also constructs these directly when it inlines the push transition
# (scheduler._single_send), so keep the two fields in sync with push().
@dataclass(slots=True)
class Message:
    value: Any
    timestamp: int


class Channel:
    """A point-to-point bounded FIFO."""

    __slots__ = (
        "name",
        "capacity",
        "queue",
        "waiting_senders",
        "waiting_receivers",
        "messages_carried",
        "max_occupancy",
    )

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 0:
            raise RuntimeSimulationError(f"negative capacity for channel {name}")
        self.name = name
        self.capacity = capacity
        self.queue: deque[Message] = deque()
        #: (process, Send) pairs blocked on this channel
        self.waiting_senders: deque = deque()
        #: (process, Recv) pairs blocked on this channel
        self.waiting_receivers: deque = deque()
        self.messages_carried = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------------
    def has_room(self) -> bool:
        return len(self.queue) < self.capacity

    def push(self, value: Any, timestamp: int) -> None:
        if not self.has_room():
            raise RuntimeSimulationError(f"push into full channel {self.name}")
        self.queue.append(Message(value, timestamp))
        self.messages_carried += 1
        self.max_occupancy = max(self.max_occupancy, len(self.queue))

    def pop(self) -> Message:
        if not self.queue:
            raise RuntimeSimulationError(f"pop from empty channel {self.name}")
        return self.queue.popleft()

    def __repr__(self) -> str:
        return f"Channel({self.name}, {len(self.queue)}/{self.capacity})"
