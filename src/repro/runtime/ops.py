"""Communication requests yielded by process coroutines.

A process generator yields one of:

* ``Send(channel, value)``    -- blocks until the channel accepts the value;
* ``Recv(channel)``           -- blocks until a value is available; the
                                 scheduler resumes the generator with it;
* ``Par(ops)``                -- a parallel communication set (the paper's
                                 ``par ... end par`` around the basic
                                 statement's receives/sends): each member
                                 completes independently, in any order; the
                                 process resumes once all have completed,
                                 receiving a list with the received values
                                 in member order (``None`` for sends).

``Par`` is what makes the basic statement's synchronous communications
deadlock-insensitive to neighbour phase skew: a process never insists on
one particular stream being serviced first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence, Union

from repro.runtime.channel import Channel
from repro.util.errors import RuntimeSimulationError


# slots=True: requests are allocated on the hot scheduler path (one Send
# per latch/repeater move) and their attributes are read on every dispatch;
# slotted instances are smaller and the reads skip the instance dict.
@dataclass(slots=True)
class Send:
    channel: Channel
    value: Any

    def __repr__(self) -> str:
        return f"Send({self.channel.name})"


@dataclass(slots=True)
class Recv:
    channel: Channel

    def __repr__(self) -> str:
        return f"Recv({self.channel.name})"


@dataclass(slots=True)
class Par:
    ops: tuple[Union[Send, Recv], ...]

    def __init__(self, ops: Sequence[Union[Send, Recv]]) -> None:
        for op in ops:
            if not isinstance(op, (Send, Recv)):
                raise RuntimeSimulationError(
                    f"Par may only contain Send/Recv, got {op!r}"
                )
        self.ops = tuple(ops)

    def __repr__(self) -> str:
        return f"Par({', '.join(map(repr, self.ops))})"


Op = Union[Send, Recv, Par]
