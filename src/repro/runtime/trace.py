"""Execution tracing and utilisation analysis.

An optional :class:`Tracer` can be attached to a scheduler run to record
per-process activity in virtual time.  From the trace one can compute

* per-process busy intervals (a Gantt-style profile),
* array utilisation: the fraction of the makespan each process spends on
  its own communications,
* the wavefront profile: how many processes completed an event at each
  virtual time -- the asynchronous analogue of "which cells fire at step t"
  in the synchronous systolic array.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.runtime.scheduler import SchedulerStats


@dataclass(frozen=True)
class TraceEvent:
    """One completed communication request of one process."""

    process: str
    clock: int  # the process clock right after the request completed
    kind: str  # "send" | "recv" | "par"


@dataclass
class Trace:
    """A flat event log plus derived views."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, process: str, clock: int, kind: str) -> None:
        self.events.append(TraceEvent(process, clock, kind))

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> int:
        return max((e.clock for e in self.events), default=0)

    def per_process_events(self) -> dict[str, list[TraceEvent]]:
        out: dict[str, list[TraceEvent]] = defaultdict(list)
        for e in self.events:
            out[e.process].append(e)
        return dict(out)

    def busy_intervals(self) -> dict[str, tuple[int, int]]:
        """(first activity, last activity) per process in virtual time."""
        out: dict[str, tuple[int, int]] = {}
        for name, events in self.per_process_events().items():
            clocks = [e.clock for e in events]
            out[name] = (min(clocks), max(clocks))
        return out

    def utilisation(self) -> dict[str, float]:
        """events / makespan per process -- a rough busy fraction."""
        span = max(1, self.makespan)
        return {
            name: len(events) / span
            for name, events in self.per_process_events().items()
        }

    def wavefront(self) -> dict[int, int]:
        """virtual time -> number of events completing at that time."""
        out: dict[int, int] = defaultdict(int)
        for e in self.events:
            out[e.clock] += 1
        return dict(out)

    def compute_processes(self) -> list[str]:
        return sorted(
            name for name in self.per_process_events() if name.startswith("P(")
        )

    def summary(self) -> str:
        procs = self.per_process_events()
        lines = [
            f"trace: {len(self.events)} events, {len(procs)} processes, "
            f"makespan {self.makespan}"
        ]
        util = self.utilisation()
        compute = self.compute_processes()
        if compute:
            avg = sum(util[p] for p in compute) / len(compute)
            lines.append(f"  mean compute-process utilisation: {avg:.3f}")
        return "\n".join(lines)


def attach_tracer(network) -> Trace:
    """Hook a fresh :class:`Trace` into ``network``'s scheduler.

    Tracing rides the scheduler's resume-path hook: one ``(process, clock,
    kind)`` callback per completed request, and a single pointer test per
    resume when no tracer is attached -- zero-cost when off.  (The previous
    implementation wrapped every process generator, adding a frame per
    process whether or not anyone read the trace.)

    Attaching is *idempotent*: a repeat attach replaces the hook, so each
    request is recorded exactly once and only the newest :class:`Trace`
    receives events.
    """
    trace = Trace()
    network.scheduler._trace = trace.record
    return trace


def trace_run(network, max_rounds: int | None = None) -> tuple[SchedulerStats, Trace]:
    """Run a :class:`ProcessNetwork` with tracing attached.

    A network runs exactly once (see :meth:`Scheduler.run`): a second
    ``trace_run`` on the same network raises
    :class:`~repro.util.errors.RuntimeSimulationError` instead of silently
    returning an empty trace from exhausted generators.  Repeat
    :func:`attach_tracer` *before* the run is still fine -- attaching is
    idempotent.
    """
    trace = attach_tracer(network)
    stats = network.run(max_rounds=max_rounds)
    return stats, trace
