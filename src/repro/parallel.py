"""Parallel, batched design-space exploration.

"Once [step] has been derived, many different place functions are
possible" (Section 3.2) -- and costing all of them is embarrassingly
parallel: each candidate is a pure function of ``(program, step, place,
loading)``, so workers need no shared state.  This module fans
:func:`repro.systolic.explore.sweep_candidate` over the bounded place
design space with a :mod:`multiprocessing` pool and batches *multi-size*
sweeps so each design is compiled exactly once and its symbolic closed
forms are evaluated at every requested size (compilation dominates the
per-candidate cost, so the batching alone is a measured win even on one
core -- see ``tools/bench_explore.py``).

The heavyweight context ``(program, step, envs)`` travels to each worker
once via the pool initializer -- together with a snapshot of the driver's
cross-design derivation memo (:data:`repro.core.memo.MEMO`), so workers
start warm instead of re-deriving shared forms -- and individual tasks are
just place row tuples (:func:`repro.systolic.schedule.candidate_tasks`).
Results come back in candidate order and are ranked with the same
deterministic key as the serial path, so ``jobs=N`` produces
byte-identical tables for every N.

Degenerate-parallelism guard: a pool cannot beat the serial path on a
single-CPU machine (BENCH_explore.json's PR-2 numbers show jobs=2 at 0.93x
serial there), and workers beyond the candidate count are pure overhead.
``sweep_designs`` therefore clamps the worker count to the task count and
falls back to the serial path (with a :class:`RuntimeWarning`) when only
one CPU is available; ``force_pool=True`` overrides the CPU check for
tests and measurements.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import profiling
from repro.core.memo import MEMO
from repro.geometry.linalg import Matrix
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.systolic.explore import DesignCost, rank_costs, sweep_candidate
from repro.systolic.schedule import candidate_tasks

__all__ = [
    "SweepTimings",
    "SweepResult",
    "pool_map",
    "resolve_jobs",
    "sweep_designs",
    "explore_designs_parallel",
]


@dataclass(frozen=True)
class SweepTimings:
    """Wall-clock stage breakdown of one sweep."""

    synthesis_s: float  # place-candidate enumeration
    cost_s: float  # compile + cost over all candidates and sizes
    total_s: float
    jobs: int  # effective worker count (after the serial fallback)
    candidates: int  # enumerated place candidates
    compiled: int  # candidates some loading axis compiled

    def row(self) -> dict:
        return {
            "synthesis_s": round(self.synthesis_s, 6),
            "cost_s": round(self.cost_s, 6),
            "total_s": round(self.total_s, 6),
            "jobs": self.jobs,
            "candidates": self.candidates,
            "compiled": self.compiled,
        }


@dataclass(frozen=True)
class SweepResult:
    """Ranked :class:`DesignCost` tables, one per requested size."""

    by_size: tuple[tuple[dict, tuple[DesignCost, ...]], ...]
    timings: SweepTimings

    def costs_at(self, env: Mapping[str, Numeric]) -> list[DesignCost]:
        target = dict(env)
        for size_env, costs in self.by_size:
            if size_env == target:
                return list(costs)
        raise KeyError(f"size {target!r} was not part of this sweep")


# -- worker side -----------------------------------------------------------
# The pool initializer stores the shared context in module globals of the
# *worker* process; tasks then only carry the place rows.
_WORKER: dict = {}


def _init_worker(program: SourceProgram, step_rows, envs, memo_state=None) -> None:
    _WORKER["program"] = program
    _WORKER["step"] = Matrix(step_rows)
    _WORKER["envs"] = envs
    if memo_state:
        # Pickling rebuilds every symbolic object through its constructor,
        # re-interning it in this process, so the imported entries are
        # canonical here too.
        MEMO.import_state(memo_state)


def _sweep_task(place_rows):
    return sweep_candidate(
        _WORKER["program"], _WORKER["step"], Matrix(place_rows), _WORKER["envs"]
    )


# -- driver side -----------------------------------------------------------
def resolve_jobs(jobs: int | None) -> int:
    """``None``/1 -> serial; 0 -> one worker per CPU; N -> N workers."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def pool_map(
    task_fn,
    tasks: Sequence,
    *,
    jobs: int | None = 1,
    force_pool: bool = False,
    initializer=None,
    initargs: tuple = (),
) -> tuple[list, int]:
    """Map picklable tasks over a clamped process pool; the shared engine
    behind :func:`sweep_designs` and ``repro fuzz``.

    Returns ``(results in task order, effective worker count)``.  The
    worker count is clamped to the task count, and the call falls back to
    the serial path -- emitting a :class:`RuntimeWarning` -- when only one
    CPU is available (``force_pool=True`` overrides, for measurements and
    cross-process tests).  The serial path runs ``initializer`` in-process
    and then applies ``task_fn`` directly, so results are identical for
    every ``jobs`` value.
    """
    n_jobs = resolve_jobs(jobs)
    pool_jobs = min(n_jobs, len(tasks)) if tasks else 1
    if pool_jobs > 1 and not force_pool and (os.cpu_count() or 1) == 1:
        warnings.warn(
            f"requested jobs={n_jobs} but only 1 CPU is available; using "
            "the serial path (pass force_pool=True to override)",
            RuntimeWarning,
            stacklevel=3,
        )
        pool_jobs = 1
    if pool_jobs > 1:
        ctx = multiprocessing.get_context()
        chunksize = max(1, len(tasks) // (pool_jobs * 4))
        with ctx.Pool(
            processes=pool_jobs,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            return pool.map(task_fn, tasks, chunksize=chunksize), pool_jobs
    if initializer is not None:
        initializer(*initargs)
    return [task_fn(t) for t in tasks], pool_jobs


def sweep_designs(
    program: SourceProgram,
    step: Matrix,
    envs: Sequence[Mapping[str, Numeric]],
    *,
    bound: int = 1,
    limit: int | None = None,
    max_candidates: int | None = None,
    jobs: int | None = None,
    force_pool: bool = False,
) -> SweepResult:
    """Cost the whole bounded place design space at every requested size.

    Each compilable candidate is compiled once and costed at each entry of
    ``envs``; ``jobs`` > 1 distributes candidates over a process pool.  The
    per-size tables are ranked exactly like serial
    :func:`repro.systolic.explore.explore_designs` output.

    ``max_candidates`` truncates the candidate space to its deterministic
    enumeration prefix -- a cost cap for callers (like the fuzz harness's
    pool-vs-serial comparison) that need a representative sweep, not an
    exhaustive one.  ``timings.candidates`` reports the truncated count.

    The effective worker count is clamped to the candidate count, and the
    sweep falls back to the serial path -- emitting a
    :class:`RuntimeWarning` -- when ``os.cpu_count()`` is 1 (process
    parallelism can only add overhead there); ``timings.jobs`` records the
    effective count.  Pass ``force_pool=True`` to keep the pool regardless
    (measurements, cross-process tests).
    """
    if not envs:
        raise ValueError("sweep_designs needs at least one size environment")
    t_start = time.perf_counter()
    size_envs = [dict(e) for e in envs]
    tasks = candidate_tasks(program, step, bound=bound)
    if max_candidates is not None:
        if max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        tasks = tasks[:max_candidates]
    t_synth = time.perf_counter()

    results, pool_jobs = pool_map(
        _sweep_task,
        tasks,
        jobs=jobs,
        force_pool=force_pool,
        initializer=_init_worker,
        initargs=(program, step.rows, size_envs, MEMO.export_state()),
    )
    t_cost = time.perf_counter()

    compiled = 0
    per_size: list[list[DesignCost]] = [[] for _ in size_envs]
    for result in results:
        if result is None:
            continue
        compiled += 1
        for i, cost in enumerate(result):
            if cost is not None:
                per_size[i].append(cost)
    by_size = tuple(
        (env, tuple(rank_costs(costs, limit)))
        for env, costs in zip(size_envs, per_size)
    )
    t_end = time.perf_counter()
    profiling.add_stage("sweep.synthesis", t_synth - t_start)
    profiling.add_stage("sweep.cost", t_cost - t_synth)
    profiling.add_stage("sweep.rank", t_end - t_cost)
    timings = SweepTimings(
        synthesis_s=t_synth - t_start,
        cost_s=t_cost - t_synth,
        total_s=t_end - t_start,
        jobs=pool_jobs,
        candidates=len(tasks),
        compiled=compiled,
    )
    return SweepResult(by_size=by_size, timings=timings)


def explore_designs_parallel(
    program: SourceProgram,
    step: Matrix,
    env: Mapping[str, Numeric],
    *,
    bound: int = 1,
    limit: int | None = None,
    jobs: int | None = 0,
) -> list[DesignCost]:
    """Parallel :func:`~repro.systolic.explore.explore_designs` (one size)."""
    result = sweep_designs(
        program, step, [env], bound=bound, limit=limit, jobs=jobs
    )
    return list(result.by_size[0][1])
