"""Parallel, batched design-space exploration.

"Once [step] has been derived, many different place functions are
possible" (Section 3.2) -- and costing all of them is embarrassingly
parallel: each candidate is a pure function of ``(program, step, place,
loading)``, so workers need no shared state.  This module fans
:func:`repro.systolic.explore.sweep_candidate` over the bounded place
design space with a :mod:`multiprocessing` pool and batches *multi-size*
sweeps so each design is compiled exactly once and its symbolic closed
forms are evaluated at every requested size (compilation dominates the
per-candidate cost, so the batching alone is a measured win even on one
core -- see ``tools/bench_explore.py``).

The heavyweight context ``(program, step, envs)`` travels to each worker
once via the pool initializer; individual tasks are just place row tuples
(:func:`repro.systolic.schedule.candidate_tasks`).  Results come back in
candidate order and are ranked with the same deterministic key as the
serial path, so ``jobs=N`` produces byte-identical tables for every N.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.geometry.linalg import Matrix
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.systolic.explore import DesignCost, rank_costs, sweep_candidate
from repro.systolic.schedule import candidate_tasks

__all__ = [
    "SweepTimings",
    "SweepResult",
    "resolve_jobs",
    "sweep_designs",
    "explore_designs_parallel",
]


@dataclass(frozen=True)
class SweepTimings:
    """Wall-clock stage breakdown of one sweep."""

    synthesis_s: float  # place-candidate enumeration
    cost_s: float  # compile + cost over all candidates and sizes
    total_s: float
    jobs: int
    candidates: int  # enumerated place candidates
    compiled: int  # candidates some loading axis compiled

    def row(self) -> dict:
        return {
            "synthesis_s": round(self.synthesis_s, 6),
            "cost_s": round(self.cost_s, 6),
            "total_s": round(self.total_s, 6),
            "jobs": self.jobs,
            "candidates": self.candidates,
            "compiled": self.compiled,
        }


@dataclass(frozen=True)
class SweepResult:
    """Ranked :class:`DesignCost` tables, one per requested size."""

    by_size: tuple[tuple[dict, tuple[DesignCost, ...]], ...]
    timings: SweepTimings

    def costs_at(self, env: Mapping[str, Numeric]) -> list[DesignCost]:
        target = dict(env)
        for size_env, costs in self.by_size:
            if size_env == target:
                return list(costs)
        raise KeyError(f"size {target!r} was not part of this sweep")


# -- worker side -----------------------------------------------------------
# The pool initializer stores the shared context in module globals of the
# *worker* process; tasks then only carry the place rows.
_WORKER: dict = {}


def _init_worker(program: SourceProgram, step_rows, envs) -> None:
    _WORKER["program"] = program
    _WORKER["step"] = Matrix(step_rows)
    _WORKER["envs"] = envs


def _sweep_task(place_rows):
    return sweep_candidate(
        _WORKER["program"], _WORKER["step"], Matrix(place_rows), _WORKER["envs"]
    )


# -- driver side -----------------------------------------------------------
def resolve_jobs(jobs: int | None) -> int:
    """``None``/1 -> serial; 0 -> one worker per CPU; N -> N workers."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def sweep_designs(
    program: SourceProgram,
    step: Matrix,
    envs: Sequence[Mapping[str, Numeric]],
    *,
    bound: int = 1,
    limit: int | None = None,
    jobs: int | None = None,
) -> SweepResult:
    """Cost the whole bounded place design space at every requested size.

    Each compilable candidate is compiled once and costed at each entry of
    ``envs``; ``jobs`` > 1 distributes candidates over a process pool.  The
    per-size tables are ranked exactly like serial
    :func:`repro.systolic.explore.explore_designs` output.
    """
    if not envs:
        raise ValueError("sweep_designs needs at least one size environment")
    t_start = time.perf_counter()
    size_envs = [dict(e) for e in envs]
    tasks = candidate_tasks(program, step, bound=bound)
    t_synth = time.perf_counter()

    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1 and len(tasks) > 1:
        ctx = multiprocessing.get_context()
        chunksize = max(1, len(tasks) // (n_jobs * 4))
        with ctx.Pool(
            processes=n_jobs,
            initializer=_init_worker,
            initargs=(program, step.rows, size_envs),
        ) as pool:
            results = pool.map(_sweep_task, tasks, chunksize=chunksize)
    else:
        results = [
            sweep_candidate(program, step, Matrix(rows), size_envs)
            for rows in tasks
        ]
    t_cost = time.perf_counter()

    compiled = 0
    per_size: list[list[DesignCost]] = [[] for _ in size_envs]
    for result in results:
        if result is None:
            continue
        compiled += 1
        for i, cost in enumerate(result):
            if cost is not None:
                per_size[i].append(cost)
    by_size = tuple(
        (env, tuple(rank_costs(costs, limit)))
        for env, costs in zip(size_envs, per_size)
    )
    timings = SweepTimings(
        synthesis_s=t_synth - t_start,
        cost_s=t_cost - t_synth,
        total_s=time.perf_counter() - t_start,
        jobs=n_jobs,
        candidates=len(tasks),
        compiled=compiled,
    )
    return SweepResult(by_size=by_size, timings=timings)


def explore_designs_parallel(
    program: SourceProgram,
    step: Matrix,
    env: Mapping[str, Numeric],
    *,
    bound: int = 1,
    limit: int | None = None,
    jobs: int | None = 0,
) -> list[DesignCost]:
    """Parallel :func:`~repro.systolic.explore.explore_designs` (one size)."""
    result = sweep_designs(
        program, step, [env], bound=bound, limit=limit, jobs=jobs
    )
    return list(result.by_size[0][1])
