"""Extensions beyond the paper's core scheme.

Section 8 lists the refinements "actual machines impose": partitioning when
there are not enough processors [23], re-routing, projection.  This package
implements the first as an execution-model extension
(:mod:`repro.extensions.partition`): virtual processes are assigned to a
finite set of physical workers and the virtual-time accounting serializes
each worker, quantifying how the generated programs degrade when folded
onto a smaller machine.
"""

from repro.extensions.pipelining import (
    PipelinedProgram,
    LiftedStream,
    pipeline_program,
)
from repro.extensions.partition import (
    PartitionedSchedule,
    StreamFold,
    SymbolicPartition,
    TileBand,
    band_edges,
    block_assignment,
    compile_partition,
    partitioned_execute,
    partitioned_schedule,
    round_robin_assignment,
    wavefront_tile_bands,
)

__all__ = [
    "PipelinedProgram",
    "LiftedStream",
    "pipeline_program",
    "PartitionedSchedule",
    "StreamFold",
    "SymbolicPartition",
    "TileBand",
    "band_edges",
    "block_assignment",
    "compile_partition",
    "partitioned_execute",
    "partitioned_schedule",
    "round_robin_assignment",
    "wavefront_tile_bands",
]
