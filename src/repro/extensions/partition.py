"""Partitioning onto a fixed number of physical processors.

The abstract systolic program spawns one process per process-space point --
fine for the paper's idealisation, impossible on a 4-node transputer box.
Moldovan & Fortes's partitioning (the paper's reference [23]) folds the
virtual array onto a fixed machine; here we model the *cost* of the fold
exactly while keeping communication semantics unchanged:

* an *assignment* maps every process (computation, buffer, i/o) to one of
  ``p`` workers;
* the scheduler's virtual-time model then serializes each worker -- a
  worker finishes at most one communication per tick -- so the reported
  makespan is that of the folded machine (list scheduling on the dataflow).

Two standard assignment shapes are provided: **block** (contiguous tiles of
the process space, LSGP-style: good locality, preserves the pipeline) and
**round-robin** (LPGS-style interleaving).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.program import SystolicProgram
from repro.geometry.point import Point
from repro.runtime.network import build_network
from repro.runtime.scheduler import SchedulerStats
from repro.symbolic.affine import Numeric
from repro.util.errors import RuntimeSimulationError

Assignment = Callable[[str, int], int]  # (process name, workers) -> worker


def _position_of(name: str) -> Point | None:
    """Recover the process-space point from a process name, if any.

    Network process names embed their position: ``P(1, 2)``, ``B:a(0, 3)``,
    ``L:b(2,)#0``, ``IN:a(-3, 1)``, ``OUT:c(3, 1)``.
    """
    if "(" not in name:
        return None
    inside = name[name.index("(") + 1 : name.index(")")]
    parts = [p for p in inside.replace(",", " ").split() if p]
    try:
        return Point(int(p) for p in parts)
    except Exception:
        return None


def round_robin_assignment(names: list[str], workers: int) -> dict[str, int]:
    """Deterministic interleaving of processes over workers (LPGS-style)."""
    if workers < 1:
        raise RuntimeSimulationError("need at least one worker")
    return {name: i % workers for i, name in enumerate(sorted(names))}


def block_assignment(names: list[str], workers: int) -> dict[str, int]:
    """Contiguous tiles of the leading process-space coordinate (LSGP-style).

    Processes are ordered by their embedded position (i/o and buffer
    processes follow their boundary point) and cut into ``workers`` equal
    contiguous slabs, preserving neighbourhood within a worker.
    """
    if workers < 1:
        raise RuntimeSimulationError("need at least one worker")
    keyed = sorted(
        names, key=lambda n: (_position_of(n) or Point.of(0), n)
    )
    out: dict[str, int] = {}
    per_block = max(1, (len(keyed) + workers - 1) // workers)
    for i, name in enumerate(keyed):
        out[name] = min(workers - 1, i // per_block)
    return out


def partitioned_execute(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs,
    *,
    workers: int,
    assignment: str = "block",
    channel_capacity: int = 1,
    max_rounds: int | None = None,
) -> tuple[dict, SchedulerStats]:
    """Run a compiled design on a ``workers``-processor machine model.

    Results are identical to the unbounded run (the fold changes timing,
    never semantics); the returned stats carry the folded makespan.
    """
    network = build_network(sp, env, inputs, channel_capacity=channel_capacity)
    names = [p.name for p in network.scheduler._procs]
    if assignment == "block":
        mapping = block_assignment(names, workers)
    elif assignment == "round_robin":
        mapping = round_robin_assignment(names, workers)
    else:
        raise RuntimeSimulationError(f"unknown assignment {assignment!r}")
    network.scheduler.assign_workers(mapping)
    stats = network.run(max_rounds=max_rounds)
    for plan in sp.streams:
        network.host.check_full_recovery(plan.name)
    return network.host.final, stats
