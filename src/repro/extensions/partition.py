"""Partitioning onto a fixed number of physical processors.

The abstract systolic program spawns one process per process-space point --
fine for the paper's idealisation, impossible on a 4-node transputer box.
Moldovan & Fortes's partitioning (the paper's reference [23]) folds the
virtual array onto a fixed machine.  This module implements the fold in
three layers:

* an *assignment* maps every process (computation, buffer, i/o) to one of
  ``p`` workers; the scheduler's virtual-time model then serializes each
  worker -- a worker finishes at most one communication per tick -- so the
  reported makespan is that of the folded machine (list scheduling on the
  dataflow).  Two standard shapes: **block** (contiguous tile bands of the
  leading place coordinate, LSGP-style: good locality, preserves the
  pipeline) and **round-robin** (LPGS-style interleaving).

* a **symbolic partitioned compilation** (:func:`compile_partition`): for a
  fixed ``p`` (band) or ``p x q`` (tile) physical array the fold is derived
  *once per design* -- the tiled place-coordinate rows, the per-stream
  boundary-crossing analysis (which streams move across band boundaries,
  with how many interposed latches), and the inter-band buffer capacity --
  and memoized in the cross-design memo (:data:`repro.core.memo.MEMO`)
  keyed by ``(design_fingerprint, shape)``, exactly like the unbounded
  closed forms.  Specializing to a concrete problem size
  (:func:`partitioned_schedule`) only evaluates the cached formulas and
  bins the wavefronts: no per-band derivation is re-run, so a warm
  symbolic compilation serves any problem size in milliseconds.

* two **partitioned execution** paths, both bit-identical to the unbounded
  oracle: the simulator fold (:func:`partitioned_execute` -- the process
  network is built with inter-band buffer capacity on every channel that
  crosses a band boundary, then each worker is serialized), and the banded
  vectorized path (:func:`repro.target.npgen.execute_numpy_banded` -- the
  per-band activity masks of the :class:`PartitionedSchedule` drive banded
  batched wavefront steps).

:func:`wavefront_tile_bands` and :func:`block_assignment` cut the *same*
contiguous leading-coordinate intervals (via the shared
:func:`band_edges` splitter), so the bands the cost model prices are
exactly the slabs the fold assigns.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.memo import MEMO
from repro.core.program import SystolicProgram
from repro.geometry.point import Point
from repro.runtime.network import build_network
from repro.runtime.scheduler import SchedulerStats
from repro.symbolic.affine import Numeric
from repro.util import env_int
from repro.util.errors import RuntimeSimulationError

Assignment = Callable[[str, int], int]  # (process name, workers) -> worker

#: cross-design memo table holding the symbolic partitioned compilations
PARTITION_MEMO_TABLE = "partition_symbolic"


def _position_of(name: str) -> Point | None:
    """Recover the process-space point from a process name, if any.

    Network process names embed their position: ``P(1, 2)``, ``B:a(0, 3)``,
    ``L:b(2,)#0``, ``IN:a(-3, 1)``, ``OUT:c(3, 1)``.
    """
    if "(" not in name:
        return None
    inside = name[name.index("(") + 1 : name.index(")")]
    parts = [p for p in inside.replace(",", " ").split() if p]
    try:
        return Point(int(p) for p in parts)
    except Exception:
        return None


# ----------------------------------------------------------------------
# the shared band splitter
# ----------------------------------------------------------------------
def band_edges(lo: int, hi: int, bands: int) -> tuple[int, ...]:
    """Cut the integer interval ``[lo, hi]`` into near-equal contiguous
    bands; band ``k`` is ``[edges[k], edges[k+1] - 1]``.

    ``bands`` is clamped to the interval's span, and the first
    ``span % bands`` bands get one extra column.  This single splitter is
    used by every layer of the fold -- :func:`block_assignment`,
    :func:`wavefront_tile_bands` and :class:`PartitionedSchedule` -- so
    band membership agrees everywhere *by construction*.
    """
    if bands < 1:
        raise RuntimeSimulationError("need at least one band")
    if lo > hi:
        raise RuntimeSimulationError(f"empty band interval [{lo}, {hi}]")
    span = hi - lo + 1
    bands = min(bands, span)
    q, r = divmod(span, bands)
    edges = [lo]
    for k in range(bands):
        edges.append(edges[-1] + q + (1 if k < r else 0))
    return tuple(edges)


def band_of(edges: tuple[int, ...], coordinate: int) -> int:
    """The band a leading coordinate falls in, clamping outside points.

    I/o and external-buffer processes can sit outside the computation
    cells' coordinate range (e.g. ``IN:a(-3, 1)``); they are folded onto
    the nearest band so every process lands on a real worker.
    """
    if coordinate < edges[0]:
        return 0
    if coordinate >= edges[-1]:
        return len(edges) - 2
    return bisect_right(edges, coordinate) - 1


# ----------------------------------------------------------------------
# assignments (the list-scheduling fold)
# ----------------------------------------------------------------------
def round_robin_assignment(names: list[str], workers: int) -> dict[str, int]:
    """Deterministic interleaving of processes over workers (LPGS-style)."""
    if workers < 1:
        raise RuntimeSimulationError("need at least one worker")
    return {name: i % workers for i, name in enumerate(sorted(names))}


def _lead_interval(positions: Mapping[str, Point | None]) -> tuple[int, int] | None:
    """The leading-coordinate interval of the computation cells.

    Computation processes (``P(...)``) span exactly the cells the
    wavefront schedule covers; i/o, latch and buffer processes may sit
    outside and are clamped into the nearest band.  Networks without
    compute processes (degenerate) fall back to every embedded position.
    """
    lead = [
        int(pos[0])
        for name, pos in positions.items()
        if pos is not None and name.startswith("P(")
    ]
    if not lead:
        lead = [int(pos[0]) for pos in positions.values() if pos is not None]
    if not lead:
        return None
    return min(lead), max(lead)


def block_assignment(names: list[str], workers: int) -> dict[str, int]:
    """Contiguous tile bands of the leading process-space coordinate
    (LSGP-style).

    The leading-coordinate interval of the computation cells is cut into
    ``workers`` near-equal contiguous bands by :func:`band_edges` -- the
    *same* cut :func:`wavefront_tile_bands` prices -- and every process
    goes to the band its embedded position falls in (positions outside
    the computation interval clamp to the nearest band; processes without
    a position go to worker 0).
    """
    if workers < 1:
        raise RuntimeSimulationError("need at least one worker")
    positions = {name: _position_of(name) for name in names}
    interval = _lead_interval(positions)
    if interval is None:
        return {name: 0 for name in sorted(names)}
    edges = band_edges(interval[0], interval[1], workers)
    return {
        name: 0 if positions[name] is None
        else band_of(edges, int(positions[name][0]))
        for name in sorted(names)
    }


# ----------------------------------------------------------------------
# tile bands over the wavefront schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileBand:
    """One contiguous band of the leading place coordinate.

    ``active_steps[s]`` says whether any cell of the band executes a basic
    statement at wavefront step ``s`` of the schedule; ``work[s]`` counts
    how many.  Together the bands tile the whole process space, so for
    every step the band works sum to the wavefront's width.
    """

    index: int
    lo: int
    hi: int  # inclusive
    active_steps: tuple[bool, ...]
    work: tuple[int, ...]

    @property
    def total_work(self) -> int:
        return sum(self.work)

    @property
    def busy_steps(self) -> int:
        return sum(1 for a in self.active_steps if a)

    @property
    def soak(self) -> int:
        """Steps the band idles before its first basic statement."""
        for s, a in enumerate(self.active_steps):
            if a:
                return s
        return len(self.active_steps)

    @property
    def drain(self) -> int:
        """Steps the band idles after its last basic statement."""
        for s in range(len(self.active_steps) - 1, -1, -1):
            if self.active_steps[s]:
                return len(self.active_steps) - 1 - s
        return 0

    def __str__(self) -> str:
        return (
            f"band {self.index} [{self.lo}, {self.hi}]: "
            f"{self.total_work} statements over {self.busy_steps}/"
            f"{len(self.active_steps)} steps"
        )


def _bands_from_edges(edges: tuple[int, ...], works: list[list[int]]) -> tuple[TileBand, ...]:
    return tuple(
        TileBand(
            index=k,
            lo=edges[k],
            hi=edges[k + 1] - 1,
            active_steps=tuple(w > 0 for w in work),
            work=tuple(work),
        )
        for k, work in enumerate(works)
    )


def wavefront_tile_bands(
    sp: SystolicProgram, env: Mapping[str, Numeric], bands: int
) -> list[TileBand]:
    """Describe a block fold of the process space by wavefront activity.

    Cuts the range of the leading place coordinate into ``bands``
    near-equal contiguous intervals -- via :func:`band_edges`, the exact
    slabs of :func:`block_assignment` -- and, from the cached wavefront
    schedule, derives each band's per-step activity mask and statement
    counts.
    """
    from repro.analysis.wavefront import wavefront_schedule

    if bands < 1:
        raise RuntimeSimulationError("need at least one band")
    schedule = wavefront_schedule(sp, env)
    lead = [step.cells[0] for step in schedule.steps]
    lo = int(min(c.min() for c in lead))
    hi = int(max(c.max() for c in lead))
    edges = band_edges(lo, hi, bands)
    n = len(edges) - 1
    works = [
        [int(((c >= edges[k]) & (c <= edges[k + 1] - 1)).sum()) for c in lead]
        for k in range(n)
    ]
    return list(_bands_from_edges(edges, works))


# ----------------------------------------------------------------------
# the symbolic partitioned compilation (compile once per design + shape)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamFold:
    """Size-independent fold analysis of one stream.

    A stream whose one-hop vector has a non-zero leading component moves
    *across* band boundaries: every channel it owns between neighbouring
    bands becomes an inter-band buffer.  ``denominator`` is the stream's
    flow denominator (``denominator - 1`` interposed latches per link),
    which bounds the elements in flight on one link.
    """

    name: str
    lead_hop: int
    denominator: int
    stationary: bool

    @property
    def crosses(self) -> bool:
        return self.lead_hop != 0


@dataclass(frozen=True)
class SymbolicPartition:
    """Everything the fold derives that does *not* depend on problem size.

    Memoized per ``(design_fingerprint, shape)`` in the cross-design memo;
    :meth:`specialize` turns it into a concrete
    :class:`PartitionedSchedule` for one problem size by evaluating the
    stored formulas -- it never re-derives them.
    """

    fingerprint: str
    #: ``(p,)`` for a band fold, ``(p, q)`` for a p x q tile fold
    shape: tuple[int, ...]
    coords: tuple[str, ...]
    #: integer place-matrix rows of the tiled coordinates (leading row
    #: always present; second row only for a 2-d shape)
    tiled_rows: tuple[tuple[int, ...], ...]
    streams: tuple[StreamFold, ...]
    #: buffer slots given to every boundary-crossing channel: enough for a
    #: full link of the deepest crossing stream (denominator latches) + 1
    interband_capacity: int

    @property
    def requested_workers(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    def coordinate_range(
        self, row: tuple[int, ...], lows: list[int], highs: list[int]
    ) -> tuple[int, int]:
        """Closed-form range of ``row . x`` over the loop box.

        The extrema of an affine form over a box sit at box corners chosen
        per-coefficient by sign -- the formula the symbolic compilation
        derived; specialization just plugs in the concrete loop bounds.
        """
        lo = sum(min(g * a, g * b) for g, a, b in zip(row, lows, highs))
        hi = sum(max(g * a, g * b) for g, a, b in zip(row, lows, highs))
        return int(lo), int(hi)

    def specialize(
        self, sp: SystolicProgram, env: Mapping[str, Numeric]
    ) -> PartitionedSchedule:
        """Instantiate the fold at one problem size (pure evaluation)."""
        from repro.analysis.wavefront import synchronous_wavefronts

        ienv = {k: int(v) for k, v in env.items()}
        lows = [lp.lower.evaluate_int(ienv) for lp in sp.source.loops]
        highs = [lp.upper.evaluate_int(ienv) for lp in sp.source.loops]
        if any(a > b for a, b in zip(lows, highs)):
            raise RuntimeSimulationError(
                f"empty loop range at size {ienv}: {list(zip(lows, highs))}"
            )
        lead_lo, lead_hi = self.coordinate_range(self.tiled_rows[0], lows, highs)
        lead_edges = band_edges(lead_lo, lead_hi, self.shape[0])
        second_edges: tuple[int, ...] | None = None
        if len(self.shape) == 2:
            lo2, hi2 = self.coordinate_range(self.tiled_rows[1], lows, highs)
            second_edges = band_edges(lo2, hi2, self.shape[1])

        fronts = synchronous_wavefronts(sp, ienv)
        n_bands = len(lead_edges) - 1
        works = [[0] * len(fronts) for _ in range(n_bands)]
        for s, cells in enumerate(fronts.values()):
            for cell in cells:
                works[band_of(lead_edges, int(cell[0]))][s] += 1
        return PartitionedSchedule(
            symbolic=self,
            sizes=tuple(sorted(ienv.items())),
            lead_edges=lead_edges,
            second_edges=second_edges,
            bands=_bands_from_edges(lead_edges, works),
            total_work=sum(len(cells) for cells in fronts.values()),
        )


def _derive_partition(sp: SystolicProgram, shape: tuple[int, ...]) -> SymbolicPartition:
    from repro.target.pygen import design_fingerprint  # lazy: import cycle

    rows = [tuple(int(c) for c in sp.array.place.rows[axis]) for axis in range(len(shape))]
    folds = tuple(
        StreamFold(
            name=plan.name,
            lead_hop=int(plan.hop[0]),
            denominator=plan.denominator,
            stationary=plan.stationary,
        )
        for plan in sp.streams
    )
    deepest = max((f.denominator for f in folds if f.crosses), default=1)
    return SymbolicPartition(
        fingerprint=design_fingerprint(sp),
        shape=shape,
        coords=tuple(sp.coords),
        tiled_rows=tuple(rows),
        streams=folds,
        interband_capacity=max(2, deepest + 1),
    )


def compile_partition(
    sp: SystolicProgram, shape: tuple[int, ...]
) -> SymbolicPartition:
    """The symbolic partitioned compilation of ``sp`` for a fixed array.

    Derived once per ``(design_fingerprint, shape)`` and memoized in the
    cross-design memo (table :data:`PARTITION_MEMO_TABLE`) -- compiling a
    design for a ``3``-band or ``2x2`` machine happens exactly once, after
    which every problem size specializes from the cached result.  The
    memo's per-table hit counters (``MEMO.table_counters``) prove the
    reuse.
    """
    from repro.target.pygen import design_fingerprint  # lazy: import cycle

    shape = tuple(int(s) for s in shape)
    if not 1 <= len(shape) <= len(sp.coords):
        raise RuntimeSimulationError(
            f"array shape {shape} does not fit a {len(sp.coords)}-d "
            f"process space {sp.coords}"
        )
    if any(s < 1 for s in shape):
        raise RuntimeSimulationError(f"array shape must be positive, got {shape}")
    key = (design_fingerprint(sp), shape)
    return MEMO.get(
        PARTITION_MEMO_TABLE, key, lambda: _derive_partition(sp, shape)
    )


# ----------------------------------------------------------------------
# the specialized schedule (one design + shape + problem size)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionedSchedule:
    """A symbolic partition specialized to one problem size.

    Carries the concrete band edges, the per-band wavefront activity
    (soak / busy / drain, reusing :class:`TileBand`) and the worker map
    that folds every process-space point onto the fixed physical array.
    """

    symbolic: SymbolicPartition
    sizes: tuple[tuple[str, int], ...]
    lead_edges: tuple[int, ...]
    second_edges: tuple[int, ...] | None
    bands: tuple[TileBand, ...]
    total_work: int

    @property
    def shape(self) -> tuple[int, ...]:
        """The *effective* shape after clamping to the coordinate spans."""
        if self.second_edges is None:
            return (len(self.bands),)
        return (len(self.bands), len(self.second_edges) - 1)

    @property
    def workers(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def n_steps(self) -> int:
        return len(self.bands[0].active_steps) if self.bands else 0

    @property
    def soak(self) -> tuple[int, ...]:
        return tuple(b.soak for b in self.bands)

    @property
    def drain(self) -> tuple[int, ...]:
        return tuple(b.drain for b in self.bands)

    def band_index(self, lead: int) -> int:
        return band_of(self.lead_edges, lead)

    def worker_of(self, point: Point) -> int:
        """The physical worker a process-space point folds onto."""
        lead_band = band_of(self.lead_edges, int(point[0]))
        if self.second_edges is None:
            return lead_band
        q = len(self.second_edges) - 1
        second = int(point[1]) if len(point) > 1 else self.second_edges[0]
        return lead_band * q + band_of(self.second_edges, second)

    def assignment(self, names) -> dict[str, int]:
        """Fold every named process onto its tile's worker."""
        out: dict[str, int] = {}
        for name in sorted(names):
            pos = _position_of(name)
            out[name] = 0 if pos is None else self.worker_of(pos)
        return out

    def interband_boundaries(self) -> int:
        """Boundary count: channels of crossing streams buffer here."""
        n = len(self.bands) - 1
        if self.second_edges is not None:
            n += len(self.bands) * (len(self.second_edges) - 2)
        return max(0, n)

    def summary(self) -> str:
        shape = "x".join(str(s) for s in self.shape)
        lines = [
            f"partition {shape} ({self.workers} workers), "
            f"{self.n_steps} steps, {self.total_work} statements",
        ]
        for b in self.bands:
            lines.append(f"  {b} (soak {b.soak}, drain {b.drain})")
        crossing = [f.name for f in self.symbolic.streams if f.crosses]
        lines.append(
            f"  crossing streams: {', '.join(crossing) if crossing else 'none'}"
            f" (inter-band buffer capacity {self.symbolic.interband_capacity})"
        )
        return "\n".join(lines)


DEFAULT_PARTITION_CACHE_SIZE = 32


class PartitionCache:
    """Bounded LRU of specialized partitioned schedules.

    Keyed by ``(design_fingerprint, shape, sizes)``; the symbolic stage
    underneath is memoized separately (per design + shape, size-free), so
    a miss here on a *new size* is a pure specialization -- formula
    evaluation plus wavefront binning -- never a re-derivation.
    """

    def __init__(self, capacity: int = DEFAULT_PARTITION_CACHE_SIZE) -> None:
        if capacity < 1:
            raise RuntimeSimulationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self._entries: "OrderedDict[tuple, PartitionedSchedule]" = OrderedDict()
        self._capacity = capacity
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def schedule_for(
        self,
        sp: SystolicProgram,
        env: Mapping[str, Numeric],
        shape: tuple[int, ...],
    ) -> PartitionedSchedule:
        from repro.target.pygen import design_fingerprint  # lazy: import cycle

        shape = tuple(int(s) for s in shape)
        key = (
            design_fingerprint(sp),
            shape,
            tuple(sorted((k, int(v)) for k, v in env.items())),
        )
        with self._lock:
            found = self._entries.get(key)
            if found is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return found
            self.misses += 1
        # outside the lock: the symbolic stage underneath is memoized in
        # MEMO (itself thread-safe) and a racing duplicate specialize is
        # pure, so last-write-wins is benign
        schedule = compile_partition(sp, shape).specialize(sp, env)
        with self._lock:
            self._entries[key] = schedule
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return schedule

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self._capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


PARTITION_CACHE = PartitionCache(
    capacity=env_int(
        "REPRO_PARTITION_CACHE_SIZE", DEFAULT_PARTITION_CACHE_SIZE, minimum=1
    )
)


def partitioned_schedule(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    shape: tuple[int, ...],
    *,
    use_cache: bool = True,
) -> PartitionedSchedule:
    """The (cached) fold of ``sp`` onto a fixed array at size ``env``."""
    if not use_cache:
        return compile_partition(sp, tuple(int(s) for s in shape)).specialize(
            sp, env
        )
    return PARTITION_CACHE.schedule_for(sp, env, shape)


# ----------------------------------------------------------------------
# partitioned execution on the simulator
# ----------------------------------------------------------------------
def partitioned_execute(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs=None,
    *,
    workers: int | None = None,
    shape: tuple[int, ...] | None = None,
    assignment: str = "block",
    channel_capacity: int = 1,
    interband_capacity: int | None = None,
    max_rounds: int | None = None,
) -> tuple[dict, SchedulerStats]:
    """Run a compiled design on a fixed-size machine model.

    Two ways to describe the machine:

    * ``workers=p`` with ``assignment`` in ``{"block", "round_robin"}`` --
      the classic fold: every process pinned to one of ``p`` workers, all
      channels at ``channel_capacity``;
    * ``shape=(p,)`` or ``shape=(p, q)`` -- the symbolically compiled
      LSGP fold: processes pinned tile-band-wise via the cached
      :class:`PartitionedSchedule`, and every channel crossing a band
      boundary built as an inter-band buffer (capacity from the symbolic
      compilation unless ``interband_capacity`` overrides it).

    Results are identical to the unbounded run (the fold changes timing,
    never semantics); the returned stats carry the folded makespan.
    """
    if (workers is None) == (shape is None):
        raise RuntimeSimulationError(
            "specify exactly one of workers=... or shape=..."
        )
    if shape is not None:
        schedule = partitioned_schedule(sp, env, shape)
        network = build_network(
            sp,
            env,
            inputs,
            channel_capacity=channel_capacity,
            worker_of=schedule.worker_of,
            interband_capacity=(
                interband_capacity
                if interband_capacity is not None
                else schedule.symbolic.interband_capacity
            ),
        )
        mapping = schedule.assignment(network.scheduler.process_names)
    else:
        network = build_network(
            sp, env, inputs, channel_capacity=channel_capacity
        )
        names = list(network.scheduler.process_names)
        if assignment == "block":
            mapping = block_assignment(names, workers)
        elif assignment == "round_robin":
            mapping = round_robin_assignment(names, workers)
        else:
            raise RuntimeSimulationError(f"unknown assignment {assignment!r}")
    network.scheduler.assign_workers(mapping)
    stats = network.run(max_rounds=max_rounds)
    for plan in sp.streams:
        network.host.check_full_recovery(plan.name)
    return network.host.final, stats
