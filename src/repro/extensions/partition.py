"""Partitioning onto a fixed number of physical processors.

The abstract systolic program spawns one process per process-space point --
fine for the paper's idealisation, impossible on a 4-node transputer box.
Moldovan & Fortes's partitioning (the paper's reference [23]) folds the
virtual array onto a fixed machine; here we model the *cost* of the fold
exactly while keeping communication semantics unchanged:

* an *assignment* maps every process (computation, buffer, i/o) to one of
  ``p`` workers;
* the scheduler's virtual-time model then serializes each worker -- a
  worker finishes at most one communication per tick -- so the reported
  makespan is that of the folded machine (list scheduling on the dataflow).

Two standard assignment shapes are provided: **block** (contiguous tiles of
the process space, LSGP-style: good locality, preserves the pipeline) and
**round-robin** (LPGS-style interleaving).

:func:`wavefront_tile_bands` connects the block fold to the vectorized
wavefront schedule (:mod:`repro.analysis.wavefront`): it cuts the leading
place coordinate into the same contiguous bands a block assignment would
use and reports, per logical time step, which bands are active and how
many basic statements each executes -- the per-band activity masks a
banded (LSGP) execution of the npgen backend would iterate over, and a
direct load-balance picture of the fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.program import SystolicProgram
from repro.geometry.point import Point
from repro.runtime.network import build_network
from repro.runtime.scheduler import SchedulerStats
from repro.symbolic.affine import Numeric
from repro.util.errors import RuntimeSimulationError

Assignment = Callable[[str, int], int]  # (process name, workers) -> worker


def _position_of(name: str) -> Point | None:
    """Recover the process-space point from a process name, if any.

    Network process names embed their position: ``P(1, 2)``, ``B:a(0, 3)``,
    ``L:b(2,)#0``, ``IN:a(-3, 1)``, ``OUT:c(3, 1)``.
    """
    if "(" not in name:
        return None
    inside = name[name.index("(") + 1 : name.index(")")]
    parts = [p for p in inside.replace(",", " ").split() if p]
    try:
        return Point(int(p) for p in parts)
    except Exception:
        return None


def round_robin_assignment(names: list[str], workers: int) -> dict[str, int]:
    """Deterministic interleaving of processes over workers (LPGS-style)."""
    if workers < 1:
        raise RuntimeSimulationError("need at least one worker")
    return {name: i % workers for i, name in enumerate(sorted(names))}


def block_assignment(names: list[str], workers: int) -> dict[str, int]:
    """Contiguous tiles of the leading process-space coordinate (LSGP-style).

    Processes are ordered by their embedded position (i/o and buffer
    processes follow their boundary point) and cut into ``workers`` equal
    contiguous slabs, preserving neighbourhood within a worker.
    """
    if workers < 1:
        raise RuntimeSimulationError("need at least one worker")
    keyed = sorted(
        names, key=lambda n: (_position_of(n) or Point.of(0), n)
    )
    out: dict[str, int] = {}
    per_block = max(1, (len(keyed) + workers - 1) // workers)
    for i, name in enumerate(keyed):
        out[name] = min(workers - 1, i // per_block)
    return out


@dataclass(frozen=True)
class TileBand:
    """One contiguous band of the leading place coordinate.

    ``active_steps[s]`` says whether any cell of the band executes a basic
    statement at wavefront step ``s`` of the schedule; ``work[s]`` counts
    how many do.  Together the bands tile the whole process space, so for
    every step the band works sum to the wavefront's width.
    """

    index: int
    lo: int
    hi: int  # inclusive
    active_steps: tuple[bool, ...]
    work: tuple[int, ...]

    @property
    def total_work(self) -> int:
        return sum(self.work)

    @property
    def busy_steps(self) -> int:
        return sum(1 for a in self.active_steps if a)

    def __str__(self) -> str:
        return (
            f"band {self.index} [{self.lo}, {self.hi}]: "
            f"{self.total_work} statements over {self.busy_steps}/"
            f"{len(self.active_steps)} steps"
        )


def wavefront_tile_bands(
    sp: SystolicProgram, env: Mapping[str, Numeric], bands: int
) -> list[TileBand]:
    """Describe a block fold of the process space by wavefront activity.

    Cuts the range of the leading place coordinate into ``bands``
    near-equal contiguous intervals (the slabs of
    :func:`block_assignment`) and, from the cached wavefront schedule,
    derives each band's per-step activity mask and statement counts.
    """
    from repro.analysis.wavefront import wavefront_schedule

    if bands < 1:
        raise RuntimeSimulationError("need at least one band")
    schedule = wavefront_schedule(sp, env)
    lead = [step.cells[0] for step in schedule.steps]
    lo = int(min(c.min() for c in lead))
    hi = int(max(c.max() for c in lead))
    span = hi - lo + 1
    bands = min(bands, span)
    # equal partition of the integer interval: the first span % bands
    # bands get one extra cell column
    q, r = divmod(span, bands)
    edges = [lo]
    for k in range(bands):
        edges.append(edges[-1] + q + (1 if k < r else 0))

    out = []
    for k in range(bands):
        b_lo, b_hi = edges[k], edges[k + 1] - 1
        work = tuple(
            int(((c >= b_lo) & (c <= b_hi)).sum()) for c in lead
        )
        out.append(
            TileBand(
                index=k,
                lo=b_lo,
                hi=b_hi,
                active_steps=tuple(w > 0 for w in work),
                work=work,
            )
        )
    return out


def partitioned_execute(
    sp: SystolicProgram,
    env: Mapping[str, Numeric],
    inputs,
    *,
    workers: int,
    assignment: str = "block",
    channel_capacity: int = 1,
    max_rounds: int | None = None,
) -> tuple[dict, SchedulerStats]:
    """Run a compiled design on a ``workers``-processor machine model.

    Results are identical to the unbounded run (the fold changes timing,
    never semantics); the returned stats carry the folded makespan.
    """
    network = build_network(sp, env, inputs, channel_capacity=channel_capacity)
    names = [p.name for p in network.scheduler._procs]
    if assignment == "block":
        mapping = block_assignment(names, workers)
    elif assignment == "round_robin":
        mapping = round_robin_assignment(names, workers)
    else:
        raise RuntimeSimulationError(f"unknown assignment {assignment!r}")
    network.scheduler.assign_workers(mapping)
    stats = network.run(max_rounds=max_rounds)
    for plan in sp.streams:
        network.host.check_full_recovery(plan.name)
    return network.host.final, stats
