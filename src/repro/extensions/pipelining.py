"""Pipelining under-rank streams (the Note in Section 3.1).

The scheme requires every index map to have rank ``r - 1``: full pipelining.
The paper notes that "streams whose index maps in the source program have
less than r-1 dimensions in their range are given extra indices during the
derivation of the systolic array, which enforce the required pipelining"
(crediting Bu & Deprettere [2]).  This module implements that lift for
*read-only* streams:

* a stream ``w`` with a ``d x r`` index map of rank ``d < r - 1`` gains
  ``r - 1 - d`` extra index rows, chosen from the unit loop-index rows so
  that the extended map reaches rank ``r - 1``;
* its variable gains the matching dimensions (bounds copied from the loops
  providing the rows), and the host input is *broadcast* along them;
* the body is unchanged -- stream reads are by name.

The lifted program satisfies the rank requirement and compiles with the
ordinary scheme; since the stream is read-only, every broadcast copy stays
equal to the original element, so results project back exactly.  Lifting a
*written* under-rank stream would need a reduction over the copies -- the
paper handles those by splitting (LDU-decomposition example in [2]) and so
do we not: a :class:`RestrictionViolation` explains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.expr import RuntimeValue
from repro.lang.program import SourceProgram
from repro.lang.stream import Stream
from repro.lang.variables import IndexedVariable
from repro.symbolic.affine import Numeric
from repro.util.errors import RestrictionViolation, SourceProgramError


@dataclass(frozen=True)
class LiftedStream:
    """How one stream was pipelined."""

    name: str
    original_dim: int
    added_axes: tuple[int, ...]  # loop axes providing the new index rows


@dataclass(frozen=True)
class PipelinedProgram:
    """The lifted program plus the input/output adaptors."""

    original: SourceProgram
    program: SourceProgram
    lifts: tuple[LiftedStream, ...]

    def expand_inputs(
        self,
        env: Mapping[str, Numeric],
        inputs: Mapping[str, Mapping[Point, RuntimeValue] | int],
    ) -> dict:
        """Broadcast each lifted variable's values along its new axes."""
        lifted_by_name = {l.name: l for l in self.lifts}
        out: dict = {}
        for stream in self.program.streams:
            name = stream.name
            spec = inputs.get(name, 0)
            lift = lifted_by_name.get(name)
            if lift is None or not isinstance(spec, Mapping):
                out[name] = spec
                continue
            space = stream.variable.space(env)
            source = {Point(k): v for k, v in spec.items()}
            expanded = {}
            for p in space:
                base = Point(p[: lift.original_dim])
                if base not in source:
                    raise SourceProgramError(
                        f"{name}: no input value for original element {base}"
                    )
                expanded[p] = source[base]
            out[name] = expanded
        return out

    def project_outputs(self, final: Mapping[str, Mapping[Point, RuntimeValue]]) -> dict:
        """Collapse lifted variables back to their original shape.

        Read-only lifted streams must have all broadcast copies equal; a
        disagreement indicates a runtime bug and raises.
        """
        lifted_by_name = {l.name: l for l in self.lifts}
        out: dict = {}
        for name, values in final.items():
            lift = lifted_by_name.get(name)
            if lift is None:
                out[name] = dict(values)
                continue
            projected: dict[Point, RuntimeValue] = {}
            for p, v in values.items():
                base = Point(p[: lift.original_dim])
                if base in projected and projected[base] != v:
                    raise SourceProgramError(
                        f"{name}: broadcast copies of {base} disagree "
                        f"({projected[base]} vs {v})"
                    )
                projected[base] = v
            out[name] = projected
        return out


def _extended_rank(rows: list[tuple[int, ...]]) -> int:
    return Matrix(rows).rank


def pipeline_program(program: SourceProgram) -> PipelinedProgram:
    """Lift every under-rank stream of ``program`` to rank ``r - 1``.

    Streams already at rank ``r - 1`` pass through untouched.  The added
    rows are unit loop-index rows chosen greedily in loop order.
    """
    r = program.r
    target = r - 1
    new_streams: list[Stream] = []
    lifts: list[LiftedStream] = []
    written = program.body.streams_written()
    for stream in program.streams:
        rows = [tuple(row) for row in stream.index_map.rows]
        rank = _extended_rank(rows)
        if len(rows) == target and rank == target:
            new_streams.append(stream)
            continue
        if len(rows) > target:
            raise RestrictionViolation(
                f"stream {stream.name} is {len(rows)}-dimensional; "
                f"r-dimensional variables are outside the format (Sect. 3.1)"
            )
        if rank < len(rows):
            raise RestrictionViolation(
                f"stream {stream.name}: rank-deficient index map must be "
                "split into several streams (paper's LDU example); not lifted"
            )
        if stream.name in written:
            raise RestrictionViolation(
                f"stream {stream.name} is written and under-rank; pipelining "
                "a written stream needs a reduction over the broadcast "
                "copies, which the scheme does not define"
            )
        added: list[int] = []
        bounds = list(stream.variable.bounds)
        for axis in range(r):
            if len(rows) == target:
                break
            unit = tuple(1 if j == axis else 0 for j in range(r))
            if _extended_rank(rows + [unit]) > len(rows):
                rows.append(unit)
                added.append(axis)
                loop = program.loops[axis]
                bounds.append((loop.lower, loop.upper))
        if len(rows) != target:
            raise RestrictionViolation(
                f"stream {stream.name}: could not reach rank {target}"
            )
        variable = IndexedVariable(stream.variable.name, tuple(bounds))
        new_streams.append(Stream(variable, Matrix(rows)))
        lifts.append(
            LiftedStream(
                name=stream.name,
                original_dim=stream.variable.dim,
                added_axes=tuple(added),
            )
        )
    lifted_program = SourceProgram(
        loops=program.loops,
        streams=tuple(new_streams),
        body=program.body,
        size_symbols=program.size_symbols,
        name=program.name + "_pipelined",
    )
    return PipelinedProgram(
        original=program, program=lifted_program, lifts=tuple(lifts)
    )
