"""Lightweight opt-in profiling for the symbolic core and the explorer.

Set ``REPRO_PROFILE=1`` and every run prints a per-stage timing / counter
table to stderr at interpreter exit: expression-intern hits, compiled-form
cache hits, guard/piecewise memo hits, cross-design derivation memo hits,
the pygen module-cache stats, and the sweep stage timings.  The hooks are
plain integer increments, cheap enough to stay enabled unconditionally;
only the report itself is gated on the environment variable.

Subsystems *register* a named provider (a zero-argument callable returning
a flat ``{counter: value}`` dict) instead of pushing values here, so the
report always reflects live state and importing this module never drags in
the rest of the package.
"""

from __future__ import annotations

import atexit
import os
import sys
from typing import Callable, Mapping

__all__ = [
    "enabled",
    "register",
    "add_stage",
    "reset_stages",
    "snapshot",
    "format_report",
]

_providers: dict[str, Callable[[], Mapping[str, object]]] = {}
_stages: dict[str, float] = {}


def enabled() -> bool:
    """True iff ``REPRO_PROFILE`` asks for the exit report."""
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")


def register(name: str, provider: Callable[[], Mapping[str, object]]) -> None:
    """Register a named counter provider (later registrations replace)."""
    _providers[name] = provider


def add_stage(name: str, seconds: float) -> None:
    """Accumulate wall-clock time into a named stage."""
    _stages[name] = _stages.get(name, 0.0) + seconds


def reset_stages() -> None:
    _stages.clear()


def snapshot() -> dict:
    """All counters and stage timings as one JSON-friendly dict."""
    counters = {name: dict(provider()) for name, provider in sorted(_providers.items())}
    return {
        "counters": counters,
        "stages": {name: round(s, 6) for name, s in sorted(_stages.items())},
    }


def format_report() -> str:
    """A human-readable table of every registered counter and stage."""
    snap = snapshot()
    lines = ["-- REPRO_PROFILE report " + "-" * 40]
    for name, counters in snap["counters"].items():
        parts = "  ".join(f"{k}={v}" for k, v in counters.items())
        lines.append(f"{name:<20} {parts}")
    if snap["stages"]:
        lines.append("stages:")
        for name, seconds in snap["stages"].items():
            lines.append(f"  {name:<25} {seconds:.3f}s")
    return "\n".join(lines)


def _report_at_exit() -> None:
    if enabled():
        print(format_report(), file=sys.stderr)


atexit.register(_report_at_exit)
