"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------

``compile``     parse a source file + design spec, print the derived program
                (summary, paper notation, occam or C flavour);
``verify``      compile, execute on the simulator at given sizes and compare
                against the sequential oracle;
``execute``     compile and run on a chosen backend (``sim`` simulator,
                ``pygen`` rendered Python module, ``npgen`` vectorized
                NumPy wavefronts) with optional batching, checking results
                against the oracle unless ``--no-check``;
``synthesize``  derive step/place candidates from the dependences and print
                the design space;
``designs``     list the built-in catalogue;
``fuzz``        differential conformance fuzzing: random programs + designs
                through oracle / simulator / compiled backend / enumerative
                cross-check, with shrinking of any failure;
``serve``       run the asyncio compile-service daemon: HTTP/JSON endpoints
                (compile / explore / execute / verify / fuzz-replay) over a
                content-addressed design store with request coalescing,
                per-tenant rate limits and per-request timeouts.

A *design spec* is a JSON file::

    {
      "step":  [[2, 1]],
      "place": [[1, 0]],
      "loading": {"a": [1]},     // loading & recovery vectors (optional)
      "name": "D.1"              // optional
    }

Problem sizes are given as ``name=value`` pairs, e.g. ``-s n=8``.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from repro.core.scheme import compile_systolic
from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.parser import parse_program
from repro.systolic.schedule import makespan, synthesize_places, synthesize_step
from repro.systolic.spec import SystolicArray
from repro.target.build import build_target_program
from repro.target.cgen import render_c
from repro.target.occam import render_occam
from repro.target.pretty import render_paper
from repro.util.errors import ReproError
from repro.verify.equivalence import verify_design

_RENDERERS = {"paper": render_paper, "occam": render_occam, "c": render_c}


def load_design(path: str) -> SystolicArray:
    """Read a design-spec JSON file into a :class:`SystolicArray`."""
    data = json.loads(Path(path).read_text())
    loading = {
        name: Point(vec) for name, vec in (data.get("loading") or {}).items()
    }
    return SystolicArray(
        step=Matrix(data["step"]),
        place=Matrix(data["place"]),
        loading_vectors=loading,
        name=data.get("name", Path(path).stem),
    )


def parse_sizes(pairs: list[str]) -> dict[str, int]:
    env: dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"size must be name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        env[name.strip()] = int(value)
    return env


def parse_array_shape(text: str) -> tuple[int, ...]:
    """``"3"`` -> ``(3,)``; ``"2x2"`` (or ``2×2``) -> ``(2, 2)``."""
    parts = text.lower().replace("×", "x").split("x")
    try:
        shape = tuple(int(p.strip()) for p in parts)
    except ValueError:
        raise ReproError(
            f"array shape must be P or PxQ (integers), got {text!r}"
        ) from None
    if not shape or any(s < 1 for s in shape):
        raise ReproError(f"array shape must be positive, got {text!r}")
    return shape


def parse_size_sweep(pairs: list[str]) -> list[dict[str, int]]:
    """``name=value`` pairs -> one env per size combination.

    Repeating a name sweeps it: ``-s n=4 -s n=8`` yields ``[{n: 4},
    {n: 8}]``; with several swept names the cartesian product is taken in
    first-appearance order.
    """
    values: dict[str, list[int]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"size must be name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        bucket = values.setdefault(name.strip(), [])
        v = int(value)
        if v not in bucket:
            bucket.append(v)
    envs: list[dict[str, int]] = [{}]
    for name, options in values.items():
        envs = [dict(env, **{name: v}) for env in envs for v in options]
    return envs


def cmd_compile(args: argparse.Namespace) -> int:
    program = parse_program(Path(args.source).read_text())
    array = load_design(args.design)
    systolic = compile_systolic(program, array)
    print(systolic.summary())
    if args.emit != "none":
        print()
        print(_RENDERERS[args.emit](build_target_program(systolic)))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    program = parse_program(Path(args.source).read_text())
    array = load_design(args.design)
    systolic = compile_systolic(program, array)
    env = parse_sizes(args.size)
    report = verify_design(
        program,
        array,
        env,
        compiled=systolic,
        seed=args.seed,
        channel_capacity=args.capacity,
        raise_on_mismatch=False,
    )
    print(report)
    for mismatch in report.mismatches[:10]:
        print(" ", mismatch)
    return 0 if report.matched else 1


def cmd_execute(args: argparse.Namespace) -> int:
    import time

    from repro.lang.interpreter import run_sequential
    from repro.verify.equivalence import random_inputs

    program = parse_program(Path(args.source).read_text())
    array = load_design(args.design)
    systolic = compile_systolic(program, array)
    env = parse_sizes(args.size)
    shape = parse_array_shape(args.array) if args.array else None
    batch = [
        random_inputs(program, env, seed=args.seed + b) for b in range(args.batch)
    ]

    start = time.perf_counter()
    if args.backend == "npgen":
        if shape is not None:
            from repro.target.npgen import execute_numpy_banded

            results = execute_numpy_banded(systolic, env, batch, shape=shape)
        else:
            from repro.target.npgen import execute_numpy_batch

            results = execute_numpy_batch(systolic, env, batch)
    elif args.backend == "pygen":
        if shape is not None:
            print(
                "error: --array needs a partitioned backend "
                "(sim or npgen); pygen has none",
                file=sys.stderr,
            )
            return 2
        from repro.target.pygen import execute_python

        results = [execute_python(systolic, env, inputs) for inputs in batch]
    elif shape is not None:
        from repro.extensions.partition import partitioned_execute

        results = []
        for inputs in batch:
            final, _stats = partitioned_execute(systolic, env, inputs, shape=shape)
            results.append(
                {v: {tuple(p): val for p, val in vals.items()}
                 for v, vals in final.items()}
            )
    else:
        from repro.runtime.network import execute

        results = []
        for inputs in batch:
            final, _stats = execute(systolic, env, inputs)
            results.append(
                {v: {tuple(p): val for p, val in vals.items()}
                 for v, vals in final.items()}
            )
    elapsed = time.perf_counter() - start

    array_note = ""
    if shape is not None:
        from repro.extensions.partition import partitioned_schedule

        schedule = partitioned_schedule(systolic, env, shape)
        array_note = f", array {'x'.join(str(s) for s in schedule.shape)}"
    elements = sum(len(vals) for vals in results[0].values())
    print(
        f"execute[{args.backend}] {env}: batch {args.batch}, "
        f"{elements} elements/run{array_note}, {elapsed:.3f}s"
    )
    if shape is not None:
        print(schedule.summary())
    if args.no_check:
        return 0
    mismatched = 0
    for inputs, got in zip(batch, results):
        oracle = run_sequential(program, env, inputs)
        for var, expected in oracle.items():
            for element, value in expected.items():
                if got[var].get(tuple(element)) != value:
                    mismatched += 1
    if mismatched:
        print(f"MISMATCH: {mismatched} element(s) disagree with the oracle")
        return 1
    print("oracle check: OK (bit-identical)")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    program = parse_program(Path(args.source).read_text())
    steps = synthesize_step(program, bound=args.bound)
    env = {s: 4 for s in _size_symbols(program)}
    if not steps:
        raise ReproError(
            f"no minimal-makespan step candidate at bound {args.bound}; "
            "raise --bound"
        )
    print(f"{len(steps)} minimal-makespan step candidate(s) at bound {args.bound}:")
    for step in steps:
        print(f"  step {step.rows[0]}  makespan {makespan(program, step, env)}")
    step = steps[0]
    places = synthesize_places(program, step, bound=1)
    print(f"\n{len(places)} compatible place(s) for step {step.rows[0]} at bound 1")
    for place in places[: args.limit]:
        print(f"  place rows {place.rows}")
    if len(places) > args.limit:
        print(f"  ... and {len(places) - args.limit} more (raise --limit)")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.parallel import resolve_jobs, sweep_designs

    program = parse_program(Path(args.source).read_text())
    steps = synthesize_step(program, bound=args.bound)
    if not steps:
        raise ReproError(
            f"no minimal-makespan step candidate at bound {args.bound}; "
            "raise --bound"
        )
    step = steps[0]
    if args.size:
        envs = parse_size_sweep(args.size)
    else:
        envs = [{s: 4 for s in _size_symbols(program)}]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", RuntimeWarning)
        result = sweep_designs(
            program, step, envs, bound=1, limit=args.limit, jobs=args.jobs
        )
    t = result.timings
    requested = resolve_jobs(args.jobs)
    if t.jobs < requested:
        reason = "; ".join(str(w.message) for w in caught) or (
            f"only {t.candidates} candidate(s)"
        )
        print(
            f"note: --jobs {requested} reduced to {t.jobs} ({reason})",
            file=sys.stderr,
        )
    for env, costs in result.by_size:
        print(f"step {step.rows[0]}, costs at {env}:")
        print(format_table([c.row() for c in costs]))
    print(
        f"timings: synthesis {t.synthesis_s:.3f}s + compile/cost "
        f"{t.cost_s:.3f}s = total {t.total_s:.3f}s "
        f"({t.candidates} candidates, {t.compiled} compilable, "
        f"{len(result.by_size)} size(s), jobs {t.jobs})"
    )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import HarnessConfig, fuzz_run
    from repro.parallel import resolve_jobs

    config = HarnessConfig(
        seed=args.input_seed, mutate=args.mutate, input_sets=args.input_sets
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", RuntimeWarning)
        summary = fuzz_run(
            seed=args.seed,
            iterations=args.iterations,
            time_budget=args.time_budget,
            jobs=args.jobs,
            config=config,
            shrink=not args.no_shrink,
            max_shrink_steps=args.max_shrink_steps,
            corpus_dir=args.corpus_dir,
            feature=args.feature,
            batch_size=args.batch_size,
            log=lambda message: print(message, file=sys.stderr),
        )
    requested = resolve_jobs(args.jobs)
    if summary.jobs < requested:
        reason = "; ".join(str(w.message) for w in caught) or "few iterations"
        print(
            f"note: --jobs {requested} reduced to {summary.jobs} ({reason})",
            file=sys.stderr,
        )
    print(summary)
    if summary.phase_seconds:
        phases = ", ".join(
            f"{name} {seconds:.3f}s"
            for name, seconds in sorted(summary.phase_seconds.items())
        )
        print(f"phases: {phases}")
    if summary.check_counts:
        counts = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(summary.check_counts.items())
        )
        print(f"checks: {counts}")
    for failure in summary.failures:
        print(f"FAILURE at iteration {failure.iteration} "
              f"(instance seed {failure.instance_seed}): {failure.checks}")
        for message in failure.messages[:4]:
            print(f"  {message}")
        if failure.reproducer:
            print(f"  minimized reproducer: {failure.reproducer}")
    if args.summary_out:
        artifact = {
            **summary.row(),
            "check_counts": dict(sorted(summary.check_counts.items())),
            "failed_iterations": [
                {
                    "iteration": f.iteration,
                    "instance_seed": f.instance_seed,
                    "checks": f.checks,
                    "reproducer": f.reproducer,
                }
                for f in summary.failures
            ],
        }
        Path(args.summary_out).write_text(
            json.dumps(artifact, indent=2, sort_keys=True) + "\n"
        )
        print(f"summary artifact: {args.summary_out}", file=sys.stderr)
    return 0 if summary.ok else 1


def validate_serve_args(args: argparse.Namespace) -> None:
    """Fail fast with a :class:`ReproError` naming the offending flag."""
    if not (0 <= args.port <= 65535):
        raise ReproError(
            f"--port must be in 0..65535 (0 = ephemeral), got {args.port}"
        )
    if args.rate < 0:
        raise ReproError(
            f"--rate must be >= 0 (0 disables limiting), got {args.rate:g}"
        )
    if args.burst < 1:
        raise ReproError(f"--burst must be >= 1, got {args.burst}")
    if args.timeout <= 0:
        raise ReproError(f"--timeout must be positive, got {args.timeout:g}")
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.max_tenants < 1:
        raise ReproError(f"--max-tenants must be >= 1, got {args.max_tenants}")
    if args.max_designs < 1:
        raise ReproError(f"--max-designs must be >= 1, got {args.max_designs}")


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import CompileService, ServiceConfig

    validate_serve_args(args)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        rate=args.rate,
        burst=args.burst,
        timeout_s=args.timeout,
        workers=args.workers,
        max_tenants=args.max_tenants,
        max_designs=args.max_designs,
        corpus_dir=args.corpus_dir,
    )
    service = CompileService(config)

    async def run() -> None:
        await service.start()
        limits = (
            f"{config.rate:g}/s burst {config.burst}"
            if config.rate > 0
            else "off"
        )
        print(
            f"repro compile service on http://{config.host}:{service.port} "
            f"(workers {config.workers}, timeout {config.timeout_s:g}s, "
            f"rate limit {limits})",
            file=sys.stderr,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        snapshot = service.metrics.snapshot()
        store = service.store.snapshot()
        print(
            f"served {service.requests_served} request(s), "
            f"{store['designs']} design(s) cached "
            f"(hits {store['hits']}, misses {store['misses']}, "
            f"coalesced {store['coalesced']}); "
            f"rate-limited {snapshot['rate_limited']}, "
            f"timeouts {snapshot['timeouts']}",
            file=sys.stderr,
        )
        for name, metrics in sorted(snapshot["endpoints"].items()):
            latency = metrics["latency"]
            print(
                f"  /{name}: {metrics['requests']} requests "
                f"(4xx {metrics['errors_4xx']}, 5xx {metrics['errors_5xx']}), "
                f"p50 {latency['p50_s'] * 1000:.1f}ms, "
                f"p95 {latency['p95_s'] * 1000:.1f}ms",
                file=sys.stderr,
            )
    return 0


def cmd_designs(args: argparse.Namespace) -> int:
    from repro.systolic.designs import all_paper_designs

    for exp_id, program, array in all_paper_designs():
        print(f"{exp_id}: {program.name}  --  {array.name}")
        print(f"    step {array.step.rows[0]}, place rows {array.place.rows}")
    return 0


def _size_symbols(program) -> set[str]:
    syms = set(program.size_symbols)
    for lp in program.loops:
        syms |= lp.lower.free_symbols | lp.upper.free_symbols
    return syms


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Systolizing compilation scheme (Barnett & Lengauer 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and print a systolic program")
    p.add_argument("source", help="source program file")
    p.add_argument("design", help="design-spec JSON file")
    p.add_argument(
        "--emit",
        choices=["paper", "occam", "c", "none"],
        default="paper",
        help="target notation (default: paper)",
    )
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("verify", help="execute on the simulator vs the oracle")
    p.add_argument("source")
    p.add_argument("design")
    p.add_argument(
        "-s", "--size", action="append", default=[], help="problem size name=value"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--capacity", type=int, default=1, help="channel capacity")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "execute", help="run a design on a chosen backend, check vs oracle"
    )
    p.add_argument("source")
    p.add_argument("design")
    p.add_argument(
        "-s", "--size", action="append", default=[], help="problem size name=value"
    )
    p.add_argument(
        "--backend",
        choices=["sim", "pygen", "npgen"],
        default="npgen",
        help="execution engine (default: npgen, needs the NumPy extra)",
    )
    p.add_argument(
        "--batch",
        type=int,
        default=1,
        help="independent input sets to run (npgen executes them in one pass)",
    )
    p.add_argument("--seed", type=int, default=0, help="input value seed")
    p.add_argument(
        "--array",
        default=None,
        metavar="PxQ",
        help="fold onto a fixed physical array, e.g. 3 (bands) or 2x2 "
        "(tiles): sim runs the partitioned network, npgen the banded "
        "executor (pygen has no partitioned mode)",
    )
    p.add_argument(
        "--no-check",
        action="store_true",
        help="skip the sequential-oracle comparison (timing runs)",
    )
    p.set_defaults(func=cmd_execute)

    p = sub.add_parser("synthesize", help="derive step/place candidates")
    p.add_argument("source")
    p.add_argument("--bound", type=int, default=2, help="coefficient bound")
    p.add_argument("--limit", type=int, default=8, help="places to print")
    p.set_defaults(func=cmd_synthesize)

    p = sub.add_parser("explore", help="cost the bounded place design space")
    p.add_argument("source")
    p.add_argument("--bound", type=int, default=2, help="step coefficient bound")
    p.add_argument(
        "-s",
        "--size",
        action="append",
        default=[],
        help="problem size name=value; repeat a name to sweep it",
    )
    p.add_argument("--limit", type=int, default=12, help="rows to print")
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU, default 1 = serial)",
    )
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "fuzz", help="differential conformance fuzzing with shrinking"
    )
    p.add_argument("--seed", type=int, default=0, help="campaign base seed")
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="stop after this many seconds (checked between batches)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = one per CPU, default 1 = serial)",
    )
    p.add_argument(
        "--input-seed", type=int, default=0, help="stream input value seed"
    )
    from repro.fuzz.harness import MUTATIONS

    p.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS),
        default=None,
        help="plant a known bug (harness self-test; the run must fail)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="pin the pool fan-out size (default: adapt to measured "
        "per-instance cost)",
    )
    p.add_argument(
        "--input-sets",
        type=int,
        default=1,
        metavar="K",
        help="differential input sets per instance (seeds input-seed..+K-1)",
    )
    p.add_argument(
        "--no-shrink", action="store_true", help="skip minimizing failures"
    )
    p.add_argument("--max-shrink-steps", type=int, default=96)
    p.add_argument(
        "--corpus-dir",
        default="tests/fuzz_corpus",
        help="where minimized reproducers are written",
    )
    from repro.fuzz.generator import FEATURES

    p.add_argument(
        "--feature",
        choices=FEATURES,
        default=None,
        help="restrict the campaign to one generator stratum",
    )
    p.add_argument(
        "--summary-out",
        default=None,
        metavar="PATH",
        help="write the campaign summary as a JSON artifact",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "serve", help="run the compile-service daemon (HTTP/JSON)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="per-tenant requests/s (token bucket; 0 disables limiting)",
    )
    p.add_argument(
        "--burst", type=int, default=8, help="token-bucket burst capacity"
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds (the derivation itself is "
        "never cancelled, so a retry picks up the cached result)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor threads for pipeline stages",
    )
    p.add_argument("--max-tenants", type=int, default=1024)
    p.add_argument("--max-designs", type=int, default=512)
    p.add_argument(
        "--corpus-dir",
        default="tests/fuzz_corpus",
        help="corpus served by /fuzz-replay",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("designs", help="list the built-in catalogue")
    p.set_defaults(func=cmd_designs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # piping into head etc.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
