"""The paper's example programs and designs (Appendices D and E).

* Appendix D: polynomial product, ``step.(i,j) = 2*i + j``, with
  ``place.(i,j) = i`` (D.1, simple) and ``place.(i,j) = i + j`` (D.2).
* Appendix E: matrix-matrix multiplication, ``step.(i,j,k) = i + j + k``,
  with ``place.(i,j,k) = (i,j)`` (E.1, simple -- "collapse the inner loop")
  and ``place.(i,j,k) = (i-k, j-k)`` (E.2 -- the Kung-Leiserson array).

The loading & recovery vectors are the paper's choices: ``1`` for stream
``a`` in D.1, ``1`` for stream ``c`` in D.2, and ``(1,0)`` for stream ``c``
in E.1.
"""

from __future__ import annotations

from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.parser import parse_program
from repro.lang.program import SourceProgram
from repro.systolic.spec import SystolicArray

POLYPROD_SOURCE = """
program polyprod
size n
var a[0..n], b[0..n], c[0..2*n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
    c[i+j] := c[i+j] + a[i] * b[j]
"""

MATMUL_SOURCE = """
program matmul
size n
var a[0..n, 0..n], b[0..n, 0..n], c[0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
for k = 0 <- 1 -> n
    c[i,j] := c[i,j] + a[i,k] * b[k,j]
"""


def polynomial_product_program() -> SourceProgram:
    """The Appendix D source program (degree-``n`` polynomial product)."""
    return parse_program(POLYPROD_SOURCE)


def matrix_product_program() -> SourceProgram:
    """The Appendix E source program ((n+1) x (n+1) matrix product)."""
    return parse_program(MATMUL_SOURCE)


def polyprod_design_d1() -> SystolicArray:
    """D.1: ``place.(i,j) = i`` (simple).  Stream ``a`` is stationary; its
    loading & recovery vector is ``1`` (load from the left)."""
    return SystolicArray(
        step=Matrix([[2, 1]]),
        place=Matrix([[1, 0]]),
        loading_vectors={"a": Point.of(1)},
        name="D.1 place=(i)",
    )


def polyprod_design_d2() -> SystolicArray:
    """D.2: ``place.(i,j) = i+j`` (non-simple).  Stream ``c`` is stationary;
    its loading & recovery vector is ``1``."""
    return SystolicArray(
        step=Matrix([[2, 1]]),
        place=Matrix([[1, 1]]),
        loading_vectors={"c": Point.of(1)},
        name="D.2 place=(i+j)",
    )


def matmul_design_e1() -> SystolicArray:
    """E.1: ``place.(i,j,k) = (i,j)`` (simple; collapses the k loop).
    Stream ``c`` is stationary with loading & recovery vector ``(1,0)``."""
    return SystolicArray(
        step=Matrix([[1, 1, 1]]),
        place=Matrix([[1, 0, 0], [0, 1, 0]]),
        loading_vectors={"c": Point.of(1, 0)},
        name="E.1 place=(i,j)",
    )


def matmul_design_e2() -> SystolicArray:
    """E.2: ``place.(i,j,k) = (i-k, j-k)`` -- the Kung-Leiserson hexagonal
    matrix-product array.  All three streams move."""
    return SystolicArray(
        step=Matrix([[1, 1, 1]]),
        place=Matrix([[1, 0, -1], [0, 1, -1]]),
        name="E.2 place=(i-k,j-k)",
    )


REVERSED_POLYPROD_SOURCE = """
program polyprod_rev
size n
var a[0..n], b[0..n], c[0..2*n]
for i = 0 <- 1 -> n
for j = 0 <- -1 -> n
    c[i+j] := c[i+j] + a[i] * b[j]
"""

RECTMM_SOURCE = """
program rectmm
size l, m, p
var a[0..l, 0..p], b[0..p, 0..m], c[0..l, 0..m]
for i = 0 <- 1 -> l
for j = 0 <- 1 -> m
for k = 0 <- 1 -> p
    c[i,j] := c[i,j] + a[i,k] * b[k,j]
"""


def reversed_polyprod_program() -> SourceProgram:
    """Polynomial product with the inner loop running right-to-left.

    Exercises the paper's negative-step case (``st = -1``): the dependence
    orientation flips and so does ``increment``.
    """
    return parse_program(REVERSED_POLYPROD_SOURCE)


def polyprod_design_reversed() -> SystolicArray:
    """A design for the reversed program: ``step = 2i - j``, ``place = i``.

    Not in the paper; it exercises features the appendices never combine --
    a negative loop step and a flow of 1/3 (stream ``c`` needs *two* latch
    buffers per link).
    """
    return SystolicArray(
        step=Matrix([[2, -1]]),
        place=Matrix([[1, 0]]),
        loading_vectors={"a": Point.of(1)},
        name="R place=(i), reversed j",
    )


def rectangular_matmul_program() -> SourceProgram:
    """(l+1) x (p+1) times (p+1) x (m+1) matrix product.

    Three independent problem-size symbols; the closed forms stay symbolic
    in all of them.
    """
    return parse_program(RECTMM_SOURCE)


def rectmm_design() -> SystolicArray:
    """The E.1-style simple design for the rectangular product."""
    return SystolicArray(
        step=Matrix([[1, 1, 1]]),
        place=Matrix([[1, 0, 0], [0, 1, 0]]),
        loading_vectors={"c": Point.of(1, 0)},
        name="RM place=(i,j)",
    )


CORRELATION_SOURCE = """
program correlation
size n
var x[0..n], y[0..n], r[0-n..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
    r[i-j] := r[i-j] + x[i] * y[j]
"""


def correlation_program() -> SourceProgram:
    """Cross-correlation: ``r[lag] = sum x[i] * y[i - lag]``.

    The result variable is indexed by the *difference* of the loop indices
    (lags ``-n .. n``), a shape no appendix example has.
    """
    return parse_program(CORRELATION_SOURCE)


def correlation_design() -> SystolicArray:
    """The classic correlator: ``step = i+j``, ``place = i-j``.

    One process per lag; the accumulator ``r`` is stationary while ``x``
    and ``y`` stream through in *opposite* directions (flows -1 and +1).
    """
    return SystolicArray(
        step=Matrix([[1, 1]]),
        place=Matrix([[1, -1]]),
        loading_vectors={"r": Point.of(1)},
        name="C place=(i-j)",
    )


TENSOR_SOURCE = """
program tensor
size n
var a[0..n, 0..n, 0..n], b[0..n, 0..n, 0..n], c[0..n, 0..n, 0..n]
for i = 0 <- 1 -> n
for j = 0 <- 1 -> n
for k = 0 <- 1 -> n
for l = 0 <- 1 -> n
    c[i,j,k] := c[i,j,k] + a[i,j,l] * b[j,k,l]
"""


def tensor_contraction_program() -> SourceProgram:
    """A four-loop tensor contraction: ``c[ijk] = sum_l a[ijl] * b[jkl]``.

    ``r = 4`` with 3-d variables -- one dimension beyond anything in the
    paper's appendices; the scheme's machinery is dimension-generic.
    """
    return parse_program(TENSOR_SOURCE)


def tensor_design_simple() -> SystolicArray:
    """``place = (i,j,k)``: a 3-D grid of ``(n+1)^3`` cells; stream ``c``
    stays put while ``a`` and ``b`` pipeline through orthogonal axes."""
    return SystolicArray(
        step=Matrix([[1, 1, 1, 1]]),
        place=Matrix([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0]]),
        loading_vectors={"c": Point.of(1, 0, 0)},
        name="T place=(i,j,k)",
    )


def tensor_design_skewed() -> SystolicArray:
    """``place = (i-l, j-l, k)``: the 3-D analogue of Kung-Leiserson.

    All streams move (``c`` diagonally at ``(-1,-1,0)``); the computation
    space is the slab ``|y0 - y1| <= n`` inside the bounding box, so
    external buffer columns appear -- E.2's corner buffers, one dimension
    up."""
    return SystolicArray(
        step=Matrix([[1, 1, 1, 1]]),
        place=Matrix([[1, 0, 0, -1], [0, 1, 0, -1], [0, 0, 1, 0]]),
        name="T2 place=(i-l,j-l,k)",
    )


def all_paper_designs() -> list[tuple[str, SourceProgram, SystolicArray]]:
    """All four (experiment id, program, array) triples of the appendices."""
    poly = polynomial_product_program()
    mat = matrix_product_program()
    return [
        ("D1", poly, polyprod_design_d1()),
        ("D2", poly, polyprod_design_d2()),
        ("E1", mat, matmul_design_e1()),
        ("E2", mat, matmul_design_e2()),
    ]
