"""The systolic-array specification: ``step``, ``place``, loading vectors.

``step :: Op -> Z`` is a ``1 x r`` integer matrix; ``place :: Op -> Z^{r-1}``
is an ``(r-1) x r`` integer matrix of rank ``r-1``.  Basic statements mapped
to the same step number execute in parallel; ``place`` projects the index
space onto the computation space.

Stationary streams (zero flow) additionally need a *loading & recovery
vector* supplied as part of the compilation (Section 4.2): the direction in
which their elements are pumped in before and out after the computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.geometry.linalg import Matrix, null_space_vector
from repro.geometry.point import Point
from repro.symbolic.affine import AffineVec
from repro.util.errors import SystolicSpecError


@dataclass(frozen=True)
class SystolicArray:
    """A linear systolic array: the pair ``(step, place)``.

    ``loading_vectors`` maps the name of each stationary stream to its
    loading & recovery vector in ``Z^{r-1}`` (must satisfy the neighbour
    predicate; checked during compilation).
    """

    step: Matrix
    place: Matrix
    loading_vectors: Mapping[str, Point] = field(default_factory=dict)
    name: str = "design"

    def __post_init__(self) -> None:
        if self.step.nrows != 1:
            raise SystolicSpecError(f"step must have one row, got {self.step.shape}")
        r = self.step.ncols
        if self.place.ncols != r:
            raise SystolicSpecError(
                f"place consumes {self.place.ncols} indices but step consumes {r}"
            )
        if self.place.nrows != r - 1:
            raise SystolicSpecError(
                f"place must be {r-1} x {r}, got {self.place.shape}"
            )
        if self.place.rank != r - 1:
            raise SystolicSpecError(
                f"place must have rank {r-1}, got {self.place.rank}"
            )
        for c in self.step.rows[0]:
            if not isinstance(c, int):
                raise SystolicSpecError("step coefficients must be integers")
        for row in self.place.rows:
            for c in row:
                if not isinstance(c, int):
                    raise SystolicSpecError("place coefficients must be integers")
        for name, vec in self.loading_vectors.items():
            if vec.dim != r - 1:
                raise SystolicSpecError(
                    f"loading vector for {name} must lie in Z^{r-1}, got {vec}"
                )
            if vec.is_zero:
                raise SystolicSpecError(f"loading vector for {name} must be non-zero")

    # ------------------------------------------------------------------
    @property
    def r(self) -> int:
        """Number of loop indices the distributions consume."""
        return self.step.ncols

    def step_of(self, x) -> int | object:
        """``step . x`` for a concrete or symbolic index point."""
        result = self.step.apply(list(x))[0]
        if isinstance(result, Fraction) and result.denominator == 1:
            return int(result)
        return result

    def place_of(self, x) -> Point:
        """``place . x`` for a concrete index point."""
        return self.place.apply_point(x)

    def place_of_symbolic(self, x: AffineVec) -> AffineVec:
        """``place . x`` for a symbolic index point."""
        return AffineVec(self.place.apply(list(x)))

    def null_place(self) -> Point:
        """The spanning vector of ``null.place`` (Theorems 1-2)."""
        return null_space_vector(self.place)

    def loading_vector(self, stream_name: str) -> Point:
        vec = self.loading_vectors.get(stream_name)
        if vec is None:
            raise SystolicSpecError(
                f"stream {stream_name} is stationary but no loading & recovery "
                "vector was supplied"
            )
        return vec

    def __str__(self) -> str:
        return (
            f"SystolicArray({self.name}: step {self.step.rows[0]}, "
            f"place rows {self.place.rows})"
        )
