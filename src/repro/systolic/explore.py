"""Design-space exploration over candidate place functions.

"Once [step] has been derived, many different place functions are possible"
(Section 3.2).  The paper derives two per example by hand; this module
enumerates and *costs* the whole bounded design space, which is how a user
of the compiler would actually pick one:

* process count (``|PS|`` at a sample size) -- hardware cost;
* null-process count (``|PS \\ CS|``) -- wasted cells / external buffers;
* i/o process count -- boundary wiring;
* total latch buffers (fractional flows);
* stationary stream count (memory per cell vs pure pipelining).

Candidates are deduplicated up to row order (coordinate renaming).  Costing
is exact: the candidate is compiled and its concrete spaces enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.io_layout import concrete_io_points
from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.systolic.flow import is_stationary
from repro.systolic.spec import SystolicArray
from repro.util.errors import ReproError


@dataclass(frozen=True)
class DesignCost:
    """Exact cost metrics of one compiled candidate."""

    place: Matrix
    processes: int
    null_processes: int
    io_processes: int
    latch_buffers: int
    stationary_streams: int

    @property
    def total_cells(self) -> int:
        """Everything that must be instantiated."""
        return self.processes + self.io_processes + self.latch_buffers

    def row(self) -> dict:
        return {
            "place": " ; ".join(str(tuple(r)) for r in self.place.rows),
            "procs": self.processes,
            "null": self.null_processes,
            "io": self.io_processes,
            "latches": self.latch_buffers,
            "stationary": self.stationary_streams,
            "total": self.total_cells,
        }


def loading_candidates(
    program: SourceProgram, step: Matrix, place: Matrix
) -> Iterator[dict[str, Point]]:
    """Yield unit loading-vector assignments for the stationary streams.

    A stationary stream needs a loading & recovery vector, but which unit
    axis is *compilable* depends on the stream's index map (the vector must
    shift element identities integrally; see
    :func:`repro.core.io_comm.derive_stream_increment`).  One assignment per
    axis is yielded, axis 0 first, so callers can fall back to the next axis
    when compilation rejects the current one.  Designs with no stationary
    stream yield a single empty assignment.
    """
    from repro.systolic.flow import stream_flow

    base = SystolicArray(step=step, place=place)
    stationary = [
        s.name for s in program.streams if is_stationary(stream_flow(base, s))
    ]
    dim = program.r - 1
    if not stationary:
        yield {}
        return
    for axis in range(dim):
        unit = Point.unit(dim, axis)
        yield {name: unit for name in stationary}


def cost_candidate(
    program: SourceProgram,
    step: Matrix,
    place: Matrix,
    env: Mapping[str, Numeric],
) -> DesignCost:
    """Compile and cost one place candidate, trying each loading axis.

    Historical bug: only axis 0 was ever tried, so a design whose stationary
    streams are only loadable along another axis was silently dropped from
    the explored space.  Raises the last :class:`ReproError` when no axis
    compiles.
    """
    error: ReproError | None = None
    for loading in loading_candidates(program, step, place):
        array = SystolicArray(step=step, place=place, loading_vectors=loading)
        try:
            return cost_of(program, array, env)
        except ReproError as exc:
            error = exc
    assert error is not None  # loading_candidates always yields
    raise error


def cost_of(
    program: SourceProgram,
    array: SystolicArray,
    env: Mapping[str, Numeric],
) -> DesignCost:
    """Compile a candidate and measure it at a concrete size."""
    from repro.core.scheme import compile_systolic

    return cost_of_compiled(compile_systolic(program, array), env)


def cost_of_compiled(sp, env: Mapping[str, Numeric]) -> DesignCost:
    """Measure an already compiled candidate at a concrete size.

    Splitting this off :func:`cost_of` lets a multi-size sweep compile each
    design *once* and evaluate the symbolic closed forms at every requested
    size -- compilation dominates, so this is the batching win.
    """
    space = sp.process_space(env)
    first = sp.first
    if not first.has_default:
        compute = space.size  # 'first' total on PS: CS = PS
    else:
        # One shared binding dict mutated per point (instead of a fresh
        # dict(env) copy each), driving the compiled any-case closure.
        binding = dict(env)
        coords = sp.coords
        any_case = first.any_case_holds
        compute = 0
        for y in space:
            for name, c in zip(coords, y):
                binding[name] = c
            if any_case(binding):
                compute += 1
    io_total = 0
    latches = 0
    stationary = 0
    for plan in sp.streams:
        io_total += len(concrete_io_points(space, plan.transport))
        latches += plan.internal_buffers() * space.size
        if plan.stationary:
            stationary += 1
    return DesignCost(
        place=sp.array.place,
        processes=space.size,
        null_processes=space.size - compute,
        io_processes=io_total,
        latch_buffers=latches,
        stationary_streams=stationary,
    )


def compile_candidate(program: SourceProgram, step: Matrix, place: Matrix):
    """Compile one place candidate, trying each loading axis in turn.

    Returns the :class:`~repro.core.program.SystolicProgram` of the first
    axis that compiles; raises the last :class:`ReproError` when none does.
    """
    from repro.core.scheme import compile_systolic

    error: ReproError | None = None
    for loading in loading_candidates(program, step, place):
        array = SystolicArray(step=step, place=place, loading_vectors=loading)
        try:
            return compile_systolic(program, array)
        except ReproError as exc:
            error = exc
    assert error is not None  # loading_candidates always yields
    raise error


def sweep_candidate(
    program: SourceProgram,
    step: Matrix,
    place: Matrix,
    envs: "Sequence[Mapping[str, Numeric]]",
) -> list[DesignCost | None] | None:
    """Compile one candidate once, then cost it at every requested size.

    Returns ``None`` when no loading axis compiles (the design is outside
    the scheme); otherwise one :class:`DesignCost` -- or ``None`` for a
    size the concrete evaluation rejects -- per entry of ``envs``.
    """
    try:
        sp = compile_candidate(program, step, place)
    except ReproError:
        return None
    out: list[DesignCost | None] = []
    for env in envs:
        try:
            out.append(cost_of_compiled(sp, env))
        except ReproError:
            out.append(None)
    return out


def rank_costs(
    costs: list[DesignCost], limit: int | None = None
) -> list[DesignCost]:
    """Deterministic ranking: cheapest total first, stable tiebreak."""
    ranked = sorted(
        costs, key=lambda c: (c.total_cells, c.null_processes, str(c.place.rows))
    )
    if limit is not None:
        ranked = ranked[:limit]
    return ranked


def explore_designs(
    program: SourceProgram,
    step: Matrix,
    env: Mapping[str, Numeric],
    *,
    bound: int = 1,
    limit: int | None = None,
    jobs: int | None = None,
) -> list[DesignCost]:
    """Cost every compilable place candidate, cheapest total first.

    Candidates that fail compilation (restriction violations such as
    non-unimodular faces or oversize ``increment_s``) are skipped -- the
    design space the scheme can actually handle is exactly what remains.

    ``jobs`` > 1 fans the candidates over a process pool via
    :mod:`repro.parallel`; the ranked result is identical to the serial one.
    """
    from repro.parallel import sweep_designs

    result = sweep_designs(
        program, step, [env], bound=bound, limit=limit, jobs=jobs
    )
    return list(result.by_size[0][1])
