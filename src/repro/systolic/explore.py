"""Design-space exploration over candidate place functions.

"Once [step] has been derived, many different place functions are possible"
(Section 3.2).  The paper derives two per example by hand; this module
enumerates and *costs* the whole bounded design space, which is how a user
of the compiler would actually pick one:

* process count (``|PS|`` at a sample size) -- hardware cost;
* null-process count (``|PS \\ CS|``) -- wasted cells / external buffers;
* i/o process count -- boundary wiring;
* total latch buffers (fractional flows);
* stationary stream count (memory per cell vs pure pipelining).

Candidates are deduplicated up to row order (coordinate renaming).  Costing
is exact: the candidate is compiled and its concrete spaces enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.io_layout import concrete_io_points
from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.systolic.flow import is_stationary
from repro.systolic.schedule import synthesize_places
from repro.systolic.spec import SystolicArray
from repro.util.errors import ReproError


@dataclass(frozen=True)
class DesignCost:
    """Exact cost metrics of one compiled candidate."""

    place: Matrix
    processes: int
    null_processes: int
    io_processes: int
    latch_buffers: int
    stationary_streams: int

    @property
    def total_cells(self) -> int:
        """Everything that must be instantiated."""
        return self.processes + self.io_processes + self.latch_buffers

    def row(self) -> dict:
        return {
            "place": " ; ".join(str(tuple(r)) for r in self.place.rows),
            "procs": self.processes,
            "null": self.null_processes,
            "io": self.io_processes,
            "latches": self.latch_buffers,
            "stationary": self.stationary_streams,
            "total": self.total_cells,
        }


def _default_loading(program: SourceProgram, step: Matrix, place: Matrix):
    """Unit loading vectors for whichever streams come out stationary."""
    from repro.systolic.flow import stream_flow

    base = SystolicArray(step=step, place=place)
    loading: dict[str, Point] = {}
    dim = program.r - 1
    for s in program.streams:
        if is_stationary(stream_flow(base, s)):
            for axis in range(dim):
                candidate = Point.unit(dim, axis)
                loading[s.name] = candidate
                break
    return loading


def cost_of(
    program: SourceProgram,
    array: SystolicArray,
    env: Mapping[str, Numeric],
) -> DesignCost:
    """Compile a candidate and measure it at a concrete size."""
    from repro.core.scheme import compile_systolic

    sp = compile_systolic(program, array)
    space = sp.process_space(env)
    compute = sum(1 for y in space if sp.in_computation_space(y, env))
    io_total = 0
    latches = 0
    stationary = 0
    for plan in sp.streams:
        io_total += len(concrete_io_points(space, plan.transport))
        latches += plan.internal_buffers() * space.size
        if plan.stationary:
            stationary += 1
    return DesignCost(
        place=array.place,
        processes=space.size,
        null_processes=space.size - compute,
        io_processes=io_total,
        latch_buffers=latches,
        stationary_streams=stationary,
    )


def explore_designs(
    program: SourceProgram,
    step: Matrix,
    env: Mapping[str, Numeric],
    *,
    bound: int = 1,
    limit: int | None = None,
) -> list[DesignCost]:
    """Cost every compilable place candidate, cheapest total first.

    Candidates that fail compilation (restriction violations such as
    non-unimodular faces or oversize ``increment_s``) are skipped -- the
    design space the scheme can actually handle is exactly what remains.
    """
    costs: list[DesignCost] = []
    for place in synthesize_places(program, step, bound=bound):
        loading = _default_loading(program, step, place)
        array = SystolicArray(step=step, place=place, loading_vectors=loading)
        try:
            costs.append(cost_of(program, array, env))
        except ReproError:
            continue
    costs.sort(key=lambda c: (c.total_cells, c.null_processes, str(c.place.rows)))
    if limit is not None:
        costs = costs[:limit]
    return costs
