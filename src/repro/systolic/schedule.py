"""Bounded-search synthesis of distribution functions.

The paper assumes ``step``/``place`` are produced by an external synthesis
system (DIASTOL, ADVIS, the Huang-Lengauer method, ...; Section 1).  As a
substrate substitute, this module synthesises them directly:

* :func:`synthesize_step` searches integer row vectors ``tau`` with bounded
  coefficients that respect every dependence, returning those of minimal
  *makespan* (span of ``tau`` over the index space at a sample size) --
  mirroring the optimality guarantee the paper attributes to the external
  systems.
* :func:`synthesize_places` searches integer ``(r-1) x r`` matrices of rank
  ``r-1`` that are compatible with a given ``step`` (Eq. 1) and keep every
  moving stream's flow within the neighbour requirement.

The search space grows as ``O((2*bound+1)^(r*(r-1)))`` for places, so bounds
are kept small; for the nested-loop programs in the paper's class (r = 2, 3)
this is instantaneous and already contains all four appendix designs.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping

from repro.geometry.linalg import Matrix, null_space_vector
from repro.geometry.point import Point, dot
from repro.lang.dependence import check_step_function, dependence_vectors
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Numeric
from repro.systolic.check import check_systolic_array
from repro.systolic.flow import flow_denominator, is_stationary, stream_flow
from repro.systolic.spec import SystolicArray
from repro.util.errors import RequirementViolation, SystolicSpecError


#: memoized place searches -- the fuzz generator re-runs the same bounded
#: search for every attempt, and distinct programs share (step, index-map)
#: signatures constantly
_places_cache: dict = {}
_PLACES_CACHE_LIMIT = 2048


def makespan(
    program: SourceProgram, step: Matrix, env: Mapping[str, Numeric]
) -> int:
    """``(max x : x in IS : step.x) - (min x :: step.x) + 1``.

    The number of synchronous steps the array takes (ignoring i/o fill and
    drain).  Linear over the convex index space, so only corners matter.
    """
    corners = list(program.index_space(env).corners())
    values = [step.apply_point(c)[0] for c in corners]
    return int(max(values) - min(values)) + 1


def _candidate_rows(r: int, bound: int) -> Iterator[Point]:
    for coeffs in itertools.product(range(-bound, bound + 1), repeat=r):
        if any(c != 0 for c in coeffs):
            yield Point(coeffs)


def synthesize_step(
    program: SourceProgram,
    *,
    bound: int = 2,
    env: Mapping[str, Numeric] | None = None,
) -> list[Matrix]:
    """All dependence-respecting step vectors of minimal makespan.

    Candidates have coefficients in ``[-bound, bound]``; ties are returned
    in deterministic (lexicographic) order.  ``env`` is the sample problem
    size at which makespan is measured (default: all sizes bound to 4).
    """
    if env is None:
        syms = set(program.size_symbols)
        for lp in program.loops:
            syms |= lp.lower.free_symbols | lp.upper.free_symbols
        env = {s: 4 for s in syms}
    deps = dependence_vectors(program)
    written = program.body.streams_written()
    # The index-space corners depend only on (program, env): hoist them out
    # of the candidate loop (makespan is linear, so corners suffice).
    corners = list(program.index_space(env).corners())
    best: list[Matrix] = []
    best_span: int | None = None
    for tau in _candidate_rows(program.r, bound):
        ok = True
        for name, d in deps.items():
            product = dot(tau, d)
            if (name in written and product <= 0) or product == 0:
                ok = False
                break
        if not ok:
            continue
        values = [dot(tau, c) for c in corners]
        span = int(max(values) - min(values)) + 1
        if best_span is None or span < best_span:
            best, best_span = [Matrix([tau])], span
        elif span == best_span:
            best.append(Matrix([tau]))
    if not best:
        raise SystolicSpecError(
            f"no valid step vector with coefficients in [-{bound}, {bound}]"
        )
    return best


def synthesize_places(
    program: SourceProgram,
    step: Matrix,
    *,
    bound: int = 1,
    require_neighbour_flows: bool = True,
) -> list[Matrix]:
    """All place matrices compatible with ``step`` under the bound.

    A candidate is kept when it has rank ``r-1``, satisfies Eq. 1
    (``step . null_p != 0``), and -- when ``require_neighbour_flows`` --
    every moving stream's flow meets the neighbour requirement.  Stationary
    streams are accepted (the caller chooses loading vectors later).
    Candidates are deduplicated up to row order.
    """
    check_step_function(program, step)
    r = program.r
    # Everything below depends only on (r, bound, step rows, the streams'
    # index maps, the flow requirement) -- not on the loop bounds or body --
    # so the search is memoized across programs and fuzz instances.
    cache_key = (
        r,
        bound,
        step.rows,
        tuple(s.index_map.rows for s in program.streams),
        require_neighbour_flows,
    )
    cached = _places_cache.get(cache_key)
    if cached is not None:
        return list(cached)
    # Per-stream flow data for a fixed step: with ``d`` spanning
    # ``null(M)``, ``flow = place.d / (step.d)`` (Theorem 10), so only
    # ``place.d`` varies across candidates.
    stream_data = []
    for s in program.streams:
        d = s.null_direction()
        denominator = step.apply_point(d)[0]
        stream_data.append((d, denominator))
    seen: set[frozenset] = set()
    results: list[Matrix] = []
    rows = list(_candidate_rows(r, bound))
    for combo in itertools.combinations(rows, r - 1):
        key = frozenset(combo)
        if key in seen:
            continue
        seen.add(key)
        place = Matrix(combo)
        if place.rank != r - 1:
            continue
        try:
            null_p = null_space_vector(place)
        except Exception:
            continue
        if step.apply_point(null_p)[0] == 0:
            continue
        if require_neighbour_flows:
            ok = True
            for d, denominator in stream_data:
                if denominator == 0:  # Eq. 1 violated (see stream_flow)
                    ok = False
                    break
                flow = place.apply_point(d) / denominator
                if not is_stationary(flow):
                    try:
                        flow_denominator(flow)
                    except RequirementViolation:
                        ok = False
                        break
            if not ok:
                continue
        results.append(place)
    if len(_places_cache) >= _PLACES_CACHE_LIMIT:
        _places_cache.clear()
    _places_cache[cache_key] = tuple(results)
    return results


def candidate_tasks(
    program: SourceProgram, step: Matrix, *, bound: int = 1
) -> list[tuple[tuple[int, ...], ...]]:
    """The place design space as plain row tuples -- the picklable task
    unit :mod:`repro.parallel` ships to worker processes (the heavyweight
    ``(program, step, env)`` context travels once via the pool initializer;
    each task is just this compact tuple-of-rows)."""
    return [place.rows for place in synthesize_places(program, step, bound=bound)]


def synthesize_array(
    program: SourceProgram,
    *,
    step_bound: int = 2,
    place_bound: int = 1,
    default_loading_axis: int = 0,
) -> SystolicArray:
    """One fully checked array: best step, first compatible place.

    Stationary streams get a default loading & recovery vector: the unit
    vector along ``default_loading_axis``, falling back to the remaining
    axes when the check rejects it.  The result passes
    :func:`repro.systolic.check.check_systolic_array`.
    """
    step = synthesize_step(program, bound=step_bound)[0]
    dim = program.r - 1
    axes = [default_loading_axis] + [
        a for a in range(dim) if a != default_loading_axis
    ]
    for place in synthesize_places(program, step, bound=place_bound):
        candidate = SystolicArray(step=step, place=place)
        stationary = [
            s.name
            for s in program.streams
            if is_stationary(stream_flow(candidate, s))
        ]
        for axis in axes if stationary else axes[:1]:
            loading = {name: Point.unit(dim, axis) for name in stationary}
            array = SystolicArray(
                step=step, place=place, loading_vectors=loading, name="synthesized"
            )
            try:
                check_systolic_array(array, program)
            except Exception:
                continue
            return array
    raise SystolicSpecError("no compatible place found within the bound")
