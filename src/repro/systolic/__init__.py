"""Systolic array specifications (Section 3.2 of the paper).

A systolic array is completely determined by two linear distribution
functions: ``step`` (temporal) and ``place`` (spatial).  ``flow`` is derived
from them per stream (Theorem 10).  This package also provides the
compatibility and neighbourhood checks (Eq. 1 and the flow requirement of
Appendix A.1), the four designs worked out in the paper's appendices, and a
small bounded-search synthesiser standing in for the external systolic
design systems the paper cites as producers of ``step``/``place``.
"""

from repro.systolic.spec import SystolicArray
from repro.systolic.flow import stream_flow, all_flows, is_stationary, flow_denominator
from repro.systolic.check import check_systolic_array, check_neighbour_flows
from repro.systolic.designs import (
    polynomial_product_program,
    polyprod_design_d1,
    polyprod_design_d2,
    matrix_product_program,
    matmul_design_e1,
    matmul_design_e2,
    all_paper_designs,
    reversed_polyprod_program,
    polyprod_design_reversed,
    rectangular_matmul_program,
    rectmm_design,
    correlation_program,
    correlation_design,
    tensor_contraction_program,
    tensor_design_simple,
    tensor_design_skewed,
)
from repro.systolic.explore import (
    DesignCost,
    cost_candidate,
    cost_of,
    explore_designs,
    loading_candidates,
    rank_costs,
)
from repro.systolic.schedule import synthesize_step, synthesize_places, synthesize_array, makespan

__all__ = [
    "SystolicArray",
    "stream_flow",
    "all_flows",
    "is_stationary",
    "flow_denominator",
    "check_systolic_array",
    "check_neighbour_flows",
    "polynomial_product_program",
    "polyprod_design_d1",
    "polyprod_design_d2",
    "matrix_product_program",
    "matmul_design_e1",
    "matmul_design_e2",
    "all_paper_designs",
    "reversed_polyprod_program",
    "polyprod_design_reversed",
    "rectangular_matmul_program",
    "rectmm_design",
    "correlation_program",
    "correlation_design",
    "tensor_contraction_program",
    "tensor_design_simple",
    "tensor_design_skewed",
    "synthesize_step",
    "synthesize_places",
    "synthesize_array",
    "makespan",
    "DesignCost",
    "cost_candidate",
    "cost_of",
    "explore_designs",
    "loading_candidates",
    "rank_costs",
]
