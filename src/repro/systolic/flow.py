"""Stream flow: direction and distance travelled per step (Section 3.2).

For a stream ``s`` with index map ``M``, pick any element and two distinct
statements ``op0``, ``op1`` accessing it; then

    flow.s = (place.op1 - place.op0) / (step.op1 - step.op0).

Theorem 10 shows the choice is immaterial: with ``d`` the spanning vector of
``null.M``, ``flow.s = place.d / step.d``.  A zero flow means the stream is
*stationary*; its movement during loading/recovery is governed by the
loading & recovery vector instead.
"""

from __future__ import annotations

from fractions import Fraction

from repro.geometry.point import Point
from repro.lang.program import SourceProgram
from repro.lang.stream import Stream
from repro.symbolic.intern import counter
from repro.systolic.spec import SystolicArray
from repro.util.errors import RequirementViolation, SystolicSpecError

# Local cross-design cache: every sweep candidate shares `step` and the
# stream index maps, so the flow of a stream only depends on the key below.
# (A plain dict here, not core.memo's MEMO: systolic.flow loads before the
# core package and must not import it.)  Failures are never cached -- an
# inconsistent design raises afresh each time.
_flow_cache: dict[tuple, Point] = {}
_FLOW_STATS = counter("flow_memo")
_FLOW_CACHE_LIMIT = 4096


def stream_flow(array: SystolicArray, stream: Stream) -> Point:
    """``flow.s`` as an exact rational vector in ``Q^{r-1}``."""
    key = (array.step.rows, array.place.rows, stream.index_map.rows)
    flow = _flow_cache.get(key)
    if flow is not None:
        _FLOW_STATS.hits += 1
        return flow
    _FLOW_STATS.misses += 1
    d = stream.null_direction()
    denominator = array.step.apply_point(d)[0]
    if denominator == 0:
        raise SystolicSpecError(
            f"stream {stream.name}: step maps its null direction {d} to 0 -- "
            "two accesses of one element would share a step (Eq. 1 violated)"
        )
    numerator = array.place_of(d)
    flow = numerator / denominator
    if len(_flow_cache) >= _FLOW_CACHE_LIMIT:
        _flow_cache.clear()
    _flow_cache[key] = flow
    return flow


def all_flows(array: SystolicArray, program: SourceProgram) -> dict[str, Point]:
    """Flow of every stream of the program."""
    return {s.name: stream_flow(array, s) for s in program.streams}


def is_stationary(flow: Point) -> bool:
    """A stream is stationary iff its flow is the zero vector."""
    return flow.is_zero


def flow_denominator(flow: Point) -> int:
    """The ``n`` with ``flow = y / n``, ``y`` integral and ``nb.y``.

    The neighbour requirement of Appendix A.1 demands each moving stream's
    flow have this shape: every non-zero component must be ``+-1/n`` for one
    positive integer ``n`` (a stream element takes ``n`` asynchronous hops
    -- through ``n - 1`` interposed buffers -- to reach the neighbouring
    process).  Raises :class:`RequirementViolation` otherwise.  For the zero
    flow (stationary stream) the denominator is 1.
    """
    magnitudes = {abs(c) for c in flow if c != 0}
    if not magnitudes:
        return 1
    if len(magnitudes) != 1:
        raise RequirementViolation(
            f"flow {flow} has mixed component magnitudes; it cannot be written "
            "as y/n with nb.y"
        )
    mag = Fraction(next(iter(magnitudes)))
    if mag.numerator != 1:
        raise RequirementViolation(
            f"flow {flow} has component magnitude {mag}; the neighbour "
            "requirement needs magnitudes of the form 1/n"
        )
    return mag.denominator
