"""Consistency checks on systolic arrays (Eq. 1 and Appendix A).

The compilation scheme assumes the systolic array is correct with respect
to the source program (Section 3).  These checks catch the structural parts
of that assumption mechanically:

* **Compatibility (Eq. 1).**  Two distinct statements projected onto the
  same point must not share a step number.  Statements projected together
  differ by a multiple of ``null_p`` (Theorem 4), so compatibility is
  exactly ``step . null_p != 0`` (Theorem 3's argument, run forward).
* **Dependence respect.**  ``step`` strictly increases along every
  dependence of a written stream (delegated to :mod:`repro.lang.dependence`).
* **Neighbour flows (A.1).**  Every moving stream's flow is ``y/n`` with
  ``nb.y``; every stationary stream's loading vector satisfies ``nb``.
"""

from __future__ import annotations

from repro.geometry.point import nb
from repro.lang.dependence import check_step_function
from repro.lang.program import SourceProgram
from repro.systolic.flow import flow_denominator, is_stationary, stream_flow
from repro.systolic.spec import SystolicArray
from repro.util.errors import (
    InconsistentDistributionError,
    RequirementViolation,
    SystolicSpecError,
)


def check_compatibility(array: SystolicArray) -> None:
    """Eq. 1: processes are sequential (step separates co-located ops)."""
    null_p = array.null_place()
    if array.step.apply_point(null_p)[0] == 0:
        raise InconsistentDistributionError(
            f"step {array.step.rows[0]} vanishes on null.place = {null_p}: "
            "two distinct statements would share both place and step (Eq. 1)"
        )


def check_neighbour_flows(array: SystolicArray, program: SourceProgram) -> None:
    """Appendix A.1's flow requirement, plus loading-vector sanity."""
    for s in program.streams:
        flow = stream_flow(array, s)
        if is_stationary(flow):
            vec = array.loading_vector(s.name)  # must exist
            if not nb(vec):
                raise RequirementViolation(
                    f"loading & recovery vector {vec} for stationary stream "
                    f"{s.name} links non-neighbouring processes"
                )
        else:
            flow_denominator(flow)  # raises when not of the form y/n, nb.y


def check_systolic_array(array: SystolicArray, program: SourceProgram) -> None:
    """All checks: shape, compatibility, dependences, neighbour flows."""
    if array.r != program.r:
        raise SystolicSpecError(
            f"distributions consume {array.r} indices, program has {program.r} loops"
        )
    check_compatibility(array)
    check_step_function(program, array.step)
    check_neighbour_flows(array, program)
