"""Cross-design derivation memoization for the explorer.

The design-space sweep compiles hundreds of candidate arrays that differ
only in their ``place`` matrix while sharing the ``step`` vector, the source
program, and therefore most of the intermediate derivations: stream flow
directions, i/o endpoints, soak/drain closed forms, repeater increments.
:data:`MEMO` keys each sub-derivation by a structural fingerprint --
``(program-fingerprint, step rows, place rows, stream name, ...)`` -- so a
candidate re-deriving a form another candidate already produced gets the
interned result back instead of re-running the derivation (and, crucially,
re-running the Fourier-Motzkin simplification behind it).

Only *successful* derivations are cached: exceptions such as
``RestrictionViolation`` are part of candidate filtering and always
propagate uncached.  Tables are bounded (cleared wholesale on overflow --
the working set of one sweep fits comfortably) and the whole state is
picklable via :meth:`DerivationMemo.export_state` /
:meth:`DerivationMemo.import_state`, which is how
``parallel.sweep_designs`` ships the warm driver-side memo to its worker
processes once per batch.

Set ``REPRO_DISABLE_MEMO=1`` to bypass every table (the correctness gate in
``tools/bench_explore.py`` compares cached vs uncached ranked tables).

This module must stay import-light: it is imported from both ``core`` and
``systolic`` and may not import either.
"""

from __future__ import annotations

import hashlib
import os
import threading
import weakref
from typing import Any, Callable, Hashable

from repro import profiling
from repro.symbolic.intern import counter

__all__ = ["DerivationMemo", "MEMO", "program_fingerprint", "stable_key"]

_MISSING = object()

#: Per-table entry bound; one sweep's working set is a few hundred entries.
_TABLE_LIMIT = 4096


def _disabled() -> bool:
    return os.environ.get("REPRO_DISABLE_MEMO", "") not in ("", "0")


_skey_cache: dict[int, str] = {}


def stable_key(form) -> str:
    """Order-sensitive, picklable key component for a symbolic form.

    ``Guard`` and ``Piecewise`` equality deliberately ignores constraint and
    alternative order, but their rendering does not, so keying a memo table
    on the objects themselves could hand an order-variant caller a result
    that *prints* differently (while remaining semantically equal).  Their
    ``str`` form spells out the exact ordered structure and pickles to the
    same key in worker processes.  Cached per (interned, shared) instance.
    """
    ident = id(form)
    sk = _skey_cache.get(ident)
    if sk is None:
        sk = str(form)
        _skey_cache[ident] = sk
        weakref.finalize(form, _skey_cache.pop, ident, None)
    return sk


class DerivationMemo:
    """Named memo tables for derivation steps, keyed structurally.

    Task/thread safety: the compile service runs derivations on executor
    threads, so every table mutation happens under one re-entrant lock.
    ``compute()`` itself runs *outside* the lock -- two threads missing the
    same key may both derive the value, but derivations are pure and their
    results interned, so the second insert is the same (or an equal) object
    and last-write-wins is benign.  Holding the lock through ``compute()``
    would instead serialize every distinct compile behind the slowest one.
    A cancelled service request simply abandons the executor thread; the
    derivation still runs to completion there and only a *successful*
    result is inserted, so cancellation can never leave a partial entry.
    """

    def __init__(self, limit: int = _TABLE_LIMIT) -> None:
        self.tables: dict[str, dict[Hashable, Any]] = {}
        self.limit = limit
        self._stats = counter("derivation_memo")
        #: per-table (hits, misses) -- lets callers prove a specific
        #: derivation (e.g. the symbolic partition compilation) was reused
        #: rather than re-run, independent of unrelated memo traffic
        self._table_stats: dict[str, list[int]] = {}
        self._lock = threading.RLock()

    def table_counters(self, table: str) -> tuple[int, int]:
        """``(hits, misses)`` recorded for one memo table."""
        with self._lock:
            hits, misses = self._table_stats.get(table, (0, 0))
        return (hits, misses)

    def get(self, table: str, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The memoized value of ``compute()`` under ``(table, key)``."""
        if _disabled():
            return compute()
        with self._lock:
            entries = self.tables.get(table)
            if entries is None:
                entries = self.tables[table] = {}
            stats = self._table_stats.setdefault(table, [0, 0])
            found = entries.get(key, _MISSING)
            if found is not _MISSING:
                self._stats.hits += 1
                stats[0] += 1
                return found
            self._stats.misses += 1
            stats[1] += 1
        value = compute()  # outside the lock: pure, may run concurrently
        with self._lock:
            if len(entries) >= self.limit:
                entries.clear()
            entries[key] = value
        return value

    def clear(self) -> None:
        with self._lock:
            self.tables.clear()
            self._table_stats.clear()

    def export_state(self) -> dict[str, dict[Hashable, Any]]:
        """A picklable snapshot (values are interned symbolic objects)."""
        with self._lock:
            return {name: dict(entries) for name, entries in self.tables.items()}

    def import_state(self, state: dict[str, dict[Hashable, Any]]) -> None:
        """Merge a snapshot (e.g. shipped from the sweep driver)."""
        with self._lock:
            for name, entries in state.items():
                self.tables.setdefault(name, {}).update(entries)

    def counters_snapshot(self) -> dict[str, tuple[int, int]]:
        """All per-table ``(hits, misses)`` pairs (service ``/stats``)."""
        with self._lock:
            return {name: (s[0], s[1]) for name, s in self._table_stats.items()}

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            out = {
                "hits": self._stats.hits,
                "misses": self._stats.misses,
            }
            for name, entries in sorted(self.tables.items()):
                out[f"table_{name}"] = len(entries)
        return out


#: The process-wide memo used by the compilation driver and the explorer.
MEMO = DerivationMemo()

profiling.register("derivation_memo", MEMO.stats_snapshot)


_fp_cache: dict[int, str] = {}


def program_fingerprint(program) -> str:
    """A stable, cross-process fingerprint of a source program.

    Derived from the canonical ``to_source()`` text so equal programs in
    different worker processes produce the same memo keys; cached per
    instance (evicted when the program is garbage-collected).
    """
    ident = id(program)
    fp = _fp_cache.get(ident)
    if fp is None:
        fp = hashlib.sha1(program.to_source().encode()).hexdigest()[:16]
        _fp_cache[ident] = fp
        weakref.finalize(program, _fp_cache.pop, ident, None)
    return fp
