"""Buffer processes (Sections 6.6 and 7.6).

Two kinds:

* **Internal buffers** -- a stream with fractional flow ``y/n`` travels
  slower than one process hop per step; in hardware extra latches absorb
  the elements in transit.  Here, since the synchronous communication link
  itself provides a buffer of size 1, ``n - 1`` explicit buffer processes
  are interposed on every channel of that stream.

* **External buffers** -- the points of ``PS \\ CS`` execute no basic
  statements but must transport stream elements between the boundary i/o
  processes and the computation space.  A point is outside ``CS`` exactly
  when the disjunction of the guards of ``first`` fails (they are defined
  precisely on ``CS``).  Each such buffer passes along the *whole* pipe:

      ((last_s - first_s) // increment_s) + 1           (10)

  evaluated piecewise; a null ``first_s`` (pipe misses the variable) means
  the buffer passes nothing for that stream -- Appendix E.2.6 observes that
  the Kung-Leiserson corner buffers move only streams ``a`` and ``b``.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.symbolic.piecewise import Case, Piecewise
from repro.util.errors import CompilationError


def internal_buffer_count(flow_denominator: int) -> int:
    """Buffers interposed per channel: ``n - 1`` for flow ``y/n``."""
    if flow_denominator < 1:
        raise CompilationError(f"bad flow denominator {flow_denominator}")
    return flow_denominator - 1


def derive_pass_amount(
    first_s: Piecewise,
    last_s: Piecewise,
    increment_s: Point,
) -> Piecewise:
    """Eq. 10: the pipe length, one alternative per feasible face pair."""
    from repro.core.repeater import affine_vector_quotient

    cases: list[Case] = []
    for fc in first_s.cases:
        for lc in last_s.cases:
            guard = fc.guard.and_(lc.guard)
            if guard.is_trivially_false:
                continue
            amount = affine_vector_quotient(lc.value - fc.value, increment_s) + 1
            cases.append(Case(guard, amount))
    return Piecewise.with_null_default(cases)
