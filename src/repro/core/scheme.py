"""The compilation driver (Section 7's derivation, end to end).

:func:`compile_systolic` takes a validated source program and a consistent
systolic array and produces the :class:`SystolicProgram`:

1. check the source (Appendix A) and the array (Eq. 1, neighbour flows);
2. derive the process-space basis (7.1);
3. derive ``increment`` (7.2.1) and ``first``/``last``/``count``
   (7.2.2-7.2.3);
4. for every stream: flow, ``increment_s``, ``first_s``/``last_s``
   (7.3-7.4), soak/drain (7.5) and the buffer pass amount (7.6);
5. prune vacuous alternatives under the standing assumptions
   ``lb_i <= rb_i`` (the mechanical counterpart of the paper's
   hand-simplifications).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.basis import process_space_basis, process_space_guard
from repro.core.buffers import derive_pass_amount
from repro.core.firstlast import derive_count, derive_first, derive_last, is_simple_place
from repro.core.increment import derive_increment
from repro.core.io_comm import derive_io_endpoint, derive_stream_increment
from repro.core.memo import MEMO, program_fingerprint, stable_key
from repro.core.program import StreamPlan, SystolicProgram
from repro.core.propagation import derive_drain, derive_soak
from repro.lang.program import SourceProgram
from repro.lang.validate import validate_program
from repro.symbolic.guard import Constraint, Guard
from repro.symbolic.minmax import bound_le_constraints
from repro.systolic.check import check_systolic_array
from repro.systolic.flow import flow_denominator, is_stationary, stream_flow
from repro.systolic.spec import SystolicArray
from repro.util.errors import CompilationError, RestrictionViolation

#: Default coordinate names, matching the paper's appendices.
_DEFAULT_COORDS = {1: ("col",), 2: ("col", "row")}


def default_coords(dim: int) -> tuple[str, ...]:
    """Process-space coordinate symbols: ``col``/``row`` when they fit."""
    if dim in _DEFAULT_COORDS:
        return _DEFAULT_COORDS[dim]
    return tuple(f"y{i}" for i in range(dim))


def loop_range_assumptions(program: SourceProgram) -> Guard:
    """The paper's standing assumption ``lb_i <= rb_i`` for every loop.

    An extremum bound expands conjunctively: ``max(a, b) <= min(c, d)``
    contributes every pairwise ``a_i <= c_j``.
    """
    constraints: list[Constraint] = []
    for lp in program.loops:
        constraints.extend(bound_le_constraints(lp.lower, lp.upper))
    return Guard(constraints)


def compile_systolic(
    program: SourceProgram,
    array: SystolicArray,
    *,
    coords: Sequence[str] | None = None,
    validate: bool = True,
    prune: bool = True,
) -> SystolicProgram:
    """Compile a source program and systolic array into a systolic program."""
    fp = program_fingerprint(program)
    if validate:
        # validate_program only depends on the program, which is shared by
        # every candidate in a sweep -- run it once per fingerprint.  The
        # array check is per-design and stays unmemoized.
        MEMO.get("validate", (fp,), lambda: (validate_program(program), True)[1])
        check_systolic_array(array, program)

    dim = program.r - 1
    coord_names = tuple(coords) if coords is not None else default_coords(dim)
    if len(coord_names) != dim:
        raise CompilationError(
            f"{len(coord_names)} coordinate names for a {dim}-dimensional "
            "process space"
        )
    reserved = set(program.indices) | set(program.size_symbols)
    clash = reserved.intersection(coord_names)
    if clash:
        raise CompilationError(
            f"coordinate names {sorted(clash)} collide with loop indices or "
            "size symbols"
        )

    assumptions = loop_range_assumptions(program)

    # 7.1 -- the process space basis
    ps_min, ps_max = process_space_basis(program, array)
    # Per-process quantities are only ever evaluated at points of PS, so the
    # simplification context may assume PS membership on top of lb <= rb
    # (this is what lets e.g. E.1.4's first_a collapse to the unguarded
    # (col, 0): its guard 0 <= col <= n *is* PS membership).
    ps_assumptions = assumptions.and_(
        process_space_guard(ps_min, ps_max, coord_names)
    )

    # 7.2 -- computation repeaters.  Every derivation below is routed
    # through the cross-design memo: candidates in a sweep share `step`,
    # the program, and usually several `place` rows, so the same closed
    # forms (and the Fourier-Motzkin work inside simplify) recur hundreds
    # of times across cost_candidate calls.
    step_rows = array.step.rows
    place_rows = array.place.rows
    increment = MEMO.get(
        "increment", (step_rows, place_rows),
        lambda: derive_increment(array),
    )
    simple = is_simple_place(array, increment)
    first = MEMO.get(
        "endpoint", (fp, step_rows, place_rows, increment, coord_names, "first"),
        lambda: derive_first(program, array, increment, coord_names),
    )
    last = MEMO.get(
        "endpoint", (fp, step_rows, place_rows, increment, coord_names, "last"),
        lambda: derive_last(program, array, increment, coord_names),
    )
    # Guards and piecewise forms go into keys via stable_key: their __eq__
    # ignores ordering, but the cached result's rendering must not change
    # depending on which order-variant populated the table first.
    count = MEMO.get(
        "count",
        (stable_key(first), stable_key(last), increment, stable_key(assumptions)),
        lambda: derive_count(first, last, increment, assumptions),
    )

    # 7.3 - 7.6 -- per-stream plans
    plans: list[StreamPlan] = []
    for stream in program.streams:
        flow = stream_flow(array, stream)
        stationary = is_stationary(flow)
        transport = array.loading_vector(stream.name) if stationary else flow
        denominator = flow_denominator(transport)
        hop = transport * denominator
        if not hop.is_integral:
            raise CompilationError(
                f"stream {stream.name}: hop vector {hop} is not integral"
            )
        # `transport` (the loading vector for stationary streams, the flow
        # otherwise) is part of the key: the same step/place rows with a
        # different loading vector derive a different increment_s.
        increment_s = MEMO.get(
            "increment_s",
            (fp, stream.name, step_rows, place_rows, increment, transport),
            lambda: derive_stream_increment(stream, increment, array),
        )
        if any(abs(c) > 1 for c in increment_s):
            # Surfaced by this reproduction: the paper restricts the
            # components of `increment` to {-1,0,+1} (A.2) but places no
            # such restriction on increment_s = M.increment.  When a
            # component's magnitude exceeds 1, the Eq. 6/7 boundary
            # projection can land between lattice points of VS.v and the
            # i/o endpoints stop being elements; handling that needs the
            # floor/perturbation machinery the paper defers to future work
            # (Section 6.2's note, "non-integer solutions" in Section 8).
            raise RestrictionViolation(
                f"stream {stream.name}: increment_s {increment_s} has a "
                "component outside {-1, 0, +1}; the i/o endpoint equations "
                "(6)/(7) require unit element steps (implicit restriction "
                "of the scheme)"
            )
        first_key = stable_key(first)
        first_s = MEMO.get(
            "io_endpoint", (fp, stream.name, increment_s, first_key, "first"),
            lambda: derive_io_endpoint(stream, increment_s, first, "first"),
        )
        last_s = MEMO.get(
            "io_endpoint", (fp, stream.name, increment_s, first_key, "last"),
            lambda: derive_io_endpoint(stream, increment_s, first, "last"),
        )
        soak = MEMO.get(
            "soak",
            (fp, stream.name, first_key, stable_key(first_s), increment_s),
            lambda: derive_soak(stream, first, first_s, increment_s),
        )
        drain = MEMO.get(
            "drain",
            (fp, stream.name, stable_key(last), stable_key(last_s), increment_s),
            lambda: derive_drain(stream, last, last_s, increment_s),
        )
        pass_amount = MEMO.get(
            "pass_amount",
            (stable_key(first_s), stable_key(last_s), increment_s),
            lambda: derive_pass_amount(first_s, last_s, increment_s),
        )
        if prune:
            # simplify() itself is memoized on the interned instances, so
            # repeated forms cost one dict lookup here.
            first_s = first_s.simplify(ps_assumptions)
            last_s = last_s.simplify(ps_assumptions)
            soak = soak.simplify(ps_assumptions)
            drain = drain.simplify(ps_assumptions)
            pass_amount = pass_amount.simplify(ps_assumptions)
        plans.append(
            StreamPlan(
                stream=stream,
                flow=flow,
                stationary=stationary,
                transport=transport,
                denominator=denominator,
                hop=hop,
                increment_s=increment_s,
                first_s=first_s,
                last_s=last_s,
                soak=soak,
                drain=drain,
                pass_amount=pass_amount,
            )
        )

    if prune:
        first = first.simplify(ps_assumptions)
        last = last.simplify(ps_assumptions)
        count = count.simplify(ps_assumptions)

    return SystolicProgram(
        source=program,
        array=array,
        coords=coord_names,
        ps_min=ps_min,
        ps_max=ps_max,
        increment=increment,
        first=first,
        last=last,
        count=count,
        simple=simple,
        streams=tuple(plans),
        assumptions=assumptions,
    )
