"""Deriving ``first``, ``last`` and ``count`` (Sections 7.2.2-7.2.3).

Each process ``y`` executes the chord ``{x in IS : place.x = y}``; ``first``
is its end of minimal step value, ``last`` the maximal one.  With the
``increment``-component restriction (Appendix A.2) both ends lie on *faces*
of the index space: the boundaries of the dimensions where ``increment`` is
non-zero.

For ``first`` at face ``i``, the pinned bound is the *left* bound when
``increment.i > 0`` and the right bound otherwise; for ``last`` the roles
swap.  Pinning coordinate ``i`` leaves the ``(r-1) x (r-1)`` system

    place.(x; i: bound_i) = y

whose coefficient matrix is ``place`` with column ``i`` dropped -- always
invertible when ``increment.i != 0`` (if it were singular, its kernel would
inject into ``null.place`` with a zero ``i``-th component, forcing
``increment.i = 0``).  The symbolic solution gives both the expression and,
substituted into the bounds of the remaining loops, the guard: the "shadow"
of the face in the process space.

The *simple* special case (7.2.3): when ``increment = +-e_i`` **and** the
remaining columns of ``place`` form a signed permutation, ``place`` merely
projects away axis ``i``; then ``CS = PS``, a single unguarded expression
covers every process, and there are no null processes.  (The paper infers
simplicity from ``increment`` alone; the signed-permutation condition is
the precise requirement for ``place`` to map the rectangular index space
*onto* a rectangle, which is what "no guards needed" relies on.)
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.geometry.linalg import Matrix, solve_unique
from repro.geometry.point import Point
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.guard import Constraint, Guard
from repro.symbolic.minmax import (
    Bound,
    bound_alternatives,
    lower_bound_constraints,
    upper_bound_constraints,
)
from repro.symbolic.piecewise import Case, Piecewise
from repro.systolic.spec import SystolicArray
from repro.util.errors import CompilationError

Kind = Literal["first", "last"]


def is_simple_place(array: SystolicArray, increment: Point) -> bool:
    """True iff the place function is *simple* (Section 7.2.3).

    ``increment`` must be a signed unit vector, and the matrix left after
    dropping the collapsed column must be a signed permutation (one ``+-1``
    per row and per column, zeros elsewhere).
    """
    nonzero = [i for i, c in enumerate(increment) if c != 0]
    if len(nonzero) != 1 or abs(increment[nonzero[0]]) != 1:
        return False
    reduced = array.place.drop_column(nonzero[0])
    n = reduced.nrows
    if reduced.ncols != n:
        return False
    col_used = [False] * n
    for i in range(n):
        row_nonzero = [j for j in range(n) if reduced[i, j] != 0]
        if len(row_nonzero) != 1:
            return False
        j = row_nonzero[0]
        if abs(reduced[i, j]) != 1 or col_used[j]:
            return False
        col_used[j] = True
    return True


def _face_bound(program: SourceProgram, axis: int, inc_component, kind: Kind) -> Bound:
    """The pinned bound of the face in dimension ``axis``."""
    loop = program.loops[axis]
    positive = inc_component > 0
    if kind == "last":
        positive = not positive
    return loop.lower if positive else loop.upper


def _solve_face(
    program: SourceProgram,
    array: SystolicArray,
    axis: int,
    bound: Affine,
    coords: Sequence[str],
) -> tuple[AffineVec, Guard]:
    """Solve ``place.(x; axis: bound) = y`` symbolically.

    Returns the full ``r``-vector solution and the face's shadow guard.
    """
    r = program.r
    y = [Affine.var(c) for c in coords]
    reduced = array.place.drop_column(axis)
    rhs = [
        y[k] - bound * array.place[k, axis] for k in range(r - 1)
    ]
    solution = solve_unique(reduced, rhs)  # Affine entries
    components: list[Affine] = []
    guards: list[Constraint] = []
    sol_iter = iter(solution)
    for j in range(r):
        if j == axis:
            components.append(bound)
            continue
        e_j = next(sol_iter)
        components.append(e_j)
        loop = program.loops[j]
        guards.extend(lower_bound_constraints(e_j, loop.lower))
        guards.extend(upper_bound_constraints(e_j, loop.upper))
    return AffineVec(components), Guard(guards)


def check_integral_solutions(array: SystolicArray, increment: Point) -> None:
    """Reject designs whose face systems have non-integer solutions.

    The paper lists "non-integer solutions to the linear equations" among
    the restrictions to be lifted in future work (Section 8).  Precisely:
    the face system ``place.(x; i: bound) = y`` has an integral solution for
    *every* integral ``y`` in the face's shadow iff the reduced matrix
    (place without column ``i``) is unimodular.  A non-unimodular face means
    ``place`` maps the index-space lattice onto a proper sublattice --
    guard-satisfying processes with *empty* chords appear and the derived
    endpoints go fractional, so such designs are outside the scheme.
    """
    from repro.util.errors import RestrictionViolation

    for axis, comp in enumerate(increment):
        if comp == 0:
            continue
        det = array.place.drop_column(axis).determinant()
        if abs(det) != 1:
            raise RestrictionViolation(
                f"face {axis}: reduced place matrix has determinant {det}; "
                "the face equations would have non-integer solutions "
                "(restriction deferred to future work in Section 8)"
            )


def _derive_endpoint(
    program: SourceProgram,
    array: SystolicArray,
    increment: Point,
    coords: Sequence[str],
    kind: Kind,
) -> Piecewise:
    faces = [i for i, c in enumerate(increment) if c != 0]
    if not faces:
        raise CompilationError("increment is the zero vector")
    check_integral_solutions(array, increment)

    if is_simple_place(array, increment):
        axis = faces[0]
        bound = _face_bound(program, axis, increment[axis], kind)
        alts = bound_alternatives(bound)
        if len(alts) == 1:
            expr, _guard = _solve_face(program, array, axis, alts[0][1], coords)
            # CS = PS: one expression, no guards, no null processes (7.2.3).
            return Piecewise.single(expr)
        # Extremum pinned bound: split on which argument attains it.  The
        # selector guards only involve size symbols, jointly cover the
        # parameter space, and the alternatives agree on ties, so CS = PS
        # still holds and no null default is needed.
        cases = [
            Case(Guard(sel), _solve_face(program, array, axis, value, coords)[0])
            for sel, value in alts
        ]
        return Piecewise(cases)

    cases: list[Case] = []
    for axis in faces:
        bound = _face_bound(program, axis, increment[axis], kind)
        for sel, value in bound_alternatives(bound):
            expr, guard = _solve_face(program, array, axis, value, coords)
            case_guard = guard if not sel else Guard(sel + guard.constraints)
            cases.append(Case(case_guard, expr))
    return Piecewise.with_null_default(cases)


def derive_first(
    program: SourceProgram,
    array: SystolicArray,
    increment: Point,
    coords: Sequence[str],
) -> Piecewise:
    """``first`` as a case analysis of affine vectors over ``coords``."""
    return _derive_endpoint(program, array, increment, coords, "first")


def derive_last(
    program: SourceProgram,
    array: SystolicArray,
    increment: Point,
    coords: Sequence[str],
) -> Piecewise:
    """``last``: as ``first`` with left and right bounds interchanged."""
    return _derive_endpoint(program, array, increment, coords, "last")


def derive_count(
    first: Piecewise,
    last: Piecewise,
    increment: Point,
    assumptions: Guard | None = None,
) -> Piecewise:
    """``count = ((last - first) // increment) + 1`` (Eq. 4), piecewise.

    In general the guards of ``first`` and ``last`` differ, so the result
    has up to ``|first| * |last|`` alternatives (Appendix E.2.2 notes six
    for the Kung-Leiserson design); infeasible combinations are pruned.
    """
    from repro.core.repeater import affine_vector_quotient

    cases: list[Case] = []
    for fc in first.cases:
        for lc in last.cases:
            guard = fc.guard.and_(lc.guard)
            if not guard.feasible(assumptions):
                continue
            value = affine_vector_quotient(lc.value - fc.value, increment) + 1
            cases.append(Case(guard, value))
    has_default = first.has_default or last.has_default
    if has_default:
        return Piecewise.with_null_default(cases)
    return Piecewise(cases)
