"""Deriving ``increment`` (Section 7.2.1).

``increment`` is the unit distance between consecutive basic statements of
one process: pick any ``w`` in ``null.place``, reduce by the gcd of its
components (Theorem 7's corollary) and orient it so that
``step.increment > 0`` (Theorem 6)::

    increment = sgn.(step.w) * (1/k) * w ,   k = gcd of |w.i|

``step.w = 0`` is impossible for a consistent array (Theorem 3).  The
scheme additionally restricts every component of ``increment`` to
``{-1, 0, +1}`` (Appendix A.2): this is what guarantees that ``first`` and
``last`` lie *on* boundaries of the index space rather than merely near
them (Section 6.2's note describes the general case as future work).
"""

from __future__ import annotations

from repro.geometry.point import Point, gcd_reduce, sgn
from repro.systolic.spec import SystolicArray
from repro.util.errors import InconsistentDistributionError, RestrictionViolation


def derive_increment(array: SystolicArray, *, enforce_restriction: bool = True) -> Point:
    """The constant vector ``increment`` in ``Z^r``.

    Raises :class:`InconsistentDistributionError` when ``step`` vanishes on
    the null space of ``place`` (Eq. 1 violated), and
    :class:`RestrictionViolation` when a component falls outside
    ``{-1, 0, +1}`` (unless ``enforce_restriction`` is disabled, for callers
    that only want to *inspect* the vector).
    """
    w = array.null_place()
    unit, _ = gcd_reduce(w)
    step_w = array.step.apply_point(unit)[0]
    if step_w == 0:
        raise InconsistentDistributionError(
            f"step vanishes on null.place = {unit}; step and place are "
            "inconsistent (Theorem 3)"
        )
    increment = unit * sgn(step_w)
    if enforce_restriction and any(abs(c) > 1 for c in increment):
        raise RestrictionViolation(
            f"increment {increment} has components outside {{-1, 0, +1}}; the "
            "scheme's first/last construction requires boundary intersections "
            "(Appendix A.2; general case is the paper's future work)"
        )
    return increment
