"""Soaking and draining (Sections 6.5 and 7.5).

Each computation process must help move elements it does not itself use:
those arriving before its first used element are *soaked* (received and
passed on), those after its last are *drained*:

    soak_s  = (M.first - first_s) // increment_s        (8)
    drain_s = (last_s  - M.last ) // increment_s        (9)

Both are exact symbolic vector quotients -- the operands are parallel by
construction (``M.first`` and ``first_s`` lie on the same ``increment_s``
line of ``VS.v``).

For stationary streams the same formulas give loading and recovery: the
number of elements passed on while *loading* equals ``drain_s`` and while
*recovering* equals ``soak_s`` (Section 6.5) -- the FIFO protocol keeps one
loop specification for both directions.

Since ``first`` and ``first_s`` are both case analyses, the result nests:
one outer alternative per clause of ``first``, one inner alternative per
face of ``first_s`` -- exactly the shape of the soak/drain code in the
Kung-Leiserson program of Appendix E.2.7.  Vacuous inner alternatives can
be removed with :meth:`Piecewise.prune` (the paper does this by hand).
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.lang.stream import Stream
from repro.symbolic.affine import AffineVec
from repro.symbolic.piecewise import Case, Piecewise
from repro.util.errors import CompilationError


def _propagation(
    stream: Stream,
    endpoint: Piecewise,
    io_endpoint: Piecewise,
    increment_s: Point,
    *,
    io_minus_m: bool,
) -> Piecewise:
    from repro.core.repeater import affine_vector_quotient

    outer_cases: list[Case] = []
    for clause in endpoint.cases:
        if not isinstance(clause.value, AffineVec):
            raise CompilationError("endpoint clause is not an affine vector")
        m_point = AffineVec(stream.index_map.apply(list(clause.value)))
        inner_cases: list[Case] = []
        for io_case in io_endpoint.cases:
            if io_minus_m:
                num = io_case.value - m_point
            else:
                num = m_point - io_case.value
            amount = affine_vector_quotient(num, increment_s)
            inner_cases.append(Case(io_case.guard, amount))
        inner = Piecewise.with_null_default(inner_cases)
        outer_cases.append(Case(clause.guard, inner))
    if endpoint.has_default:
        return Piecewise.with_null_default(outer_cases)
    return Piecewise(outer_cases)


def derive_soak(
    stream: Stream,
    first: Piecewise,
    first_s: Piecewise,
    increment_s: Point,
) -> Piecewise:
    """Eq. 8: elements passed on before the first used one arrives.

    For a stationary stream this is also the *recovery* pass count.
    """
    return _propagation(stream, first, first_s, increment_s, io_minus_m=False)


def derive_drain(
    stream: Stream,
    last: Piecewise,
    last_s: Piecewise,
    increment_s: Point,
) -> Piecewise:
    """Eq. 9: elements passed on after the last used one.

    For a stationary stream this is also the *loading* pass count.
    """
    return _propagation(stream, last, last_s, increment_s, io_minus_m=True)
