"""The compiled artefact: a fully symbolic systolic program.

A :class:`SystolicProgram` bundles everything Sections 6-7 derive, still
parameterised by the problem-size symbols and the process-space coordinate
symbols (``col``/``row``/...).  It is the input both to the textual
backends (:mod:`repro.target`) and to the executable runtime
(:mod:`repro.runtime`), which instantiates it at a concrete problem size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.core.basis import concrete_process_space
from repro.core.repeater import Repeater
from repro.lang.program import SourceProgram
from repro.lang.stream import Stream
from repro.symbolic.affine import Numeric
from repro.symbolic.guard import Guard
from repro.symbolic.piecewise import Piecewise
from repro.systolic.spec import SystolicArray
from repro.util.errors import CompilationError


@dataclass(frozen=True)
class StreamPlan:
    """Everything the scheme derives for one stream."""

    stream: Stream
    #: exact flow in Q^{r-1}; zero for stationary streams
    flow: Point
    #: True iff the stream does not move during the computation
    stationary: bool
    #: the effective movement vector: the flow for moving streams, the
    #: loading & recovery vector for stationary ones (Section 4.2)
    transport: Point
    #: n where transport = y/n with nb.y; n-1 internal buffers per link
    denominator: int
    #: the integral one-hop direction y = n * transport between neighbours
    hop: Point
    #: increment_s = M . increment (or the loading vector; Theorem 11)
    increment_s: Point
    #: Eq. 6 / Eq. 7 endpoints of the pipe in VS.v, piecewise over PS coords
    first_s: Piecewise
    last_s: Piecewise
    #: Eq. 8 / Eq. 9 propagation amounts (nested piecewise, scalar leaves);
    #: for stationary streams soak = recovery passes, drain = loading passes
    soak: Piecewise
    drain: Piecewise
    #: Eq. 10: whole-pipe pass count for external buffer processes
    pass_amount: Piecewise

    @property
    def name(self) -> str:
        return self.stream.name

    def pipe_repeater(self) -> Repeater:
        """The i/o repeater ``{first_s last_s increment_s}``."""
        return Repeater(self.first_s, self.last_s, self.increment_s)

    def internal_buffers(self) -> int:
        """Explicit buffers interposed on each channel of this stream."""
        return self.denominator - 1


@dataclass(frozen=True)
class SystolicProgram:
    """The complete symbolic systolic program."""

    source: SourceProgram
    array: SystolicArray
    #: process-space coordinate symbols, e.g. ("col",) or ("col", "row")
    coords: tuple[str, ...]
    #: Section 7.1
    ps_min: object  # AffineVec
    ps_max: object  # AffineVec
    #: Section 7.2
    increment: Point
    first: Piecewise
    last: Piecewise
    count: Piecewise
    simple: bool
    #: per-stream plans, in source declaration order
    streams: tuple[StreamPlan, ...]
    #: standing assumptions (lb_i <= rb_i) used for pruning
    assumptions: Guard

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def plan(self, name: str) -> StreamPlan:
        for p in self.streams:
            if p.name == name:
                return p
        raise CompilationError(f"no stream plan for {name!r}")

    @property
    def repeater(self) -> Repeater:
        """The computation repeater ``{first last increment}``."""
        return Repeater(self.first, self.last, self.increment)

    # ------------------------------------------------------------------
    # instantiation helpers
    # ------------------------------------------------------------------
    def process_space(self, env: Mapping[str, Numeric]) -> Rectangle:
        return concrete_process_space(self.ps_min, self.ps_max, env)

    def bind(self, y: Point, env: Mapping[str, Numeric]) -> dict[str, Numeric]:
        """A full symbol environment: problem size plus coordinates of y."""
        if y.dim != len(self.coords):
            raise CompilationError(f"{y} has wrong dimension for {self.coords}")
        full = dict(env)
        for name, c in zip(self.coords, y):
            full[name] = c
        return full

    def in_computation_space(self, y: Point, env: Mapping[str, Numeric]) -> bool:
        """Section 7.6: y is in CS iff some guard of ``first`` holds."""
        if not self.first.has_default:
            return True
        return self.first.any_case_holds(self.bind(y, env))

    def computation_points(self, env: Mapping[str, Numeric]) -> list[Point]:
        return [
            y for y in self.process_space(env) if self.in_computation_space(y, env)
        ]

    def buffer_points(self, env: Mapping[str, Numeric]) -> list[Point]:
        """The external buffer processes PS \\ CS (Section 6.6)."""
        return [
            y
            for y in self.process_space(env)
            if not self.in_computation_space(y, env)
        ]

    def summary(self) -> str:
        """A short human-readable inventory of the derived program."""
        lines = [
            f"systolic program for {self.source.name!r} / {self.array.name!r}",
            f"  coords     : {', '.join(self.coords)}",
            f"  PS basis   : {self.ps_min} .. {self.ps_max}",
            f"  increment  : {self.increment}",
            f"  simple     : {self.simple}",
            f"  first      : {len(self.first.cases)} alternative(s)",
            f"  last       : {len(self.last.cases)} alternative(s)",
        ]
        for p in self.streams:
            kind = "stationary" if p.stationary else f"flow {p.flow}"
            lines.append(
                f"  stream {p.name}: {kind}, increment_s {p.increment_s}, "
                f"{p.internal_buffers()} internal buffer(s) per link"
            )
        return "\n".join(lines)
