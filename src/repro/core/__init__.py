"""The systolizing compilation scheme (Sections 6-7) -- the paper's core.

Given a validated source program and a consistent systolic array, derive:

* the process-space basis ``PS_min``/``PS_max`` (7.1),
* ``increment`` (7.2.1),
* ``first``/``last``/``count`` for the computation repeaters, by symbolic
  face solving, including the simple-place special case (7.2.2-7.2.3),
* the i/o process layout (7.3),
* the i/o repeaters ``first_s``/``last_s``/``increment_s`` (7.4, Eqs. 6-7),
* soak/drain (= recovery/loading) amounts (7.5, Eqs. 8-9),
* internal and external buffer requirements (7.6, Eq. 10),

assembled into a :class:`~repro.core.program.SystolicProgram` -- a fully
symbolic distributed program, parameterised by the problem-size symbols and
the process-space coordinates.
"""

from repro.core.repeater import Repeater, affine_vector_quotient
from repro.core.basis import process_space_basis, process_space_guard, concrete_process_space
from repro.core.increment import derive_increment
from repro.core.firstlast import derive_first, derive_last, derive_count, is_simple_place
from repro.core.io_layout import io_axes, io_boundary_sides, concrete_io_points
from repro.core.io_comm import derive_stream_increment, derive_io_endpoint
from repro.core.propagation import derive_soak, derive_drain
from repro.core.buffers import derive_pass_amount, internal_buffer_count
from repro.core.program import StreamPlan, SystolicProgram
from repro.core.scheme import compile_systolic

__all__ = [
    "Repeater",
    "affine_vector_quotient",
    "process_space_basis",
    "process_space_guard",
    "concrete_process_space",
    "derive_increment",
    "derive_first",
    "derive_last",
    "derive_count",
    "is_simple_place",
    "io_axes",
    "io_boundary_sides",
    "concrete_io_points",
    "derive_stream_increment",
    "derive_io_endpoint",
    "derive_soak",
    "derive_drain",
    "derive_pass_amount",
    "internal_buffer_count",
    "StreamPlan",
    "SystolicProgram",
    "compile_systolic",
]
