"""I/O process communications (Sections 6.4 and 7.4).

The elements an i/o process feeds into (or extracts from) one pipeline lie
on a line in the variable space ``VS.v`` whose direction is

    increment_s = M . increment                       (Theorem 11)

-- a constant, because ``increment`` is.  For a stationary stream the
loading & recovery vector plays the role of ``increment_s`` (Appendix
D.1.4).  ``first_s`` is the intersection of that line with the upstream
face of ``VS.v``, and ``last_s`` with the downstream face:

    first_s = M.x - ((M.x.i - first_s.i) / increment_s.i) * increment_s   (6)
    last_s  = M.x + ((last_s.i  - M.x.i) / increment_s.i) * increment_s   (7)

where ``x`` is *any* basic statement of the pipe (any clause of ``first``
works: two clauses differ by a multiple of ``null.place`` pointwise, whose
``M``-image is parallel to ``increment_s`` and is annihilated by the
projection -- the paper verifies this concretely in E.1.4).  One alternative
arises per face of ``VS.v`` not parallel to ``increment_s``; the guards come
from substituting the solution into the variable's bounds.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Literal

from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.stream import Stream
from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.guard import Guard
from repro.symbolic.minmax import (
    bound_alternatives,
    lower_bound_constraints,
    upper_bound_constraints,
)
from repro.symbolic.piecewise import Case, Piecewise
from repro.systolic.spec import SystolicArray
from repro.util.errors import CompilationError


def derive_stream_increment(
    stream: Stream, increment: Point, array: SystolicArray
) -> Point:
    """``increment_s = M . increment`` (Theorem 11); for a stationary stream
    the loading & recovery vector takes over this role (Appendix D.1.4).

    Refinement over the paper: a stationary stream's index map satisfies
    ``M = A . place`` for an invertible ``A`` (both annihilate exactly
    ``null.place``), so one loading *hop* ``h`` in the process space shifts
    the element identity by ``A . h = M . dx`` where ``place . dx = h`` --
    not necessarily by ``h`` itself.  In every design of the paper ``A`` is
    the identity and the two coincide; the general computation keeps the
    scheme sound for stationary streams whose map differs from ``place`` by
    a non-trivial change of basis.
    """
    m_inc = stream.index_map.apply_point(increment)
    if not m_inc.is_zero:
        return m_inc
    h = array.loading_vector(stream.name)
    # Solve place . dx = h.  The solution is unique modulo span(increment),
    # and M annihilates increment, so M . dx is well-defined; pin the free
    # degree of freedom by appending the increment row (independent of the
    # place rows since increment spans null.place).
    square = Matrix(list(array.place.rows) + [tuple(increment)])
    rhs = [Fraction(c) for c in h] + [Fraction(0)]
    from repro.geometry.linalg import solve_unique

    dx = solve_unique(square, rhs)
    element_step = stream.index_map.apply_point(Point(dx))
    if not element_step.is_integral:
        raise CompilationError(
            f"stream {stream.name}: loading vector {h} shifts element "
            f"identities by the non-integral {element_step}; choose a "
            "loading & recovery vector aligned with the variable's lattice"
        )
    return element_step


def _representative_statement(first: Piecewise) -> AffineVec:
    """Any clause of ``first`` (the choice is immaterial; see module doc)."""
    for case in first.cases:
        if isinstance(case.value, AffineVec):
            return case.value
    raise CompilationError("first has no affine alternatives")


def derive_io_endpoint(
    stream: Stream,
    increment_s: Point,
    first: Piecewise,
    kind: Literal["first", "last"],
) -> Piecewise:
    """``first_s`` or ``last_s`` as a case analysis over the process space.

    Leaves are :class:`AffineVec` points of ``VS.v``; the default is null
    (an i/o process whose pipe carries no elements of the variable performs
    null communications, Appendix E.2.7).
    """
    x = _representative_statement(first)
    m_x = AffineVec(stream.index_map.apply(list(x)))
    variable = stream.variable
    cases: list[Case] = []
    for axis, comp in enumerate(increment_s):
        if comp == 0:
            continue
        lo, hi = variable.bounds[axis]
        if kind == "first":
            pinned_bound = lo if comp > 0 else hi
        else:
            pinned_bound = hi if comp > 0 else lo
        # An extremum face bound splits into one alternative per argument,
        # guarded by the selector constraints that pick that argument.
        for sel, pinned in bound_alternatives(pinned_bound):
            if kind == "first":
                scale = (m_x[axis] - pinned) / comp
                value = m_x - AffineVec.from_point(increment_s) * scale
            else:
                scale = (pinned - m_x[axis]) / comp
                value = m_x + AffineVec.from_point(increment_s) * scale
            constraints = list(sel)
            for j, (lo_j, hi_j) in enumerate(variable.bounds):
                constraints.extend(lower_bound_constraints(value[j], lo_j))
                constraints.extend(upper_bound_constraints(value[j], hi_j))
            cases.append(Case(Guard(constraints), value))
    if not cases:
        raise CompilationError(
            f"stream {stream.name}: increment_s is the zero vector"
        )
    return Piecewise.with_null_default(cases)
