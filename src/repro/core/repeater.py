"""Repeaters: the language-independent for loops of the target programs.

A repeater ``{first last increment}`` (Section 4.1) enumerates the sequence
``first, first + increment, ..., last``.  ``first`` and ``last`` are
symbolic (piecewise affine vectors over the process-space coordinates);
``increment`` is a constant integer vector.  The number of loop steps is
``((last - first) // increment) + 1`` (Eq. 4).

:func:`affine_vector_quotient` is the symbolic form of the paper's ``//``
operator on vectors: the scalar ``m`` with ``m * den == num``, as an affine
expression.  The scheme guarantees the quotient exists identically (the two
operands are always parallel by construction); a failure indicates a genuine
compilation bug and raises :class:`CompilationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.geometry.point import Point
from repro.symbolic.affine import Affine, AffineVec, Numeric
from repro.symbolic.piecewise import Piecewise
from repro.util.errors import CompilationError


def affine_vector_quotient(num: AffineVec, den: Point) -> Affine:
    """The affine scalar ``m`` with ``m * den == num`` (identically).

    Components where ``den`` is zero must be identically zero in ``num``;
    all non-zero components must give the same affine ratio.
    """
    if len(num) != len(den):
        raise CompilationError(f"dimension mismatch in {num} // {den}")
    result: Affine | None = None
    for n_comp, d_comp in zip(num, den):
        if d_comp == 0:
            if not n_comp.is_zero:
                raise CompilationError(
                    f"{num} is not a multiple of {den}: component {n_comp} over 0"
                )
            continue
        ratio = n_comp / d_comp
        if result is None:
            result = ratio
        elif result != ratio:
            raise CompilationError(
                f"{num} is not a multiple of {den}: {result} != {ratio}"
            )
    if result is None:
        raise CompilationError(f"vector quotient by the zero vector: {num} // {den}")
    return result


@dataclass(frozen=True)
class Repeater:
    """``{first last increment}`` with symbolic endpoints.

    ``first`` and ``last`` are :class:`Piecewise` whose leaves are
    :class:`AffineVec` (or ``None`` for null processes); ``increment`` is a
    constant integer :class:`Point`.
    """

    first: Piecewise
    last: Piecewise
    increment: Point

    def endpoints_at(
        self, env: Mapping[str, Numeric]
    ) -> tuple[Point, Point] | None:
        """Concrete (first, last) at a full symbol binding, or ``None`` for
        a null process."""
        first = self.first.evaluate(env)
        last = self.last.evaluate(env)
        if first is None or last is None:
            if first is not last:
                raise CompilationError(
                    f"repeater half-null at {dict(env)}: first={first}, last={last}"
                )
            return None
        if not (first.is_integral and last.is_integral):
            raise CompilationError(
                f"repeater endpoints not integral at {dict(env)}: {first}, {last} "
                "(non-integer solutions are outside the scheme's restrictions)"
            )
        return first, last

    def count_at(self, env: Mapping[str, Numeric]) -> int:
        """Concrete number of loop steps (Eq. 4); 0 for a null process."""
        endpoints = self.endpoints_at(env)
        if endpoints is None:
            return 0
        first, last = endpoints
        from repro.geometry.point import vector_quotient

        return vector_quotient(last - first, self.increment) + 1

    def enumerate_at(self, env: Mapping[str, Numeric]) -> Iterator[Point]:
        """The concrete sequence ``first, first+increment, ..., last``."""
        endpoints = self.endpoints_at(env)
        if endpoints is None:
            return
        first, last = endpoints
        steps = self.count_at(env)
        current = first
        for _ in range(steps):
            yield current
            current = current + self.increment
        if current - self.increment != last:
            raise CompilationError(
                f"repeater enumeration did not land on last: {last}"
            )

    def __str__(self) -> str:
        def leaf(pw: Piecewise) -> str:
            collapsed = pw.collapse()
            return str(collapsed) if not isinstance(collapsed, Piecewise) else "<cases>"

        return f"{{{leaf(self.first)}  {leaf(self.last)}  {self.increment}}}"
