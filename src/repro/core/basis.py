"""The process space basis (Sections 6.1 and 7.1).

``PS_min.i = (min x : x in IS : place.x.i)`` and symmetrically for
``PS_max``.  Because the index space is a convex (rectangular) domain and
``place`` is linear, each component attains its extremum at a vertex picked
by the *signs of the coefficients*: coordinate ``j`` contributes ``lb_j``
when the coefficient of ``x_j`` in component ``i`` of ``place`` is positive
and ``rb_j`` when it is negative (vice versa for the maximum) -- at most
``r - 1`` symbolic evaluations in total, exactly as Section 7.1 prescribes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.lang.program import SourceProgram
from repro.symbolic.affine import Affine, AffineVec, Numeric
from repro.symbolic.guard import Constraint, Guard
from repro.symbolic.minmax import (
    Bound,
    lower_bound_constraints,
    upper_bound_constraints,
)
from repro.systolic.spec import SystolicArray


def process_space_basis(
    program: SourceProgram, array: SystolicArray
) -> tuple[AffineVec, AffineVec]:
    """``(PS_min, PS_max)`` as (possibly min/max-form) affine vectors in
    the problem-size symbols.

    With extremum loop bounds the accumulation stays closed: a positive
    place coefficient keeps the bound's kind, a negative one flips it, so
    each ``PS_min`` component is plain or ``max``-form and each ``PS_max``
    component plain or ``min``-form.
    """
    mins: list[Bound] = []
    maxs: list[Bound] = []
    for i in range(array.place.nrows):
        lo = Affine.constant(0)
        hi = Affine.constant(0)
        for j, loop in enumerate(program.loops):
            coeff = array.place[i, j]
            if coeff > 0:
                lo = lo + loop.lower * coeff
                hi = hi + loop.upper * coeff
            elif coeff < 0:
                lo = lo + loop.upper * coeff
                hi = hi + loop.lower * coeff
        mins.append(lo)
        maxs.append(hi)
    return AffineVec(mins), AffineVec(maxs)


def process_space_guard(
    ps_min: AffineVec, ps_max: AffineVec, coords: Sequence[str]
) -> Guard:
    """The guard ``PS_min.i <= y.i <= PS_max.i`` over coordinate symbols."""
    constraints: list[Constraint] = []
    for name, lo, hi in zip(coords, ps_min, ps_max):
        y = Affine.var(name)
        constraints.extend(lower_bound_constraints(y, lo))
        constraints.extend(upper_bound_constraints(y, hi))
    return Guard(constraints)


def concrete_process_space(
    ps_min: AffineVec, ps_max: AffineVec, env: Mapping[str, Numeric]
) -> Rectangle:
    """The process space ``PS`` at a concrete problem size."""
    lo = Point(a.evaluate_int(env) for a in ps_min)
    hi = Point(a.evaluate_int(env) for a in ps_max)
    return Rectangle(lo, hi)
