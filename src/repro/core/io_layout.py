"""The i/o process layout (Sections 6.3 and 7.3).

A stream enters the process space like a wave: i/o processes sit on every
boundary of ``PS`` that is *not parallel* to the stream's flow -- one set
per non-zero component of ``flow.s`` (Eq. 5).  If ``flow.s.i > 0`` the
input processes lie on the ``PS_min.i`` face and the output processes on
the ``PS_max.i`` face; a negative component reverses the two.

When a flow has several non-zero components the sets overlap at corners;
following Section 7.3 the sets are derived in increasing dimension order
and duplicates are omitted from later sets (see Appendix E.2.3 for stream
``c`` of the Kung-Leiserson design).

Stationary streams use their loading & recovery vector in place of the flow
(Section 4.2), so loading/recovery happens at the boundary the compiler was
told to use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.geometry.point import Point
from repro.geometry.rectangle import Rectangle
from repro.util.errors import CompilationError


def io_axes(transport: Point) -> list[int]:
    """Dimensions in which i/o processes are created (non-zero components)."""
    return [i for i, c in enumerate(transport) if c != 0]


def io_boundary_sides(transport: Point, axis: int) -> tuple[str, str]:
    """``(input_side, output_side)``, each ``"lo"`` or ``"hi"``."""
    c = transport[axis]
    if c == 0:
        raise CompilationError(f"axis {axis} is parallel to the transport {transport}")
    return ("lo", "hi") if c > 0 else ("hi", "lo")


@dataclass(frozen=True)
class IOPoint:
    """One concrete i/o process: its boundary position and role."""

    position: Point  # the same coordinates as the PS process it talks to
    axis: int        # the dimension whose boundary it lies on
    role: str        # "input" | "output"


def concrete_io_points(
    space: Rectangle, transport: Point
) -> list[IOPoint]:
    """All i/o processes for one stream at a concrete process space.

    Sets are produced in increasing dimension order with duplicates omitted
    (input and output sides deduplicate independently -- a corner point can
    legitimately host an input process of one axis and an output process of
    another only if it is not already claimed for that role).
    """
    out: list[IOPoint] = []
    seen: dict[str, set[Point]] = {"input": set(), "output": set()}
    for axis in io_axes(transport):
        in_side, out_side = io_boundary_sides(transport, axis)
        for role, side in (("input", in_side), ("output", out_side)):
            coord = space.lo[axis] if side == "lo" else space.hi[axis]
            for p in space:
                if p[axis] != coord:
                    continue
                if p in seen[role]:
                    continue
                seen[role].add(p)
                out.append(IOPoint(position=p, axis=axis, role=role))
    return out
