"""Reproducer (de)serialization: the ``tests/fuzz_corpus/`` format.

A reproducer is a single JSON document holding everything needed to replay
one instance deterministically:

* ``source`` -- the program in concrete syntax (``SourceProgram.to_source``
  round-trips through :func:`repro.lang.parser.parse_program`);
* ``design`` -- exact ``step``/``place`` rows and loading vectors, the same
  shape the ``repro compile`` design-spec files use;
* ``env`` -- the concrete problem-size binding;
* ``harness`` -- the harness knobs the failure was observed under (input
  seed, planted mutation, if any);
* ``expect`` -- ``"pass"`` for checked-in regression pins (the bug the file
  minimizes is fixed in-tree), ``"fail"`` for freshly minimized output.

File names embed a content hash, so re-minimizing the same bug overwrites
the same file instead of accumulating near-duplicates.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.geometry.linalg import Matrix
from repro.geometry.point import Point
from repro.lang.parser import parse_program
from repro.systolic.spec import SystolicArray

FORMAT_VERSION = 1

#: default location of checked-in reproducers, relative to the repo root
CORPUS_DIR = "tests/fuzz_corpus"


def instance_to_json(instance) -> dict:
    """A picklable/serializable snapshot of one instance."""
    array = instance.array
    return {
        "format": FORMAT_VERSION,
        "seed": instance.seed,
        "source": instance.program.to_source(),
        "design": {
            "step": [list(r) for r in array.step.rows],
            "place": [list(r) for r in array.place.rows],
            "loading": {
                name: [int(c) for c in vec]
                for name, vec in sorted(array.loading_vectors.items())
            },
            "name": array.name,
        },
        "env": {k: int(v) for k, v in sorted(instance.env.items())},
    }


def instance_from_json(data: dict):
    """Rebuild a :class:`~repro.fuzz.generator.FuzzInstance` from JSON."""
    from repro.fuzz.generator import FuzzInstance

    program = parse_program(data["source"])
    design = data["design"]
    array = SystolicArray(
        step=Matrix([tuple(r) for r in design["step"]]),
        place=Matrix([tuple(r) for r in design["place"]]),
        loading_vectors={
            name: Point(vec) for name, vec in (design.get("loading") or {}).items()
        },
        name=design.get("name", "corpus"),
    )
    env = {k: int(v) for k, v in data["env"].items()}
    return FuzzInstance(
        program=program, array=array, env=env, seed=int(data.get("seed", -1))
    )


def reproducer_name(data: dict, prefix: str = "minimized") -> str:
    """Deterministic, content-addressed file name for a reproducer."""
    canon = json.dumps(
        {k: data[k] for k in ("source", "design", "env")}, sort_keys=True
    )
    digest = hashlib.sha256(canon.encode()).hexdigest()[:12]
    return f"{prefix}_{digest}.json"


def write_reproducer(
    instance,
    report,
    corpus_dir,
    *,
    config=None,
    prefix: str = "minimized",
    expect: str = "fail",
) -> Path:
    """Serialize a (usually shrunk) failing instance; returns the path."""
    data = instance_to_json(instance)
    data["expect"] = expect
    data["harness"] = {
        "seed": 0 if config is None else config.seed,
        "mutate": None if config is None else config.mutate,
    }
    if report is not None and report.failures:
        data["failure"] = {
            "checks": sorted({f.check for f in report.failures}),
            "messages": [f"{f.check}: {f.message}" for f in report.failures[:4]],
        }
    root = Path(corpus_dir)
    root.mkdir(parents=True, exist_ok=True)
    path = root / reproducer_name(data, prefix)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path):
    """Read a reproducer file back: ``(instance, harness_config, raw dict)``."""
    from repro.fuzz.harness import HarnessConfig

    data = json.loads(Path(path).read_text())
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported reproducer format {data.get('format')!r}")
    harness = data.get("harness") or {}
    config = HarnessConfig(
        seed=int(harness.get("seed", 0)), mutate=harness.get("mutate")
    )
    return instance_from_json(data), config, data


def corpus_files(corpus_dir) -> list[Path]:
    """All reproducer files under a corpus directory, sorted by name."""
    root = Path(corpus_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))


def find_reproducer(ref: str, corpus_dir=CORPUS_DIR) -> Path:
    """Resolve a reproducer reference to its corpus file.

    ``ref`` is content-addressed: the 12-hex-digit digest embedded in the
    file name (``seed_2c6a5806697e`` and ``2c6a5806697e`` both resolve
    ``seed_2c6a5806697e.json``), a full file name, or a unique digest
    prefix of at least four characters.  Raises :class:`ReproError` naming
    the reference when nothing (or more than one file) matches, so the
    service's ``/fuzz-replay`` endpoint reports a clean 400 instead of a
    stack trace.
    """
    from repro.util.errors import ReproError

    ref = ref.strip()
    if not ref:
        raise ReproError("empty fuzz-replay reference")
    files = corpus_files(corpus_dir)
    by_name = {p.name: p for p in files}
    for candidate in (ref, f"{ref}.json"):
        if candidate in by_name:
            return by_name[candidate]
    digest = ref.rpartition("_")[2].removesuffix(".json")
    if len(digest) < 4:
        raise ReproError(
            f"fuzz-replay reference {ref!r} is too short; give at least "
            "4 hex digits of the corpus digest or a full file name"
        )
    matches = [p for p in files if p.stem.rpartition("_")[2].startswith(digest)]
    if not matches:
        raise ReproError(
            f"no reproducer matching {ref!r} under {corpus_dir} "
            f"({len(files)} corpus file(s) present)"
        )
    if len(matches) > 1:
        names = ", ".join(p.name for p in matches[:4])
        raise ReproError(
            f"ambiguous fuzz-replay reference {ref!r}: matches {names}"
        )
    return matches[0]
