"""The differential harness: one instance, every engine, every invariant.

For a :class:`~repro.fuzz.generator.FuzzInstance` the harness

1. builds the shared :class:`~repro.fuzz.compiled.CompiledInstance`
   pipeline -- compile, render, network plan, per-seed inputs and oracle
   states, each exactly once -- and runs the **sequential interpreter**
   (the ground truth the paper verifies against) on every input set
   (``input_sets`` seeds per instance; each engine below is compared on
   all of them against one compiled artifact);
2. runs the **coroutine simulator** (:func:`repro.runtime.network.execute`)
   and compares every element of every variable;
3. runs the **compiled Python backend**
   (:func:`repro.target.pygen.execute_python`) and compares likewise;
4. runs the **enumerative cross-check**
   (:func:`repro.verify.enumerative.cross_check`) of every symbolic closed
   form against its brute-force definition;
5. checks **metamorphic invariants** -- different paths through the cache
   stack must be byte-/value-identical:

   * compiling with ``REPRO_DISABLE_MEMO=1`` must render the identical
     Python module (cross-design memo A/B);
   * a pickle round-trip (what ``parallel.sweep_designs`` does to ship
     work) must re-intern to the identical rendering and identical
     :class:`~repro.systolic.explore.DesignCost`;
   * a render-cache miss, the subsequent hit, and the uncached rendering
     must agree byte-for-byte;
   * executing the module twice (second run hits the module cache) must
     be value-identical;
   * optionally: the threaded engine, larger channel capacities, and a
     real pool-vs-serial ``sweep_designs`` comparison (sampled by the
     driver -- they dominate runtime).

Failures are *recorded*, not raised: the shrinker needs to re-run the
harness on mutated instances and compare failure kinds.

Planted mutations (:data:`MUTATIONS`) corrupt one derived quantity of the
compiled program -- e.g. every stream's drain count off by one -- to prove
the harness actually catches the class of bug it exists for.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro.core.program import SystolicProgram
from repro.core.scheme import compile_systolic
from repro.fuzz.compiled import CompiledInstance
from repro.runtime.network import execute
from repro.symbolic.piecewise import Piecewise
from repro.systolic.explore import cost_of_compiled
from repro.target.pygen import execute_python, render_python, render_python_cached
from repro.verify.enumerative import cross_check


# ----------------------------------------------------------------------
# planted mutations
# ----------------------------------------------------------------------
def _bump(pw: Piecewise) -> Piecewise:
    """Add one to every non-null scalar leaf of a piecewise quantity."""
    return pw.map_values(lambda v: v if v is None else v + 1)


def _mutate_plans(sp: SystolicProgram, fn) -> SystolicProgram:
    return replace(sp, streams=tuple(fn(plan) for plan in sp.streams))


def _drain_plus_one(sp: SystolicProgram) -> SystolicProgram:
    return _mutate_plans(sp, lambda p: replace(p, drain=_bump(p.drain)))


def _soak_plus_one(sp: SystolicProgram) -> SystolicProgram:
    return _mutate_plans(sp, lambda p: replace(p, soak=_bump(p.soak)))


def _count_plus_one(sp: SystolicProgram) -> SystolicProgram:
    return replace(sp, count=_bump(sp.count))


def _pass_plus_one(sp: SystolicProgram) -> SystolicProgram:
    return _mutate_plans(sp, lambda p: replace(p, pass_amount=_bump(p.pass_amount)))


def _map_shear(sp: SystolicProgram) -> SystolicProgram:
    """Corrupt one index-map coefficient and recompile.

    Unlike the derived-quantity bumps above, this plants a *frontend*
    bug: the engines follow the sheared map while the oracle still
    interprets the original source.  Coefficients are tried in a fixed
    order and the first shear that still validates and compiles wins, so
    the mutation is deterministic; a program where no shear compiles is
    returned unchanged (a miss, as with the other mutations on
    degenerate designs).
    """
    from repro.fuzz.generator import variable_bounds_for
    from repro.geometry.linalg import Matrix
    from repro.lang.program import SourceProgram
    from repro.lang.stream import Stream
    from repro.lang.variables import IndexedVariable
    from repro.util.errors import ReproError

    src = sp.source
    for si, s in enumerate(src.streams):
        rows = tuple(tuple(r) for r in s.index_map.rows)
        for i in range(len(rows)):
            for j in range(len(rows[i])):
                for delta in (1, -1):
                    row = list(rows[i])
                    row[j] += delta
                    if not any(row):
                        continue
                    new_rows = rows[:i] + (tuple(row),) + rows[i + 1 :]
                    try:
                        var = IndexedVariable(
                            s.name, variable_bounds_for(new_rows, src.loops)
                        )
                        streams = (
                            src.streams[:si]
                            + (Stream(var, Matrix(new_rows)),)
                            + src.streams[si + 1 :]
                        )
                        sheared = SourceProgram(
                            loops=src.loops,
                            streams=streams,
                            body=src.body,
                            size_symbols=src.size_symbols,
                            name=src.name,
                        )
                        return compile_systolic(sheared, sp.array)
                    except ReproError:
                        continue
    return sp


#: name -> SystolicProgram transformer planting one specific bug
MUTATIONS = {
    "drain_plus_one": _drain_plus_one,
    "soak_plus_one": _soak_plus_one,
    "count_plus_one": _count_plus_one,
    "pass_plus_one": _pass_plus_one,
    "map_shear": _map_shear,
}


def apply_mutation(sp: SystolicProgram, name: str | None) -> SystolicProgram:
    """Plant the named bug into a compiled program (no-op for ``None``)."""
    if name is None:
        return sp
    try:
        fn = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {sorted(MUTATIONS)}"
        ) from None
    return fn(sp)


# ----------------------------------------------------------------------
# configuration and reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HarnessConfig:
    """Per-run harness knobs (picklable: travels to fuzz pool workers)."""

    #: seed for the random input values
    seed: int = 0
    #: planted mutation name, or None for the honest tree
    mutate: str | None = None
    #: number of independent input sets (seeds ``seed .. seed+n-1``) run
    #: through the batched engines per instance: the oracle and pygen run
    #: every set (amortizing one compiled module), npgen runs them all in
    #: a single vectorized batch, the coroutine simulator runs set 0
    input_sets: int = 1
    #: run the generated module's threads-plus-bounded-queues engine too
    check_threaded: bool = False
    #: run the vectorized NumPy wavefront backend too (skipped silently
    #: when NumPy is missing; designs outside its integer value domain
    #: are a pass, not a failure)
    check_npgen: bool = False
    #: re-run the simulator with channel capacity 3 (capacity invariance)
    check_capacity: bool = False
    #: fold the run onto a fixed 2-band array (symbolic LSGP partition)
    #: through both the partitioned simulator and, when NumPy is present,
    #: the banded npgen executor -- results must stay bit-identical
    check_partition: bool = False
    #: run the simulator under both scheduler engines (fast single-op vs
    #: generic slots, ``REPRO_SCHED_FAST``) and require identical final
    #: values, stats, trace streams, and deadlock reports
    check_sched_ab: bool = False
    #: full pool-vs-serial ``sweep_designs`` comparison (expensive)
    check_pool: bool = False
    #: metamorphic cache-stack invariants; on by default for direct harness
    #: use, sampled on a deterministic cadence by the campaign driver
    check_memo_ab: bool = True
    check_pickle: bool = True
    check_render_cache: bool = True
    check_repeat: bool = True
    #: mismatches quoted per failure
    max_mismatches: int = 5


@dataclass(frozen=True)
class CheckFailure:
    """One failed check: which detector fired and a bounded message."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


@dataclass
class InstanceReport:
    """Everything one harness run observed."""

    instance: object
    failures: list[CheckFailure] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    #: per-check wall-clock seconds (for tools/bench_fuzz.py)
    timings: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_checks(self) -> frozenset[str]:
        return frozenset(f.check for f in self.failures)

    def __str__(self) -> str:
        status = "OK" if self.ok else "; ".join(str(f) for f in self.failures[:3])
        return f"harness[{len(self.checks_run)} checks]: {status}"


@contextmanager
def _env_flag(name: str, value: str):
    prior = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prior


def _compare_state(oracle, got, *, tuple_keys: bool, limit: int) -> list[str]:
    mismatches: list[str] = []
    for var, expected in oracle.items():
        got_var = got.get(var)
        if got_var is None:
            mismatches.append(f"{var}: variable missing from result")
            continue
        for element, value in expected.items():
            key = tuple(int(c) for c in element) if tuple_keys else element
            actual = got_var.get(key)
            if actual != value:
                mismatches.append(f"{var}{key}: got {actual}, oracle {value}")
    if len(got) != len(oracle):
        extra = sorted(set(got) - set(oracle))
        if extra:
            mismatches.append(f"unexpected variables {extra}")
    return mismatches[:limit]


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def run_instance(
    instance,
    config: HarnessConfig | None = None,
    compiled: "CompiledInstance | None" = None,
) -> InstanceReport:
    """Run every engine and invariant; never raises on a detected bug.

    The whole pipeline consumes one :class:`CompiledInstance` -- compiled
    program, rendered module, inputs and oracle states are each built once
    and shared by every check.  Pass ``compiled`` to reuse a pipeline built
    elsewhere (it must wrap the same instance with the same mutation;
    anything else is rebuilt).
    """
    config = config or HarnessConfig()
    report = InstanceReport(instance=instance)
    program, env = instance.program, instance.env

    def checked(name: str, fn) -> object:
        """Run one check, recording failures and wall-clock."""
        report.checks_run.append(name)
        t0 = time.perf_counter()
        try:
            return fn()
        except Exception as exc:  # detectors raise freely; record, don't die
            report.failures.append(
                CheckFailure(name, f"{type(exc).__name__}: {exc}")
            )
            return None
        finally:
            report.timings[name] = (
                report.timings.get(name, 0.0) + time.perf_counter() - t0
            )

    if (
        compiled is None
        or compiled.instance is not instance
        or compiled.mutate != config.mutate
    ):
        compiled = checked(
            "compile",
            lambda: CompiledInstance.build(instance, mutate=config.mutate),
        )
        if compiled is None:
            return report
    sp = compiled.sp

    seeds = [config.seed + k for k in range(max(1, config.input_sets))]

    def run_oracle():
        return [compiled.oracle(s) for s in seeds]

    oracles = checked("oracle", run_oracle)
    if oracles is None:
        return report
    oracle = oracles[0]
    inputs = compiled.inputs(seeds[0])

    limit = config.max_mismatches

    # -- engines ---------------------------------------------------------
    def check_simulator():
        # input set 0 only: the coroutine simulator is the slowest engine
        # and gains nothing from batching (no compiled artifact to reuse
        # beyond the network plan, which the capacity/partition checks
        # already share).  Timing off: only the values are compared.
        final, _stats = execute(sp, env, inputs, timing=False)
        mism = _compare_state(oracle, final, tuple_keys=False, limit=limit)
        if mism:
            raise AssertionError("; ".join(mism))

    checked("simulator", check_simulator)

    pygen_result: dict = {}

    def check_pygen():
        # every input set runs against the one cached module compilation
        for seed in seeds:
            got = execute_python(sp, env, compiled.inputs(seed))
            mism = _compare_state(
                compiled.oracle(seed), got, tuple_keys=True, limit=limit
            )
            if mism:
                raise AssertionError(f"inputs seed {seed}: " + "; ".join(mism))
            if seed == seeds[0]:
                pygen_result["final"] = got

    checked("pygen", check_pygen)

    def check_enumerative():
        rep = cross_check(sp, env)
        if not rep.ok:
            raise AssertionError("; ".join(rep.errors[:limit]))

    checked("cross_check", check_enumerative)

    if config.check_npgen:
        from repro.target.npgen import HAVE_NUMPY, execute_numpy_batch
        from repro.util.errors import BackendUnsupportedError

        def check_npgen():
            try:
                # one vectorized pass over the whole input batch: the
                # wavefront schedule is computed once for all sets
                got_batch = execute_numpy_batch(
                    sp, env, [compiled.inputs(s) for s in seeds], use_cache=False
                )
            except BackendUnsupportedError:
                return  # outside the integer value domain: a pass, not a bug
            for seed, got in zip(seeds, got_batch):
                mism = _compare_state(
                    compiled.oracle(seed), got, tuple_keys=True, limit=limit
                )
                if mism:
                    raise AssertionError(
                        f"inputs seed {seed}: " + "; ".join(mism)
                    )

        if HAVE_NUMPY:
            checked("npgen", check_npgen)

    # -- metamorphic invariants -----------------------------------------
    if config.check_memo_ab:

        def check_memo_ab():
            with _env_flag("REPRO_DISABLE_MEMO", "1"):
                sp_cold = apply_mutation(
                    compile_systolic(program, instance.array), config.mutate
                )
            if render_python(sp_cold) != compiled.rendered:
                raise AssertionError(
                    "rendered module differs with REPRO_DISABLE_MEMO=1"
                )

        checked("memo_ab", check_memo_ab)

    if config.check_pickle:

        def check_pickle_reintern():
            sp2 = pickle.loads(pickle.dumps(sp))
            if render_python(sp2) != compiled.rendered:
                raise AssertionError("pickle round-trip changes the rendering")
            if cost_of_compiled(sp2, env) != cost_of_compiled(sp, env):
                raise AssertionError("pickle round-trip changes the design cost")

        checked("pickle_reintern", check_pickle_reintern)

    if config.check_render_cache:

        def check_render_cache():
            with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as d:
                miss = render_python_cached(sp, d)
                hit = render_python_cached(sp, d)
            if miss != compiled.rendered:
                raise AssertionError(
                    "render-cache miss differs from direct render"
                )
            if hit != compiled.rendered:
                raise AssertionError("render-cache hit differs from direct render")

        checked("render_cache", check_render_cache)

    def check_repeat_execution():
        again = execute_python(sp, env, inputs)  # module-cache hit
        if again != pygen_result.get("final", again):
            raise AssertionError("repeated execution (module-cache hit) differs")

    if config.check_repeat and "final" in pygen_result:
        checked("repeat_execution", check_repeat_execution)

    if config.check_threaded:

        def check_threaded():
            got = execute_python(sp, env, inputs, threaded=True)
            mism = _compare_state(oracle, got, tuple_keys=True, limit=limit)
            if mism:
                raise AssertionError("; ".join(mism))

        checked("threaded", check_threaded)

    if config.check_capacity:

        def check_capacity():
            # instantiates from the same cached NetworkPlan as the main
            # simulator run -- only the channel capacities differ
            final, _stats = execute(
                sp, env, inputs, channel_capacity=3, timing=False
            )
            mism = _compare_state(oracle, final, tuple_keys=False, limit=limit)
            if mism:
                raise AssertionError("; ".join(mism))

        checked("capacity", check_capacity)

    if config.check_sched_ab:

        def check_sched_ab():
            # metamorphic: the specialized single-op engine and the generic
            # slot engine must execute the identical interleaving.  Both
            # instantiations come from the same cached NetworkPlan; the
            # engine is chosen at Scheduler construction, so toggling the
            # flag around instantiate() is the whole A/B.  Deadlocks (e.g.
            # planted mutations) must agree too -- same report text.
            from repro.runtime.trace import attach_tracer
            from repro.util.errors import DeadlockError

            plan = compiled.plan()
            runs = {}
            for label, flag in (("fast", "1"), ("generic", "0")):
                with _env_flag("REPRO_SCHED_FAST", flag):
                    network = plan.instantiate(inputs)
                trace = attach_tracer(network)
                try:
                    stats = network.run()
                    deadlock = None
                except DeadlockError as exc:
                    stats = None
                    deadlock = str(exc)
                runs[label] = (network.host.final, stats, trace.events, deadlock)
            fast, generic = runs["fast"], runs["generic"]
            if fast[3] != generic[3]:
                raise AssertionError(
                    "engines disagree on deadlock: "
                    f"fast={fast[3]!r} generic={generic[3]!r}"
                )
            if fast[0] != generic[0]:
                raise AssertionError("engines disagree on final values")
            if fast[1] != generic[1]:
                raise AssertionError(
                    f"engines disagree on stats: {fast[1]} vs {generic[1]}"
                )
            if fast[2] != generic[2]:
                raise AssertionError("engines disagree on trace streams")

        checked("sched_ab", check_sched_ab)

    if config.check_partition:

        def check_partition():
            from repro.extensions.partition import partitioned_execute

            final, _stats = partitioned_execute(sp, env, inputs, shape=(2,))
            mism = _compare_state(oracle, final, tuple_keys=False, limit=limit)
            if mism:
                raise AssertionError("; ".join(mism))

        checked("partition", check_partition)

        from repro.target.npgen import HAVE_NUMPY as _have_np

        if _have_np:

            def check_partition_npgen():
                from repro.target.npgen import execute_numpy_banded
                from repro.util.errors import BackendUnsupportedError

                try:
                    got = execute_numpy_banded(
                        sp, env, [inputs], shape=(2,), use_cache=False
                    )[0]
                except BackendUnsupportedError:
                    return  # outside the integer value domain: a pass
                mism = _compare_state(oracle, got, tuple_keys=True, limit=limit)
                if mism:
                    raise AssertionError("; ".join(mism))

            checked("partition_npgen", check_partition_npgen)

    if config.check_pool:

        def check_pool():
            from repro.parallel import sweep_designs

            # A capped sweep: the invariant under test is serial/pool
            # agreement (task order, memo shipping, rank merging), which a
            # deterministic prefix of the candidate space exercises just as
            # well as the full space at a fraction of the cost.
            cap = 4
            serial = sweep_designs(
                program,
                instance.array.step,
                [env],
                bound=1,
                max_candidates=cap,
                jobs=1,
            )
            pooled = sweep_designs(
                program,
                instance.array.step,
                [env],
                bound=1,
                max_candidates=cap,
                jobs=2,
                force_pool=True,
            )
            a = [c.row() for c in serial.by_size[0][1]]
            b = [c.row() for c in pooled.by_size[0][1]]
            if a != b:
                raise AssertionError(
                    f"pool sweep diverges from serial: {len(a)} vs {len(b)} "
                    "rows or differing contents"
                )

        checked("pool_sweep", check_pool)

    return report
