"""The compile-once pipeline shared by every differential check.

Historically each harness check re-derived what it needed from the source
program: the render checks re-rendered, the metamorphic checks recompiled,
every engine regenerated its own inputs and re-ran the oracle.  A
:class:`CompiledInstance` runs the pipeline stages once per fuzz instance --

    parse/validate/synthesize (``compile_systolic``, with the planted
    mutation applied)  ->  rendered Python module  ->  network plan  ->
    per-seed inputs and oracle states

-- and memoizes each artifact, so the checks all consume one shared object
instead of rebuilding the chain.  The class-level :data:`STATS` counters
make the reuse observable (and testable): a full harness run over one
instance performs exactly one compile and one render no matter how many
checks consume them.

Everything here is also what the shrinker replays: a shrunk candidate is
re-wrapped in a fresh ``CompiledInstance``, so minimized reproducers travel
through the identical build path as the original failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.program import SystolicProgram
from repro.core.scheme import compile_systolic
from repro.lang.interpreter import run_sequential
from repro.runtime.network import NetworkPlan, network_plan
from repro.target.pygen import render_python
from repro.verify.equivalence import random_inputs

#: monotonic pipeline counters; read by tests and tools/bench_fuzz.py
STATS = {
    "builds": 0,
    "render_builds": 0,
    "render_reuses": 0,
    "input_builds": 0,
    "input_reuses": 0,
    "oracle_builds": 0,
    "oracle_reuses": 0,
}


def stats() -> dict:
    """A snapshot of the pipeline reuse counters."""
    return dict(STATS)


@dataclass
class CompiledInstance:
    """One fuzz instance, compiled once, consumed by every check.

    Artifacts are built lazily and cached: the compiled (and possibly
    mutated) program eagerly at construction, the rendered module / inputs /
    oracle states on first use.  ``mutate`` records the planted bug the
    program carries so a harness run can tell whether a prebuilt pipeline
    matches its configuration.
    """

    instance: object
    sp: SystolicProgram
    mutate: str | None = None
    _rendered: str | None = None
    _inputs: dict = field(default_factory=dict)
    _oracle: dict = field(default_factory=dict)

    @classmethod
    def build(cls, instance, *, mutate: str | None = None) -> "CompiledInstance":
        """Compile ``instance`` (applying the planted mutation, if any)."""
        from repro.fuzz.harness import apply_mutation

        sp = apply_mutation(
            compile_systolic(instance.program, instance.array), mutate
        )
        STATS["builds"] += 1
        return cls(instance=instance, sp=sp, mutate=mutate)

    # ------------------------------------------------------------------
    @property
    def rendered(self) -> str:
        """The generated Python module source (rendered exactly once)."""
        if self._rendered is None:
            STATS["render_builds"] += 1
            self._rendered = render_python(self.sp)
        else:
            STATS["render_reuses"] += 1
        return self._rendered

    def inputs(self, seed: int):
        """The random input mapping for one input-set seed."""
        cached = self._inputs.get(seed)
        if cached is None:
            STATS["input_builds"] += 1
            cached = self._inputs[seed] = random_inputs(
                self.instance.program, self.instance.env, seed=seed
            )
        else:
            STATS["input_reuses"] += 1
        return cached

    def oracle(self, seed: int):
        """The sequential-interpreter ground truth for one input-set seed."""
        cached = self._oracle.get(seed)
        if cached is None:
            STATS["oracle_builds"] += 1
            cached = self._oracle[seed] = run_sequential(
                self.instance.program, self.instance.env, self.inputs(seed)
            )
        else:
            STATS["oracle_reuses"] += 1
        return cached

    def plan(self) -> NetworkPlan:
        """The pre-bound network plan (shared via the global plan cache, so
        the simulator, capacity and partition checks all wire from it)."""
        return network_plan(self.sp, self.instance.env)
