"""Greedy shrinking of failing fuzz instances.

Given an instance whose harness run failed, the shrinker repeatedly tries
simplifying transformations and keeps any candidate that still fails with
at least one of the *original* failed checks (so a shrink can never wander
onto an unrelated bug class).  Transformations, tried cheapest-payoff
first:

* shrink the problem size (every size symbol toward 2);
* drop a loop (r = 3 -> 2), projecting index maps onto the remaining
  columns, discarding rows that become zero and substituting 0 for the
  dropped index in guards;
* drop a guarded branch of the basic statement;
* drop a read-only stream (its reads are replaced by the constant 1);
* simplify the expression tree (replace a ``BinOp`` by either operand);
* simplify an index map (zero an entry, or pull a ``|c| > 1`` coefficient
  to its sign), re-deriving the variable's bounds;
* simplify loop bounds (an extremum bound collapses to each of its
  arguments, constants move toward 0, negative steps flip to +1).

Structural transformations invalidate the design, so each candidate is
rebuilt: the original array is kept when it still compiles, otherwise the
first compiling candidate of the deterministic bounded synthesis order is
used.  The result replays deterministically from its reproducer file --
there is no randomness anywhere in this module.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.scheme import compile_systolic
from repro.fuzz.generator import (
    FuzzInstance,
    program_size_symbols,
    variable_bounds_for,
)
from repro.fuzz.harness import HarnessConfig, InstanceReport, run_instance
from repro.geometry.linalg import Matrix
from repro.lang.expr import (
    Assign,
    BinOp,
    Body,
    Branch,
    Condition,
    Const,
    Expr,
    IndexExpr,
    StreamRead,
)
from repro.lang.program import Loop, SourceProgram
from repro.lang.stream import Stream
from repro.lang.validate import validate_program
from repro.lang.variables import IndexedVariable
from repro.symbolic.affine import Affine
from repro.symbolic.minmax import Extremum
from repro.systolic.explore import loading_candidates
from repro.systolic.schedule import synthesize_places, synthesize_step
from repro.systolic.spec import SystolicArray
from repro.util.errors import ReproError


# ----------------------------------------------------------------------
# expression/body rewriting helpers
# ----------------------------------------------------------------------
def _rewrite_expr(e: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite; ``fn`` returns a replacement or ``None``."""
    if isinstance(e, BinOp):
        e = BinOp(e.op, _rewrite_expr(e.left, fn), _rewrite_expr(e.right, fn))
    replacement = fn(e)
    return e if replacement is None else replacement


def _drop_index_in_body(body: Body, index: str) -> Body:
    """Substitute 0 for a dropped loop index in guards and index exprs."""

    def fix(e: Expr) -> Expr | None:
        if isinstance(e, IndexExpr) and index in e.affine.free_symbols:
            return IndexExpr(e.affine.subs({index: 0}))
        return None

    branches = []
    for br in body.branches:
        cond = br.condition
        if cond is not None and index in cond.affine.free_symbols:
            cond = Condition(cond.affine.subs({index: 0}), cond.relation)
        assigns = tuple(
            Assign(a.stream, _rewrite_expr(a.expr, fix)) for a in br.assigns
        )
        branches.append(Branch(cond, assigns))
    return Body(tuple(branches))


def _prune_unused_streams(program: SourceProgram) -> SourceProgram | None:
    """Drop declared streams the body no longer accesses."""
    accessed = program.body.streams_accessed()
    streams = tuple(s for s in program.streams if s.name in accessed)
    if not streams:
        return None
    if len(streams) == len(program.streams):
        return program
    return SourceProgram(
        loops=program.loops,
        streams=streams,
        body=program.body,
        size_symbols=program.size_symbols,
        name=program.name,
    )


def _expr_sites(e: Expr, path=()) -> Iterator[tuple[tuple, Expr]]:
    yield path, e
    if isinstance(e, BinOp):
        yield from _expr_sites(e.left, path + ("left",))
        yield from _expr_sites(e.right, path + ("right",))


def _replace_at(e: Expr, path: tuple, new: Expr) -> Expr:
    if not path:
        return new
    assert isinstance(e, BinOp)
    if path[0] == "left":
        return BinOp(e.op, _replace_at(e.left, path[1:], new), e.right)
    return BinOp(e.op, e.left, _replace_at(e.right, path[1:], new))


# ----------------------------------------------------------------------
# design re-derivation
# ----------------------------------------------------------------------
def first_design(program: SourceProgram) -> SystolicArray | None:
    """The first compiling design in deterministic synthesis order."""
    try:
        steps = synthesize_step(program, bound=2)
    except ReproError:
        return None
    for step in steps[:3]:
        try:
            places = synthesize_places(program, step, bound=1)
        except ReproError:
            continue
        for place in places:
            for loading in loading_candidates(program, step, place):
                array = SystolicArray(
                    step=step, place=place, loading_vectors=loading, name="shrunk"
                )
                try:
                    compile_systolic(program, array)
                except ReproError:
                    continue
                return array
    return None


def _rebuild(
    program: SourceProgram, env: dict, hint: SystolicArray | None
) -> FuzzInstance | None:
    """Validate + redesign a transformed program; None when not viable."""
    try:
        validate_program(program)
    except ReproError:
        return None
    array = None
    if hint is not None and hint.step.ncols == program.r:
        names = {s.name for s in program.streams}
        hinted = SystolicArray(
            step=hint.step,
            place=hint.place,
            loading_vectors={
                k: v for k, v in hint.loading_vectors.items() if k in names
            },
            name=hint.name,
        )
        try:
            compile_systolic(program, hinted)
            array = hinted
        except ReproError:
            array = None
    if array is None:
        array = first_design(program)
    if array is None:
        return None
    syms = program_size_symbols(program)
    clamped = {s: int(env.get(s, 2)) for s in syms}
    return FuzzInstance(program=program, array=array, env=clamped, seed=-1)


def _with_loops(
    program: SourceProgram, loops: tuple[Loop, ...]
) -> SourceProgram | None:
    """Same program over different loop bounds; variable bounds re-derived."""
    try:
        streams = tuple(
            Stream(
                IndexedVariable(
                    s.name, variable_bounds_for(s.index_map.rows, loops)
                ),
                s.index_map,
            )
            for s in program.streams
        )
        return SourceProgram(
            loops=loops,
            streams=streams,
            body=program.body,
            size_symbols=program.size_symbols,
            name=program.name,
        )
    except ReproError:
        return None


# ----------------------------------------------------------------------
# candidate transformations
# ----------------------------------------------------------------------
def _env_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    for sym in sorted(inst.env):
        value = int(inst.env[sym])
        targets = [2] if value > 3 else []
        if value > 2:
            targets.append(value - 1)
        for target in targets:
            if target == value:
                continue
            env = dict(inst.env)
            env[sym] = target
            yield FuzzInstance(
                program=inst.program, array=inst.array, env=env, seed=-1
            )


def _loop_drop_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    program = inst.program
    if program.r <= 2:
        return
    for t in range(program.r):
        loops = program.loops[:t] + program.loops[t + 1 :]
        r2 = len(loops)
        streams = []
        viable = True
        for s in program.streams:
            rows = [r[:t] + r[t + 1 :] for r in s.index_map.rows]
            nonzero = [r for r in rows if any(r)]
            if len(nonzero) < r2 - 1:
                viable = False
                break
            rows = nonzero[: r2 - 1]
            try:
                var = IndexedVariable(
                    s.name, variable_bounds_for(rows, loops)
                )
                streams.append(Stream(var, Matrix(rows)))
            except ReproError:
                viable = False
                break
        if not viable:
            continue
        body = _drop_index_in_body(program.body, program.loops[t].index)
        try:
            candidate = SourceProgram(
                loops=loops,
                streams=tuple(streams),
                body=body,
                size_symbols=program.size_symbols,
                name=program.name,
            )
        except ReproError:
            continue
        rebuilt = _rebuild(candidate, inst.env, hint=None)
        if rebuilt is not None:
            yield rebuilt


def _branch_drop_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    program = inst.program
    if len(program.body.branches) <= 1:
        return
    for t in range(len(program.body.branches) - 1, -1, -1):
        branches = (
            program.body.branches[:t] + program.body.branches[t + 1 :]
        )
        try:
            candidate = SourceProgram(
                loops=program.loops,
                streams=program.streams,
                body=Body(branches),
                size_symbols=program.size_symbols,
                name=program.name,
            )
        except ReproError:
            continue
        pruned = _prune_unused_streams(candidate)
        if pruned is None:
            continue
        rebuilt = _rebuild(pruned, inst.env, hint=inst.array)
        if rebuilt is not None:
            yield rebuilt


def _stream_drop_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    program = inst.program
    written = program.body.streams_written()
    if len(program.streams) <= 1:
        return
    for victim in [s.name for s in program.streams if s.name not in written]:

        def fix(e: Expr, victim=victim) -> Expr | None:
            if isinstance(e, StreamRead) and e.name == victim:
                return Const(1)
            return None

        branches = tuple(
            Branch(
                br.condition,
                tuple(
                    Assign(a.stream, _rewrite_expr(a.expr, fix))
                    for a in br.assigns
                ),
            )
            for br in program.body.branches
        )
        streams = tuple(s for s in program.streams if s.name != victim)
        try:
            candidate = SourceProgram(
                loops=program.loops,
                streams=streams,
                body=Body(branches),
                size_symbols=program.size_symbols,
                name=program.name,
            )
        except ReproError:
            continue
        rebuilt = _rebuild(candidate, inst.env, hint=inst.array)
        if rebuilt is not None:
            yield rebuilt


def _expr_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    program = inst.program
    for bi, br in enumerate(program.body.branches):
        for ai, assign in enumerate(br.assigns):
            for path, node in _expr_sites(assign.expr):
                if not isinstance(node, BinOp):
                    continue
                for child in (node.left, node.right):
                    new_expr = _replace_at(assign.expr, path, child)
                    assigns = (
                        br.assigns[:ai]
                        + (Assign(assign.stream, new_expr),)
                        + br.assigns[ai + 1 :]
                    )
                    branches = (
                        program.body.branches[:bi]
                        + (Branch(br.condition, assigns),)
                        + program.body.branches[bi + 1 :]
                    )
                    try:
                        candidate = SourceProgram(
                            loops=program.loops,
                            streams=program.streams,
                            body=Body(branches),
                            size_symbols=program.size_symbols,
                            name=program.name,
                        )
                    except ReproError:
                        continue
                    pruned = _prune_unused_streams(candidate)
                    if pruned is None:
                        continue
                    rebuilt = _rebuild(pruned, inst.env, hint=inst.array)
                    if rebuilt is not None:
                        yield rebuilt


def _index_map_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    """Simplify one index-map entry at a time.

    Zeroing an entry (or pulling a ``|c| > 1`` coefficient back to its
    sign) keeps the map integral; candidates that lose rank ``r - 1`` are
    rejected by ``validate_program`` inside ``_rebuild``.  The variable's
    bounds are re-derived from the new rows.
    """
    program = inst.program
    for si, s in enumerate(program.streams):
        rows = [list(r) for r in s.index_map.rows]
        for i in range(len(rows)):
            for j, c in enumerate(rows[i]):
                if c == 0:
                    continue
                targets = [0] if abs(c) == 1 else [c // abs(c), 0]
                for target in targets:
                    new_rows = [tuple(r) for r in rows]
                    row = list(new_rows[i])
                    row[j] = target
                    if not any(row):
                        continue  # a zero row can never keep full rank
                    new_rows[i] = tuple(row)
                    try:
                        var = IndexedVariable(
                            s.name, variable_bounds_for(new_rows, program.loops)
                        )
                        new_stream = Stream(var, Matrix(new_rows))
                    except ReproError:
                        continue
                    streams = (
                        program.streams[:si]
                        + (new_stream,)
                        + program.streams[si + 1 :]
                    )
                    try:
                        candidate = SourceProgram(
                            loops=program.loops,
                            streams=streams,
                            body=program.body,
                            size_symbols=program.size_symbols,
                            name=program.name,
                        )
                    except ReproError:
                        continue
                    rebuilt = _rebuild(candidate, inst.env, hint=inst.array)
                    if rebuilt is not None:
                        yield rebuilt


def _bound_variants(lp: Loop) -> Iterator[Loop]:
    """Shrink moves for one loop: flip a negative step, collapse an
    extremum bound to each of its arguments, nudge constants toward 0."""
    if lp.step == -1:
        yield Loop(lp.index, lp.lower, lp.upper, 1)
    if isinstance(lp.upper, Extremum):
        for arg in lp.upper.args:
            yield Loop(lp.index, lp.lower, arg, lp.step)
    elif lp.upper.const > 0:
        yield Loop(lp.index, lp.lower, lp.upper - 1, lp.step)
    if isinstance(lp.lower, Extremum):
        for arg in lp.lower.args:
            yield Loop(lp.index, arg, lp.upper, lp.step)
    elif lp.lower.const != 0:
        toward = -1 if lp.lower.const > 0 else 1
        yield Loop(lp.index, lp.lower + toward, lp.upper, lp.step)


def _bound_candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    program = inst.program
    for t, lp in enumerate(program.loops):
        for variant in _bound_variants(lp):
            loops = program.loops[:t] + (variant,) + program.loops[t + 1 :]
            candidate = _with_loops(program, loops)
            if candidate is None:
                continue
            rebuilt = _rebuild(candidate, inst.env, hint=inst.array)
            if rebuilt is not None:
                yield rebuilt


def _candidates(inst: FuzzInstance) -> Iterator[FuzzInstance]:
    yield from _env_candidates(inst)
    yield from _loop_drop_candidates(inst)
    yield from _branch_drop_candidates(inst)
    yield from _stream_drop_candidates(inst)
    yield from _expr_candidates(inst)
    yield from _index_map_candidates(inst)
    yield from _bound_candidates(inst)


# ----------------------------------------------------------------------
# the greedy loop
# ----------------------------------------------------------------------
def shrink_instance(
    instance: FuzzInstance,
    config: HarnessConfig | None = None,
    *,
    max_steps: int = 96,
    runner: Callable[..., InstanceReport] = run_instance,
) -> tuple[FuzzInstance, InstanceReport]:
    """Minimize a failing instance; returns ``(shrunk, its report)``.

    The input must fail under ``config``; if it does not, it is returned
    unchanged.  ``max_steps`` bounds the number of *harness runs* spent.
    """
    config = config or HarnessConfig()
    base = runner(instance, config)
    if base.ok:
        return instance, base
    target = base.failed_checks
    current, current_report = instance, base
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current):
            if steps >= max_steps:
                break
            steps += 1
            report = runner(candidate, config)
            if not report.ok and (report.failed_checks & target):
                current, current_report = candidate, report
                improved = True
                break
    return current, current_report
