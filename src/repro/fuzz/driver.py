"""The fuzz campaign driver behind ``repro fuzz``.

Iterations are independent (iteration ``i`` of base seed ``S`` always
fuzzes instance seed ``S * 1_000_003 + i``), so a campaign fans out over
the shared process-pool helper (:func:`repro.parallel.pool_map`) exactly
like a design sweep: workers generate + run the harness, the driver
collects results in iteration order, then shrinks any failures serially
(shrinking re-runs the harness many times and wants the warm caches of one
process).  Results are byte-identical for every ``--jobs`` value.

Expensive metamorphic checks are *sampled* on a deterministic schedule so
a default campaign stays fast but still covers them: the threaded engine
every 7th iteration, capacity invariance every 5th, the pool-vs-serial
sweep comparison every 25th.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field, replace

from repro import profiling
from repro.fuzz.corpus import instance_to_json, write_reproducer
from repro.fuzz.generator import generate_instance, program_features
from repro.fuzz.harness import HarnessConfig, run_instance
from repro.fuzz.shrink import shrink_instance
from repro.util.errors import ReproError

#: spreads base seeds far apart so campaigns never share instance seeds
SEED_STRIDE = 1_000_003

THREADED_EVERY = 7
CAPACITY_EVERY = 5
POOL_EVERY = 25
#: npgen is cheap (one vectorized pass) but needs the optional NumPy extra
NPGEN_EVERY = 3
#: partitioned execution re-runs the whole folded simulation (plus the
#: banded npgen pass) -- comparable cost to the plain simulator check
PARTITION_EVERY = 4
#: the scheduler-engine A/B (fast single-op vs generic slots) runs the
#: simulation twice with tracing -- two extra simulator-cost passes
SCHED_AB_EVERY = 6
#: the metamorphic cache-stack invariants (memo A/B, pickle round-trip,
#: render cache, repeated execution) re-render or recompile the whole
#: module; each runs on every 4th instance, staggered so each iteration
#: carries about one of them
METAMORPHIC_EVERY = 4

#: adaptive batching aims for roughly this much work per pool fan-out --
#: long enough to amortize dispatch, short enough that the time budget and
#: the failure cap are honoured promptly
BATCH_TARGET_SECONDS = 2.0

#: per-instance network phase stages recorded by repro.runtime.network
_NETWORK_STAGES = ("network.build", "network.execute")

#: profiling stage -> phase_seconds key in the campaign summary
_STAGE_PHASE = {
    "network.build": "build_network",
    "network.execute": "execute",
}


@dataclass
class FailureRecord:
    """One failing iteration, before and after shrinking."""

    iteration: int
    instance_seed: int
    checks: list[str]
    messages: list[str]
    original_json: dict
    shrunk_json: dict | None = None
    reproducer: str | None = None


@dataclass
class FuzzSummary:
    """Campaign outcome: counts, failures, aggregated check timings."""

    seed: int
    iterations: int = 0
    generated: int = 0
    skipped: int = 0  # seeds outside the schedulable space
    elapsed_s: float = 0.0
    jobs: int = 1
    stopped_early: bool = False  # time budget exhausted
    feature: str | None = None  # stratum restriction, if any
    check_counts: dict = field(default_factory=dict)
    check_seconds: dict = field(default_factory=dict)
    #: wall-clock per pipeline phase: ``generate`` (instance synthesis),
    #: ``compile`` (scheme derivation), ``check`` (all detectors), plus the
    #: network sub-phases ``build_network``/``execute`` (accounted *inside*
    #: ``check``, broken out so regressions are attributable)
    phase_seconds: dict = field(default_factory=dict)
    feature_counts: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def row(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "generated": self.generated,
            "skipped": self.skipped,
            "failures": len(self.failures),
            "elapsed_s": round(self.elapsed_s, 3),
            "jobs": self.jobs,
            "stopped_early": self.stopped_early,
            "feature": self.feature,
            "feature_counts": dict(sorted(self.feature_counts.items())),
            "phase_seconds": {
                name: round(seconds, 4)
                for name, seconds in sorted(self.phase_seconds.items())
            },
        }

    def __str__(self) -> str:
        status = "clean" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"fuzz seed {self.seed}: {status} over {self.generated} instances "
            f"({self.iterations} iterations, {self.skipped} unschedulable, "
            f"jobs {self.jobs}, {self.elapsed_s:.1f}s)"
        )


def iteration_config(base: HarnessConfig, iteration: int) -> HarnessConfig:
    """The sampled per-iteration harness configuration.

    The expensive extras (threaded engine, capacity, partition, pool) are
    *enabled* on their cadence; the metamorphic cache-stack invariants --
    on by default for direct harness use -- are *thinned* to a staggered
    every-4th-iteration schedule, so a campaign still covers each one
    constantly without paying all four on every instance.
    """
    m = iteration % METAMORPHIC_EVERY
    return replace(
        base,
        check_threaded=base.check_threaded
        or iteration % THREADED_EVERY == THREADED_EVERY - 1,
        check_capacity=base.check_capacity
        or iteration % CAPACITY_EVERY == CAPACITY_EVERY - 1,
        check_pool=base.check_pool or iteration % POOL_EVERY == POOL_EVERY - 1,
        check_npgen=base.check_npgen
        or iteration % NPGEN_EVERY == NPGEN_EVERY - 1,
        check_partition=base.check_partition
        or iteration % PARTITION_EVERY == PARTITION_EVERY - 1,
        check_sched_ab=base.check_sched_ab
        or iteration % SCHED_AB_EVERY == SCHED_AB_EVERY - 1,
        check_memo_ab=base.check_memo_ab and m == 0,
        check_pickle=base.check_pickle and m == 1,
        check_render_cache=base.check_render_cache and m == 2,
        check_repeat=base.check_repeat and m == 3,
    )


# -- worker side -----------------------------------------------------------
_WORKER: dict = {}


def _init_fuzz_worker(
    base_seed: int, config: HarnessConfig, feature: str | None = None
) -> None:
    _WORKER["base_seed"] = base_seed
    _WORKER["config"] = config
    _WORKER["feature"] = feature


def _fuzz_task(iteration: int) -> dict:
    """Generate + run one iteration; returns a picklable record."""
    base_seed = _WORKER["base_seed"]
    config = iteration_config(_WORKER["config"], iteration)
    instance_seed = base_seed * SEED_STRIDE + iteration
    t0 = time.perf_counter()
    instance = generate_instance(instance_seed, feature=_WORKER.get("feature"))
    generate_s = time.perf_counter() - t0
    if instance is None:
        return {
            "iteration": iteration,
            "status": "skipped",
            "generate_s": generate_s,
        }
    stages_before = profiling.snapshot()["stages"]
    report = run_instance(instance, config)
    stages_after = profiling.snapshot()["stages"]
    record = {
        "iteration": iteration,
        "status": "ok" if report.ok else "failed",
        "instance_seed": instance_seed,
        "checks_run": list(report.checks_run),
        "timings": dict(report.timings),
        "generate_s": generate_s,
        "stages": {
            name: stages_after.get(name, 0.0) - stages_before.get(name, 0.0)
            for name in _NETWORK_STAGES
        },
        "features": sorted(program_features(instance.program)),
    }
    if not report.ok:
        record["checks"] = sorted(report.failed_checks)
        record["messages"] = [str(f) for f in report.failures[:6]]
        record["instance_json"] = instance_to_json(instance)
    return record


# -- driver side -----------------------------------------------------------
def fuzz_run(
    *,
    seed: int = 0,
    iterations: int = 100,
    time_budget: float | None = None,
    jobs: int | None = 1,
    config: HarnessConfig | None = None,
    shrink: bool = True,
    max_shrink_steps: int = 96,
    corpus_dir: str | None = None,
    max_failures: int = 5,
    feature: str | None = None,
    batch_size: int | None = None,
    log=None,
) -> FuzzSummary:
    """Run a fuzz campaign; returns the summary (never raises on findings).

    ``time_budget`` (seconds) stops the campaign between batches once
    exceeded.  At most ``max_failures`` failing iterations are shrunk and
    written to ``corpus_dir`` (when given); the campaign also stops early
    once that many failures have been collected.  ``feature`` restricts the
    campaign to one generator stratum (see ``generator.FEATURES``): each
    iteration resamples until its program carries that feature tag.

    ``batch_size`` pins the pool fan-out size; by default it adapts --
    starting from :func:`resolve_batch`'s jobs-scaled floor, then resized
    from the measured per-instance cost so each fan-out covers roughly
    :data:`BATCH_TARGET_SECONDS` of work.  The automatic garbage collector
    is paused for the duration of the campaign (the caches at work here are
    all bounded) and restored afterwards.
    """
    from repro.parallel import pool_map

    if batch_size is not None and batch_size < 1:
        raise ReproError(
            f"fuzz batch size must be >= 1, got {batch_size} "
            "(--batch-size / fuzz_run(batch_size=...))"
        )

    base_config = config or HarnessConfig()
    summary = FuzzSummary(seed=seed, feature=feature)
    t0 = time.perf_counter()

    # Batches keep the pool busy while letting the driver honour the time
    # budget and the failure cap between fan-outs.
    current_batch = batch_size or resolve_batch(jobs)
    next_iteration = 0
    effective_jobs = 1
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        while next_iteration < iterations:
            if (
                time_budget is not None
                and time.perf_counter() - t0 > time_budget
            ):
                summary.stopped_early = True
                break
            if len(summary.failures) >= max_failures:
                summary.stopped_early = True
                break
            batch = list(
                range(
                    next_iteration, min(iterations, next_iteration + current_batch)
                )
            )
            next_iteration = batch[-1] + 1
            records, effective_jobs = pool_map(
                _fuzz_task,
                batch,
                jobs=jobs,
                initializer=_init_fuzz_worker,
                initargs=(seed, base_config, feature),
            )
            for record in records:
                summary.iterations += 1
                summary.phase_seconds["generate"] = summary.phase_seconds.get(
                    "generate", 0.0
                ) + record.get("generate_s", 0.0)
                if record["status"] == "skipped":
                    summary.skipped += 1
                    continue
                summary.generated += 1
                for name in record["checks_run"]:
                    summary.check_counts[name] = (
                        summary.check_counts.get(name, 0) + 1
                    )
                check_total = 0.0
                for name, dt in record["timings"].items():
                    summary.check_seconds[name] = (
                        summary.check_seconds.get(name, 0.0) + dt
                    )
                    if name == "compile":
                        summary.phase_seconds["compile"] = (
                            summary.phase_seconds.get("compile", 0.0) + dt
                        )
                    else:
                        check_total += dt
                summary.phase_seconds["check"] = (
                    summary.phase_seconds.get("check", 0.0) + check_total
                )
                for stage, dt in record.get("stages", {}).items():
                    name = _STAGE_PHASE[stage]
                    summary.phase_seconds[name] = (
                        summary.phase_seconds.get(name, 0.0) + dt
                    )
                for tag in record.get("features", ()):
                    summary.feature_counts[tag] = (
                        summary.feature_counts.get(tag, 0) + 1
                    )
                if record["status"] == "failed":
                    summary.failures.append(
                        FailureRecord(
                            iteration=record["iteration"],
                            instance_seed=record["instance_seed"],
                            checks=record["checks"],
                            messages=record["messages"],
                            original_json=record["instance_json"],
                        )
                    )
                    if log:
                        log(
                            f"iteration {record['iteration']}: FAILED "
                            f"{record['checks']}"
                        )
            if batch_size is None and summary.generated:
                per_instance = (time.perf_counter() - t0) / max(
                    1, summary.iterations
                )
                current_batch = resolve_batch(jobs, per_instance)
    finally:
        if gc_was_enabled:
            gc.enable()
    summary.jobs = effective_jobs

    if shrink and summary.failures:
        from repro.fuzz.corpus import instance_from_json

        for failure in summary.failures:
            iter_config = iteration_config(base_config, failure.iteration)
            # Shrinking re-runs the cheap checks only: sampled extras are
            # disabled so the minimized reproducer replays them cheaply.
            shrink_config = replace(
                iter_config,
                check_threaded=False,
                check_capacity=False,
                check_partition=False,
                check_sched_ab=False,
                check_pool=False,
            )
            instance = instance_from_json(failure.original_json)
            shrunk, report = shrink_instance(
                instance, shrink_config, max_steps=max_shrink_steps
            )
            failure.shrunk_json = instance_to_json(shrunk)
            if corpus_dir is not None:
                path = write_reproducer(
                    shrunk, report, corpus_dir, config=shrink_config
                )
                failure.reproducer = str(path)
                if log:
                    log(f"iteration {failure.iteration}: minimized to {path}")

    summary.elapsed_s = time.perf_counter() - t0
    return summary


def resolve_batch(jobs: int | None, per_instance_s: float | None = None) -> int:
    """Pick a pool fan-out size from the worker count *and* instance cost.

    With no cost measurement yet (campaign start), fall back to four batches
    of work per worker.  Once ``per_instance_s`` is known, size the batch so
    one fan-out covers roughly :data:`BATCH_TARGET_SECONDS` of wall-clock --
    cheap instances get large batches (amortizing pool dispatch), expensive
    ones get small batches (so the time budget and failure cap stay
    responsive) -- clamped to ``[workers, 64 * workers]``.
    """
    from repro.parallel import resolve_jobs

    workers = resolve_jobs(jobs)
    if per_instance_s is None or per_instance_s <= 0:
        return 4 * workers
    target = int(BATCH_TARGET_SECONDS / per_instance_s)
    return max(workers, min(target, 64 * workers))
