"""Differential conformance fuzzing.

The scheme's whole value is that every derived quantity (repeaters, i/o
endpoints, soak/drain, buffers) is *exact* -- and after several rounds of
aggressive caching (interning, cross-design memoization, compiled guard
closures, render caches) the realistic risk is a cache layer silently
diverging on a program shape nobody hand-wrote.  This package generates
those shapes:

* :mod:`repro.fuzz.generator` -- seeded random *valid* source programs
  (perfect r-in-{2,3} loop nests, affine bounds, rank-(r-1) constant-free
  index maps, randomized guarded bodies) plus consistent ``step``/``place``
  designs drawn from the bounded synthesis space;
* :mod:`repro.fuzz.harness` -- a differential harness that runs each
  instance through the sequential oracle, the coroutine simulator, the
  compiled Python backend and the enumerative cross-check, and asserts
  metamorphic invariants (memo on/off, pickled re-interning, render-cache
  hit vs miss, repeated execution, optionally pool-vs-serial sweeps,
  threaded engine and channel capacities);
* :mod:`repro.fuzz.shrink` -- a greedy shrinker that minimizes failing
  instances (drop loops, shrink bounds and sizes, drop branches/streams,
  simplify expressions) and writes deterministic reproducers;
* :mod:`repro.fuzz.corpus` -- JSON (de)serialization of instances and the
  ``tests/fuzz_corpus/`` reproducer format;
* :mod:`repro.fuzz.driver` -- the ``repro fuzz`` campaign loop (seeds,
  iteration/time budgets, worker pool fan-out, shrinking, summaries).
"""

from repro.fuzz.corpus import (
    instance_from_json,
    instance_to_json,
    load_reproducer,
    write_reproducer,
)
from repro.fuzz.driver import FuzzSummary, fuzz_run
from repro.fuzz.generator import (
    FuzzInstance,
    generate_design,
    generate_instance,
    generate_program,
)
from repro.fuzz.harness import (
    MUTATIONS,
    CheckFailure,
    HarnessConfig,
    InstanceReport,
    apply_mutation,
    run_instance,
)
from repro.fuzz.shrink import shrink_instance

__all__ = [
    "CheckFailure",
    "FuzzInstance",
    "FuzzSummary",
    "HarnessConfig",
    "InstanceReport",
    "MUTATIONS",
    "apply_mutation",
    "fuzz_run",
    "generate_design",
    "generate_instance",
    "generate_program",
    "instance_from_json",
    "instance_to_json",
    "load_reproducer",
    "run_instance",
    "shrink_instance",
    "write_reproducer",
]
