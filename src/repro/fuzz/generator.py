"""Seeded random generation of fuzz instances.

Programs are *valid by construction* (and re-checked through
:func:`repro.lang.validate.validate_program`): the generator only emits
shapes that satisfy Appendix A structurally --

* ``r`` in {2, 3} perfectly nested loops; every axis draws its step from
  {-1, +1} with *equal weight* (all-negative and mixed-sign nests
  included); bounds are affine in the size symbols -- or ``max``-form
  lower / ``min``-form upper extremum bounds when two size symbols are in
  scope -- with ``lb <= rb`` guaranteed at every size >= 2;
* per stream, an ``(r-1) x r`` index map whose rows have *disjoint,
  non-empty supports* with coefficients in {-1, +1}.  Disjoint supports
  force rank ``r-1``; per-row value sets are sumsets of stride-1 intervals
  (hence contiguous), and disjointness makes the joint image the full box,
  so the surjectivity restriction ("every element accessed") always holds
  once the variable bounds are derived from the loop bounds through the
  map (:func:`variable_bounds_for`) -- contiguity is independent of the
  symbolic form of the loop bounds, so extremum bounds preserve it;
* a basic statement that accesses every declared stream: one unconditional
  (usually accumulating) assignment to ``c`` built from random
  ``+ - * min max`` trees over the stream reads, optionally followed by
  guarded branches whose conditions are affine in the loop indices --
  including multi-assignment branches whose distinct assignments write
  *different* streams (any stream may be written, not just ``c``).

Designs are drawn from the *bounded synthesis space* the explorer already
searches: a random minimal-makespan ``step`` (coefficient bound 2), a
random compatible ``place`` (bound 1), and the first loading-axis
assignment that compiles -- reusing
:func:`repro.systolic.explore.loading_candidates`.  Instances the scheme
cannot schedule (no step respects the dependences, or no candidate
compiles) are skipped, not errors: the generator resamples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.scheme import compile_systolic
from repro.geometry.linalg import Matrix
from repro.lang.expr import (
    Assign,
    BinOp,
    Body,
    Branch,
    Condition,
    Const,
    Expr,
    StreamRead,
)
from repro.lang.program import Loop, SourceProgram
from repro.lang.stream import Stream
from repro.lang.validate import validate_program
from repro.lang.variables import IndexedVariable
from repro.symbolic.affine import Affine
from repro.symbolic.minmax import Bound, extremum
from repro.systolic.explore import loading_candidates
from repro.systolic.schedule import synthesize_places, synthesize_step
from repro.systolic.spec import SystolicArray
from repro.util.errors import ReproError

INDEX_NAMES = ("i", "j", "k")
SIZE_NAMES = ("n", "m")
STREAM_NAMES = ("a", "b", "d", "c")  # written stream is always named "c"

#: weighted operator palette for expression trees
_OPS = ("+", "+", "+", "-", "*", "*", "min", "max")
_RELATIONS = ("==", "!=", "<=", "<", ">=", ">")


@dataclass(frozen=True)
class FuzzInstance:
    """One generated (program, design, problem size) triple.

    ``seed`` records the generator seed that produced it (``-1`` for
    instances rebuilt by the shrinker or loaded from a corpus file).
    """

    program: SourceProgram
    array: SystolicArray
    env: dict
    seed: int = -1

    def describe(self) -> str:
        return (
            f"{self.program.name}: r={self.program.r}, "
            f"{len(self.program.streams)} streams, "
            f"step {self.array.step.rows[0]}, place {self.array.place.rows}, "
            f"size {self.env}"
        )


# ----------------------------------------------------------------------
# helpers shared with the shrinker
# ----------------------------------------------------------------------
def variable_bounds_for(
    rows, loops: tuple[Loop, ...]
) -> tuple[tuple[Bound, Bound], ...]:
    """Exact per-dimension bounds of the image of the loop box under a map.

    For row coefficients ``c`` the image of ``c * [lb .. ub]`` is
    ``[c*lb .. c*ub]`` for ``c >= 0`` and ``[c*ub .. c*lb]`` otherwise;
    summing per support axis gives the bounding interval of the row.  With
    the generator's {-1, +1} coefficients the image *covers* this interval,
    so using it as the variable bounds satisfies the coverage restriction.
    Extremum loop bounds stay closed under this accumulation (a negative
    coefficient flips ``min`` and ``max``), so the derived variable bounds
    keep the max-form-lower / min-form-upper shape.
    """
    bounds: list[tuple[Bound, Bound]] = []
    for row in rows:
        lo: Bound = Affine.constant(0)
        hi: Bound = Affine.constant(0)
        for c, lp in zip(row, loops):
            if c == 0:
                continue
            if c > 0:
                lo = lo + lp.lower * c
                hi = hi + lp.upper * c
            else:
                lo = lo + lp.upper * c
                hi = hi + lp.lower * c
        bounds.append((lo, hi))
    return tuple(bounds)


def program_size_symbols(program: SourceProgram) -> tuple[str, ...]:
    """All size symbols a program mentions, sorted."""
    syms = set(program.size_symbols)
    for lp in program.loops:
        syms |= lp.lower.free_symbols | lp.upper.free_symbols
    for v in program.variables:
        syms |= v.size_symbols
    return tuple(sorted(syms))


# ----------------------------------------------------------------------
# program generation
# ----------------------------------------------------------------------
def _random_index_map(rng: random.Random, r: int) -> tuple[tuple[int, ...], ...]:
    """An (r-1) x r map with disjoint non-empty supports, coeffs +-1."""
    axes = list(range(r))
    rng.shuffle(axes)
    if r == 2:
        supports = [axes[: rng.choice((1, 1, 2))]]
    else:
        s1 = rng.choice((1, 1, 1, 2))
        s2 = rng.choice((1, 1, 2)) if s1 == 1 else 1
        supports = [axes[:s1], axes[s1 : s1 + s2]]
    rows = []
    for support in supports:
        row = [0] * r
        for axis in support:
            row[axis] = rng.choice((1, 1, 1, -1))
        rows.append(tuple(row))
    return tuple(rows)


def _random_condition(rng: random.Random, indices: tuple[str, ...]) -> Condition:
    picks = rng.sample(indices, rng.choice((1, 2)) if len(indices) > 1 else 1)
    affine = Affine.constant(rng.randint(-2, 2))
    for name in picks:
        affine = affine + Affine.var(name) * rng.choice((1, 1, -1, 2))
    return Condition(affine, rng.choice(_RELATIONS))


def _random_expr(
    rng: random.Random, written: str, reads: tuple[str, ...]
) -> Expr:
    """A tree reading every stream in ``reads``, usually accumulating."""
    term: Expr = StreamRead(reads[0])
    for name in reads[1:]:
        term = BinOp(rng.choice(_OPS), term, StreamRead(name))
    if rng.random() < 0.3:
        term = BinOp(rng.choice(("+", "*")), term, Const(rng.randint(1, 3)))
    if rng.random() < 0.8:
        # accumulator convention: the written stream folds into itself
        op = rng.choice(("+", "+", "+", "min", "max"))
        return BinOp(op, StreamRead(written), term)
    return term


def _random_lower_bound(rng: random.Random, size_syms: tuple[str, ...]) -> Bound:
    """A left bound: a small constant, or (with two sizes in scope) a
    ``max`` of a constant and a size difference.  Always <= 2 at sizes in
    [2, 4], so any generated right bound (always >= 2) dominates it."""
    if len(size_syms) >= 2 and rng.random() < 0.35:
        a, b = rng.sample(size_syms, 2)
        return extremum(
            "max",
            (
                Affine.constant(rng.choice((0, 0, 1, -1))),
                Affine.var(a) - Affine.var(b),
            ),
        )
    return Affine.constant(rng.choice((0, 0, 0, 0, 1, -1)))


def _random_upper_bound(rng: random.Random, size_syms: tuple[str, ...]) -> Bound:
    """A right bound: ``size + c`` with ``c >= 0``, or (with two sizes in
    scope) a ``min`` of two such terms.  Always >= 2 at sizes in [2, 4]."""
    if len(size_syms) >= 2 and rng.random() < 0.35:
        a, b = rng.sample(size_syms, 2)
        return extremum(
            "min",
            (
                Affine.var(a) + rng.choice((0, 0, 1)),
                Affine.var(b) + rng.choice((0, 0, 1, 2)),
            ),
        )
    return Affine.var(rng.choice(size_syms)) + rng.choice((0, 0, 0, 1, 2))


def generate_program(
    rng: random.Random, *, name: str = "fuzzed"
) -> SourceProgram:
    """One random valid source program (raises if generation has a bug)."""
    r = rng.choice((2, 2, 3, 3, 3))
    n_sizes = rng.choice((1, 1, 2))
    size_syms = SIZE_NAMES[:n_sizes]

    loops = []
    for t in range(r):
        lower = _random_lower_bound(rng, size_syms)
        upper = _random_upper_bound(rng, size_syms)
        step = rng.choice((1, -1))
        loops.append(Loop(INDEX_NAMES[t], lower, upper, step))
    loops = tuple(loops)

    n_streams = rng.choice((2, 3, 3))
    names = tuple(sorted(rng.sample(STREAM_NAMES[:3], n_streams - 1))) + ("c",)
    streams = []
    for stream_name in names:
        rows = _random_index_map(rng, r)
        var = IndexedVariable(stream_name, variable_bounds_for(rows, loops))
        streams.append(Stream(var, Matrix(rows)))
    streams = tuple(streams)

    written = "c"
    reads = tuple(n for n in names if n != written)
    branches = [Branch(None, (Assign(written, _random_expr(rng, written, reads)),))]
    indices = tuple(lp.index for lp in loops)
    if rng.random() < 0.3:
        extra_src = rng.choice((written,) + reads)
        extra = BinOp(
            rng.choice(("+", "max")), StreamRead(extra_src), Const(rng.randint(1, 2))
        )
        branches.append(
            Branch(
                _random_condition(rng, indices),
                (Assign(written, extra),),
            )
        )
    if reads and rng.random() < 0.3:
        # A multi-assignment guarded branch whose assignments write
        # *different* streams: a read stream updates itself and "c" gets
        # a second guarded write.  Body.execute runs assignments in
        # order, so splitting the branch per assignment -- as to_source
        # does -- is semantically identical.
        other = rng.choice(reads)
        assigns = (
            Assign(
                other,
                BinOp(
                    rng.choice(("+", "max")),
                    StreamRead(other),
                    Const(rng.randint(1, 2)),
                ),
            ),
            Assign(
                written,
                BinOp("+", StreamRead(written), StreamRead(other)),
            ),
        )
        branches.append(Branch(_random_condition(rng, indices), assigns))

    program = SourceProgram(
        loops=loops,
        streams=streams,
        body=Body(tuple(branches)),
        size_symbols=size_syms,
        name=name,
    )
    validate_program(program)  # valid by construction; treat failure as a bug
    return program


# ----------------------------------------------------------------------
# design generation
# ----------------------------------------------------------------------
def generate_design(
    rng: random.Random,
    program: SourceProgram,
    *,
    step_bound: int = 2,
    place_bound: int = 1,
    max_places: int = 8,
) -> SystolicArray | None:
    """A random consistent, *compiling* design -- or ``None`` if the
    bounded synthesis space holds no compilable candidate for this program."""
    try:
        steps = synthesize_step(program, bound=step_bound)
    except ReproError:
        return None
    step = steps[rng.randrange(len(steps))]
    places = synthesize_places(program, step, bound=place_bound)
    if not places:
        return None
    order = rng.sample(range(len(places)), len(places))
    for pi in order[:max_places]:
        place = places[pi]
        loadings = list(loading_candidates(program, step, place))
        rng.shuffle(loadings)
        for loading in loadings:
            array = SystolicArray(
                step=step, place=place, loading_vectors=loading, name="fuzzed"
            )
            try:
                compile_systolic(program, array)
            except ReproError:
                continue
            return array
    return None


#: strata a campaign can be restricted to (`generate_instance(feature=...)`)
FEATURES = ("negative_step", "all_negative", "minmax_bound", "multi_branch")


def program_features(program: SourceProgram) -> frozenset[str]:
    """The grammar-coverage tags of one program (see ``docs/fuzzing.md``)."""
    from repro.symbolic.minmax import Extremum

    tags = set()
    steps = [lp.step for lp in program.loops]
    if any(s < 0 for s in steps):
        tags.add("negative_step")
    if all(s < 0 for s in steps):
        tags.add("all_negative")
    if any(
        isinstance(b, Extremum)
        for lp in program.loops
        for b in (lp.lower, lp.upper)
    ):
        tags.add("minmax_bound")
    if len(program.body.streams_written()) > 1:
        tags.add("multi_branch")
    return frozenset(tags)


def generate_instance(
    seed: int, *, max_attempts: int = 40, feature: str | None = None
) -> FuzzInstance | None:
    """The deterministic instance for ``seed`` (``None`` when every attempt
    lands outside the schedulable space -- rare, and itself deterministic).

    ``feature`` restricts generation to one stratum of :data:`FEATURES`:
    attempts whose program lacks the tag are resampled, so a stratified
    campaign spends its whole budget on that part of the grammar.
    """
    if feature is not None and feature not in FEATURES:
        raise ValueError(f"unknown feature {feature!r}; choose from {FEATURES}")
    rng = random.Random(seed)
    for attempt in range(max_attempts):
        program = generate_program(rng, name=f"fuzz_s{seed}")
        if feature is not None and feature not in program_features(program):
            continue
        array = generate_design(rng, program)
        if array is None:
            continue
        hi = 3 if program.r == 3 else 4
        env = {s: rng.randint(2, hi) for s in program_size_symbols(program)}
        return FuzzInstance(program=program, array=array, env=env, seed=seed)
    return None
