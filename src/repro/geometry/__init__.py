"""Exact geometry substrate (Section 2 of the paper).

Points are exact rational tuples; linear functions are exact rational
matrices.  No floating point is used anywhere in the compilation scheme, so
all derived programs are exact closed forms.
"""

from repro.geometry.point import Point, dot, sgn, nb, gcd_reduce, vector_quotient
from repro.geometry.linalg import Matrix, identity, solve_unique, null_space_vector
from repro.geometry.lattice import (
    Line,
    on_chord,
    lattice_points_on_vector,
    unit_distance,
    integer_direction,
)
from repro.geometry.rectangle import Rectangle
from repro.geometry.polyhedron import LinearConstraint, ConstraintSystem, fourier_motzkin_feasible

__all__ = [
    "Point",
    "dot",
    "sgn",
    "nb",
    "gcd_reduce",
    "vector_quotient",
    "Matrix",
    "identity",
    "solve_unique",
    "null_space_vector",
    "Line",
    "on_chord",
    "lattice_points_on_vector",
    "unit_distance",
    "integer_direction",
    "Rectangle",
    "LinearConstraint",
    "ConstraintSystem",
    "fourier_motzkin_feasible",
]
