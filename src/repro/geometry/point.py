"""Exact points/vectors in n-space (paper, Section 2).

The paper identifies n-tuples with points in n-space and uses them both as
positions and as directions.  :class:`Point` is an immutable tuple of exact
numbers (``int`` or :class:`fractions.Fraction`); all arithmetic is exact.

Terminology from the paper:

* ``x . i``        -- the i-th coordinate: ``x[i]``.
* ``x (.) y``      -- inner product: :func:`dot`.
* ``m * x``        -- scalar multiple: ``x * m``.
* ``x / m``        -- component division: ``x / m``.
* ``x // y``       -- the integer ``m`` with ``m * y == x``:
                      :func:`vector_quotient`.
* ``nb . x``       -- neighbour predicate: :func:`nb`.
* ``sgn``          -- the sign function: :func:`sgn`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Union

from repro.util.errors import GeometryError

Scalar = Union[int, Fraction]


def _normalize_scalar(value: Scalar) -> Scalar:
    """Collapse integral Fractions to plain ints for canonical hashing."""
    # Exact-type fast paths first: this runs once per coordinate of every
    # point a sweep enumerates.
    tp = type(value)
    if tp is int:
        return value
    if tp is Fraction or isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise GeometryError(f"point coordinates must be exact numbers, got {value!r}")
    return value


def sgn(value: Scalar) -> int:
    """The sign function of the paper: -1, 0, or +1."""
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


class Point(tuple):
    """An immutable exact point/vector in n-space.

    Supports component-wise addition/subtraction, scalar multiplication and
    division, and exact comparison.  Coordinates are ``int`` or ``Fraction``.
    """

    __slots__ = ()

    def __new__(cls, coords: Iterable[Scalar]) -> "Point":
        return super().__new__(cls, (_normalize_scalar(c) for c in coords))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def of(*coords: Scalar) -> "Point":
        """Build a point from positional coordinates: ``Point.of(1, 2)``."""
        return Point(coords)

    @staticmethod
    def origin(dim: int) -> "Point":
        """The origin **0** of ``dim``-space."""
        return Point((0,) * dim)

    @staticmethod
    def unit(dim: int, axis: int) -> "Point":
        """The ``axis``-th standard basis vector of ``dim``-space."""
        if not 0 <= axis < dim:
            raise GeometryError(f"axis {axis} out of range for dimension {dim}")
        return Point(tuple(1 if i == axis else 0 for i in range(dim)))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """The dimension (number of coordinates)."""
        return len(self)

    @property
    def is_zero(self) -> bool:
        """True iff this is the origin of its space."""
        return all(c == 0 for c in self)

    @property
    def is_integral(self) -> bool:
        """True iff every coordinate is an integer."""
        return all(isinstance(c, int) for c in self)

    def as_int_tuple(self) -> tuple[int, ...]:
        """Return the coordinates as a tuple of ints; error if fractional."""
        if not self.is_integral:
            raise GeometryError(f"{self} has non-integer coordinates")
        return tuple(int(c) for c in self)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _check_dim(self, other: "Point") -> None:
        if len(self) != len(other):
            raise GeometryError(
                f"dimension mismatch: {len(self)}-point vs {len(other)}-point"
            )

    def __add__(self, other: object) -> "Point":  # type: ignore[override]
        if not isinstance(other, tuple):
            return NotImplemented
        other_pt = other if isinstance(other, Point) else Point(other)
        self._check_dim(other_pt)
        return Point(a + b for a, b in zip(self, other_pt))

    __radd__ = __add__

    def __sub__(self, other: object) -> "Point":
        if not isinstance(other, tuple):
            return NotImplemented
        other_pt = other if isinstance(other, Point) else Point(other)
        self._check_dim(other_pt)
        return Point(a - b for a, b in zip(self, other_pt))

    def __rsub__(self, other: object) -> "Point":
        if not isinstance(other, tuple):
            return NotImplemented
        return Point(other).__sub__(self)

    def __neg__(self) -> "Point":
        return Point(-c for c in self)

    def __mul__(self, scalar: object) -> "Point":  # type: ignore[override]
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        return Point(c * scalar for c in self)

    __rmul__ = __mul__

    def __truediv__(self, scalar: object) -> "Point":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        if scalar == 0:
            raise GeometryError("division of a point by zero")
        return Point(Fraction(c) / scalar for c in self)

    def with_coord(self, axis: int, value: Scalar) -> "Point":
        """The paper's ``(x; i: e)``: this point with coordinate ``axis`` replaced."""
        if not 0 <= axis < len(self):
            raise GeometryError(f"axis {axis} out of range for {self}")
        return Point(value if i == axis else c for i, c in enumerate(self))

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return "(" + ", ".join(str(c) for c in self) + ")"


def dot(x: Sequence[Scalar], y: Sequence[Scalar]) -> Scalar:
    """Inner product of two points of equal dimension (paper's ``x (.) y``)."""
    if len(x) != len(y):
        raise GeometryError(f"dimension mismatch in dot product: {x} . {y}")
    return sum((a * b for a, b in zip(x, y)), 0)


def nb(x: Sequence[Scalar]) -> bool:
    """The neighbour predicate ``nb`` of Section 3.2.

    Applied to the difference of two points, it identifies whether they are
    neighbours in the process space: every component has magnitude <= 1.

    The paper types ``nb`` on ``Z^n``; the definition quantifies over all
    components of its argument.
    """
    return all(abs(c) <= 1 for c in x)


def gcd_reduce(x: Point) -> tuple[Point, int]:
    """Reduce an integral vector by the gcd of its components.

    Returns ``(x / k, k)`` where ``k = (gcd i : 0 <= i < n : |x.i|)``.
    The zero vector is returned unchanged with ``k = 1``.
    """
    ints = x.as_int_tuple()
    k = 0
    for c in ints:
        k = math.gcd(k, abs(c))
    if k == 0:
        return x, 1
    return Point(c // k for c in ints), k


def vector_quotient(x: Point, y: Point) -> int:
    """The paper's ``x // y``: the integer ``m`` such that ``m * y == x``.

    Only well-defined when ``x`` is an exact integer multiple of ``y``;
    otherwise :class:`GeometryError` is raised.  ``0 // y == 0`` for any
    non-zero ``y``; ``x // 0`` is only defined for ``x == 0`` (result 0).
    """
    if len(x) != len(y):
        raise GeometryError(f"dimension mismatch in {x} // {y}")
    m: Scalar | None = None
    for a, b in zip(x, y):
        if b == 0:
            if a != 0:
                raise GeometryError(f"{x} is not a multiple of {y}")
            continue
        q = Fraction(a, 1) / Fraction(b, 1)
        if m is None:
            m = q
        elif m != q:
            raise GeometryError(f"{x} is not a multiple of {y}")
    if m is None:  # y == 0 and x == 0
        return 0
    if isinstance(m, Fraction) and m.denominator != 1:
        raise GeometryError(f"{x} // {y} is not an integer (got {m})")
    return int(m)
