"""Rational polyhedra and Fourier-Motzkin feasibility.

The compilation scheme produces guards that are conjunctions of affine
inequalities over the process-space coordinates and the problem-size
symbols (Section 7.2.2).  Deciding whether such a guard can ever hold --
e.g. to prune the vacuous sub-alternatives the paper removes by hand in
Appendix E.2.5 -- is rational-feasibility checking, which Fourier-Motzkin
elimination answers exactly.

Constraints are kept in the canonical form ``coeffs . x + const >= 0``.
Feasibility is over the rationals: a feasible relaxation may in rare cases
have no integer point, so pruning with this test is *sound* (it only removes
cases that can never hold) but not complete, matching the paper's own
hand-simplification which also only removes impossible branches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.util.errors import GeometryError

#: global feasibility memo keyed by the canonicalized integer rows; see
#: :func:`fourier_motzkin_feasible`
_fm_cache: dict = {}
_FM_STATS = {"hits": 0, "misses": 0}
_FM_CACHE_LIMIT = 32768


@dataclass(frozen=True)
class LinearConstraint:
    """The inequality ``sum_i coeffs[i] * x_i + const >= 0``."""

    coeffs: tuple[Fraction, ...]
    const: Fraction

    @staticmethod
    def of(coeffs: Sequence[int | Fraction], const: int | Fraction) -> "LinearConstraint":
        return LinearConstraint(tuple(Fraction(c) for c in coeffs), Fraction(const))

    @property
    def dim(self) -> int:
        return len(self.coeffs)

    @property
    def is_trivial(self) -> bool:
        """No variables involved: truth is decided by the constant alone."""
        return all(c == 0 for c in self.coeffs)

    @property
    def trivially_true(self) -> bool:
        return self.is_trivial and self.const >= 0

    @property
    def trivially_false(self) -> bool:
        return self.is_trivial and self.const < 0

    def evaluate(self, assignment: Sequence[int | Fraction]) -> bool:
        if len(assignment) != self.dim:
            raise GeometryError("assignment dimension mismatch")
        total = self.const + sum(
            (c * Fraction(v) for c, v in zip(self.coeffs, assignment)), Fraction(0)
        )
        return total >= 0


class ConstraintSystem:
    """A conjunction of :class:`LinearConstraint` over a fixed variable set."""

    def __init__(self, dim: int, constraints: Iterable[LinearConstraint] = ()) -> None:
        self.dim = dim
        self.constraints: list[LinearConstraint] = []
        for c in constraints:
            self.add(c)

    def add(self, constraint: LinearConstraint) -> None:
        if constraint.dim != self.dim:
            raise GeometryError(
                f"constraint dimension {constraint.dim} != system dimension {self.dim}"
            )
        self.constraints.append(constraint)

    def evaluate(self, assignment: Sequence[int | Fraction]) -> bool:
        return all(c.evaluate(assignment) for c in self.constraints)

    def is_feasible(self) -> bool:
        """Exact rational feasibility via Fourier-Motzkin elimination."""
        return fourier_motzkin_feasible(self.constraints, self.dim)


def _reduce_row(row: tuple[int, ...]) -> tuple[int, ...]:
    """Divide an integer row by the gcd of its entries (keeps numbers small)."""
    g = 0
    for x in row:
        g = math.gcd(g, x)
    if g > 1:
        row = tuple(x // g for x in row)
    return row


def _eliminate(rows: list[tuple[int, ...]], var: int) -> list[tuple[int, ...]] | None:
    """Eliminate variable ``var``; returns None if infeasibility is found.

    Rows are integer tuples ``(c_0, ..., c_{dim-1}, const)`` encoding
    ``sum c_i x_i + const >= 0``; the final slot is the constant.
    """
    lowers: list[tuple[int, ...]] = []  # coeff[var] > 0: x_var >= -(rest)/coeff
    uppers: list[tuple[int, ...]] = []  # coeff[var] < 0: x_var <= -(rest)/coeff
    out: list[tuple[int, ...]] = []
    for row in rows:
        a = row[var]
        if a > 0:
            lowers.append(row)
        elif a < 0:
            uppers.append(row)
        else:
            out.append(row)
    seen: set[tuple[int, ...]] = set()
    for lo in lowers:
        a_lo = lo[var]
        for hi in uppers:
            a_hi = -hi[var]
            # a_hi * lo + a_lo * hi eliminates x_var (both multipliers > 0).
            new = tuple(a_hi * cl + a_lo * ch for cl, ch in zip(lo, hi))
            for x in new[:-1]:
                if x:
                    break
            else:
                if new[-1] < 0:
                    return None
                continue  # trivially true
            new = _reduce_row(new)
            if new not in seen:
                seen.add(new)
                out.append(new)
    return out


def canonical_int_row(entries: Sequence[Fraction]) -> tuple[int, ...] | bool:
    """Scale ``(coeffs..., const)`` to a reduced integer row.

    Returns ``True``/``False`` directly for a trivial (variable-free) row.
    Feasibility is invariant under positive scaling, so a row canonicalized
    this way can be compared and memoized in machine-int arithmetic.
    """
    lcm = 1
    for e in entries:
        d = e.denominator
        if d != 1:
            lcm = lcm * d // math.gcd(lcm, d)
    row = tuple(int(e * lcm) for e in entries)
    for x in row[:-1]:
        if x:
            return _reduce_row(row)
    return row[-1] >= 0


def feasible_int_rows(rows: Sequence[tuple[int, ...]], dim: int) -> bool:
    """Feasibility of already-canonical integer rows (see above).

    Distinct guards constantly reduce to the same canonical integer system
    (the scheme's coefficient space is tiny), so feasibility is memoized
    globally on the rows -- unlike any per-guard memo this hits across
    designs and across fuzz instances.  Row order is irrelevant to
    feasibility, hence the sorted key.
    """
    key = (dim, tuple(sorted(set(rows))))
    cached = _fm_cache.get(key)
    if cached is not None:
        _FM_STATS["hits"] += 1
        return cached
    _FM_STATS["misses"] += 1
    work = list(rows)
    feasible = True
    for var in range(dim):
        result = _eliminate(work, var)
        if result is None:
            feasible = False
            break
        work = result
    else:
        # By construction every surviving row still involves a variable or
        # was discharged when derived; keep the constant check for safety.
        feasible = all(row[-1] >= 0 for row in work)
    if len(_fm_cache) >= _FM_CACHE_LIMIT:
        _fm_cache.clear()
    _fm_cache[key] = feasible
    return feasible


def fourier_motzkin_feasible(
    constraints: Sequence[LinearConstraint], dim: int
) -> bool:
    """True iff the conjunction has a rational solution.

    Classic Fourier-Motzkin: eliminate each variable in turn, combining each
    lower bound with each upper bound; the system is infeasible exactly when
    a trivially false constant constraint appears.  Each constraint is
    scaled to integer coefficients up front (feasibility is invariant under
    positive scaling), so the elimination runs entirely in machine-int
    arithmetic instead of ``Fraction`` -- this is the sweep's hottest inner
    loop.
    """
    work: list[tuple[int, ...]] = []
    for c in constraints:
        if c.dim != dim:
            raise GeometryError("constraint dimension mismatch")
        row = canonical_int_row(tuple(c.coeffs) + (c.const,))
        if row is True:
            continue
        if row is False:
            return False
        work.append(row)
    return feasible_int_rows(work, dim)
