"""Rational polyhedra and Fourier-Motzkin feasibility.

The compilation scheme produces guards that are conjunctions of affine
inequalities over the process-space coordinates and the problem-size
symbols (Section 7.2.2).  Deciding whether such a guard can ever hold --
e.g. to prune the vacuous sub-alternatives the paper removes by hand in
Appendix E.2.5 -- is rational-feasibility checking, which Fourier-Motzkin
elimination answers exactly.

Constraints are kept in the canonical form ``coeffs . x + const >= 0``.
Feasibility is over the rationals: a feasible relaxation may in rare cases
have no integer point, so pruning with this test is *sound* (it only removes
cases that can never hold) but not complete, matching the paper's own
hand-simplification which also only removes impossible branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.util.errors import GeometryError


@dataclass(frozen=True)
class LinearConstraint:
    """The inequality ``sum_i coeffs[i] * x_i + const >= 0``."""

    coeffs: tuple[Fraction, ...]
    const: Fraction

    @staticmethod
    def of(coeffs: Sequence[int | Fraction], const: int | Fraction) -> "LinearConstraint":
        return LinearConstraint(tuple(Fraction(c) for c in coeffs), Fraction(const))

    @property
    def dim(self) -> int:
        return len(self.coeffs)

    @property
    def is_trivial(self) -> bool:
        """No variables involved: truth is decided by the constant alone."""
        return all(c == 0 for c in self.coeffs)

    @property
    def trivially_true(self) -> bool:
        return self.is_trivial and self.const >= 0

    @property
    def trivially_false(self) -> bool:
        return self.is_trivial and self.const < 0

    def evaluate(self, assignment: Sequence[int | Fraction]) -> bool:
        if len(assignment) != self.dim:
            raise GeometryError("assignment dimension mismatch")
        total = self.const + sum(
            (c * Fraction(v) for c, v in zip(self.coeffs, assignment)), Fraction(0)
        )
        return total >= 0


class ConstraintSystem:
    """A conjunction of :class:`LinearConstraint` over a fixed variable set."""

    def __init__(self, dim: int, constraints: Iterable[LinearConstraint] = ()) -> None:
        self.dim = dim
        self.constraints: list[LinearConstraint] = []
        for c in constraints:
            self.add(c)

    def add(self, constraint: LinearConstraint) -> None:
        if constraint.dim != self.dim:
            raise GeometryError(
                f"constraint dimension {constraint.dim} != system dimension {self.dim}"
            )
        self.constraints.append(constraint)

    def evaluate(self, assignment: Sequence[int | Fraction]) -> bool:
        return all(c.evaluate(assignment) for c in self.constraints)

    def is_feasible(self) -> bool:
        """Exact rational feasibility via Fourier-Motzkin elimination."""
        return fourier_motzkin_feasible(self.constraints, self.dim)


def _eliminate(constraints: list[LinearConstraint], var: int) -> list[LinearConstraint] | None:
    """Eliminate variable ``var``; returns None if infeasibility is found."""
    lowers: list[LinearConstraint] = []  # coeff[var] > 0: x_var >= -(rest)/coeff
    uppers: list[LinearConstraint] = []  # coeff[var] < 0: x_var <= -(rest)/coeff
    others: list[LinearConstraint] = []
    for c in constraints:
        a = c.coeffs[var]
        if a > 0:
            lowers.append(c)
        elif a < 0:
            uppers.append(c)
        else:
            if c.trivially_false:
                return None
            others.append(c)
    out = list(others)
    for lo in lowers:
        for hi in uppers:
            a_lo = lo.coeffs[var]
            a_hi = -hi.coeffs[var]
            # a_hi * lo + a_lo * hi eliminates x_var (both positive multipliers).
            coeffs = tuple(
                a_hi * cl + a_lo * ch for cl, ch in zip(lo.coeffs, hi.coeffs)
            )
            const = a_hi * lo.const + a_lo * hi.const
            new = LinearConstraint(coeffs, const)
            if new.trivially_false:
                return None
            if not new.trivially_true:
                out.append(new)
    return out


def fourier_motzkin_feasible(
    constraints: Sequence[LinearConstraint], dim: int
) -> bool:
    """True iff the conjunction has a rational solution.

    Classic Fourier-Motzkin: eliminate each variable in turn, combining each
    lower bound with each upper bound; the system is infeasible exactly when
    a trivially false constant constraint appears.
    """
    work = []
    for c in constraints:
        if c.dim != dim:
            raise GeometryError("constraint dimension mismatch")
        if c.trivially_false:
            return False
        if not c.trivially_true:
            work.append(c)
    for var in range(dim):
        result = _eliminate(work, var)
        if result is None:
            return False
        work = result
    return all(not c.trivially_false for c in work)
