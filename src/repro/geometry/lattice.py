"""Lines, chords and lattice reasoning (Section 2 and Theorem 7).

A *line* is the infinite set ``{ x + alpha * z : alpha in R }``; a *chord*
is the finite segment of lattice points between the origin and a point.
Theorem 7 of the paper shows that the lattice points on a vector ``x`` are
exactly ``(m/k) * x`` for ``0 <= m <= k`` with ``k = gcd`` of the
coordinates, which yields the well-defined "unit distance" used to define
``increment``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from repro.geometry.point import Point, gcd_reduce
from repro.util.errors import GeometryError


@dataclass(frozen=True)
class Line:
    """The line through ``base`` with direction ``direction`` (``!= 0``)."""

    base: Point
    direction: Point

    def __post_init__(self) -> None:
        if self.direction.is_zero:
            raise GeometryError("a line needs a non-zero direction")
        if self.base.dim != self.direction.dim:
            raise GeometryError("line base and direction dimension mismatch")

    def contains(self, point: Point) -> bool:
        """True iff ``point`` lies on this (real) line."""
        delta = point - self.base
        alpha: Fraction | None = None
        for d, z in zip(delta, self.direction):
            if z == 0:
                if d != 0:
                    return False
                continue
            q = Fraction(d) / Fraction(z)
            if alpha is None:
                alpha = q
            elif alpha != q:
                return False
        return True

    def parameter_of(self, point: Point) -> Fraction:
        """The ``alpha`` with ``point == base + alpha * direction``."""
        if not self.contains(point):
            raise GeometryError(f"{point} not on {self}")
        for d, z in zip(point - self.base, self.direction):
            if z != 0:
                return Fraction(d) / Fraction(z)
        raise GeometryError("unreachable: zero direction")

    def lattice_points_between(self, lo: Point, hi: Point) -> Iterator[Point]:
        """Integral points of the line inside the box ``[lo, hi]``, in order
        of increasing parameter."""
        # Find the integral sub-lattice of the line: integral points occur at
        # parameters alpha0 + m * (1/k) where direction/k is the unit step --
        # provided base is integral.
        unit, _ = gcd_reduce(self.direction) if self.direction.is_integral else (None, 1)
        if unit is None or not self.base.is_integral:
            raise GeometryError("lattice enumeration requires integral base/direction")
        # Range of m such that base + m * unit is within [lo, hi] in every
        # coordinate with unit.i != 0 (coords with unit.i == 0 must already
        # be within bounds).
        m_lo: Fraction | None = None
        m_hi: Fraction | None = None
        for b, u, lo_c, hi_c in zip(self.base, unit, lo, hi):
            if u == 0:
                if not (lo_c <= b <= hi_c):
                    return
                continue
            bound_a = Fraction(lo_c - b, u)
            bound_b = Fraction(hi_c - b, u)
            lo_m, hi_m = min(bound_a, bound_b), max(bound_a, bound_b)
            m_lo = lo_m if m_lo is None else max(m_lo, lo_m)
            m_hi = hi_m if m_hi is None else min(m_hi, hi_m)
        if m_lo is None or m_hi is None or m_lo > m_hi:
            return
        import math

        start = math.ceil(m_lo)
        stop = math.floor(m_hi)
        for m in range(start, stop + 1):
            yield self.base + unit * m


def on_chord(w: Point, x: Point) -> bool:
    """The paper's ``(w on x)``: ``w = t * x`` for some ``0 <= t <= 1``."""
    if w.dim != x.dim:
        raise GeometryError("dimension mismatch in on_chord")
    t: Fraction | None = None
    for wc, xc in zip(w, x):
        if xc == 0:
            if wc != 0:
                return False
            continue
        q = Fraction(wc) / Fraction(xc)
        if t is None:
            t = q
        elif t != q:
            return False
    if t is None:  # x == 0, so w must be 0 as well (checked above)
        return True
    return 0 <= t <= 1


def lattice_points_on_vector(x: Point) -> list[Point]:
    """Theorem 7: the ``k+1`` lattice points on the chord of ``x``.

    ``k`` is the gcd of the coordinates; the points are ``(m/k) * x`` for
    ``0 <= m <= k``, returned in order from the origin to ``x``.
    """
    if not x.is_integral:
        raise GeometryError("lattice_points_on_vector needs an integral vector")
    if x.is_zero:
        return [x]
    unit, k = gcd_reduce(x)
    return [unit * m for m in range(k + 1)]


def unit_distance(x: Point) -> Point:
    """The corollary to Theorem 7: the unit step ``(1/k) * x`` along ``x``.

    A constant integral vector such that adjacent lattice points on any line
    with direction ``x`` are exactly one unit apart.
    """
    if x.is_zero:
        raise GeometryError("unit distance of the zero vector is undefined")
    unit, _ = gcd_reduce(x)
    return unit


def integer_direction(x: Point) -> Point:
    """Scale an arbitrary non-zero rational vector to the canonical coprime
    integral vector with the same direction (sign preserved)."""
    if x.is_zero:
        raise GeometryError("cannot normalise the zero vector")
    from fractions import Fraction as F
    import math

    fracs = [F(c) for c in x]
    lcm = 1
    for f in fracs:
        lcm = lcm * f.denominator // math.gcd(lcm, f.denominator)
    ints = Point(int(f * lcm) for f in fracs)
    unit, _ = gcd_reduce(ints)
    return unit
