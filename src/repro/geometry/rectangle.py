"""Rectangular lattice regions.

The paper's model (Section 5) makes the index space, the process space and
every variable space *rectangular*: the boundaries of each dimension are
orthogonal to its axis.  :class:`Rectangle` is the concrete (fully numeric)
form used by the runtime; the symbolic form (bounds that are affine in the
problem size) lives in :mod:`repro.symbolic`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.geometry.point import Point
from repro.util.errors import GeometryError


@dataclass(frozen=True)
class Rectangle:
    """The integral box ``[lo.0, hi.0] x ... x [lo.(n-1), hi.(n-1)]``.

    Both corners are inclusive, matching the paper's loop bounds
    ``lb_i <= x.i <= rb_i``.
    """

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if self.lo.dim != self.hi.dim:
            raise GeometryError("rectangle corners must have equal dimension")
        if not (self.lo.is_integral and self.hi.is_integral):
            raise GeometryError("rectangle corners must be integral")
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise GeometryError(f"empty rectangle: {self.lo} .. {self.hi}")

    @property
    def dim(self) -> int:
        return self.lo.dim

    @property
    def size(self) -> int:
        """Number of lattice points in the box."""
        n = 1
        for l, h in zip(self.lo, self.hi):
            n *= h - l + 1
        return n

    def extent(self, axis: int) -> int:
        """Number of lattice points along ``axis``."""
        return int(self.hi[axis] - self.lo[axis] + 1)

    def __contains__(self, point: object) -> bool:
        if not isinstance(point, tuple):
            return False
        if len(point) != self.dim:
            return False
        return all(l <= c <= h for l, c, h in zip(self.lo, point, self.hi))

    def __iter__(self) -> Iterator[Point]:
        """Enumerate all lattice points in lexicographic order."""
        ranges = [
            range(int(l), int(h) + 1) for l, h in zip(self.lo, self.hi)
        ]
        # The coordinates are plain ints, so bypass Point's per-coordinate
        # normalization; enumeration is the cost stage's inner loop.
        make = tuple.__new__
        return (make(Point, t) for t in itertools.product(*ranges))

    def corners(self) -> Iterator[Point]:
        """The ``2^dim`` vertices of the box."""
        def rec(prefix: tuple, axis: int) -> Iterator[Point]:
            if axis == self.dim:
                yield Point(prefix)
                return
            yield from rec(prefix + (int(self.lo[axis]),), axis + 1)
            if self.hi[axis] != self.lo[axis]:
                yield from rec(prefix + (int(self.hi[axis]),), axis + 1)

        return rec((), 0)

    def boundary_points(self, axis: int) -> Iterator[Point]:
        """Lattice points lying on either face orthogonal to ``axis``."""
        for p in self:
            if p[axis] == self.lo[axis] or p[axis] == self.hi[axis]:
                yield p

    def face(self, axis: int, *, at_lo: bool) -> "Rectangle":
        """The (dim-1 extent) face where coordinate ``axis`` is pinned."""
        val = self.lo[axis] if at_lo else self.hi[axis]
        return Rectangle(self.lo.with_coord(axis, val), self.hi.with_coord(axis, val))

    def clamp(self, point: Point) -> Point:
        """The nearest point of the box to ``point`` (component-wise)."""
        return Point(
            min(max(c, l), h) for c, l, h in zip(point, self.lo, self.hi)
        )

    @staticmethod
    def bounding(points: list[Point]) -> "Rectangle":
        """The smallest rectangle enclosing ``points`` (must be non-empty)."""
        if not points:
            raise GeometryError("bounding box of no points")
        dim = points[0].dim
        lo = Point(min(p[i] for p in points) for i in range(dim))
        hi = Point(max(p[i] for p in points) for i in range(dim))
        return Rectangle(lo, hi)
