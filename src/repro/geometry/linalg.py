"""Exact rational matrices and linear maps.

The paper represents every linear function by a matrix and attributes the
matrix's properties (rank, null space, dimensionality) to the function
(Section 2, citing Lang).  :class:`Matrix` implements those operations with
exact :class:`fractions.Fraction` arithmetic so that the compilation scheme
never loses precision.

The element type of matrix/vector operations is generic: entries of the
matrix are exact rationals, but :meth:`Matrix.apply` also accepts vectors of
symbolic affine expressions (anything supporting ``+`` and ``*`` by a
rational), which is how the scheme solves ``place . x = y`` symbolically.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence, TypeVar

from repro.geometry.point import Point, Scalar
from repro.util.errors import GeometryError, SingularMatrixError

T = TypeVar("T")

#: elimination memo -- Matrix is immutable and hashable by ``rows``, and the
#: bounded synthesis search revisits the same small integer matrices
#: constantly (every place candidate shares rows with its neighbours, and
#: fuzz instances draw coefficients from the same tiny set), so rank /
#: null-space / inverse results are cached globally keyed on the rows.
#: Bounded like the flow cache: cleared wholesale at the limit.
_ELIM_CACHE_LIMIT = 16384
_rank_cache: dict = {}
_null_basis_cache: dict = {}
_inverse_cache: dict = {}
_elim_stats = {"rank_hits": 0, "rank_misses": 0, "null_hits": 0,
               "null_misses": 0, "inv_hits": 0, "inv_misses": 0}


def _elim_cache_put(cache: dict, key, value):
    if len(cache) >= _ELIM_CACHE_LIMIT:
        cache.clear()
    cache[key] = value
    return value


class Matrix:
    """An immutable exact rational matrix (row-major)."""

    __slots__ = ("rows",)

    def __init__(self, rows: Iterable[Iterable[Scalar]]) -> None:
        normalized: list[tuple[Scalar, ...]] = []
        width: int | None = None
        for row in rows:
            tup = tuple(row)
            if width is None:
                width = len(tup)
            elif len(tup) != width:
                raise GeometryError("ragged rows in matrix")
            normalized.append(tup)
        if width is None or width == 0 or not normalized:
            raise GeometryError("matrix must be non-empty")
        object.__setattr__(self, "rows", tuple(normalized))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Matrix is immutable")

    def __reduce__(self):
        # Immutability blocks the default slot-restoring pickle path; rebuild
        # through the constructor instead (needed to ship designs to
        # multiprocessing workers in repro.parallel).
        return (Matrix, (self.rows,))

    # ------------------------------------------------------------------
    # shape / access
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return len(self.rows)

    @property
    def ncols(self) -> int:
        return len(self.rows[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def __getitem__(self, idx: tuple[int, int]) -> Scalar:
        i, j = idx
        return self.rows[i][j]

    def row(self, i: int) -> Point:
        return Point(self.rows[i])

    def col(self, j: int) -> Point:
        return Point(r[j] for r in self.rows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Matrix) and self.rows == other.rows

    def __hash__(self) -> int:
        return hash(self.rows)

    def __repr__(self) -> str:
        return "Matrix(" + "; ".join(" ".join(str(c) for c in r) for r in self.rows) + ")"

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def apply(self, vector: Sequence[T]) -> list[T]:
        """Matrix-vector product with a vector of arbitrary ring elements.

        Works for :class:`Point` (returns rationals) and for vectors of
        symbolic affine expressions (returns affine expressions): each
        component is ``sum_j rows[i][j] * vector[j]``, computed with the
        vector element's own ``+``/``*``.
        """
        if len(vector) != self.ncols:
            raise GeometryError(
                f"cannot apply {self.shape} matrix to {len(vector)}-vector"
            )
        out: list[T] = []
        for row in self.rows:
            acc = None
            for coeff, elem in zip(row, vector):
                term = elem * coeff
                acc = term if acc is None else acc + term
            out.append(acc)  # type: ignore[arg-type]
        return out

    def apply_point(self, vector: Sequence[Scalar]) -> Point:
        """Matrix-vector product returning a :class:`Point`."""
        return Point(self.apply(list(vector)))

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if self.ncols != other.nrows:
            raise GeometryError(f"cannot multiply {self.shape} by {other.shape}")
        return Matrix(
            tuple(
                sum(self.rows[i][k] * other.rows[k][j] for k in range(self.ncols))
                for j in range(other.ncols)
            )
            for i in range(self.nrows)
        )

    def transpose(self) -> "Matrix":
        return Matrix(zip(*self.rows))

    def drop_column(self, j: int) -> "Matrix":
        """The matrix with column ``j`` removed."""
        if not 0 <= j < self.ncols:
            raise GeometryError(f"column {j} out of range")
        if self.ncols == 1:
            raise GeometryError("cannot drop the only column")
        return Matrix(tuple(c for k, c in enumerate(r) if k != j) for r in self.rows)

    # ------------------------------------------------------------------
    # elimination-based queries
    # ------------------------------------------------------------------
    def _echelon(self) -> list[list[Fraction]]:
        """Row echelon form (fresh rational copy), used by rank/null space."""
        work = [[Fraction(c) for c in row] for row in self.rows]
        nrows, ncols = self.nrows, self.ncols
        pivot_row = 0
        for col in range(ncols):
            pivot = next(
                (r for r in range(pivot_row, nrows) if work[r][col] != 0), None
            )
            if pivot is None:
                continue
            work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
            pv = work[pivot_row][col]
            work[pivot_row] = [c / pv for c in work[pivot_row]]
            for r in range(nrows):
                if r != pivot_row and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [a - factor * b for a, b in zip(work[r], work[pivot_row])]
            pivot_row += 1
            if pivot_row == nrows:
                break
        return work

    @property
    def rank(self) -> int:
        """The rank of the matrix (exact; memoized on the rows)."""
        cached = _rank_cache.get(self.rows)
        if cached is not None:
            _elim_stats["rank_hits"] += 1
            return cached
        _elim_stats["rank_misses"] += 1
        result = sum(1 for row in self._echelon() if any(c != 0 for c in row))
        return _elim_cache_put(_rank_cache, self.rows, result)

    def null_space_basis(self) -> list[Point]:
        """An exact basis of the null space, as integral vectors.

        Each basis vector is scaled to have integer coprime components
        (multiplied by the lcm of denominators and divided by the gcd).
        Memoized on the rows; a fresh list is returned each call (the
        :class:`Point` entries are immutable and shared).
        """
        cached = _null_basis_cache.get(self.rows)
        if cached is not None:
            _elim_stats["null_hits"] += 1
            return list(cached)
        _elim_stats["null_misses"] += 1
        reduced = self._echelon()
        ncols = self.ncols
        pivots: dict[int, int] = {}
        for r, row in enumerate(reduced):
            for c, val in enumerate(row):
                if val != 0:
                    pivots[c] = r
                    break
        free_cols = [c for c in range(ncols) if c not in pivots]
        basis: list[Point] = []
        for free in free_cols:
            vec = [Fraction(0)] * ncols
            vec[free] = Fraction(1)
            for col, prow in pivots.items():
                vec[col] = -reduced[prow][free]
            lcm = 1
            for v in vec:
                lcm = lcm * v.denominator // math.gcd(lcm, v.denominator)
            ints = [int(v * lcm) for v in vec]
            g = 0
            for v in ints:
                g = math.gcd(g, abs(v))
            basis.append(Point(v // g for v in ints))
        _elim_cache_put(_null_basis_cache, self.rows, tuple(basis))
        return basis

    def determinant(self) -> Fraction:
        """The exact determinant of a square matrix."""
        n = self.nrows
        if n != self.ncols:
            raise GeometryError(f"determinant of non-square {self.shape} matrix")
        work = [[Fraction(c) for c in row] for row in self.rows]
        det = Fraction(1)
        for col in range(n):
            pivot = next((r for r in range(col, n) if work[r][col] != 0), None)
            if pivot is None:
                return Fraction(0)
            if pivot != col:
                work[col], work[pivot] = work[pivot], work[col]
                det = -det
            pv = work[col][col]
            det *= pv
            for r in range(col + 1, n):
                if work[r][col] != 0:
                    factor = work[r][col] / pv
                    work[r] = [a - factor * b for a, b in zip(work[r], work[col])]
        return det

    def inverse(self) -> "Matrix":
        """The exact inverse of a square matrix (memoized on the rows).

        Raises :class:`SingularMatrixError` if the matrix is singular.
        """
        cached = _inverse_cache.get(self.rows)
        if cached is not None:
            _elim_stats["inv_hits"] += 1
            return cached
        _elim_stats["inv_misses"] += 1
        n = self.nrows
        if n != self.ncols:
            raise GeometryError(f"inverse of non-square {self.shape} matrix")
        work = [
            [Fraction(c) for c in row] + [Fraction(1 if i == j else 0) for j in range(n)]
            for i, row in enumerate(self.rows)
        ]
        for col in range(n):
            pivot = next((r for r in range(col, n) if work[r][col] != 0), None)
            if pivot is None:
                raise SingularMatrixError(f"matrix {self!r} is singular")
            work[col], work[pivot] = work[pivot], work[col]
            pv = work[col][col]
            work[col] = [c / pv for c in work[col]]
            for r in range(n):
                if r != col and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [a - factor * b for a, b in zip(work[r], work[col])]
        return _elim_cache_put(
            _inverse_cache, self.rows, Matrix(row[n:] for row in work)
        )


from repro import profiling  # noqa: E402

profiling.register("linalg_elim", lambda: dict(_elim_stats))


def identity(n: int) -> Matrix:
    """The n-by-n identity matrix."""
    return Matrix(tuple(1 if i == j else 0 for j in range(n)) for i in range(n))


def solve_unique(matrix: Matrix, rhs: Sequence[T]) -> list[T]:
    """Solve ``matrix @ x == rhs`` for the unique solution ``x``.

    ``rhs`` entries may be exact rationals *or* symbolic affine expressions;
    the solution is computed as ``matrix^{-1} @ rhs`` so the result has the
    element type of ``rhs``.  Raises :class:`SingularMatrixError` when the
    matrix is not invertible.
    """
    return matrix.inverse().apply(rhs)


def null_space_vector(matrix: Matrix) -> Point:
    """The single spanning vector of a rank-deficiency-1 null space.

    The paper's ``null_p`` (Theorem 2): when ``dim(null(place)) == 1``, any
    non-zero element of the null space spans it; this returns the unique
    integral one with coprime components and an arbitrary but deterministic
    sign (first non-zero component positive).
    """
    basis = matrix.null_space_basis()
    if len(basis) != 1:
        raise GeometryError(
            f"null space has dimension {len(basis)}, expected 1 (rank must be ncols-1)"
        )
    vec = basis[0]
    first = next((c for c in vec if c != 0), 0)
    if first < 0:
        vec = -vec
    return vec
