"""Piecewise values: the paper's ``if G0 -> e0 [] G1 -> e1 ... fi``.

A :class:`Piecewise` is an ordered list of :class:`Case` (guard, value)
pairs plus an optional default value (the paper's ``else -> null``
alternative, used for null processes and null communications).

Guarded-command semantics: evaluation picks *a* case whose guard holds.  The
scheme only ever produces case analyses whose overlapping alternatives agree
(the paper notes this explicitly for ``col = n`` in Appendix D.2), and
:meth:`Piecewise.check_overlaps_agree` verifies it on concrete instances.
Values may be affine expressions, affine vectors, nested piecewise values
(Appendix E.2.5's soak/drain code), or ``None`` for the paper's ``null``.

Both classes are hash-consed (see :mod:`repro.symbolic.intern`), evaluation
routes through a compiled flat closure cached on the canonical instance
(:mod:`repro.symbolic.compile`), and :meth:`simplify`/:meth:`prune`/
:meth:`subs` are memoized on the interned identity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Sequence
from weakref import WeakValueDictionary

from repro.symbolic.affine import Affine, AffineLike, AffineVec, Numeric
from repro.symbolic.guard import Guard
from repro.symbolic.intern import counter
from repro.util.errors import SymbolicError

Value = Any  # Affine | AffineVec | Piecewise | None

_MISSING = object()

_SIMPLIFY_STATS = counter("piecewise_simplify_memo")
_PRUNE_STATS = counter("piecewise_prune_memo")
_SUBS_STATS = counter("piecewise_subs_memo")
_CFN_STATS = counter("piecewise_compiled_cache")


def _value_intern_key(value: Value):
    """Order-sensitive intern-key component for a case/default value.

    ``Guard`` and ``Piecewise`` equality deliberately ignores constraint and
    alternative *order*, but rendering does not.  Intern keys built from
    ``__eq__``/``__hash__`` would therefore silently canonicalize an
    order-variant to whichever ordering was interned first, changing how
    downstream forms print.  Interned values are keyed by identity instead
    (their own interning is order-sensitive, so structurally identical
    values in identical order share an id); ``AffineVec`` by the identity
    of its interned elements.  May return an unhashable object for exotic
    values -- callers catch ``TypeError`` and skip interning.
    """
    if value is None:
        return None
    tp = type(value)
    if tp is Affine or tp is Piecewise:
        return (tp.__name__, id(value))
    if tp is AffineVec:
        return ("AffineVec",) + tuple(map(id, value))
    return value


class Case:
    """One guarded alternative ``guard -> value`` (immutable, hash-consed).

    Values are usually hashable (:class:`Affine`, :class:`AffineVec`,
    :class:`Piecewise`, ``None``); a case over an unhashable value is
    simply not interned.
    """

    __slots__ = ("guard", "value", "_hash", "__weakref__")

    _intern: "WeakValueDictionary[tuple, Case]" = WeakValueDictionary()
    _stats = counter("case_intern")

    def __new__(cls, guard: Guard, value: Value = None) -> "Case":
        stats = cls._stats
        # Intern on the identity of the (order-sensitively interned) guard,
        # not on guard equality, which ignores constraint order -- see
        # _value_intern_key.  The instance holds a strong reference to both
        # key components, so their ids stay valid while the entry lives.
        try:
            key = (id(guard), _value_intern_key(value))
            self = cls._intern.get(key)
        except TypeError:
            key = None
            self = None
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "guard", guard)
        object.__setattr__(self, "value", value)
        try:
            h = hash((guard, value))
        except TypeError:
            h = None
            key = None
        object.__setattr__(self, "_hash", h)
        if key is not None:
            cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Case is immutable")

    def __reduce__(self):
        return (Case, (self.guard, self.value))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # type(self), not the global name: see Affine.__eq__ (teardown).
        if not isinstance(other, type(self)):
            return NotImplemented
        return self.guard == other.guard and self.value == other.value

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            raise TypeError(f"unhashable case value: {self.value!r}")
        return h

    def __str__(self) -> str:
        return f"{self.guard}  ->  {self.value}"

    def __repr__(self) -> str:
        return f"Case(guard={self.guard!r}, value={self.value!r})"


def _subs_value(value: Value, mapping: Mapping[str, AffineLike]) -> Value:
    if value is None:
        return None
    if isinstance(value, (Affine, AffineVec, Piecewise)):
        return value.subs(mapping)
    raise SymbolicError(f"cannot substitute into {value!r}")


def _evaluate_value(value: Value, env: Mapping[str, Numeric]) -> Any:
    if value is None:
        return None
    if isinstance(value, (Affine, AffineVec, Piecewise)):
        return value.evaluate(env)
    raise SymbolicError(f"cannot evaluate {value!r}")


def _rebuild_piecewise(cases, default, has_default):
    """Pickle helper: ``has_default`` is keyword-only in the constructor."""
    return Piecewise(cases, default, has_default=has_default)


class Piecewise:
    """An immutable, hash-consed guarded case analysis with an optional
    default."""

    __slots__ = (
        "cases", "default", "has_default", "_hash", "_memo", "_cfn", "_anyfn",
        "__weakref__",
    )

    _intern: "WeakValueDictionary[tuple, Piecewise]" = WeakValueDictionary()
    _stats = counter("piecewise_intern")

    def __new__(
        cls,
        cases: Iterable[Case],
        default: Value = None,
        *,
        has_default: bool = False,
    ) -> "Piecewise":
        case_list = tuple(cases)
        for c in case_list:
            if not isinstance(c, Case):
                raise SymbolicError(f"expected Case, got {c!r}")
        has_default = bool(has_default)
        default = default if has_default else None
        stats = cls._stats
        # Cases are interned order-sensitively, so identity per alternative
        # keys the exact ordered structure (Case equality would not: its
        # guards compare order-insensitively).  See _value_intern_key.
        try:
            key = (
                tuple(map(id, case_list)),
                _value_intern_key(default),
                has_default,
            )
            self = cls._intern.get(key)
        except TypeError:
            key = None
            self = None
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "cases", case_list)
        object.__setattr__(self, "default", default)
        object.__setattr__(self, "has_default", has_default)
        object.__setattr__(self, "_hash", hash(("Piecewise", case_list, has_default)))
        object.__setattr__(self, "_memo", {})
        object.__setattr__(self, "_cfn", None)
        object.__setattr__(self, "_anyfn", None)
        if key is not None:
            cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Piecewise is immutable")

    def __reduce__(self):
        return (_rebuild_piecewise, (self.cases, self.default, self.has_default))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def single(value: Value) -> "Piecewise":
        """A case analysis with one unconditional alternative."""
        return Piecewise([Case(Guard.TRUE, value)])

    @staticmethod
    def with_null_default(cases: Iterable[Case]) -> "Piecewise":
        """The paper's ``else -> null`` form (null process / communication)."""
        return Piecewise(cases, default=None, has_default=True)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for c in self.cases:
            out |= c.guard.free_symbols
            if isinstance(c.value, (Affine, AffineVec, Piecewise)):
                out |= c.value.free_symbols
        if self.has_default and isinstance(
            self.default, (Affine, AffineVec, Piecewise)
        ):
            out |= self.default.free_symbols
        return out

    def map_values(self, fn: Callable[[Value], Value]) -> "Piecewise":
        """Apply ``fn`` to every leaf value (recursing through nesting)."""
        def rec(value: Value) -> Value:
            if isinstance(value, Piecewise):
                return value.map_values(fn)
            return fn(value)

        return Piecewise(
            (Case(c.guard, rec(c.value)) for c in self.cases),
            default=rec(self.default) if self.has_default else None,
            has_default=self.has_default,
        )

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def subs(self, mapping: Mapping[str, AffineLike]) -> "Piecewise":
        try:
            key = (4, tuple(sorted(mapping.items())))
        except TypeError:
            key = None
        if key is not None:
            found = self._memo.get(key, _MISSING)
            if found is not _MISSING:
                _SUBS_STATS.hits += 1
                return found
            _SUBS_STATS.misses += 1
        result = Piecewise(
            (Case(c.guard.subs(mapping), _subs_value(c.value, mapping)) for c in self.cases),
            default=_subs_value(self.default, mapping) if self.has_default else None,
            has_default=self.has_default,
        )
        if key is not None:
            self._memo[key] = result
        return result

    def matching_cases(self, env: Mapping[str, Numeric]) -> list[Case]:
        """All alternatives whose guard holds under ``env``."""
        return [c for c in self.cases if c.guard.evaluate(env)]

    def any_case_holds(self, env: Mapping[str, Numeric]) -> bool:
        """True iff some alternative's guard holds (compiled fast path).

        Equivalent to ``bool(self.matching_cases(env))`` without building
        the list -- this is the computation-space membership test the
        explorer runs for every point of every candidate design.
        """
        fn = self._anyfn
        if fn is None:
            from repro.symbolic.compile import compile_any_case

            fn = compile_any_case(self)
            object.__setattr__(self, "_anyfn", fn)
            _CFN_STATS.misses += 1
        else:
            _CFN_STATS.hits += 1
        return fn(env)

    def evaluate(self, env: Mapping[str, Numeric]) -> Any:
        """Evaluate under guarded-command semantics.

        Picks the first alternative whose guard holds; falls back to the
        default when no guard holds and a default exists, and raises
        otherwise (the paper's ``if .. fi`` aborts when no guard holds).

        Runs through a flat compiled closure cached on this (interned)
        instance; the interpretive walk remains as the fallback for leaf
        values the compiler does not know.
        """
        fn = self._cfn
        if fn is None:
            from repro.symbolic.compile import compile_piecewise

            fn = compile_piecewise(self)
            if fn is None:
                fn = self._evaluate_interp
            object.__setattr__(self, "_cfn", fn)
            _CFN_STATS.misses += 1
        else:
            _CFN_STATS.hits += 1
        return fn(env)

    def _evaluate_interp(self, env: Mapping[str, Numeric]) -> Any:
        """The original interpretive tree walk (compiled-path fallback)."""
        for c in self.cases:
            if c.guard.evaluate(env):
                return _evaluate_value(c.value, env)
        if self.has_default:
            return _evaluate_value(self.default, env)
        raise SymbolicError(
            f"no alternative of the case analysis holds under {dict(env)}"
        )

    def check_overlaps_agree(self, env: Mapping[str, Numeric]) -> bool:
        """True iff all alternatives whose guards hold yield equal values."""
        values = [_evaluate_value(c.value, env) for c in self.matching_cases(env)]
        return all(v == values[0] for v in values[1:])

    # ------------------------------------------------------------------
    # simplification
    # ------------------------------------------------------------------
    def prune(self, assumptions: Guard | None = None) -> "Piecewise":
        """Drop alternatives whose guards are infeasible (sound, Fourier-
        Motzkin-based -- the mechanical version of the paper's by-hand
        simplification in Appendices D/E).  Nested piecewise values are
        pruned in the context of their enclosing guard."""
        key = (5, assumptions)
        found = self._memo.get(key, _MISSING)
        if found is not _MISSING:
            _PRUNE_STATS.hits += 1
            return found
        _PRUNE_STATS.misses += 1
        new_cases: list[Case] = []
        for c in self.cases:
            ctx = c.guard if assumptions is None else c.guard.and_(assumptions)
            if not ctx.feasible():
                continue
            value = c.value
            if isinstance(value, Piecewise):
                value = value.prune(ctx)
            new_cases.append(Case(c.guard, value))
        default = self.default
        if self.has_default and isinstance(default, Piecewise):
            default = default.prune(assumptions)
        result = Piecewise(new_cases, default=default, has_default=self.has_default)
        self._memo[key] = result
        return result

    def simplify(self, assumptions: Guard | None = None) -> "Piecewise":
        """Prune infeasible alternatives and drop implied constraints.

        Combines :meth:`prune` with :meth:`Guard.simplify`, recursing into
        nested piecewise values with the enclosing guard added to the
        context; an alternative whose guard simplifies to ``true`` makes
        every later alternative (and the default) unreachable under
        first-match evaluation, so they are removed -- this is what turns
        e.g. the D.1 i/o repeater into the paper's plain ``{0 n 1}``.
        Nested single-alternative ``true`` cases collapse into their leaf.
        """
        key = (6, assumptions)
        found = self._memo.get(key, _MISSING)
        if found is not _MISSING:
            _SIMPLIFY_STATS.hits += 1
            return found
        _SIMPLIFY_STATS.misses += 1
        new_cases: list[Case] = []
        truncated = False
        for c in self.cases:
            ctx = c.guard if assumptions is None else c.guard.and_(assumptions)
            if not ctx.feasible():
                continue
            guard = c.guard.simplify(assumptions)
            value = c.value
            if isinstance(value, Piecewise):
                value = value.simplify(ctx)
                collapsed = value.collapse()
                if not isinstance(collapsed, Piecewise):
                    value = collapsed
            new_cases.append(Case(guard, value))
            if guard.is_true:
                truncated = True
                break
        default = self.default
        has_default = self.has_default and not truncated
        if has_default and isinstance(default, Piecewise):
            default = default.simplify(assumptions)
        result = Piecewise(
            new_cases,
            default=default if has_default else None,
            has_default=has_default,
        )
        self._memo[key] = result
        return result

    def collapse(self) -> Value:
        """If a single unconditional alternative remains, return its value."""
        if len(self.cases) == 1 and self.cases[0].guard.is_true:
            return self.cases[0].value
        return self

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, type(self))
            and self.cases == other.cases
            and self.has_default == other.has_default
            and self.default == other.default
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        lines = ["if"]
        for i, c in enumerate(self.cases):
            prefix = "   " if i == 0 else "[] "
            lines.append(f"  {prefix}{c.guard}  ->  {c.value}")
        if self.has_default:
            lines.append(f"  [] else  ->  {'null' if self.default is None else self.default}")
        lines.append("fi")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Piecewise(<{len(self.cases)} cases>)"
