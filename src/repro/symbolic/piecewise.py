"""Piecewise values: the paper's ``if G0 -> e0 [] G1 -> e1 ... fi``.

A :class:`Piecewise` is an ordered list of :class:`Case` (guard, value)
pairs plus an optional default value (the paper's ``else -> null``
alternative, used for null processes and null communications).

Guarded-command semantics: evaluation picks *a* case whose guard holds.  The
scheme only ever produces case analyses whose overlapping alternatives agree
(the paper notes this explicitly for ``col = n`` in Appendix D.2), and
:meth:`Piecewise.check_overlaps_agree` verifies it on concrete instances.
Values may be affine expressions, affine vectors, nested piecewise values
(Appendix E.2.5's soak/drain code), or ``None`` for the paper's ``null``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.symbolic.affine import Affine, AffineLike, AffineVec, Numeric
from repro.symbolic.guard import Guard
from repro.util.errors import SymbolicError

Value = Any  # Affine | AffineVec | Piecewise | None


@dataclass(frozen=True)
class Case:
    """One guarded alternative ``guard -> value``."""

    guard: Guard
    value: Value

    def __str__(self) -> str:
        return f"{self.guard}  ->  {self.value}"


def _subs_value(value: Value, mapping: Mapping[str, AffineLike]) -> Value:
    if value is None:
        return None
    if isinstance(value, (Affine, AffineVec, Piecewise)):
        return value.subs(mapping)
    raise SymbolicError(f"cannot substitute into {value!r}")


def _evaluate_value(value: Value, env: Mapping[str, Numeric]) -> Any:
    if value is None:
        return None
    if isinstance(value, (Affine, AffineVec, Piecewise)):
        return value.evaluate(env)
    raise SymbolicError(f"cannot evaluate {value!r}")


def _rebuild_piecewise(cases, default, has_default):
    """Pickle helper: ``has_default`` is keyword-only in the constructor."""
    return Piecewise(cases, default, has_default=has_default)


class Piecewise:
    """An immutable guarded case analysis with an optional default."""

    __slots__ = ("cases", "default", "has_default")

    def __init__(
        self,
        cases: Iterable[Case],
        default: Value = None,
        *,
        has_default: bool = False,
    ) -> None:
        case_list = tuple(cases)
        for c in case_list:
            if not isinstance(c, Case):
                raise SymbolicError(f"expected Case, got {c!r}")
        object.__setattr__(self, "cases", case_list)
        object.__setattr__(self, "default", default if has_default else None)
        object.__setattr__(self, "has_default", bool(has_default))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Piecewise is immutable")

    def __reduce__(self):
        return (_rebuild_piecewise, (self.cases, self.default, self.has_default))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def single(value: Value) -> "Piecewise":
        """A case analysis with one unconditional alternative."""
        return Piecewise([Case(Guard.TRUE, value)])

    @staticmethod
    def with_null_default(cases: Iterable[Case]) -> "Piecewise":
        """The paper's ``else -> null`` form (null process / communication)."""
        return Piecewise(cases, default=None, has_default=True)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for c in self.cases:
            out |= c.guard.free_symbols
            if isinstance(c.value, (Affine, AffineVec, Piecewise)):
                out |= c.value.free_symbols
        if self.has_default and isinstance(
            self.default, (Affine, AffineVec, Piecewise)
        ):
            out |= self.default.free_symbols
        return out

    def map_values(self, fn: Callable[[Value], Value]) -> "Piecewise":
        """Apply ``fn`` to every leaf value (recursing through nesting)."""
        def rec(value: Value) -> Value:
            if isinstance(value, Piecewise):
                return value.map_values(fn)
            return fn(value)

        return Piecewise(
            (Case(c.guard, rec(c.value)) for c in self.cases),
            default=rec(self.default) if self.has_default else None,
            has_default=self.has_default,
        )

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def subs(self, mapping: Mapping[str, AffineLike]) -> "Piecewise":
        return Piecewise(
            (Case(c.guard.subs(mapping), _subs_value(c.value, mapping)) for c in self.cases),
            default=_subs_value(self.default, mapping) if self.has_default else None,
            has_default=self.has_default,
        )

    def matching_cases(self, env: Mapping[str, Numeric]) -> list[Case]:
        """All alternatives whose guard holds under ``env``."""
        return [c for c in self.cases if c.guard.evaluate(env)]

    def evaluate(self, env: Mapping[str, Numeric]) -> Any:
        """Evaluate under guarded-command semantics.

        Picks the first alternative whose guard holds; falls back to the
        default when no guard holds and a default exists, and raises
        otherwise (the paper's ``if .. fi`` aborts when no guard holds).
        """
        for c in self.cases:
            if c.guard.evaluate(env):
                return _evaluate_value(c.value, env)
        if self.has_default:
            return _evaluate_value(self.default, env)
        raise SymbolicError(
            f"no alternative of the case analysis holds under {dict(env)}"
        )

    def check_overlaps_agree(self, env: Mapping[str, Numeric]) -> bool:
        """True iff all alternatives whose guards hold yield equal values."""
        values = [_evaluate_value(c.value, env) for c in self.matching_cases(env)]
        return all(v == values[0] for v in values[1:])

    # ------------------------------------------------------------------
    # simplification
    # ------------------------------------------------------------------
    def prune(self, assumptions: Guard | None = None) -> "Piecewise":
        """Drop alternatives whose guards are infeasible (sound, Fourier-
        Motzkin-based -- the mechanical version of the paper's by-hand
        simplification in Appendices D/E).  Nested piecewise values are
        pruned in the context of their enclosing guard."""
        new_cases: list[Case] = []
        for c in self.cases:
            ctx = c.guard if assumptions is None else c.guard.and_(assumptions)
            if not ctx.feasible():
                continue
            value = c.value
            if isinstance(value, Piecewise):
                value = value.prune(ctx)
            new_cases.append(Case(c.guard, value))
        default = self.default
        if self.has_default and isinstance(default, Piecewise):
            default = default.prune(assumptions)
        return Piecewise(new_cases, default=default, has_default=self.has_default)

    def simplify(self, assumptions: Guard | None = None) -> "Piecewise":
        """Prune infeasible alternatives and drop implied constraints.

        Combines :meth:`prune` with :meth:`Guard.simplify`, recursing into
        nested piecewise values with the enclosing guard added to the
        context; an alternative whose guard simplifies to ``true`` makes
        every later alternative (and the default) unreachable under
        first-match evaluation, so they are removed -- this is what turns
        e.g. the D.1 i/o repeater into the paper's plain ``{0 n 1}``.
        Nested single-alternative ``true`` cases collapse into their leaf.
        """
        new_cases: list[Case] = []
        truncated = False
        for c in self.cases:
            ctx = c.guard if assumptions is None else c.guard.and_(assumptions)
            if not ctx.feasible():
                continue
            guard = c.guard.simplify(assumptions)
            value = c.value
            if isinstance(value, Piecewise):
                value = value.simplify(ctx)
                collapsed = value.collapse()
                if not isinstance(collapsed, Piecewise):
                    value = collapsed
            new_cases.append(Case(guard, value))
            if guard.is_true:
                truncated = True
                break
        default = self.default
        has_default = self.has_default and not truncated
        if has_default and isinstance(default, Piecewise):
            default = default.simplify(assumptions)
        return Piecewise(
            new_cases,
            default=default if has_default else None,
            has_default=has_default,
        )

    def collapse(self) -> Value:
        """If a single unconditional alternative remains, return its value."""
        if len(self.cases) == 1 and self.cases[0].guard.is_true:
            return self.cases[0].value
        return self

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Piecewise)
            and self.cases == other.cases
            and self.has_default == other.has_default
            and self.default == other.default
        )

    def __hash__(self) -> int:
        return hash(("Piecewise", self.cases, self.has_default))

    def __str__(self) -> str:
        lines = ["if"]
        for i, c in enumerate(self.cases):
            prefix = "   " if i == 0 else "[] "
            lines.append(f"  {prefix}{c.guard}  ->  {c.value}")
        if self.has_default:
            lines.append(f"  [] else  ->  {'null' if self.default is None else self.default}")
        lines.append("fi")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Piecewise(<{len(self.cases)} cases>)"
