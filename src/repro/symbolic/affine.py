"""Affine expressions over named symbols, with exact rational coefficients.

An :class:`Affine` is ``sum_i c_i * s_i + k`` for symbols ``s_i``; it is the
expression language of the paper's derived programs ("``2*n - col``",
"``row - col + n``", ...).  :class:`AffineVec` is a fixed-length vector of
affine expressions, used for points of the index space parameterised by the
process-space coordinates (e.g. ``first = (col - row, 0, -row)``).

Multiplication is only defined when at least one operand is constant: the
scheme never needs products of two genuinely symbolic expressions, and
keeping the language affine is what makes every later step (face solving,
guard feasibility) exact and decidable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence, Union
from weakref import WeakValueDictionary

from repro.geometry.point import Point
from repro.symbolic.intern import counter
from repro.util.errors import SymbolicError

Numeric = Union[int, Fraction]
AffineLike = Union["Affine", int, Fraction]


_ZERO = Fraction(0)

#: Element types :class:`AffineVec` passes through unlifted (and for which
#: :class:`Affine` arithmetic defers to the reflected operand).  Populated
#: by :mod:`repro.symbolic.minmax` to break the import cycle.
_VEC_PASSTHROUGH: tuple[type, ...] = ()


def register_vec_passthrough(tp: type) -> None:
    global _VEC_PASSTHROUGH
    if tp not in _VEC_PASSTHROUGH:
        _VEC_PASSTHROUGH = _VEC_PASSTHROUGH + (tp,)


def _as_fraction(value: Numeric) -> Fraction:
    # Exact-type fast paths: re-wrapping an existing Fraction goes through
    # fractions.Fraction.__new__'s slow generic path and dominated the
    # profile of large sweeps.
    tp = type(value)
    if tp is Fraction:
        return value
    if tp is int:
        return Fraction(value)
    if isinstance(value, bool) or not isinstance(value, (int, Fraction)):
        raise SymbolicError(f"expected an exact number, got {value!r}")
    return Fraction(value)


class Affine:
    """An immutable, hash-consed affine expression ``sum coeffs[s]*s + const``.

    Construction interns: structurally equal expressions built through the
    constructor are the *same object*, so ``__eq__`` has an identity fast
    path and downstream caches can key on identity.
    """

    __slots__ = ("coeffs", "const", "_hash", "__weakref__")

    _intern: "WeakValueDictionary[tuple, Affine]" = WeakValueDictionary()
    _stats = counter("affine_intern")

    def __new__(
        cls, coeffs: Mapping[str, Numeric] | None = None, const: Numeric = 0
    ) -> "Affine":
        clean: dict[str, Fraction] = {}
        for sym, c in (coeffs or {}).items():
            if not isinstance(sym, str) or not sym:
                raise SymbolicError(f"symbol names must be non-empty strings: {sym!r}")
            f = _as_fraction(c)
            if f != 0:
                clean[sym] = f
        const_f = _as_fraction(const)
        key = (frozenset(clean.items()), const_f)
        stats = cls._stats
        self = cls._intern.get(key)
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "const", const_f)
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    @classmethod
    def _make(cls, coeffs: dict[str, Fraction], const: Fraction) -> "Affine":
        """Internal interning constructor for arithmetic results.

        Callers guarantee ``coeffs`` maps symbol strings to ``Fraction``
        (zero values allowed, they are dropped here) and ``const`` is a
        ``Fraction``; skipping the public constructor's per-item validation
        matters because arithmetic dominates large sweeps.
        """
        clean = {s: c for s, c in coeffs.items() if c}
        key = (frozenset(clean.items()), const)
        stats = cls._stats
        self = cls._intern.get(key)
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "const", const)
        object.__setattr__(self, "_hash", hash(key))
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Affine is immutable")

    def __reduce__(self):
        # Rebuild through the constructor: the immutable __setattr__ blocks
        # the default slot-restoring pickle path.
        return (Affine, (self.coeffs, self.const))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: Numeric) -> "Affine":
        return Affine({}, value)

    @staticmethod
    def var(name: str) -> "Affine":
        return Affine({name: 1}, 0)

    @staticmethod
    def lift(value: AffineLike) -> "Affine":
        if isinstance(value, Affine):
            return value
        return Affine.constant(value)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def is_zero(self) -> bool:
        return self.is_constant and self.const == 0

    @property
    def free_symbols(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def coeff(self, symbol: str) -> Fraction:
        return self.coeffs.get(symbol, _ZERO)

    def as_constant(self) -> Fraction:
        if not self.is_constant:
            raise SymbolicError(f"{self} is not constant")
        return self.const

    def as_int(self) -> int:
        c = self.as_constant()
        if c.denominator != 1:
            raise SymbolicError(f"{self} is not an integer")
        return int(c)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: AffineLike) -> "Affine":
        if isinstance(other, _VEC_PASSTHROUGH):
            return NotImplemented  # defer to Extremum.__radd__
        o = Affine.lift(other)
        coeffs = dict(self.coeffs)
        for sym, c in o.coeffs.items():
            prev = coeffs.get(sym)
            coeffs[sym] = c if prev is None else prev + c
        return Affine._make(coeffs, self.const + o.const)

    __radd__ = __add__

    def __sub__(self, other: AffineLike) -> "Affine":
        if isinstance(other, _VEC_PASSTHROUGH):
            return NotImplemented  # defer to Extremum.__rsub__
        o = Affine.lift(other)
        coeffs = dict(self.coeffs)
        for sym, c in o.coeffs.items():
            prev = coeffs.get(sym)
            coeffs[sym] = -c if prev is None else prev - c
        return Affine._make(coeffs, self.const - o.const)

    def __rsub__(self, other: AffineLike) -> "Affine":
        return Affine.lift(other) - self

    def __neg__(self) -> "Affine":
        return Affine._make(
            {s: -c for s, c in self.coeffs.items()}, -self.const
        )

    def __mul__(self, other: AffineLike) -> "Affine":
        if isinstance(other, _VEC_PASSTHROUGH):
            return NotImplemented  # defer to Extremum.__rmul__
        o = Affine.lift(other)
        if o.is_constant:
            k = o.const
            return Affine._make(
                {s: c * k for s, c in self.coeffs.items()}, self.const * k
            )
        if self.is_constant:
            return o * self.const
        raise SymbolicError(f"non-affine product: ({self}) * ({o})")

    __rmul__ = __mul__

    def __truediv__(self, other: AffineLike) -> "Affine":
        o = Affine.lift(other)
        if not o.is_constant:
            raise SymbolicError(f"division by symbolic expression: ({self}) / ({o})")
        if o.const == 0:
            raise SymbolicError(f"division by zero: ({self}) / 0")
        return self * (Fraction(1) / o.const)

    # ------------------------------------------------------------------
    # substitution / evaluation
    # ------------------------------------------------------------------
    def subs(self, mapping: Mapping[str, AffineLike]) -> "Affine":
        """Substitute symbols by affine expressions or numbers."""
        result = Affine.constant(self.const)
        for sym, c in self.coeffs.items():
            replacement = mapping.get(sym)
            if replacement is None:
                result = result + Affine({sym: c})
            else:
                result = result + Affine.lift(replacement) * c
        return result

    def evaluate(self, env: Mapping[str, Numeric]) -> Fraction:
        """Fully evaluate; every free symbol must be bound in ``env``."""
        total = self.const
        for sym, c in self.coeffs.items():
            if sym not in env:
                raise SymbolicError(f"unbound symbol {sym!r} in {self}")
            total += c * _as_fraction(env[sym])
        return total

    def evaluate_int(self, env: Mapping[str, Numeric]) -> int:
        v = self.evaluate(env)
        if v.denominator != 1:
            raise SymbolicError(f"{self} evaluates to non-integer {v} under {dict(env)}")
        return int(v)

    # ------------------------------------------------------------------
    # comparison / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # type(self) rather than the module-global class name: weak-cache
        # removal callbacks can run during interpreter teardown, after
        # globals are cleared.
        if isinstance(other, type(self)):
            # Interning makes structural equality identity for
            # constructor-built instances; the walk stays as a safety net.
            return self.coeffs == other.coeffs and self.const == other.const
        if isinstance(other, (int, Fraction)):
            return self.is_constant and self.const == other
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        parts: list[str] = []
        for sym in sorted(self.coeffs):
            c = self.coeffs[sym]
            if c == 1:
                term = sym
            elif c == -1:
                term = f"-{sym}"
            else:
                term = f"{c}*{sym}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self.const != 0 or not parts:
            k = self.const
            if parts:
                parts.append(f"+ {k}" if k > 0 else f"- {-k}")
            else:
                parts.append(str(k))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Affine({self})"


class AffineVec(tuple):
    """A fixed-length vector of affine expressions.

    Used for symbolic points: ``first = (col, row, 0)`` is an
    ``AffineVec`` over the process-space coordinates.
    """

    __slots__ = ()

    def __new__(cls, items: Iterable[AffineLike]) -> "AffineVec":
        return super().__new__(
            cls,
            (
                x if isinstance(x, _VEC_PASSTHROUGH) else Affine.lift(x)
                for x in items
            ),
        )

    @staticmethod
    def of(*items: AffineLike) -> "AffineVec":
        return AffineVec(items)

    @staticmethod
    def from_point(point: Sequence[Numeric]) -> "AffineVec":
        return AffineVec(Affine.constant(c) for c in point)

    @staticmethod
    def symbols(names: Sequence[str]) -> "AffineVec":
        return AffineVec(Affine.var(n) for n in names)

    @property
    def dim(self) -> int:
        return len(self)

    @property
    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self:
            out |= a.free_symbols
        return out

    @property
    def is_constant(self) -> bool:
        return all(a.is_constant for a in self)

    def _coerce(self, other: object) -> "AffineVec | None":
        if isinstance(other, AffineVec):
            vec = other
        elif isinstance(other, (tuple, list, Point)):
            vec = AffineVec(other)
        else:
            return None
        if len(vec) != len(self):
            raise SymbolicError(f"dimension mismatch: {self} vs {vec}")
        return vec

    def __add__(self, other: object) -> "AffineVec":  # type: ignore[override]
        vec = self._coerce(other)
        if vec is None:
            return NotImplemented
        return AffineVec(a + b for a, b in zip(self, vec))

    __radd__ = __add__

    def __sub__(self, other: object) -> "AffineVec":
        vec = self._coerce(other)
        if vec is None:
            return NotImplemented
        return AffineVec(a - b for a, b in zip(self, vec))

    def __rsub__(self, other: object) -> "AffineVec":
        vec = self._coerce(other)
        if vec is None:
            return NotImplemented
        return AffineVec(b - a for a, b in zip(self, vec))

    def __neg__(self) -> "AffineVec":
        return AffineVec(-a for a in self)

    def __mul__(self, scalar: object) -> "AffineVec":  # type: ignore[override]
        if not isinstance(scalar, (int, Fraction, Affine)):
            return NotImplemented
        return AffineVec(a * scalar for a in self)

    __rmul__ = __mul__

    def subs(self, mapping: Mapping[str, AffineLike]) -> "AffineVec":
        return AffineVec(a.subs(mapping) for a in self)

    def evaluate(self, env: Mapping[str, Numeric]) -> Point:
        return Point(a.evaluate(env) for a in self)

    def as_point(self) -> Point:
        """Convert a fully constant vector to a :class:`Point`."""
        return Point(a.as_constant() for a in self)

    def with_coord(self, axis: int, value: AffineLike) -> "AffineVec":
        """The paper's ``(x; i: e)`` for symbolic points."""
        if not 0 <= axis < len(self):
            raise SymbolicError(f"axis {axis} out of range for {self}")
        return AffineVec(
            Affine.lift(value) if i == axis else a for i, a in enumerate(self)
        )

    def __repr__(self) -> str:
        return "(" + ", ".join(str(a) for a in self) + ")"
