"""Guards: conjunctions of affine inequalities.

The guards in the paper's case analyses (e.g. ``0 <= row - col <= n`` in
Appendix E.2) are conjunctions of linear inequalities over the process-space
coordinates and the problem-size symbols.  A :class:`Constraint` is the
canonical form ``expr >= 0``; a :class:`Guard` is a finite conjunction.

Feasibility (used by the optional guard-pruning optimisation pass) reduces
to rational Fourier-Motzkin over the guard's free symbols; callers supply
standing *assumptions* such as ``n >= 1``.

Both classes are hash-consed (see :mod:`repro.symbolic.intern`): a guard's
intern key is its order-preserving constraint tuple, so printing order is
stable, and the expensive queries (:meth:`Guard.feasible`,
:meth:`Guard.implies`, :meth:`Guard.simplify`) are memoized on the one
canonical instance -- the explorer asks the same questions about the same
guards across hundreds of candidate designs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence
from weakref import WeakValueDictionary

from repro.geometry.polyhedron import (
    LinearConstraint,
    canonical_int_row,
    feasible_int_rows,
)
from repro.symbolic.affine import Affine, AffineLike, Numeric
from repro.symbolic.intern import counter
from repro.util.errors import GuardError

_MISSING = object()

_FEASIBLE_STATS = counter("guard_feasible_memo")
_IMPLIES_STATS = counter("guard_implies_memo")
_SIMPLIFY_STATS = counter("guard_simplify_memo")
_CFN_STATS = counter("guard_compiled_cache")


class Constraint:
    """The inequality ``expr >= 0`` for an affine ``expr``."""

    __slots__ = ("expr", "_hash", "_introw", "__weakref__")

    _intern: "WeakValueDictionary[Affine, Constraint]" = WeakValueDictionary()
    _stats = counter("constraint_intern")

    def __new__(cls, expr: AffineLike) -> "Constraint":
        e = Affine.lift(expr)
        stats = cls._stats
        self = cls._intern.get(e)
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "expr", e)
        object.__setattr__(self, "_hash", hash(("Constraint", e)))
        object.__setattr__(self, "_introw", {})
        cls._intern[e] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Constraint is immutable")

    def __reduce__(self):
        return (Constraint, (self.expr,))

    # -- constructors ---------------------------------------------------
    @staticmethod
    def ge(a: AffineLike, b: AffineLike) -> "Constraint":
        """a >= b"""
        return Constraint(Affine.lift(a) - Affine.lift(b))

    @staticmethod
    def le(a: AffineLike, b: AffineLike) -> "Constraint":
        """a <= b"""
        return Constraint(Affine.lift(b) - Affine.lift(a))

    # -- queries ---------------------------------------------------------
    @property
    def free_symbols(self) -> frozenset[str]:
        return self.expr.free_symbols

    @property
    def is_trivially_true(self) -> bool:
        return self.expr.is_constant and self.expr.const >= 0

    @property
    def is_trivially_false(self) -> bool:
        return self.expr.is_constant and self.expr.const < 0

    def evaluate(self, env: Mapping[str, Numeric]) -> bool:
        return self.expr.evaluate(env) >= 0

    def subs(self, mapping: Mapping[str, AffineLike]) -> "Constraint":
        return Constraint(self.expr.subs(mapping))

    def to_linear(self, symbol_order: Sequence[str]) -> LinearConstraint:
        """Lower to a numeric :class:`LinearConstraint` over ``symbol_order``."""
        missing = self.free_symbols.difference(symbol_order)
        if missing:
            raise GuardError(f"symbols {sorted(missing)} not in ordering")
        return LinearConstraint(
            tuple(self.expr.coeff(s) for s in symbol_order), self.expr.const
        )

    def int_row(self, symbol_order: tuple[str, ...]) -> tuple[int, ...] | bool:
        """The canonical integer row over ``symbol_order`` (or a trivial
        truth value) -- see :func:`canonical_int_row`.

        Memoized on the hash-consed constraint: distinct guards share
        constraints constantly, and rebuilding the row from ``Fraction``
        coefficients is the single hottest step of feasibility checking.
        """
        row = self._introw.get(symbol_order)
        if row is None:
            expr = self.expr
            row = canonical_int_row(
                tuple(expr.coeff(s) for s in symbol_order) + (expr.const,)
            )
            self._introw[symbol_order] = row
        return row

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # type(self), not the global name: see Affine.__eq__ (teardown).
        return isinstance(other, type(self)) and self.expr == other.expr

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.expr} >= 0"

    def __repr__(self) -> str:
        return f"Constraint({self})"


class Guard:
    """A conjunction of constraints; ``Guard.TRUE`` is the empty conjunction."""

    __slots__ = ("constraints", "_hash", "_memo", "_cfn", "__weakref__")

    TRUE: "Guard"

    _intern: "WeakValueDictionary[tuple, Guard]" = WeakValueDictionary()
    _stats = counter("guard_intern")

    def __new__(cls, constraints: Iterable[Constraint] = ()) -> "Guard":
        # Deduplicate while preserving insertion order (stable printing); the
        # intern key is the ordered tuple so rendering never changes under
        # hash-consing even though __eq__ is order-insensitive.
        seen: dict[Constraint, None] = {}
        for c in constraints:
            if not isinstance(c, Constraint):
                raise GuardError(f"expected Constraint, got {c!r}")
            if not c.is_trivially_true:
                seen.setdefault(c, None)
        key = tuple(seen)
        stats = cls._stats
        self = cls._intern.get(key)
        if self is not None:
            stats.hits += 1
            return self
        stats.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "constraints", key)
        object.__setattr__(self, "_hash", hash(("Guard", frozenset(key))))
        object.__setattr__(self, "_memo", {})
        object.__setattr__(self, "_cfn", None)
        cls._intern[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Guard is immutable")

    def __reduce__(self):
        return (Guard, (self.constraints,))

    # -- combinators ------------------------------------------------------
    def and_(self, other: "Guard | Constraint") -> "Guard":
        if isinstance(other, Constraint):
            other = Guard([other])
        return Guard(self.constraints + other.constraints)

    def __and__(self, other: "Guard | Constraint") -> "Guard":
        return self.and_(other)

    # -- queries ----------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return not self.constraints

    @property
    def is_trivially_false(self) -> bool:
        return any(c.is_trivially_false for c in self.constraints)

    @property
    def free_symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for c in self.constraints:
            out |= c.free_symbols
        return out

    def evaluate(self, env: Mapping[str, Numeric]) -> bool:
        fn = self._cfn
        if fn is None:
            from repro.symbolic.compile import compile_guard

            fn = compile_guard(self)
            object.__setattr__(self, "_cfn", fn)
            _CFN_STATS.misses += 1
        else:
            _CFN_STATS.hits += 1
        return fn(env)

    def subs(self, mapping: Mapping[str, AffineLike]) -> "Guard":
        return Guard(c.subs(mapping) for c in self.constraints)

    def feasible(self, assumptions: "Guard | None" = None) -> bool:
        """Exact rational feasibility of this guard (with assumptions).

        Sound for pruning: an infeasible guard can never hold for any
        integral assignment either.
        """
        key = (1, assumptions)
        found = self._memo.get(key, _MISSING)
        if found is not _MISSING:
            _FEASIBLE_STATS.hits += 1
            return found
        _FEASIBLE_STATS.misses += 1
        combined = self if assumptions is None else self.and_(assumptions)
        if combined.is_trivially_false:
            result = False
        else:
            symbols = tuple(sorted(combined.free_symbols))
            rows = []
            result = None
            for c in combined.constraints:
                row = c.int_row(symbols)
                if row is True:
                    continue
                if row is False:
                    result = False
                    break
                rows.append(row)
            if result is None:
                result = feasible_int_rows(rows, len(symbols))
        self._memo[key] = result
        return result

    def implies(self, other: "Guard | Constraint", assumptions: "Guard | None" = None) -> bool:
        """Sound implication test: ``self => other`` under the assumptions.

        ``self`` implies a constraint ``e >= 0`` iff ``self /\\ e <= -1`` is
        infeasible over the *integers*; we use the rational relaxation with
        ``e <= -epsilon`` approximated by strict infeasibility of
        ``-e - 1 >= 0`` when coefficients are integral, falling back to
        ``-e > 0`` handled as ``-e >= epsilon`` with a tiny rational.  For
        the affine-with-rational-coefficients guards produced by the scheme
        we scale to integer coefficients first, making the test exact for
        integer points.
        """
        key = (2, other, assumptions)
        found = self._memo.get(key, _MISSING)
        if found is not _MISSING:
            _IMPLIES_STATS.hits += 1
            return found
        _IMPLIES_STATS.misses += 1
        if isinstance(other, Constraint):
            others: tuple[Constraint, ...] = (other,)
        else:
            others = other.constraints
        result = True
        for c in others:
            scaled = _scale_to_integer(c.expr)
            negation = Constraint(-scaled - 1)  # scaled <= -1, integer-exact
            test = self.and_(negation)
            if assumptions is not None:
                test = test.and_(assumptions)
            if test.feasible():
                result = False
                break
        self._memo[key] = result
        return result

    def simplify(self, assumptions: "Guard | None" = None) -> "Guard":
        """Drop constraints already implied by the standing assumptions.

        Sound: the simplified guard is equivalent to the original wherever
        the assumptions hold.  This is the mechanical counterpart of the
        paper dropping e.g. ``0 <= 2*n`` when ``n >= 0`` is given.
        """
        if assumptions is None or assumptions.is_true:
            return self
        key = (3, assumptions)
        found = self._memo.get(key, _MISSING)
        if found is not _MISSING:
            _SIMPLIFY_STATS.hits += 1
            return found
        _SIMPLIFY_STATS.misses += 1
        kept = [
            c for c in self.constraints if not assumptions.implies(c)
        ]
        result = Guard(kept)
        self._memo[key] = result
        return result

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, type(self)) and set(self.constraints) == set(
            other.constraints
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.is_true:
            return "true"
        return "  /\\  ".join(str(c) for c in self.constraints)

    def __repr__(self) -> str:
        return f"Guard({self})"


Guard.TRUE = Guard()


def _scale_to_integer(expr: Affine) -> Affine:
    """Scale an affine expression by a positive rational so that all
    coefficients and the constant are integers."""
    import math

    denoms = [expr.const.denominator] + [c.denominator for c in expr.coeffs.values()]
    lcm = 1
    for d in denoms:
        lcm = lcm * d // math.gcd(lcm, d)
    return expr * lcm


def interval(lo: AffineLike, mid: AffineLike, hi: AffineLike) -> Guard:
    """The paper's pervasive two-sided guard ``lo <= mid <= hi``."""
    return Guard([Constraint.ge(mid, lo), Constraint.le(mid, hi)])
