"""Compiled evaluators: lower symbolic forms into flat Python closures.

Interpreting an :class:`Affine`/:class:`Guard`/:class:`Piecewise` walks the
expression tree and allocates a :class:`~fractions.Fraction` per term; the
explorer and the simulator evaluate the *same* closed forms at thousands of
points, so this module lowers each form once into a single ``compile()``-d
function over an ``env`` mapping -- guard chains become ``if``/``elif``
lines, affine terms become inline arithmetic on ``env[...]`` lookups.  The
compiled function is cached on the hash-consed instance (see
:mod:`repro.symbolic.intern`), so every structural copy of a form shares
one compiled body.

The *lowering* itself (:func:`render_affine`, :func:`render_guard`,
:func:`guard_chain_lines`) is the single guard-chain implementation in the
repository: :mod:`repro.target.pygen` renders its standalone modules
through these same functions, parameterised on the numeral renderer and the
no-match behaviour, so generated-code output is byte-for-byte what the old
private renderer produced.

Semantics are preserved exactly: scalar leaves still return
:class:`~fractions.Fraction`, vector leaves still return
:class:`~repro.geometry.point.Point`, unbound symbols raise
:class:`~repro.util.errors.SymbolicError`, and a case analysis with no
matching alternative raises the same message as the interpretive walk.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Mapping, Sequence

from repro.geometry.point import Point
from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.intern import counter
from repro.util.errors import SymbolicError

__all__ = [
    "render_affine",
    "render_guard",
    "guard_chain_lines",
    "compile_guard",
    "compile_piecewise",
    "compile_any_case",
    "lower_affine_int",
    "lower_affine_rows_int",
]

_COMPILE_STATS = counter("compile_forms")


def env_sym(sym: str) -> str:
    """The default symbol lowering: a lookup in the ``env`` mapping."""
    return f"env[{sym!r}]"


def closure_num(value) -> str:
    """Numeral renderer for in-process closures (``_Fr`` is in globals)."""
    f = Fraction(value)
    if f.denominator == 1:
        return str(int(f))
    return f"_Fr({f.numerator}, {f.denominator})"


# ----------------------------------------------------------------------
# shared lowering (also used verbatim by target/pygen.py)
# ----------------------------------------------------------------------
def render_affine(a: Affine, num: Callable[[object], str],
                  sym: Callable[[str], str] = env_sym) -> str:
    """``a`` as a flat Python expression; ``num`` renders exact numerals."""
    terms: list[tuple[Fraction, str | None]] = [
        (a.coeffs[s], sym(s)) for s in sorted(a.coeffs)
    ]
    if a.const != 0 or not terms:
        terms.append((Fraction(a.const), None))
    parts: list[str] = []
    for c, s in terms:
        mag = abs(c)
        if s is None:
            txt = num(mag)
        elif mag == 1:
            txt = s
        else:
            txt = f"{num(mag)}*{s}"
        if not parts:
            parts.append(txt if c >= 0 else f"-{txt}")
        else:
            parts.append(("+ " if c >= 0 else "- ") + txt)
    return " ".join(parts)


def render_guard(guard, num: Callable[[object], str],
                 sym: Callable[[str], str] = env_sym) -> str:
    """``guard`` as a conjunction of ``(affine) >= 0`` tests."""
    if guard.is_true:
        return "True"
    return " and ".join(
        f"({render_affine(c.expr, num, sym)}) >= 0" for c in guard.constraints
    )


def guard_chain_lines(pw, leaf: Callable[[object], str],
                      guard_text: Callable[[object], str],
                      no_match: Callable[[str], str],
                      depth: int = 1) -> list[str]:
    """First-match ``if`` chain for a (possibly nested) case analysis.

    ``leaf`` renders a non-piecewise value, ``guard_text`` renders a guard,
    and ``no_match`` produces the final statement (given the indentation)
    when no alternative holds and there is no default.
    """
    pad = "    " * depth
    out: list[str] = []
    for case in pw.cases:
        out.append(f"{pad}if {guard_text(case.guard)}:")
        if _is_piecewise(case.value):
            out.extend(guard_chain_lines(case.value, leaf, guard_text,
                                         no_match, depth + 1))
        else:
            out.append(f"{pad}    return {leaf(case.value)}")
    if pw.has_default:
        if _is_piecewise(pw.default):
            out.extend(guard_chain_lines(pw.default, leaf, guard_text,
                                         no_match, depth))
        else:
            out.append(f"{pad}return {leaf(pw.default)}")
    else:
        out.append(no_match(pad))
    return out


def _is_piecewise(value) -> bool:
    # Lazy import: piecewise.py imports this module inside its methods.
    from repro.symbolic.piecewise import Piecewise

    return isinstance(value, Piecewise)


# ----------------------------------------------------------------------
# integer-array lowering (the vectorized wavefront backend)
# ----------------------------------------------------------------------
def lower_affine_int(
    a: Affine, order: Sequence[str], env: Mapping[str, object]
) -> tuple[tuple[int, ...], int, int]:
    """Lower ``a`` to integer dot-product form over the axes in ``order``.

    Returns ``(coeffs, const, den)`` such that for any integer point ``x``
    bound to the ``order`` symbols,

        ``a(x) == (sum_i coeffs[i] * x[i] + const) / den``   (exactly).

    Symbols not in ``order`` are substituted from ``env`` (raising
    :class:`SymbolicError` when unbound, like :meth:`Affine.evaluate`);
    ``den >= 1`` is the least common denominator, so a purely integral
    affine always lowers with ``den == 1``.  This is the bridge from the
    hash-consed symbolic layer to whole-array integer evaluation: a
    backend computes ``coeffs @ X + const`` over an ``(r, N)`` coordinate
    matrix ``X`` instead of evaluating the affine point by point.
    """
    pos = {sym: i for i, sym in enumerate(order)}
    coeffs = [_ZERO_FR] * len(order)
    const = Fraction(a.const)
    for sym, c in a.coeffs.items():
        i = pos.get(sym)
        if i is not None:
            coeffs[i] = Fraction(c)
        elif sym in env:
            const += Fraction(c) * Fraction(env[sym])
        else:
            raise SymbolicError(
                f"unbound symbol {sym!r} lowering {a} over axes {tuple(order)}"
            )
    den = const.denominator
    for c in coeffs:
        den = den * c.denominator // math.gcd(den, c.denominator)
    return (
        tuple(int(c * den) for c in coeffs),
        int(const * den),
        den,
    )


def lower_affine_rows_int(
    rows: Sequence[Affine], order: Sequence[str], env: Mapping[str, object]
) -> tuple[tuple[tuple[int, ...], ...], tuple[int, ...], tuple[int, ...]]:
    """:func:`lower_affine_int` over several affines with one shared order."""
    lowered = [lower_affine_int(a, order, env) for a in rows]
    return (
        tuple(c for c, _k, _d in lowered),
        tuple(k for _c, k, _d in lowered),
        tuple(d for _c, _k, d in lowered),
    )


_ZERO_FR = Fraction(0)


# ----------------------------------------------------------------------
# closure compilation
# ----------------------------------------------------------------------
class _UnsupportedLeaf(Exception):
    """Raised during lowering when a leaf value has no compiled form."""


def _closure_leaf(value) -> str:
    if value is None:
        return "None"
    if isinstance(value, AffineVec):
        coords = ", ".join(render_affine(a, closure_num) for a in value)
        return f"_Pt(({coords},))"
    if isinstance(value, Affine):
        # Affine.evaluate always returns a Fraction; preserve that.
        return f"_Fr({render_affine(value, closure_num)})"
    raise _UnsupportedLeaf(repr(value))


def _closure_guard(guard) -> str:
    return render_guard(guard, closure_num)


def _exec(src: str, name: str):
    ns = {"_Fr": Fraction, "_Pt": Point, "_SE": SymbolicError}
    exec(compile(src, "<repro.symbolic.compile>", "exec"), ns)
    _COMPILE_STATS.misses += 1
    return ns[name]


def _const(value):
    def fn(env):
        return value

    return fn


def compile_guard(guard):
    """``guard`` as ``env -> bool`` (short-circuiting ``and`` chain)."""
    if guard.is_true:
        return _const(True)
    src = (
        "def _g(env):\n"
        "    try:\n"
        f"        return {_closure_guard(guard)}\n"
        "    except KeyError as exc:\n"
        "        raise _SE('unbound symbol %r in guard' % (exc.args[0],)) from None\n"
    )
    return _exec(src, "_g")


def compile_piecewise(pw):
    """``pw`` as ``env -> value`` under first-match semantics.

    Returns ``None`` when some leaf has no compiled form; the caller then
    falls back to the interpretive walk.
    """

    def no_match(pad: str) -> str:
        return (f"{pad}raise _SE('no alternative of the case analysis "
                f"holds under %r' % (dict(env),))")

    try:
        body = guard_chain_lines(pw, _closure_leaf, _closure_guard,
                                 no_match, depth=2)
    except _UnsupportedLeaf:
        return None
    src = (
        "def _pw(env):\n"
        "    try:\n"
        + "\n".join(body) + "\n"
        "    except KeyError as exc:\n"
        "        raise _SE('unbound symbol %r in case analysis' % (exc.args[0],)) from None\n"
    )
    return _exec(src, "_pw")


def compile_any_case(pw):
    """``pw`` as ``env -> bool``: does any alternative's guard hold?"""
    if not pw.cases:
        return _const(False)
    if any(c.guard.is_true for c in pw.cases):
        return _const(True)
    disjunction = " or ".join(f"({_closure_guard(c.guard)})" for c in pw.cases)
    src = (
        "def _any(env):\n"
        "    try:\n"
        f"        return {disjunction}\n"
        "    except KeyError as exc:\n"
        "        raise _SE('unbound symbol %r in guard' % (exc.args[0],)) from None\n"
    )
    return _exec(src, "_any")
