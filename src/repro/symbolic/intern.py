"""Hash-consing support: per-class intern caches and hit/miss counters.

Every symbolic class (:class:`Affine`, :class:`Constraint`, :class:`Guard`,
:class:`Case`, :class:`Piecewise`) interns its instances in a per-class
:class:`weakref.WeakValueDictionary` keyed by the structural content, so
structurally equal expressions built through the public constructors are
*pointer-equal*.  That makes ``__eq__`` an identity check in the common
case, lets per-instance ``_memo`` dicts act as cross-design caches (the
explorer rebuilds the same ``step``/``place`` row forms hundreds of times),
and keeps compiled evaluators attached to the one canonical instance.

This module only holds the shared counter plumbing; the caches themselves
live on the classes (a ``WeakValueDictionary`` drops entries as soon as the
last external reference dies, so interning never pins memory).
"""

from __future__ import annotations

from repro import profiling

__all__ = ["Counter", "counter", "stats_snapshot"]


class Counter:
    """A hit/miss pair cheap enough for the construction hot path."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


_counters: dict[str, Counter] = {}


def counter(name: str) -> Counter:
    """The named counter, created on first use (one per class or memo)."""
    try:
        return _counters[name]
    except KeyError:
        c = _counters[name] = Counter()
        return c


def stats_snapshot() -> dict[str, int]:
    out: dict[str, int] = {}
    for name, c in sorted(_counters.items()):
        out[f"{name}_hits"] = c.hits
        out[f"{name}_misses"] = c.misses
    return out


profiling.register("symbolic", stats_snapshot)
