"""Symbolic affine engine.

The compilation scheme's outputs -- ``first``, ``last``, ``count``,
``soak``/``drain`` amounts, i/o repeaters -- are *closed forms*: affine
expressions in the problem-size symbols (e.g. ``n``) and the process-space
coordinates (e.g. ``col``, ``row``), guarded by conjunctions of affine
inequalities and combined into piecewise case analyses (the paper's
``if .. [] .. fi`` alternatives).  This package implements exactly that
expression language, with exact rational arithmetic.

All expression classes are hash-consed (:mod:`repro.symbolic.intern`):
structurally equal instances are pointer-equal, expensive normalization
queries are memoized on the canonical instance, and evaluation runs through
compiled flat closures (:mod:`repro.symbolic.compile`).
"""

from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.compile import compile_guard, compile_piecewise
from repro.symbolic.guard import Constraint, Guard, interval
from repro.symbolic.piecewise import Case, Piecewise

__all__ = [
    "Affine",
    "AffineVec",
    "Constraint",
    "Guard",
    "interval",
    "Case",
    "Piecewise",
    "compile_guard",
    "compile_piecewise",
]
