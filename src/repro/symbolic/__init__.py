"""Symbolic affine engine.

The compilation scheme's outputs -- ``first``, ``last``, ``count``,
``soak``/``drain`` amounts, i/o repeaters -- are *closed forms*: affine
expressions in the problem-size symbols (e.g. ``n``) and the process-space
coordinates (e.g. ``col``, ``row``), guarded by conjunctions of affine
inequalities and combined into piecewise case analyses (the paper's
``if .. [] .. fi`` alternatives).  This package implements exactly that
expression language, with exact rational arithmetic.
"""

from repro.symbolic.affine import Affine, AffineVec
from repro.symbolic.guard import Constraint, Guard, interval
from repro.symbolic.piecewise import Case, Piecewise

__all__ = [
    "Affine",
    "AffineVec",
    "Constraint",
    "Guard",
    "interval",
    "Case",
    "Piecewise",
]
